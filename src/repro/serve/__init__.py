"""``repro.serve``: solver-as-a-service — a fault-tolerant async serving
runtime over the structure-keyed compile cache.

The paper's premise is amortized compilation: build a solver graph once
per sparsity structure, then solve many right-hand sides against it.  This
package is the serving half of that premise (ROADMAP item 1): a
long-running :class:`SolverService` that admits solve jobs from multiple
tenants, runs them on a worker pool over one process-wide
:class:`~repro.solvers.ProgramCache`, and degrades gracefully instead of
falling over — bounded queue + typed rejections, per-tenant quotas,
per-job deadlines (cooperative, mid-solve), seeded deterministic retries,
per-structure circuit breaking, graceful drain — and, since PR 10,
queue-level dynamic batching: compatible jobs sharing a structure
fingerprint coalesce into one stacked multi-RHS solve
(:class:`BatchPolicy` / :class:`BatchAssembler`), bit-identical per
column to serving each job alone.

See ``docs/serving.md`` for the architecture and the failure-mode table,
and ``benchmarks/bench_serve_load.py`` for the overload/bit-identity
acceptance harness.
"""

from repro.serve.batching import (
    BatchAssembler,
    BatchPolicy,
    batchable_solve_kwargs,
    config_supports_batch,
)
from repro.serve.client import LoadGenerator, LoadReport, ServiceClient
from repro.serve.policy import (
    TRANSIENT_FAILURES,
    CircuitBreaker,
    RetryPolicy,
    ServicePolicy,
    TokenBucket,
)
from repro.serve.queue import FairQueue, Job, JobResult
from repro.serve.service import SolverService

__all__ = [
    "SolverService",
    "ServicePolicy",
    "RetryPolicy",
    "TokenBucket",
    "CircuitBreaker",
    "TRANSIENT_FAILURES",
    "BatchPolicy",
    "BatchAssembler",
    "config_supports_batch",
    "batchable_solve_kwargs",
    "FairQueue",
    "Job",
    "JobResult",
    "ServiceClient",
    "LoadGenerator",
    "LoadReport",
]
