"""The bounded, tenant-fair job queue behind the serving runtime.

Two pieces:

- :class:`Job` — one accepted solve request: the system to solve, the
  tenant it belongs to, its (absolute, monotonic-clock) deadline, its
  precomputed retry schedule, and the ``asyncio.Future`` every outcome is
  delivered through.  A job's future is resolved **exactly once** — the
  no-lost-no-duplicated invariant the hypothesis overload test pins.
- :class:`FairQueue` — a bounded multi-tenant queue: one FIFO lane per
  tenant, round-robin dequeue across lanes.  Fairness means a tenant
  flooding the queue cannot starve the others: each ``pop`` serves the
  next tenant in rotation, so per-tenant latency degrades with *that
  tenant's* backlog, not the total.  A full queue refuses new work with a
  typed :class:`~repro.errors.ServiceOverloadError` (admission control);
  retries re-enter with ``force=True`` because they were already admitted.

The queue is event-loop-confined (the service touches it only from loop
callbacks), so it needs no lock of its own — unlike the cross-thread
:class:`~repro.solvers.ProgramCache`.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.errors import ReproError, ServiceOverloadError

__all__ = ["Job", "JobResult", "FairQueue"]

_job_ids = itertools.count(1)


@dataclass
class Job:
    """One admitted solve request, queued or running."""

    matrix: object
    b: object
    config: object
    tenant: str = "default"
    #: Absolute deadline on the monotonic clock (``None`` = no deadline).
    deadline: float | None = None
    #: Seed the retry backoff schedule derives from (jobs are deterministic;
    #: the seed buys replayable retry timing, not numerics).
    seed: int = 0
    x0: object = None
    inject_faults: object = None
    resilience: object = None
    #: Extra :func:`repro.solvers.solve` keyword arguments (backend,
    #: tiles_per_ipu, grid_dims, ...).
    solve_kwargs: dict = field(default_factory=dict)

    #: Whether the submitter allows this job to be coalesced into a
    #: stacked multi-RHS solve with compatible jobs (``submit(...,
    #: batchable=False)`` opts out; eligibility is still gated by the
    #: config/shape checks in :mod:`repro.serve.batching`).
    batchable: bool = False

    # -- filled in by the service ---------------------------------------------------
    id: int = field(default_factory=lambda: next(_job_ids))
    #: Structure fingerprint of attempt 0 (circuit-breaker key).
    fingerprint: str = ""
    #: Coalescing key: jobs sharing a ``batch_key`` may ride one stacked
    #: solve (it is the attempt's single-RHS structure fingerprint, which
    #: embeds the canonical effective config, device shape, and backend).
    #: ``None`` marks the job batch-ineligible.  Recomputed on re-queue so
    #: a retried job only batches with peers at the same escalation.
    batch_key: str | None = None
    #: Precomputed deterministic backoff delays (RetryPolicy.schedule).
    retry_delays: tuple = ()
    attempt: int = 0
    #: Times this job survived a batch whose earliest deadline expired and
    #: was pushed back to the queue (not a retry: the attempt ladder is
    #: for *failed* solves, re-dispatch is for unfinished ones).
    redispatches: int = 0
    submitted_at: float = 0.0
    started_at: float | None = None
    #: Seconds spent executing solve() across attempts (queue wait excluded).
    exec_seconds: float = 0.0
    future: object = None  # asyncio.Future delivering JobResult / exception

    def resolve(self, result) -> None:
        if self.future is not None and not self.future.done():
            self.future.set_result(result)

    def fail(self, exc: BaseException) -> None:
        if self.future is not None and not self.future.done():
            self.future.set_exception(exc)


@dataclass(frozen=True)
class JobResult:
    """A served job's outcome: the solve result plus serving metadata."""

    job_id: int
    tenant: str
    #: The :class:`~repro.solvers.SolveResult` of the successful attempt.
    result: object
    #: Attempts run (1 = no retry was needed).
    attempts: int
    #: Config the successful attempt actually ran
    #: (:meth:`~repro.serve.RetryPolicy.effective_config`); a direct
    #: ``solve(matrix, b, effective_config)`` call reproduces ``result``
    #: bit for bit.
    effective_config: object
    #: Seconds from admission to first dispatch.
    queue_seconds: float
    #: Seconds spent inside solve() across all attempts.
    exec_seconds: float
    #: Seconds from admission to completion (what the tenant experienced).
    total_seconds: float
    #: Width of the stacked solve that served the successful attempt
    #: (1 = it ran alone; padding columns are not counted).  Purely
    #: observational — the result itself is bit-identical either way.
    batch_size: int = 1


class FairQueue:
    """Bounded multi-tenant FIFO with round-robin dequeue across tenants."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ReproError("FairQueue capacity must be >= 1")
        self.capacity = int(capacity)
        self._lanes: OrderedDict[str, deque] = OrderedDict()
        self._rotation: deque = deque()  # tenants with queued work
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def depth(self) -> int:
        return self._size

    def tenants(self) -> list:
        """Tenants with queued work, in rotation order."""
        return list(self._rotation)

    def push(self, job: Job, *, force: bool = False) -> None:
        """Enqueue ``job``; a full queue raises the typed overload error.

        ``force`` bypasses the capacity check — used for retries of jobs
        that were already admitted (an accepted job is never dropped by
        its own backoff re-entry).
        """
        if not force and self._size >= self.capacity:
            raise ServiceOverloadError(
                "job queue full",
                reason="queue_full",
                depth=self._size,
                capacity=self.capacity,
            )
        lane = self._lanes.get(job.tenant)
        if lane is None:
            lane = self._lanes[job.tenant] = deque()
        if not lane:
            self._rotation.append(job.tenant)
        lane.append(job)
        self._size += 1

    def pop(self) -> Job | None:
        """Dequeue the next job, rotating across tenants; None when empty."""
        while self._rotation:
            tenant = self._rotation.popleft()
            lane = self._lanes.get(tenant)
            if not lane:
                continue
            job = lane.popleft()
            self._size -= 1
            if lane:
                self._rotation.append(tenant)  # tenant goes to the back
            return job
        return None

    def take_batchable(self, batch_key: str, limit: int) -> list:
        """Remove and return up to ``limit`` queued jobs whose
        ``batch_key`` equals ``batch_key``.

        The batch-assembly sweep (:class:`~repro.serve.BatchAssembler`):
        jobs are taken FIFO within each lane, lanes scanned in rotation
        order, so the coalesced companions are exactly the jobs that
        would have been served next anyway — batching pulls their service
        *earlier*, never later.  Lanes the sweep empties are dropped from
        the rotation so a subsequent ``push`` cannot enqueue a duplicate
        rotation turn for the tenant.
        """
        if limit <= 0 or not batch_key:
            return []
        taken: list = []
        for tenant in list(self._rotation):
            lane = self._lanes.get(tenant)
            if not lane:
                continue
            kept: deque = deque()
            while lane and len(taken) < limit:
                job = lane.popleft()
                if job.batch_key == batch_key:
                    taken.append(job)
                else:
                    kept.append(job)
            kept.extend(lane)
            lane.clear()
            lane.extend(kept)
            if len(taken) >= limit:
                break
        if taken:
            self._size -= len(taken)
            self._rotation = deque(
                t for t in self._rotation if self._lanes.get(t))
        return taken

    def drain(self) -> list:
        """Remove and return every queued job (shutdown without drain)."""
        out = []
        for lane in self._lanes.values():
            out.extend(lane)
            lane.clear()
        self._rotation.clear()
        self._size = 0
        return out
