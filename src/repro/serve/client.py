"""Client-side helpers for the serving runtime.

Two layers:

- :class:`ServiceClient` — a tenant-scoped handle on a
  :class:`~repro.serve.SolverService`.  ``solve`` raises the service's
  typed errors; ``try_solve`` never raises — it classifies the outcome
  into the record shape the load tooling aggregates, which is also the
  shape a remote client would see on the wire (outcome + exit code +
  message, never a traceback).
- :class:`LoadGenerator` / :class:`LoadReport` — the open-loop load
  driver behind ``benchmarks/bench_serve_load.py`` and the CI serve-smoke
  leg: submit a list of job specs against a service (optionally paced),
  gather every outcome, and report latency percentiles and rejection
  rates.  Rejections are *expected output* under overload — the report
  treats them as first-class counts, not errors.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    JobTimeoutError,
    QuotaExceededError,
    ReproError,
    ServiceOverloadError,
)

__all__ = ["ServiceClient", "LoadGenerator", "LoadReport"]


def _classify(exc: BaseException) -> str:
    """Map a job's exception to an outcome label (the report's buckets)."""
    if isinstance(exc, ServiceOverloadError):
        return f"rejected:{exc.reason}"
    if isinstance(exc, QuotaExceededError):
        return "rejected:quota"
    if isinstance(exc, JobTimeoutError):
        return "timed_out"
    return "failed"


class ServiceClient:
    """A tenant's view of the service: submit jobs, get typed outcomes."""

    def __init__(self, service, tenant: str = "default"):
        self.service = service
        self.tenant = tenant

    def submit(self, matrix, b, config, **kwargs):
        kwargs.setdefault("tenant", self.tenant)
        return self.service.submit(matrix, b, config, **kwargs)

    async def solve(self, matrix, b, config, **kwargs):
        """Submit and await; raises the job's typed ``ReproError``."""
        return await self.submit(matrix, b, config, **kwargs).future

    async def try_solve(self, matrix, b, config, **kwargs) -> dict:
        """Submit and await, never raising: returns an outcome record
        ``{tenant, outcome, result|error, exit_code, ...}``."""
        try:
            job = self.submit(matrix, b, config, **kwargs)
        except ReproError as exc:  # synchronous admission rejection
            return {
                "tenant": kwargs.get("tenant", self.tenant),
                "outcome": _classify(exc),
                "error": str(exc),
                "exit_code": exc.exit_code,
                "result": None,
            }
        try:
            res = await job.future
        except ReproError as exc:
            return {
                "tenant": job.tenant,
                "outcome": _classify(exc),
                "error": str(exc),
                "exit_code": exc.exit_code,
                "result": None,
                "job_id": job.id,
            }
        return {
            "tenant": res.tenant,
            "outcome": "ok",
            "error": None,
            "exit_code": 0,
            "result": res,
            "job_id": res.job_id,
        }


@dataclass
class LoadReport:
    """Aggregated outcomes of one load run."""

    records: list = field(default_factory=list)

    def add(self, record: dict) -> None:
        self.records.append(record)

    @property
    def total(self) -> int:
        return len(self.records)

    def count(self, outcome: str) -> int:
        return sum(1 for r in self.records if r["outcome"] == outcome)

    @property
    def served(self) -> list:
        return [r for r in self.records if r["outcome"] == "ok"]

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.records if r["outcome"].startswith("rejected:"))

    def rejection_reasons(self) -> dict:
        out: dict = {}
        for r in self.records:
            if r["outcome"].startswith("rejected:"):
                reason = r["outcome"].split(":", 1)[1]
                out[reason] = out.get(reason, 0) + 1
        return out

    def latency_percentiles(self, which: str = "exec_seconds",
                            qs=(50, 95, 99)) -> dict:
        """Percentiles (seconds) over served jobs' ``exec_seconds`` (solver
        time only) or ``total_seconds`` (queue wait included)."""
        vals = [getattr(r["result"], which) for r in self.served]
        if not vals:
            return {f"p{q}": float("nan") for q in qs}
        arr = np.asarray(vals, dtype=np.float64)
        return {f"p{q}": float(np.percentile(arr, q)) for q in qs}

    def summary(self) -> dict:
        outcomes: dict = {}
        for r in self.records:
            outcomes[r["outcome"]] = outcomes.get(r["outcome"], 0) + 1
        return {
            "total": self.total,
            "outcomes": outcomes,
            "rejection_reasons": self.rejection_reasons(),
            "exec_latency": self.latency_percentiles("exec_seconds"),
            "total_latency": self.latency_percentiles("total_seconds"),
        }


class LoadGenerator:
    """Open-loop load driver: submit job specs, gather every outcome.

    Each spec is a dict of :meth:`ServiceClient.try_solve` arguments plus
    the required ``matrix``/``b``/``config`` keys.  ``interarrival`` paces
    submissions (0 = all at once — the overload hammer); outcomes are
    awaited concurrently, so a paced run still overlaps service work with
    submission.
    """

    def __init__(self, service):
        self.service = service

    async def run(self, specs: list, interarrival: float = 0.0) -> LoadReport:
        report = LoadReport()
        tasks = []
        for spec in specs:
            kwargs = dict(spec)
            matrix = kwargs.pop("matrix")
            b = kwargs.pop("b")
            config = kwargs.pop("config")
            client = ServiceClient(self.service, kwargs.pop("tenant", "default"))
            tasks.append(asyncio.ensure_future(
                client.try_solve(matrix, b, config, tenant=client.tenant, **kwargs)))
            if interarrival > 0:
                await asyncio.sleep(interarrival)
        for spec, rec in zip(specs, await asyncio.gather(*tasks)):
            rec["spec"] = spec  # what was submitted — lets callers re-solve directly
            report.add(rec)
        return report
