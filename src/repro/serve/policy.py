"""Serving policies: admission, quotas, retries, and circuit breaking.

Every knob the :class:`~repro.serve.SolverService` uses to stay robust
under load lives here, as plain deterministic data structures that are
testable without an event loop:

- :class:`RetryPolicy` — seeded exponential-backoff-with-jitter retries
  for failures the PR 4 error hierarchy classifies as transient
  (breakdown, divergence, stagnation...).  The backoff schedule is a pure
  function of ``(job seed, policy)`` — same derivation as the fault
  injector's per-clause RNGs (:mod:`repro.faults`): one
  ``numpy.random.SeedSequence`` child per retry attempt.
- :class:`TokenBucket` — per-tenant admission quota.  Time is *injected*
  (``try_acquire(now)``) so tests replay exact admission decisions.
- :class:`CircuitBreaker` — per-structure-fingerprint quarantine: a
  structure whose solves keep failing stops consuming worker time until a
  cooldown passes, then a single half-open probe decides whether to close
  the circuit again.
- :class:`ServicePolicy` — the bundle the service is constructed with.

See ``docs/serving.md`` for the failure-mode table these policies drive.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.serve.batching import BatchPolicy

__all__ = ["RetryPolicy", "TokenBucket", "CircuitBreaker", "ServicePolicy",
           "BatchPolicy"]


#: SolveResult.failure values the default retry policy treats as transient:
#: a perturbed config or a more robust solver plausibly fixes them.  (An
#: SRAM overflow is handled earlier, by resilience's degrade-on-OOM path.)
TRANSIENT_FAILURES = frozenset({
    "breakdown",
    "divergence",
    "stagnation",
    "nan_residual",
    "max_iterations",
    "silent_corruption",
})


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded, deterministic retry behavior for transient solve failures.

    A failed attempt retries after an exponential-backoff delay with
    multiplicative jitter.  The whole delay schedule is precomputed from
    the job seed (:meth:`schedule`), so a served job's retry timing is
    replayable.  What each retry *runs* comes from :meth:`effective_config`:
    attempt 0 uses the job's own config; later attempts escalate the
    iteration budget (the standard fix for ``max_iterations``/stagnation)
    until ``fallback_after``, from which point the configured fallback — a
    more robust solver such as preconditioned BiCGStab — takes over.
    """

    #: Total attempts including the first (1 = never retry).
    max_attempts: int = 3
    #: Delay before the first retry, in seconds.
    base_delay: float = 0.05
    #: Exponential growth factor per retry.
    multiplier: float = 2.0
    #: Jitter fraction: each delay is scaled by ``1 + jitter * u`` with
    #: ``u ~ U[0, 1)`` drawn from the attempt's seeded child RNG.
    jitter: float = 0.5
    #: ``max_iterations`` multiplier applied per retry attempt (only when
    #: the config sets ``max_iterations`` explicitly; solver-class defaults
    #: are left alone so the retried config stays a valid direct-solve
    #: config).
    escalate_iterations: float = 4.0
    #: Solver config (dict / JSON / name) used from ``fallback_after`` on;
    #: ``None`` keeps escalating the original config.
    fallback_config: object = None
    #: First attempt index that uses ``fallback_config``.
    fallback_after: int = 2
    #: ``SolveResult.failure`` values worth retrying.
    transient: frozenset = TRANSIENT_FAILURES

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ReproError("retry: max_attempts must be >= 1")
        if self.base_delay < 0 or self.multiplier < 1.0:
            raise ReproError("retry: need base_delay >= 0 and multiplier >= 1")
        if self.jitter < 0:
            raise ReproError("retry: jitter must be >= 0")
        if self.escalate_iterations < 1.0:
            raise ReproError("retry: escalate_iterations must be >= 1.0")
        if self.fallback_after < 1:
            raise ReproError("retry: fallback_after must be >= 1")

    def schedule(self, job_seed: int) -> tuple:
        """Backoff delays (seconds) before attempts ``1..max_attempts-1``.

        A pure function of ``(job_seed, policy)``: attempt ``k``'s jitter
        draw comes from the ``k``-th ``SeedSequence`` child of the job
        seed, exactly one draw per attempt — the same spawn-per-clause
        scheme :mod:`repro.faults` uses for its injection schedule.
        """
        n = self.max_attempts - 1
        if n <= 0:
            return ()
        children = np.random.SeedSequence(int(job_seed)).spawn(n)
        return tuple(
            self.base_delay
            * self.multiplier**k
            * (1.0 + self.jitter * float(np.random.default_rng(c).random()))
            for k, c in enumerate(children)
        )

    def is_transient(self, failure: str | None) -> bool:
        """Whether a ``SolveResult.failure`` value is worth a retry."""
        return failure in self.transient

    def effective_config(self, config, attempt: int):
        """The solver config attempt ``attempt`` actually runs.

        Returns something :func:`repro.solvers.solve` accepts directly, so
        a retried job's result stays reproducible by one direct
        ``solve(matrix, b, effective_config(config, k))`` call — the
        bit-identity contract the load bench checks.
        """
        if attempt <= 0:
            return config
        if self.fallback_config is not None and attempt >= self.fallback_after:
            return self.fallback_config
        from repro.solvers.config import load_config

        conf = dict(load_config(config))
        if "max_iterations" in conf:
            conf["max_iterations"] = int(
                conf["max_iterations"] * self.escalate_iterations**attempt
            )
        return conf


class TokenBucket:
    """Per-tenant admission quota: ``rate`` tokens/second, ``burst`` deep.

    The caller supplies the clock (``now`` in seconds, any monotonic
    origin), which keeps admission decisions a pure function of the
    request timeline — tests replay them exactly.  A ``rate`` of 0 makes
    the bucket a fixed budget of ``burst`` jobs.
    """

    def __init__(self, rate: float, burst: float):
        if burst < 1:
            raise ReproError("token bucket: burst must be >= 1")
        if rate < 0:
            raise ReproError("token bucket: rate must be >= 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._updated: float | None = None

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; refills lazily from ``now``."""
        if self._updated is None:
            self._updated = now
        elif now > self._updated:
            self.tokens = min(self.burst, self.tokens + (now - self._updated) * self.rate)
            self._updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will be available (client hint)."""
        deficit = cost - self.tokens
        if deficit <= 0:
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return deficit / self.rate


class CircuitBreaker:
    """Per-key failure quarantine (keys are structure fingerprints).

    Classic three-state breaker, thread-safe:

    - **closed** — traffic flows; consecutive failures are counted.
    - **open** — after ``failure_threshold`` consecutive failures the key
      is quarantined: :meth:`allow` refuses until ``cooldown_seconds``
      pass.
    - **half-open** — after the cooldown exactly one probe job is let
      through; its success closes the circuit, its failure re-opens it
      (with a fresh cooldown).
    """

    def __init__(self, failure_threshold: int = 3, cooldown_seconds: float = 5.0):
        if failure_threshold < 1:
            raise ReproError("breaker: failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ReproError("breaker: cooldown_seconds must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._lock = threading.Lock()
        # key -> [state, consecutive_failures, opened_at]
        self._keys: dict = {}

    def allow(self, key: str, now: float) -> bool:
        """Whether a job for ``key`` may run right now (may claim the
        half-open probe slot)."""
        with self._lock:
            st = self._keys.get(key)
            if st is None or st[0] == "closed":
                return True
            if st[0] == "open":
                if now - st[2] >= self.cooldown_seconds:
                    st[0] = "half_open"  # this caller is the probe
                    return True
                return False
            return False  # half_open: probe already in flight

    def record_success(self, key: str) -> None:
        with self._lock:
            self._keys.pop(key, None)

    def record_failure(self, key: str, now: float) -> None:
        with self._lock:
            st = self._keys.setdefault(key, ["closed", 0, 0.0])
            st[1] += 1
            if st[0] == "half_open" or st[1] >= self.failure_threshold:
                st[0] = "open"
                st[2] = now

    def state(self, key: str) -> str:
        with self._lock:
            st = self._keys.get(key)
            return "closed" if st is None else st[0]

    def quarantined(self) -> list:
        """Keys currently open or half-open (for reports/metrics)."""
        with self._lock:
            return sorted(k for k, st in self._keys.items() if st[0] != "closed")


@dataclass(frozen=True)
class ServicePolicy:
    """Everything the service's robustness behavior is parameterized by."""

    #: Bounded job-queue capacity; a full queue sheds new jobs with a typed
    #: :class:`~repro.errors.ServiceOverloadError` (admission control).
    max_queue_depth: int = 16
    #: Deadline (seconds, queue wait included) applied to jobs submitted
    #: without one; ``None`` = no default deadline.
    default_deadline: float | None = None
    #: Retry behavior for transient failures.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-tenant token-bucket refill rate (jobs/second); ``None`` disables
    #: quotas entirely.
    quota_rate: float | None = None
    #: Per-tenant token-bucket burst depth.
    quota_burst: float = 8.0
    #: Consecutive failures per structure fingerprint before its circuit
    #: opens, and how long it stays open.
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0
    #: Queue-level dynamic batching (:class:`~repro.serve.BatchPolicy`);
    #: ``None`` serves every job as an independent single solve.
    batch: BatchPolicy | None = None

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ReproError("policy: max_queue_depth must be >= 1")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ReproError("policy: default_deadline must be > 0")
        if self.quota_rate is not None and self.quota_rate < 0:
            raise ReproError("policy: quota_rate must be >= 0")
        if self.quota_burst < 1:
            raise ReproError("policy: quota_burst must be >= 1")
