"""``SolverService``: the fault-tolerant async solve-serving runtime.

The paper's solvers are amortized-compile engines — setup once, solve many
— and this module is the "solve many, for many tenants" layer (ROADMAP
item 1): a long-running asyncio service that accepts solve jobs, runs them
on a thread worker pool over one process-wide structure-keyed
:class:`~repro.solvers.ProgramCache`, and is robust by construction:

- **Admission control** — a bounded tenant-fair queue
  (:class:`~repro.serve.FairQueue`); a full queue, a draining service, or
  a quarantined structure sheds the job with a typed
  :class:`~repro.errors.ServiceOverloadError` instead of queueing without
  bound.  Memory is the scarce resource (the Citadel IPU microbenchmarks:
  everything lives in SRAM) — a bounded queue over a bounded LRU of
  compiled programs keeps the service's footprint flat under any load.
- **Per-tenant quotas** — a token bucket per tenant
  (:class:`~repro.serve.TokenBucket`); an exhausted bucket rejects with
  :class:`~repro.errors.QuotaExceededError` and a ``retry_after`` hint.
- **Deadlines** — per-job wall-clock budgets (queue wait included),
  enforced cooperatively mid-solve through ``solve(max_wall_seconds=...)``
  — the PR 8 progress-hook seam — surfacing
  :class:`~repro.errors.JobTimeoutError` with the partial
  :class:`~repro.solvers.SolveStats`.
- **Retries** — transient failures (breakdown / divergence / stagnation,
  the PR 4 hierarchy) retry on a seeded exponential-backoff schedule with
  an escalated or fallback config
  (:class:`~repro.serve.RetryPolicy`); fault-injected jobs ride the
  existing resilience rollback path *first* and only reach the retry
  ladder if recovery fails.
- **Circuit breaking** — structures whose solves repeatedly fail are
  quarantined per fingerprint (:class:`~repro.serve.CircuitBreaker`).
- **Graceful drain** — ``stop()`` stops admitting, finishes queued and
  in-flight work, then tears down the pool; every accepted job's future
  resolves exactly once, whatever happens.

Solves execute in a :class:`~concurrent.futures.ThreadPoolExecutor` so the
event loop stays responsive for admission and shutdown while numerics run.
Jobs that share a structure fingerprint serialize on a per-fingerprint
lock (cache entries are stateful — :attr:`~repro.solvers.CompiledSolve`);
distinct structures run concurrently.

Serving is *observational*: a served result is bit-identical — solution,
residual history, cycles — to a direct :func:`repro.solvers.solve` call
with the same arguments (and, after retries, with the recorded
``effective_config``).  ``benchmarks/bench_serve_load.py`` enforces this
under deliberate overload.  See ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import (
    DivergenceError,
    JobTimeoutError,
    QuotaExceededError,
    ReproError,
    ServiceOverloadError,
    SolverBreakdownError,
)
from repro.serve.policy import CircuitBreaker, ServicePolicy, TokenBucket
from repro.serve.queue import FairQueue, Job, JobResult
from repro.solvers.session import ProgramCache, fingerprint_solve

__all__ = ["SolverService"]


class SolverService:
    """A long-running async solve service over a shared compile cache.

    Usage::

        policy = ServicePolicy(max_queue_depth=8, quota_rate=50.0)
        async with SolverService(policy=policy, workers=2) as svc:
            result = await svc.solve(matrix, b, "cg", tenant="acme",
                                     deadline=2.0)
            x = result.result.x

    ``submit`` returns the :class:`~repro.serve.Job` immediately (its
    ``future`` delivers a :class:`~repro.serve.JobResult` or a typed
    :class:`~repro.errors.ReproError`); ``solve`` is submit-and-await.
    """

    def __init__(self, *, policy: ServicePolicy | None = None, workers: int = 2,
                 cache: ProgramCache | None = None, metrics=None):
        if workers < 1:
            raise ReproError("SolverService needs at least 1 worker")
        self.policy = policy if policy is not None else ServicePolicy()
        self.workers = int(workers)
        #: The process-wide structure-keyed compile cache shared by every
        #: tenant (thread-safe since this PR).
        self.cache = cache if cache is not None else ProgramCache()
        self.metrics = metrics  # MetricsRegistry or None
        self.breaker = CircuitBreaker(self.policy.breaker_threshold,
                                      self.policy.breaker_cooldown)
        self._buckets: dict[str, TokenBucket] = {}
        self._queue = FairQueue(self.policy.max_queue_depth)
        self._struct_locks: dict[str, threading.Lock] = {}
        self._struct_locks_guard = threading.Lock()

        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._worker_tasks: list = []
        self._items: asyncio.Semaphore | None = None
        self._idle: asyncio.Event | None = None
        self._running = False
        self._draining = False

        # Accounting (event-loop-confined): the no-lost-no-duplicated-job
        # ledger the overload tests check.
        self.counts = {
            "submitted": 0, "accepted": 0, "rejected": 0,
            "ok": 0, "failed": 0, "timed_out": 0, "cancelled": 0,
            "retries": 0, "worker_faults": 0,
        }
        self.rejections: dict[str, int] = {}
        self._in_flight = 0

    # -- lifecycle ----------------------------------------------------------------------

    async def start(self) -> "SolverService":
        if self._running:
            raise ReproError("service already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve")
        self._items = asyncio.Semaphore(0)
        self._idle = asyncio.Event()
        self._idle.set()
        self._worker_tasks = [
            self._loop.create_task(self._worker(i), name=f"repro-serve-worker-{i}")
            for i in range(self.workers)
        ]
        self._running = True
        self._draining = False
        return self

    async def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down: stop admitting, then drain or shed the backlog.

        ``drain=True`` (graceful): queued and in-flight jobs finish
        normally.  ``drain=False``: queued jobs fail immediately with
        ``ServiceOverloadError(reason="shutting_down")``; in-flight solves
        still run to completion (worker threads cannot be interrupted
        safely — deadlines are the tool for bounding them).  Either way
        every accepted job's future is resolved before this returns.
        """
        if not self._running:
            return
        self._draining = True
        if not drain:
            for job in self._queue.drain():
                self.counts["cancelled"] += 1
                job.fail(ServiceOverloadError(
                    "service shutting down", reason="shutting_down"))
                self._job_done(job, "cancelled")
        self._gauges()
        if self._pending() == 0:
            self._idle.set()
        await asyncio.wait_for(self._idle.wait(), timeout)
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        self._executor.shutdown(wait=True)
        self._running = False

    async def __aenter__(self) -> "SolverService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop(drain=True)

    @property
    def running(self) -> bool:
        return self._running

    # -- submission ---------------------------------------------------------------------

    def submit(self, matrix, b, config, *, tenant: str = "default",
               deadline: float | None = None, seed: int = 0, x0=None,
               inject_faults=None, resilience=None, **solve_kwargs) -> Job:
        """Admit one solve job; returns it with a live ``future``.

        Raises the typed admission errors **synchronously**:
        :class:`~repro.errors.ServiceOverloadError` (queue full, draining,
        or circuit open) and :class:`~repro.errors.QuotaExceededError`
        (tenant out of tokens).  ``deadline`` is wall-clock seconds from
        now, queue wait included.
        """
        self.counts["submitted"] += 1
        now = self._now()
        if not self._running or self._draining:
            self._reject("shutting_down")
            raise ServiceOverloadError("service is not accepting jobs",
                                       reason="shutting_down")
        if self.policy.quota_rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.policy.quota_rate, self.policy.quota_burst)
            if not bucket.try_acquire(now):
                self._reject("quota")
                raise QuotaExceededError(tenant=tenant,
                                         retry_after=bucket.retry_after())

        if deadline is None:
            deadline = self.policy.default_deadline
        if deadline is not None and deadline <= 0:
            raise ReproError(f"deadline must be > 0, got {deadline!r}")

        job = Job(
            matrix=matrix, b=b, config=config, tenant=tenant,
            deadline=None if deadline is None else now + float(deadline),
            seed=int(seed), x0=x0, inject_faults=inject_faults,
            resilience=resilience, solve_kwargs=dict(solve_kwargs),
        )
        job.fingerprint = self._fingerprint(job, config)
        job.retry_delays = self.policy.retry.schedule(job.seed)
        job.submitted_at = now
        job.future = self._loop.create_future()

        if not self.breaker.allow(job.fingerprint, now):
            self._reject("circuit_open")
            raise ServiceOverloadError(
                f"structure {job.fingerprint[:12]} is quarantined "
                f"(circuit breaker open)", reason="circuit_open")
        try:
            self._queue.push(job)
        except ServiceOverloadError:
            self._reject("queue_full")
            raise
        self.counts["accepted"] += 1
        self._idle.clear()
        self._items.release()
        self._gauges()
        return job

    async def solve(self, matrix, b, config, **kwargs) -> JobResult:
        """Submit and await: returns the :class:`~repro.serve.JobResult`
        or raises the job's typed error."""
        return await self.submit(matrix, b, config, **kwargs).future

    # -- internals ----------------------------------------------------------------------

    def _now(self) -> float:
        return self._loop.time() if self._loop is not None else time.monotonic()

    def _pending(self) -> int:
        return len(self._queue) + self._in_flight

    def _reject(self, reason: str) -> None:
        self.counts["rejected"] += 1
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_rejections_total", "jobs shed at admission"
            ).inc(1, reason=reason)

    def _gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_serve_queue_depth", "jobs waiting in the fair queue"
            ).set(len(self._queue))
            self.metrics.gauge(
                "repro_serve_in_flight", "jobs dispatched to the worker pool"
            ).set(self._in_flight)

    def _fingerprint(self, job: Job, config) -> str:
        """The structure key solve() will use for this job's cache entry —
        also the circuit-breaker key and the execution-serialization key."""
        kw = job.solve_kwargs
        b = np.asarray(job.b)
        return fingerprint_solve(
            job.matrix, config,
            num_ipus=kw.get("num_ipus", 1),
            tiles_per_ipu=kw.get("tiles_per_ipu", 16),
            num_tiles=kw.get("num_tiles"),
            grid_dims=kw.get("grid_dims"),
            blockwise_halo=kw.get("blockwise_halo", True),
            optimize=kw.get("optimize", True),
            backend=kw.get("backend", "sim"),
            resilient=job.resilience is not None,
            batch=b.shape[0] if b.ndim == 2 else 1,
        )

    def _struct_lock(self, fingerprint: str) -> threading.Lock:
        with self._struct_locks_guard:
            lock = self._struct_locks.get(fingerprint)
            if lock is None:
                lock = self._struct_locks[fingerprint] = threading.Lock()
            return lock

    def _job_done(self, job: Job, outcome: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_jobs_total", "finished jobs by outcome"
            ).inc(1, tenant=job.tenant, outcome=outcome)
            total = self._now() - job.submitted_at
            self.metrics.histogram(
                "repro_serve_job_seconds", "admission-to-completion latency"
            ).observe(total, tenant=job.tenant)
        if self._draining and self._pending() == 0:
            self._idle.set()

    async def _worker(self, wid: int) -> None:
        while True:
            await self._items.acquire()
            job = self._queue.pop()
            self._gauges()
            if job is None:  # queue was shed under us (non-drain stop)
                continue
            self._in_flight += 1
            self._gauges()
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                # Shutdown while holding a job: resolve it, then exit.
                self.counts["cancelled"] += 1
                job.fail(ServiceOverloadError(
                    "service shutting down", reason="shutting_down"))
                self._in_flight -= 1
                self._job_done(job, "cancelled")
                raise
            except BaseException as exc:  # the "zero worker crashes" ledger
                self.counts["worker_faults"] += 1
                self.counts["failed"] += 1
                job.fail(exc if isinstance(exc, ReproError)
                         else ReproError(f"worker fault: {exc!r}"))
                self._in_flight -= 1
                self._job_done(job, "failed")
            else:
                self._in_flight -= 1
                self._job_done(job, self._outcome_of(job))
            self._gauges()

    @staticmethod
    def _outcome_of(job: Job) -> str:
        fut = job.future
        if fut is None or not fut.done() or fut.cancelled():
            return "cancelled"
        exc = fut.exception()
        if exc is None:
            return "ok"
        return "timed_out" if isinstance(exc, JobTimeoutError) else "failed"

    async def _run_job(self, job: Job) -> None:
        """The attempt loop: dispatch, classify, back off, retry."""
        retry = self.policy.retry
        job.started_at = self._now()
        while True:
            remaining = None
            if job.deadline is not None:
                remaining = job.deadline - self._now()
                if remaining <= 0:
                    self.counts["timed_out"] += 1
                    job.fail(JobTimeoutError(
                        "deadline expired before dispatch",
                        iteration=0,
                        wall_seconds=self._now() - job.submitted_at,
                        budget_seconds=job.deadline - job.submitted_at,
                    ))
                    return

            config = retry.effective_config(job.config, job.attempt)
            fingerprint = (job.fingerprint if job.attempt == 0
                           else self._fingerprint(job, config))
            t0 = time.perf_counter()
            failure: str | None = None
            error: ReproError | None = None
            result = None
            try:
                result = await self._loop.run_in_executor(
                    self._executor, self._solve_attempt,
                    job, config, fingerprint, remaining)
                failure = result.stats.failure
            except JobTimeoutError as exc:
                job.exec_seconds += time.perf_counter() - t0
                self.counts["timed_out"] += 1
                job.fail(exc)
                return
            except SolverBreakdownError as exc:  # raise_on_failure configs
                failure, error = "breakdown", exc
            except DivergenceError as exc:
                failure, error = (exc.reason or "divergence"), exc
            job.exec_seconds += time.perf_counter() - t0

            if failure is None:
                self.breaker.record_success(job.fingerprint)
                self.counts["ok"] += 1
                now = self._now()
                job.resolve(JobResult(
                    job_id=job.id, tenant=job.tenant, result=result,
                    attempts=job.attempt + 1, effective_config=config,
                    queue_seconds=job.started_at - job.submitted_at,
                    exec_seconds=job.exec_seconds,
                    total_seconds=now - job.submitted_at,
                ))
                return

            # The structure produced a failed solve — feed the breaker
            # whether or not this particular job still has retries left.
            self.breaker.record_failure(job.fingerprint, self._now())
            out_of_attempts = job.attempt + 1 >= retry.max_attempts
            if not retry.is_transient(failure) or out_of_attempts:
                self.counts["failed"] += 1
                if error is None:
                    error = self._failure_error(job, failure, result)
                job.fail(error)
                return

            delay = (job.retry_delays[job.attempt]
                     if job.attempt < len(job.retry_delays) else 0.0)
            if remaining is not None and delay >= remaining:
                self.counts["timed_out"] += 1
                job.fail(JobTimeoutError(
                    f"backoff ({delay:.3f}s) would overrun the deadline",
                    iteration=result.stats.total_iterations if result else None,
                    wall_seconds=self._now() - job.submitted_at,
                    budget_seconds=job.deadline - job.submitted_at,
                    stats=result.stats if result is not None else None,
                ))
                return
            self.counts["retries"] += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_serve_retries_total", "retry attempts dispatched"
                ).inc(1, tenant=job.tenant)
            job.attempt += 1
            await asyncio.sleep(delay)

    def _solve_attempt(self, job: Job, config, fingerprint: str,
                       remaining: float | None):
        """One attempt, on a worker thread.  Holds the structure lock:
        cache entries are stateful, so two jobs sharing a fingerprint must
        not prepare/run the same entry concurrently; distinct structures
        proceed in parallel."""
        from repro.solvers.api import solve

        with self._struct_lock(fingerprint):
            return solve(
                job.matrix, job.b, config,
                x0=job.x0,
                cache=self.cache,
                max_wall_seconds=remaining,
                inject_faults=job.inject_faults,
                resilience=job.resilience,
                **job.solve_kwargs,
            )

    @staticmethod
    def _failure_error(job: Job, failure: str, result) -> ReproError:
        """Map a terminal SolveResult.failure to its typed error (same
        mapping as ``ResilienceConfig.raise_on_failure``)."""
        iterations = result.stats.total_iterations if result is not None else None
        if failure == "breakdown":
            exc: ReproError = SolverBreakdownError(
                f"job {job.id}: Krylov breakdown after {job.attempt + 1} attempt(s)",
                iteration=iterations)
        else:
            exc = DivergenceError(
                f"job {job.id}: failed ({failure}) after {job.attempt + 1} attempt(s)",
                reason=failure)
        exc.last_result = result  # the final attempt's SolveResult, if any
        return exc

    # -- introspection ------------------------------------------------------------------

    def accounting(self) -> dict:
        """The job ledger: every accepted job is queued, in flight, or
        finished in exactly one outcome bucket — nothing lost, nothing
        duplicated."""
        c = dict(self.counts)
        c["queued"] = len(self._queue)
        c["in_flight"] = self._in_flight
        c["rejections"] = dict(self.rejections)
        c["balanced"] = (
            c["submitted"] == c["accepted"] + c["rejected"]
            and c["accepted"] == (c["ok"] + c["failed"] + c["timed_out"]
                                  + c["cancelled"] + c["queued"] + c["in_flight"])
        )
        return c

    def __repr__(self):
        state = ("draining" if self._draining else
                 "running" if self._running else "stopped")
        return (f"SolverService({state}, workers={self.workers}, "
                f"queue={len(self._queue)}/{self.policy.max_queue_depth}, "
                f"in_flight={self._in_flight}, cache={self.cache!r})")
