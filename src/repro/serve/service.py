"""``SolverService``: the fault-tolerant async solve-serving runtime.

The paper's solvers are amortized-compile engines — setup once, solve many
— and this module is the "solve many, for many tenants" layer (ROADMAP
item 1): a long-running asyncio service that accepts solve jobs, runs them
on a thread worker pool over one process-wide structure-keyed
:class:`~repro.solvers.ProgramCache`, and is robust by construction:

- **Admission control** — a bounded tenant-fair queue
  (:class:`~repro.serve.FairQueue`); a full queue, a draining service, or
  a quarantined structure sheds the job with a typed
  :class:`~repro.errors.ServiceOverloadError` instead of queueing without
  bound.  Memory is the scarce resource (the Citadel IPU microbenchmarks:
  everything lives in SRAM) — a bounded queue over a bounded LRU of
  compiled programs keeps the service's footprint flat under any load.
- **Per-tenant quotas** — a token bucket per tenant
  (:class:`~repro.serve.TokenBucket`); an exhausted bucket rejects with
  :class:`~repro.errors.QuotaExceededError` and a ``retry_after`` hint.
- **Deadlines** — per-job wall-clock budgets (queue wait included),
  enforced cooperatively mid-solve through ``solve(max_wall_seconds=...)``
  — the PR 8 progress-hook seam — surfacing
  :class:`~repro.errors.JobTimeoutError` with the partial
  :class:`~repro.solvers.SolveStats`.
- **Retries** — transient failures (breakdown / divergence / stagnation,
  the PR 4 hierarchy) retry on a seeded exponential-backoff schedule with
  an escalated or fallback config
  (:class:`~repro.serve.RetryPolicy`); fault-injected jobs ride the
  existing resilience rollback path *first* and only reach the retry
  ladder if recovery fails.
- **Circuit breaking** — structures whose solves repeatedly fail are
  quarantined per fingerprint (:class:`~repro.serve.CircuitBreaker`).
- **Graceful drain** — ``stop()`` stops admitting, finishes queued and
  in-flight work, then tears down the pool; every accepted job's future
  resolves exactly once, whatever happens.

- **Dynamic batching** — when :class:`~repro.serve.BatchPolicy` is set,
  compatible queued jobs (same structure fingerprint, batch-capable f32
  cg/bicgstab config) coalesce into one stacked multi-RHS solve through
  the shared cache — one halo exchange per iteration for the whole batch
  (the PR 7 axis, now formed at the queue).  Per-job deadlines, retries,
  and the accounting ledger all survive batching, and every column's
  result stays bit-identical to serving that job alone.

Solves execute in a :class:`~concurrent.futures.ThreadPoolExecutor` so the
event loop stays responsive for admission and shutdown while numerics run.
Jobs that share a structure fingerprint serialize on a per-fingerprint
lock (cache entries are stateful — :attr:`~repro.solvers.CompiledSolve`);
distinct structures run concurrently.

Serving is *observational*: a served result is bit-identical — solution,
residual history, cycles — to a direct :func:`repro.solvers.solve` call
with the same arguments (and, after retries, with the recorded
``effective_config``).  ``benchmarks/bench_serve_load.py`` enforces this
under deliberate overload.  See ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import (
    DivergenceError,
    JobTimeoutError,
    QuotaExceededError,
    ReproError,
    ServiceOverloadError,
    SolverBreakdownError,
)
from repro.serve.batching import (
    BatchAssembler,
    batchable_solve_kwargs,
    config_supports_batch,
)
from repro.serve.policy import CircuitBreaker, ServicePolicy, TokenBucket
from repro.serve.queue import FairQueue, Job, JobResult
from repro.solvers.session import ProgramCache, batch_bucket, fingerprint_solve

__all__ = ["SolverService"]


class SolverService:
    """A long-running async solve service over a shared compile cache.

    Usage::

        policy = ServicePolicy(max_queue_depth=8, quota_rate=50.0)
        async with SolverService(policy=policy, workers=2) as svc:
            result = await svc.solve(matrix, b, "cg", tenant="acme",
                                     deadline=2.0)
            x = result.result.x

    ``submit`` returns the :class:`~repro.serve.Job` immediately (its
    ``future`` delivers a :class:`~repro.serve.JobResult` or a typed
    :class:`~repro.errors.ReproError`); ``solve`` is submit-and-await.
    """

    def __init__(self, *, policy: ServicePolicy | None = None, workers: int = 2,
                 cache: ProgramCache | None = None, metrics=None):
        if workers < 1:
            raise ReproError("SolverService needs at least 1 worker")
        self.policy = policy if policy is not None else ServicePolicy()
        self.workers = int(workers)
        #: The process-wide structure-keyed compile cache shared by every
        #: tenant (thread-safe since this PR).
        self.cache = cache if cache is not None else ProgramCache()
        self.metrics = metrics  # MetricsRegistry or None
        self.breaker = CircuitBreaker(self.policy.breaker_threshold,
                                      self.policy.breaker_cooldown)
        self._buckets: dict[str, TokenBucket] = {}
        self._queue = FairQueue(self.policy.max_queue_depth)
        self._struct_locks: dict[str, threading.Lock] = {}
        self._struct_locks_guard = threading.Lock()
        bp = self.policy.batch
        self._assembler = (BatchAssembler(bp)
                           if bp is not None and bp.enabled else None)

        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._worker_tasks: list = []
        self._requeue_tasks: set = set()
        self._items: asyncio.Semaphore | None = None
        self._idle: asyncio.Event | None = None
        self._running = False
        self._draining = False

        # Accounting: the no-lost-no-duplicated-job ledger the overload
        # tests check.  One state lock makes its compound transitions
        # (queue depth + in-flight + outcome counters) atomic, so
        # ``accounting()``/``pending()``/the gauges can never observe a
        # torn depth — e.g. a job popped from the queue but not yet
        # counted in flight.
        self._state_lock = threading.Lock()
        self.counts = {
            "submitted": 0, "accepted": 0, "rejected": 0,
            "ok": 0, "failed": 0, "timed_out": 0, "cancelled": 0,
            "retries": 0, "worker_faults": 0,
            "batches": 0, "coalesced": 0, "redispatched": 0,
        }
        self.rejections: dict[str, int] = {}
        self._in_flight = 0

    # -- lifecycle ----------------------------------------------------------------------

    async def start(self) -> "SolverService":
        if self._running:
            raise ReproError("service already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve")
        self._items = asyncio.Semaphore(0)
        self._idle = asyncio.Event()
        self._idle.set()
        self._worker_tasks = [
            self._loop.create_task(self._worker(i), name=f"repro-serve-worker-{i}")
            for i in range(self.workers)
        ]
        self._running = True
        self._draining = False
        return self

    async def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down: stop admitting, then drain or shed the backlog.

        ``drain=True`` (graceful): queued and in-flight jobs finish
        normally.  ``drain=False``: queued jobs fail immediately with
        ``ServiceOverloadError(reason="shutting_down")``; in-flight solves
        still run to completion (worker threads cannot be interrupted
        safely — deadlines are the tool for bounding them).  Either way
        every accepted job's future is resolved before this returns.
        """
        if not self._running:
            return
        self._draining = True
        if not drain:
            with self._state_lock:
                shed = self._queue.drain()
                self.counts["cancelled"] += len(shed)
            for job in shed:
                job.fail(ServiceOverloadError(
                    "service shutting down", reason="shutting_down"))
                self._job_done(job, "cancelled")
        self._gauges()
        if self._pending() == 0:
            self._idle.set()
        await asyncio.wait_for(self._idle.wait(), timeout)
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        self._executor.shutdown(wait=True)
        self._running = False

    async def __aenter__(self) -> "SolverService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop(drain=True)

    @property
    def running(self) -> bool:
        return self._running

    # -- submission ---------------------------------------------------------------------

    def submit(self, matrix, b, config, *, tenant: str = "default",
               deadline: float | None = None, seed: int = 0, x0=None,
               inject_faults=None, resilience=None, batchable: bool = True,
               **solve_kwargs) -> Job:
        """Admit one solve job; returns it with a live ``future``.

        Raises the typed admission errors **synchronously**:
        :class:`~repro.errors.ReproError` (malformed ``b``/``x0``/
        ``deadline`` — caught here instead of deep in a worker),
        :class:`~repro.errors.ServiceOverloadError` (queue full, draining,
        or circuit open) and :class:`~repro.errors.QuotaExceededError`
        (tenant out of tokens).  ``deadline`` is wall-clock seconds from
        now, queue wait included.  ``batchable=False`` opts the job out of
        queue-level batching (it still shares the compile cache; it just
        never shares a dispatch).
        """
        with self._state_lock:
            self.counts["submitted"] += 1
        now = self._now()
        if not self._running or self._draining:
            self._reject("shutting_down")
            raise ServiceOverloadError("service is not accepting jobs",
                                       reason="shutting_down")
        try:
            self._validate_arrays(matrix, b, x0)
            if deadline is None:
                deadline = self.policy.default_deadline
            if deadline is not None and deadline <= 0:
                raise ReproError(f"deadline must be > 0, got {deadline!r}")
        except ReproError:
            # Caller errors are *rejections* in the ledger — they must not
            # burn quota tokens, and ``balanced`` must keep holding.
            self._reject("invalid_argument")
            raise
        if self.policy.quota_rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.policy.quota_rate, self.policy.quota_burst)
            if not bucket.try_acquire(now):
                self._reject("quota")
                raise QuotaExceededError(tenant=tenant,
                                         retry_after=bucket.retry_after())

        job = Job(
            matrix=matrix, b=b, config=config, tenant=tenant,
            deadline=None if deadline is None else now + float(deadline),
            seed=int(seed), x0=x0, inject_faults=inject_faults,
            resilience=resilience, solve_kwargs=dict(solve_kwargs),
            batchable=bool(batchable),
        )
        job.fingerprint = self._fingerprint(job, config)
        job.batch_key = (job.fingerprint
                         if self._batch_eligible(job, config) else None)
        job.retry_delays = self.policy.retry.schedule(job.seed)
        job.submitted_at = now
        job.future = self._loop.create_future()

        if not self.breaker.allow(job.fingerprint, now):
            self._reject("circuit_open")
            raise ServiceOverloadError(
                f"structure {job.fingerprint[:12]} is quarantined "
                f"(circuit breaker open)", reason="circuit_open")
        try:
            with self._state_lock:
                self._queue.push(job)
                self.counts["accepted"] += 1
        except ServiceOverloadError:
            self._reject("queue_full")
            raise
        self._idle.clear()
        self._items.release()
        self._gauges()
        return job

    @staticmethod
    def _validate_arrays(matrix, b, x0) -> None:
        """Admission-time validation of the right-hand side(s) and guess.

        A malformed ``b`` used to sail through admission and surface deep
        in a worker as an untyped shape/dtype error; checking here rejects
        it synchronously with a typed :class:`~repro.errors.ReproError`
        (the existing exit-code mapping) before it consumes quota or queue
        capacity.
        """
        b_arr = np.asarray(b)
        if b_arr.ndim not in (1, 2):
            raise ReproError(
                f"b must be 1-D (n,) or batched 2-D (batch, n), "
                f"got shape {b_arr.shape}")
        if b_arr.ndim == 2 and b_arr.shape[0] < 1:
            raise ReproError("batched b needs at least one right-hand side")
        n = int(matrix.n)
        if b_arr.shape[-1] != n:
            raise ReproError(
                f"b has {b_arr.shape[-1]} entries per right-hand side "
                f"but the matrix is {n}x{n}")
        if b_arr.dtype.kind not in "fiu":
            raise ReproError(
                f"b must be real-numeric, got dtype {b_arr.dtype}")
        if b_arr.dtype.kind == "f" and not np.isfinite(b_arr).all():
            raise ReproError("b contains non-finite values")
        if x0 is not None:
            x0_arr = np.asarray(x0)
            if x0_arr.shape != b_arr.shape:
                raise ReproError(
                    f"x0 shape {x0_arr.shape} must match b shape {b_arr.shape}")
            if x0_arr.dtype.kind not in "fiu":
                raise ReproError(
                    f"x0 must be real-numeric, got dtype {x0_arr.dtype}")
            if x0_arr.dtype.kind == "f" and not np.isfinite(x0_arr).all():
                raise ReproError("x0 contains non-finite values")

    async def solve(self, matrix, b, config, **kwargs) -> JobResult:
        """Submit and await: returns the :class:`~repro.serve.JobResult`
        or raises the job's typed error."""
        return await self.submit(matrix, b, config, **kwargs).future

    # -- internals ----------------------------------------------------------------------

    def _now(self) -> float:
        return self._loop.time() if self._loop is not None else time.monotonic()

    def pending(self) -> int:
        """Jobs accepted but not yet finished (queued + in flight), read
        atomically under the state lock — a reader can never catch a job
        between the queue and the in-flight account."""
        with self._state_lock:
            return len(self._queue) + self._in_flight

    def _pending(self) -> int:
        return self.pending()

    def _reject(self, reason: str) -> None:
        with self._state_lock:
            self.counts["rejected"] += 1
            self.rejections[reason] = self.rejections.get(reason, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_rejections_total", "jobs shed at admission"
            ).inc(1, reason=reason)

    def _gauges(self) -> None:
        if self.metrics is None:
            return
        with self._state_lock:
            depth, in_flight = len(self._queue), self._in_flight
        self.metrics.gauge(
            "repro_serve_queue_depth", "jobs waiting in the fair queue"
        ).set(depth)
        self.metrics.gauge(
            "repro_serve_in_flight", "jobs dispatched to the worker pool"
        ).set(in_flight)

    def _observe_batch(self, width: int) -> None:
        if self.metrics is not None:
            self.metrics.histogram(
                "repro_serve_batch_size", "coalesced jobs per dispatched solve"
            ).observe(width)

    def _fingerprint(self, job: Job, config, batch: int | None = None) -> str:
        """The structure key solve() will use for this job's cache entry —
        also the circuit-breaker key and the execution-serialization key.
        ``batch`` overrides the RHS width (the batched dispatch keys on the
        padded bucket width, not the job's own 1-D shape)."""
        kw = job.solve_kwargs
        if batch is None:
            b = np.asarray(job.b)
            batch = b.shape[0] if b.ndim == 2 else 1
        return fingerprint_solve(
            job.matrix, config,
            num_ipus=kw.get("num_ipus", 1),
            tiles_per_ipu=kw.get("tiles_per_ipu", 16),
            num_tiles=kw.get("num_tiles"),
            grid_dims=kw.get("grid_dims"),
            blockwise_halo=kw.get("blockwise_halo", True),
            optimize=kw.get("optimize", True),
            backend=kw.get("backend", "sim"),
            resilient=job.resilience is not None,
            batch=int(batch),
        )

    def _batch_eligible(self, job: Job, config) -> bool:
        """Static batch eligibility (the PR 7 multi-RHS gate, decided at
        admission / re-queue): batching on, job opted in, a single 1-D
        right-hand side, no fault/resilience state, purely structural
        solve kwargs, and a config whose whole tree rides the f32 batch
        axis."""
        if self._assembler is None or not job.batchable:
            return False
        if np.asarray(job.b).ndim != 1:
            return False
        if job.inject_faults is not None or job.resilience is not None:
            return False
        if not batchable_solve_kwargs(job.solve_kwargs):
            return False
        return config_supports_batch(config)

    def _struct_lock(self, fingerprint: str) -> threading.Lock:
        with self._struct_locks_guard:
            lock = self._struct_locks.get(fingerprint)
            if lock is None:
                lock = self._struct_locks[fingerprint] = threading.Lock()
            return lock

    def _job_done(self, job: Job, outcome: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_jobs_total", "finished jobs by outcome"
            ).inc(1, tenant=job.tenant, outcome=outcome)
            total = self._now() - job.submitted_at
            self.metrics.histogram(
                "repro_serve_job_seconds", "admission-to-completion latency"
            ).observe(total, tenant=job.tenant)
        if self._draining and self._pending() == 0:
            self._idle.set()

    async def _worker(self, wid: int) -> None:
        while True:
            await self._items.acquire()
            with self._state_lock:
                # Pop and count in flight in one step: the ledger never
                # sees the job in neither account.
                job = self._queue.pop()
                if job is not None:
                    self._in_flight += 1
            self._gauges()
            if job is None:
                # Stale permit: the queue was shed under us (non-drain
                # stop), or a batch sweep took the job this permit was
                # released for.
                continue
            jobs = [job]
            if self._assembler is not None and job.batch_key is not None:
                taken: list = []

                def _take(limit: int, _key=job.batch_key) -> list:
                    with self._state_lock:
                        extra = self._queue.take_batchable(_key, limit)
                        self._in_flight += len(extra)
                    taken.extend(extra)
                    self._gauges()
                    return extra

                try:
                    jobs = await self._assembler.assemble(job, _take)
                except asyncio.CancelledError:
                    for held in [job, *taken]:
                        self._finish(held, "cancelled",
                                     error=ServiceOverloadError(
                                         "service shutting down",
                                         reason="shutting_down"))
                    raise
            if len(jobs) > 1:
                # _run_batch is exception-safe: every job it is handed is
                # resolved or re-queued before it returns (or re-raises
                # cancellation).
                await self._run_batch(jobs)
                continue
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                # Shutdown while holding a job: resolve it, then exit.
                self._finish(job, "cancelled", error=ServiceOverloadError(
                    "service shutting down", reason="shutting_down"))
                raise
            except BaseException as exc:  # the "zero worker crashes" ledger
                with self._state_lock:
                    self.counts["worker_faults"] += 1
                self._finish(job, "failed",
                             error=exc if isinstance(exc, ReproError)
                             else ReproError(f"worker fault: {exc!r}"))

    def _finish(self, job: Job, outcome: str, *, result=None,
                error: BaseException | None = None) -> None:
        """Retire one dispatched job: resolve its future exactly once and
        move its ledger entry from in-flight to the outcome bucket in one
        locked step."""
        if error is not None:
            job.fail(error)
        else:
            job.resolve(result)
        with self._state_lock:
            self.counts[outcome] += 1
            self._in_flight -= 1
        self._job_done(job, outcome)
        self._gauges()

    async def _run_job(self, job: Job) -> None:
        """The attempt loop: dispatch, classify, back off, retry."""
        retry = self.policy.retry
        job.started_at = self._now()
        while True:
            remaining = None
            if job.deadline is not None:
                remaining = job.deadline - self._now()
                if remaining <= 0:
                    self._finish(job, "timed_out", error=JobTimeoutError(
                        "deadline expired before dispatch",
                        iteration=0,
                        wall_seconds=self._now() - job.submitted_at,
                        budget_seconds=job.deadline - job.submitted_at,
                    ))
                    return

            config = retry.effective_config(job.config, job.attempt)
            fingerprint = (job.fingerprint if job.attempt == 0
                           else self._fingerprint(job, config))
            self._observe_batch(1)
            t0 = time.perf_counter()
            failure: str | None = None
            error: ReproError | None = None
            result = None
            try:
                result = await self._loop.run_in_executor(
                    self._executor, self._solve_attempt,
                    job, config, fingerprint, remaining)
                failure = result.stats.failure
            except JobTimeoutError as exc:
                job.exec_seconds += time.perf_counter() - t0
                self._finish(job, "timed_out", error=exc)
                return
            except SolverBreakdownError as exc:  # raise_on_failure configs
                failure, error = "breakdown", exc
            except DivergenceError as exc:
                failure, error = (exc.reason or "divergence"), exc
            job.exec_seconds += time.perf_counter() - t0

            if failure is None:
                self.breaker.record_success(job.fingerprint)
                now = self._now()
                self._finish(job, "ok", result=JobResult(
                    job_id=job.id, tenant=job.tenant, result=result,
                    attempts=job.attempt + 1, effective_config=config,
                    queue_seconds=job.started_at - job.submitted_at,
                    exec_seconds=job.exec_seconds,
                    total_seconds=now - job.submitted_at,
                ))
                return

            # The structure produced a failed solve — feed the breaker
            # whether or not this particular job still has retries left.
            self.breaker.record_failure(job.fingerprint, self._now())
            out_of_attempts = job.attempt + 1 >= retry.max_attempts
            if not retry.is_transient(failure) or out_of_attempts:
                if error is None:
                    error = self._failure_error(job, failure, result)
                self._finish(job, "failed", error=error)
                return

            delay = (job.retry_delays[job.attempt]
                     if job.attempt < len(job.retry_delays) else 0.0)
            if remaining is not None and delay >= remaining:
                self._finish(job, "timed_out", error=JobTimeoutError(
                    f"backoff ({delay:.3f}s) would overrun the deadline",
                    iteration=result.stats.total_iterations if result else None,
                    wall_seconds=self._now() - job.submitted_at,
                    budget_seconds=job.deadline - job.submitted_at,
                    stats=result.stats if result is not None else None,
                ))
                return
            with self._state_lock:
                self.counts["retries"] += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_serve_retries_total", "retry attempts dispatched"
                ).inc(1, tenant=job.tenant)
            job.attempt += 1
            await asyncio.sleep(delay)

    def _solve_attempt(self, job: Job, config, fingerprint: str,
                       remaining: float | None):
        """One attempt, on a worker thread.  Holds the structure lock:
        cache entries are stateful, so two jobs sharing a fingerprint must
        not prepare/run the same entry concurrently; distinct structures
        proceed in parallel."""
        from repro.solvers.api import solve

        with self._struct_lock(fingerprint):
            return solve(
                job.matrix, job.b, config,
                x0=job.x0,
                cache=self.cache,
                max_wall_seconds=remaining,
                inject_faults=job.inject_faults,
                resilience=job.resilience,
                **job.solve_kwargs,
            )

    # -- batched dispatch (docs/serving.md, "Dynamic batching") -------------------------

    async def _run_batch(self, jobs: list) -> None:
        """Serve one assembled batch, exception-safely.

        Every job handed in leaves here resolved or back in the queue;
        the worker loop never touches a batch again.  ``pending`` tracks
        the jobs this coroutine still owns, so an unexpected error (or
        cancellation) can retire exactly the unsettled ones.
        """
        pending = list(jobs)
        try:
            await self._dispatch_batch(pending)
        except asyncio.CancelledError:
            for job in list(pending):
                pending.remove(job)
                self._finish(job, "cancelled", error=ServiceOverloadError(
                    "service shutting down", reason="shutting_down"))
            raise
        except BaseException as exc:
            err = (exc if isinstance(exc, ReproError)
                   else ReproError(f"worker fault: {exc!r}"))
            for job in list(pending):
                pending.remove(job)
                with self._state_lock:
                    self.counts["worker_faults"] += 1
                self._finish(job, "failed", error=err)

    async def _dispatch_batch(self, pending: list) -> None:
        """One stacked solve for a coalesced batch, then scatter.

        Per-job semantics survive the shared dispatch:

        - the *earliest* deadline in the batch bounds the solve; when it
          fires, only the columns whose own budget is gone time out —
          survivors go straight back to the queue (``redispatched``, not a
          retry: their solve did not fail);
        - a per-column transient failure re-enters the retry ladder
          individually (and may re-batch at its escalated config);
        - each success resolves with the column's own stats, residual
          history, and failure classification — bit-identical to a direct
          single-RHS ``solve()`` of that job (the PR 7 masking guarantee).
        """
        retry = self.policy.retry
        pol = self.policy.batch
        now = self._now()

        for job in pending:
            if job.started_at is None:
                job.started_at = now
        # Shed columns whose budget is already gone — they would only trip
        # the batch's earliest-deadline bound at iteration 0.
        for job in list(pending):
            if job.deadline is not None and job.deadline - now <= 0:
                pending.remove(job)
                self._finish(job, "timed_out", error=JobTimeoutError(
                    "deadline expired before dispatch", iteration=0,
                    wall_seconds=now - job.submitted_at,
                    budget_seconds=job.deadline - job.submitted_at,
                ))
        if not pending:
            return
        if len(pending) == 1:
            # A batch of one is just a single job: run the classic attempt
            # ladder (its own program width, its own deadline re-checks).
            job = pending[0]
            await self._run_job(job)
            pending.remove(job)
            return

        live = list(pending)
        lead = live[0]
        width = len(live)
        config = retry.effective_config(lead.config, lead.attempt)
        bucket = batch_bucket(width, pol.max_batch) if pol.bucket else width
        fingerprint = self._fingerprint(lead, config, batch=bucket)
        deadlines = [j.deadline for j in live if j.deadline is not None]
        remaining = (min(deadlines) - now) if deadlines else None
        with self._state_lock:
            self.counts["batches"] += 1
            self.counts["coalesced"] += width - 1
        self._observe_batch(width)

        t0 = time.perf_counter()
        try:
            result = await self._loop.run_in_executor(
                self._executor, self._solve_batch_attempt,
                live, lead, config, fingerprint, remaining, bucket)
        except JobTimeoutError as exc:
            dt = time.perf_counter() - t0
            now = self._now()
            for job in list(pending):
                pending.remove(job)
                job.exec_seconds += dt
                if job.deadline is not None and job.deadline - now <= 0:
                    self._finish(job, "timed_out", error=JobTimeoutError(
                        f"deadline expired in a batched solve (width {width})",
                        iteration=exc.iteration,
                        wall_seconds=now - job.submitted_at,
                        budget_seconds=job.deadline - job.submitted_at,
                        stats=getattr(exc, "stats", None),
                    ))
                else:
                    with self._state_lock:
                        self.counts["redispatched"] += 1
                    job.redispatches += 1
                    self._requeue(job)
            return
        dt = time.perf_counter() - t0

        if self.metrics is not None and result.batch_stats:
            # Each column would have run its own exchange phase per
            # iteration alone; batched, the whole batch shares one per
            # iteration of the longest column.
            col_iters = [st.total_iterations
                         for st in result.batch_stats[:width]]
            saved = max(0, sum(col_iters) - max(col_iters))
            if saved:
                self.metrics.counter(
                    "repro_serve_exchange_phases_saved_total",
                    "halo-exchange phases amortized away by batched dispatch",
                ).inc(saved)

        for j, job in enumerate(live):
            pending.remove(job)
            job.exec_seconds += dt
            self._scatter_column(job, result, j, width)

    def _solve_batch_attempt(self, jobs: list, lead: Job, config,
                             fingerprint: str, remaining: float | None,
                             bucket: int):
        """One stacked attempt, on a worker thread.

        Stacks the coalesced right-hand sides (zero rows pad up to the
        cache bucket — inert columns with ``||b|| = 0`` that the masked
        loop retires at iteration 0) and solves once through the shared
        cache under the batched structure lock.  Jobs without an ``x0``
        get a zero row, identical to the build-time initial image their
        single-RHS solve would start from.
        """
        from repro.solvers.api import solve

        n = int(lead.matrix.n)
        bs = np.zeros((bucket, n), dtype=np.float64)
        for j, job in enumerate(jobs):
            bs[j] = np.asarray(job.b, dtype=np.float64)
        x0 = None
        if any(job.x0 is not None for job in jobs):
            x0 = np.zeros((bucket, n), dtype=np.float64)
            for j, job in enumerate(jobs):
                if job.x0 is not None:
                    x0[j] = np.asarray(job.x0, dtype=np.float64)
        with self._struct_lock(fingerprint):
            return solve(
                lead.matrix, bs, config,
                x0=x0,
                cache=self.cache,
                max_wall_seconds=remaining,
                **lead.solve_kwargs,
            )

    def _scatter_column(self, job: Job, result, j: int, width: int) -> None:
        """Deliver column ``j`` of a batched solve to its job.

        Success resolves with the column's detached stats; a transient
        per-column failure re-enters the retry ladder individually
        (eligible for re-batching at its escalated config); anything else
        fails with the same typed error the single-job path raises.
        """
        retry = self.policy.retry
        col = self._column_result(result, j)
        failure = col.stats.failure
        config = retry.effective_config(job.config, job.attempt)
        now = self._now()
        if failure is None:
            self.breaker.record_success(job.fingerprint)
            self._finish(job, "ok", result=JobResult(
                job_id=job.id, tenant=job.tenant, result=col,
                attempts=job.attempt + 1, effective_config=config,
                queue_seconds=job.started_at - job.submitted_at,
                exec_seconds=job.exec_seconds,
                total_seconds=now - job.submitted_at,
                batch_size=width,
            ))
            return
        self.breaker.record_failure(job.fingerprint, now)
        out_of_attempts = job.attempt + 1 >= retry.max_attempts
        if not retry.is_transient(failure) or out_of_attempts:
            self._finish(job, "failed",
                         error=self._failure_error(job, failure, col))
            return
        delay = (job.retry_delays[job.attempt]
                 if job.attempt < len(job.retry_delays) else 0.0)
        if job.deadline is not None and delay >= job.deadline - now:
            self._finish(job, "timed_out", error=JobTimeoutError(
                f"backoff ({delay:.3f}s) would overrun the deadline",
                iteration=col.stats.total_iterations,
                wall_seconds=now - job.submitted_at,
                budget_seconds=job.deadline - job.submitted_at,
                stats=col.stats,
            ))
            return
        with self._state_lock:
            self.counts["retries"] += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_retries_total", "retry attempts dispatched"
            ).inc(1, tenant=job.tenant)
        job.attempt += 1
        task = self._loop.create_task(self._requeue_after(job, delay))
        self._requeue_tasks.add(task)
        task.add_done_callback(self._requeue_tasks.discard)

    async def _requeue_after(self, job: Job, delay: float) -> None:
        # The job stays in the in-flight account through its backoff (as a
        # single-path retry does through its sleep), so a drain waits for
        # it and the ledger stays balanced.
        if delay > 0:
            await asyncio.sleep(delay)
        self._requeue(job)

    def _requeue(self, job: Job) -> None:
        """Move a dispatched job back into the queue (in-flight -> queued
        in one locked step, bypassing capacity: it was already admitted).
        The batch key is recomputed from the attempt's effective config,
        so a retried job only coalesces with peers at the same
        escalation."""
        config = self.policy.retry.effective_config(job.config, job.attempt)
        batch_key = (self._fingerprint(job, config)
                     if self._batch_eligible(job, config) else None)
        with self._state_lock:
            job.batch_key = batch_key
            self._in_flight -= 1
            self._queue.push(job, force=True)
        self._items.release()
        self._gauges()

    @staticmethod
    def _column_result(res, j: int):
        """Column ``j`` of a batched SolveResult, shaped as the single-RHS
        result its job would have gotten alone: solution, residual
        history, and failure classification are bit-identical (PR 7's
        masking guarantee); the device-time fields (cycles / seconds /
        energy / wall) describe the shared batched dispatch."""
        from repro.solvers.api import SolveResult

        return SolveResult(
            x=np.ascontiguousarray(res.x[j]),
            stats=res.batch_stats[j],
            cycles=res.cycles,
            seconds=res.seconds,
            relative_residual=res.relative_residuals[j],
            batch=1,
            energy_j=res.energy_j,
            profile=res.profile,
            engine=res.engine,
            solver=res.solver,
            compiled=res.compiled,
            backend=res.backend,
            kernel_counters=res.kernel_counters,
            wall_seconds=res.wall_seconds,
        )

    @staticmethod
    def _failure_error(job: Job, failure: str, result) -> ReproError:
        """Map a terminal SolveResult.failure to its typed error (same
        mapping as ``ResilienceConfig.raise_on_failure``)."""
        iterations = result.stats.total_iterations if result is not None else None
        if failure == "breakdown":
            exc: ReproError = SolverBreakdownError(
                f"job {job.id}: Krylov breakdown after {job.attempt + 1} attempt(s)",
                iteration=iterations)
        else:
            exc = DivergenceError(
                f"job {job.id}: failed ({failure}) after {job.attempt + 1} attempt(s)",
                reason=failure)
        exc.last_result = result  # the final attempt's SolveResult, if any
        return exc

    # -- introspection ------------------------------------------------------------------

    def accounting(self) -> dict:
        """The job ledger: every accepted job is queued, in flight, or
        finished in exactly one outcome bucket — nothing lost, nothing
        duplicated."""
        with self._state_lock:
            c = dict(self.counts)
            c["queued"] = len(self._queue)
            c["in_flight"] = self._in_flight
            c["rejections"] = dict(self.rejections)
        c["balanced"] = (
            c["submitted"] == c["accepted"] + c["rejected"]
            and c["accepted"] == (c["ok"] + c["failed"] + c["timed_out"]
                                  + c["cancelled"] + c["queued"] + c["in_flight"])
        )
        return c

    def __repr__(self):
        state = ("draining" if self._draining else
                 "running" if self._running else "stopped")
        return (f"SolverService({state}, workers={self.workers}, "
                f"queue={len(self._queue)}/{self.policy.max_queue_depth}, "
                f"in_flight={self._in_flight}, cache={self.cache!r})")
