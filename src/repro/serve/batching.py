"""Queue-level dynamic batching: coalesce compatible jobs into one solve.

The paper's efficiency argument is amortizing exchange cost over useful
compute.  PR 7 realized it *inside* a solve — the multi-RHS batch axis
runs one halo exchange per iteration regardless of the number of
right-hand sides — and the serving runtime (``docs/serving.md``) serves
the dominant production shape: many tenants, few distinct structures,
many right-hand sides.  This module closes the loop by forming the batch
**at the queue**, the way continuous-batching LLM servers do:

- :class:`BatchPolicy` — the assembly knobs: how wide a batch may get
  (``max_batch``), how long the first job of a batch may wait for
  companions (``max_wait_ms``), and whether assembled widths are padded
  up to power-of-two buckets so the compile cache holds ``O(log
  max_batch)`` batched artifacts per structure instead of one per width
  (:func:`repro.solvers.session.batch_bucket`).
- :func:`config_supports_batch` / :func:`batchable_solve_kwargs` — the
  *static* eligibility checks: only the f32 ``cg``/``bicgstab`` configs
  with batch-transparent preconditioning can ride the PR 7 batch axis,
  and only jobs whose solve kwargs are purely structural (no per-job
  tracers or hooks) can share a program.
- :class:`BatchAssembler` — sits between the
  :class:`~repro.serve.FairQueue` and the worker pool.  When a worker
  pops a batch-eligible job, the assembler sweeps the queue for jobs
  with the *same batch key* (structure fingerprint + canonical effective
  config + device shape + backend), optionally waits out the assembly
  window for late arrivals, and hands the worker the whole batch.  The
  service then runs **one** stacked ``(B, n)`` solve through the shared
  :class:`~repro.solvers.ProgramCache` and scatters per-column results —
  stats, residual history, failure classification — back to each job's
  future.

Batching is *work-conserving and observational*: a coalesced job is
served earlier than it would have been (it rides a dispatch that was
happening anyway), a tenant whose jobs are never batch-compatible still
gets its round-robin turn, and — because PR 7 guarantees each column of
a batched solve is bit-identical to its single-RHS solve — every
batch-served result is bit-identical to a direct
:func:`repro.solvers.solve` of that job alone.  Per-job semantics
survive: deadlines (the earliest deadline in the batch bounds the
dispatch; expired columns time out, survivors re-dispatch), retries (a
failed column re-enters the retry ladder individually and may re-batch),
and the exactly-once accounting ledger.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = [
    "BatchPolicy",
    "BatchAssembler",
    "config_supports_batch",
    "batchable_solve_kwargs",
]

#: Solver configs that support the PR 7 multi-RHS batch axis (f32 Krylov
#: with per-column convergence masking — ``docs/solvers.md``).
BATCHABLE_SOLVERS = frozenset({"cg", "bicgstab"})
#: Preconditioners that are batch-transparent.
BATCHABLE_PRECONDITIONERS = frozenset({"identity", "jacobi"})
#: solve() keyword arguments that describe the *program* (and therefore
#: may differ between batches but must agree within one).  Anything else
#: (tracers, metrics registries, progress hooks...) is per-job state that
#: cannot be shared across a coalesced solve.
STRUCTURAL_SOLVE_KWARGS = frozenset({
    "num_ipus", "tiles_per_ipu", "num_tiles", "grid_dims",
    "blockwise_halo", "optimize", "backend",
})


def config_supports_batch(config) -> bool:
    """Whether ``config`` can ride the multi-RHS batch axis.

    A static mirror of the gate :func:`repro.solvers.solve` enforces for
    ``(B, n)`` right-hand sides (f32 cg/bicgstab with identity or jacobi
    preconditioning), checkable at admission time without building a
    solver tree.  Unknown or unparseable configs are simply not batchable
    — the single-job path reports their real error.
    """
    from repro.solvers.config import load_config

    try:
        cfg = load_config(config)
    except Exception:
        return False
    if cfg.get("solver") not in BATCHABLE_SOLVERS:
        return False
    pre = cfg.get("preconditioner")
    if pre is not None:
        try:
            pcfg = load_config(pre)
        except Exception:
            return False
        if pcfg.get("solver") not in BATCHABLE_PRECONDITIONERS:
            return False
        if pcfg.get("preconditioner") is not None or pcfg.get("inner") is not None:
            return False
    return True


def batchable_solve_kwargs(solve_kwargs: dict) -> bool:
    """Whether a job's extra solve kwargs are purely structural.

    Jobs carrying per-job observational state (a tracer, a metrics
    registry, a progress hook, fault/resilience specs ride on the Job
    itself) cannot share one stacked solve call.
    """
    return set(solve_kwargs) <= STRUCTURAL_SOLVE_KWARGS


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the queue-level dynamic batcher (``docs/serving.md``).

    ``max_batch=1`` disables batching entirely — the service behaves
    exactly as the unbatched PR 9 runtime (the ``--batch-window 0``
    baseline of ``benchmarks/bench_serve_batching.py``).
    """

    #: Widest stacked solve the assembler may form (columns).
    max_batch: int = 8
    #: Assembly window: after an eligible lead job is popped, how many
    #: milliseconds the worker waits for batch-compatible companions
    #: before dispatching.  ``0`` dispatches immediately with whatever is
    #: already queued (still coalescing a backlog, never waiting for one).
    max_wait_ms: float = 2.0
    #: Pad assembled widths up to the next power of two (capped at
    #: ``max_batch``) so the compile cache keys ``O(log max_batch)``
    #: batched program widths per structure instead of one per width —
    #: :func:`repro.solvers.session.batch_bucket`.  Padding columns are
    #: zero right-hand sides: they converge in zero iterations and are
    #: bitwise-inert to the real columns (per-column masking).
    bucket: bool = True

    def __post_init__(self):
        if self.max_batch < 1:
            raise ReproError("batch policy: max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ReproError("batch policy: max_wait_ms must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.max_batch > 1


class BatchAssembler:
    """Forms batches between the fair queue and the worker pool.

    The assembler never *delays* incompatible work: it only sweeps jobs
    that share the lead job's batch key out of the queue (a strict win
    for them — they are served now instead of later), and the only added
    latency is the lead job's bounded assembly window.  The queue's
    round-robin rotation is untouched for everyone else, so a tenant
    whose jobs are never batch-compatible keeps its dequeue turn
    (``tests/serve/test_batching.py`` pins this).
    """

    def __init__(self, policy: BatchPolicy):
        self.policy = policy

    async def assemble(self, lead, take) -> list:
        """Collect the lead job's batch.

        ``take(limit)`` is the service-provided sweep: atomically remove
        and return up to ``limit`` queued jobs whose ``batch_key`` equals
        the lead's (the service moves them straight into its in-flight
        account, so the ledger never observes a job in neither state).
        Returns ``[lead]`` when batching is off or the lead opted out.
        """
        pol = self.policy
        if not pol.enabled or lead.batch_key is None:
            return [lead]
        jobs = [lead]
        jobs += take(pol.max_batch - len(jobs))
        if len(jobs) < pol.max_batch and pol.max_wait_ms > 0:
            # One bounded nap for late arrivals, then dispatch with
            # whatever showed up — continuous batching, not barrier
            # batching.  The lead is already accounted in flight.
            await asyncio.sleep(pol.max_wait_ms / 1000.0)
            jobs += take(pol.max_batch - len(jobs))
        return jobs
