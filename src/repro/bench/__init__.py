"""Benchmark harness utilities shared by the ``benchmarks/`` targets."""

from repro.bench.harness import (
    backend_wallclock,
    cached_solve_wallclock,
    solver_backend_wallclock,
    ipu_spmv_run,
    print_series,
    print_table,
    save_result,
    save_trace,
    SpMVRun,
)

__all__ = [
    "print_table",
    "print_series",
    "save_result",
    "save_trace",
    "ipu_spmv_run",
    "SpMVRun",
    "backend_wallclock",
    "solver_backend_wallclock",
    "cached_solve_wallclock",
]
