"""Shared machinery for the per-table / per-figure benchmark targets.

Each ``benchmarks/bench_*.py`` target regenerates one artifact of the
paper's evaluation section: it runs the experiment, prints the same rows or
series the paper reports, saves a text artifact (and, when structured data
is provided, a machine-readable JSON twin) under ``benchmarks/results/``,
and asserts the *shape* of the result (who wins, by roughly what factor,
where crossovers fall).  The JSON artifacts let successive PRs track the
cycle-count trajectory of the Fig. 5–8 benches without parsing tables.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.machine import IPUDevice
from repro.sparse.distribute import DistributedMatrix
from repro.tensordsl import TensorContext

__all__ = [
    "print_table",
    "print_series",
    "save_result",
    "save_trace",
    "ipu_spmv_run",
    "SpMVRun",
    "backend_wallclock",
    "solver_backend_wallclock",
    "cached_solve_wallclock",
]

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def print_table(title: str, headers, rows) -> str:
    """Format and print a fixed-width table; returns the text."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    return text


def print_series(title: str, x_label: str, y_labels, points) -> str:
    """Print an (x, y1, y2, ...) series — the data behind a figure."""
    headers = [x_label, *y_labels]
    return print_table(title, headers, points)


def save_result(name: str, text: str, data=None) -> Path:
    """Persist a bench artifact for EXPERIMENTS.md.

    ``data`` (any JSON-serializable structure) additionally writes
    ``benchmarks/results/<name>.json`` so later PRs can diff cycle counts
    mechanically.  The JSON is deterministic — no timestamps — so reruns
    only change it when the measured numbers change.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps({"bench": name, "data": data}, indent=2, sort_keys=True) + "\n"
        )
    return path


def save_trace(name: str, tracer) -> Path:
    """Persist a telemetry trace artifact as Chrome ``trace_event`` JSON.

    Writes ``benchmarks/results/<name>.trace.json`` — deterministic like the
    other artifacts (cycle-domain timestamps, no wall-clock) — and returns
    the path.  Load it in Perfetto or feed it to ``repro trace-report``.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.trace.json"
    tracer.to_chrome(path)
    return path


@dataclass
class SpMVRun:
    """Cycle breakdown of one SpMV on the simulated device."""

    total_cycles: int
    compute_cycles: int
    exchange_cycles: int
    seconds: float
    num_tiles: int
    exchange_phases: int = 0  # engine-counted exchange supersteps
    compile_proxy: int = 0  # optimized-schedule compile-time proxy
    source_compile_proxy: int = 0  # pre-pass schedule compile-time proxy

    @property
    def compute_seconds(self) -> float:
        return self.seconds * self.compute_cycles / max(self.total_cycles, 1)

    def to_dict(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "compute_cycles": self.compute_cycles,
            "exchange_cycles": self.exchange_cycles,
            "exchange_phases": self.exchange_phases,
            "seconds": self.seconds,
            "num_tiles": self.num_tiles,
            "compile_proxy": self.compile_proxy,
            "source_compile_proxy": self.source_compile_proxy,
        }


def ipu_spmv_run(crs, grid_dims=None, num_ipus: int = 1, tiles_per_ipu: int = 16,
                 repeats: int = 1, optimize: bool = True,
                 backend: str = "sim", tracer=None, injector=None) -> SpMVRun:
    """Simulate ``repeats`` SpMVs and return the per-SpMV cycle breakdown.

    ``optimize=False`` executes the raw schedule without the graph
    compiler's passes — the no-pass baseline of the compile ablations.
    ``backend`` selects the runtime backend (``"fast"`` reports zero
    cycles — use it only when the numerics are the measurement).
    ``tracer`` attaches a :class:`~repro.telemetry.Tracer`; pair with
    :func:`save_trace` to persist the timeline as a bench artifact.
    ``injector`` attaches a :class:`~repro.faults.FaultInjector` (the
    fault-campaign benches perturb the same program they time).
    """
    device = IPUDevice(num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu)
    ctx = TensorContext(device)
    A = DistributedMatrix(ctx, crs, grid_dims=grid_dims)
    rng = np.random.default_rng(0)
    x = A.vector(data=rng.standard_normal(crs.n))
    y = A.vector()
    if repeats == 1:
        A.spmv(x, y)
    else:
        ctx.Repeat(repeats, lambda: A.spmv(x, y))
    engine = ctx.run(optimize=optimize, backend=backend, tracer=tracer, injector=injector)
    compiled = engine.compiled
    prof = device.profiler
    total = prof.total_cycles // repeats
    compute = prof.category("spmv") // repeats
    exchange = prof.category("exchange") // repeats
    return SpMVRun(
        total_cycles=total,
        compute_cycles=compute,
        exchange_cycles=exchange,
        seconds=device.spec.seconds(total),
        num_tiles=device.num_tiles,
        exchange_phases=engine.exchanges,
        compile_proxy=compiled.stats.compile_proxy,
        source_compile_proxy=compiled.source_stats.compile_proxy,
    )


def backend_wallclock(crs, grid_dims=None, num_ipus: int = 1,
                      tiles_per_ipu: int = 16, repeats: int = 1,
                      backends=("sim", "fast", "fused")) -> dict:
    """Host wall-clock of the same SpMV program under each runtime backend.

    Builds and compiles an identical schedule once per backend (fresh
    device each time), executes it, and returns the wall-clock seconds of
    each ``Engine.run()`` as ``<backend>_seconds`` keys, together with
    speedups over the first backend (``speedup`` = first/"fast",
    ``speedup_<b>`` = first/b for the rest), a bit-identity check of every
    result against the first backend's, and — for kernel-dispatch
    backends — the :class:`~repro.graph.GlobalCounters` delta under
    ``<backend>_counters``.  Wall-clock numbers are host measurements and
    therefore *not* deterministic — benches that record them should keep
    them out of the cycle-count artifacts.
    """
    from repro.graph import Engine, GlobalCounters

    seconds: dict = {}
    outputs: dict = {}
    counters: dict = {}
    sim_cycles = 0
    for backend in backends:
        device = IPUDevice(num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu)
        ctx = TensorContext(device)
        A = DistributedMatrix(ctx, crs, grid_dims=grid_dims)
        rng = np.random.default_rng(0)
        x = A.vector(data=rng.standard_normal(crs.n))
        y = A.vector()
        if repeats == 1:
            A.spmv(x, y)
        else:
            ctx.Repeat(repeats, lambda: A.spmv(x, y))
        engine = Engine(ctx.compile(), backend=backend)
        with GlobalCounters.track() as delta:
            t0 = time.perf_counter()
            engine.run()
            seconds[backend] = time.perf_counter() - t0
        outputs[backend] = y.read_global()
        if getattr(engine.backend, "uses_kernels", False):
            counters[backend] = delta
        if backend == "sim":
            sim_cycles = device.profiler.total_cycles
    ref = backends[0]
    result = {
        "num_ipus": num_ipus,
        "tiles_per_ipu": tiles_per_ipu,
        "repeats": repeats,
        "backends": list(backends),
        "bit_identical": bool(all(
            np.array_equal(outputs[ref], outputs[b]) for b in backends
        )),
        "sim_cycles": sim_cycles,
    }
    for b in backends:
        result[f"{b}_seconds"] = seconds[b]
        if b != ref:
            result[f"speedup_{b}"] = seconds[ref] / max(seconds[b], 1e-12)
    if "fast" in seconds and ref != "fast":
        result["speedup"] = seconds[ref] / max(seconds["fast"], 1e-12)
    for b, kc in counters.items():
        result[f"{b}_counters"] = kc
    return result


def solver_backend_wallclock(crs, config, b, grid_dims=None, num_ipus: int = 1,
                             tiles_per_ipu: int = 16,
                             backends=("sim", "fast", "fused"),
                             wall_profiles: bool = False,
                             profile_top: int = 8) -> dict:
    """Engine-run host wall-clock of one full solve under each backend.

    Unlike :func:`backend_wallclock` (a single SpMV program, numpy-bound
    under every backend) this times a complete solver — where the per-tile
    dispatch overhead of the step interpreters dominates and the fused
    backend's whole-device kernels pay off.  Each backend gets a fresh
    build and compile; only ``Engine.run()`` is timed.  Returns
    ``<backend>_seconds``, ``speedup_<b>`` over the first backend,
    ``fused_over_fast`` when both are present, a bit-identity check of the
    solutions against the first backend's, iteration counts, and the
    :class:`~repro.graph.GlobalCounters` delta for kernel-dispatch
    backends.

    ``wall_profiles=True`` additionally attaches a
    :class:`~repro.telemetry.WallTracer` to every backend run and records
    its hottest-``profile_top`` per-kernel wall profile under
    ``<backend>_wall_profile`` (measured host ns, GB/s, GFLOP/s) — the
    per-kernel breakdown behind the aggregate ``<backend>_seconds``.  Wall
    tracing is observational, so the bit-identity check still holds.
    """
    from repro.graph import Engine, GlobalCounters
    from repro.solvers.api import _build_program
    from repro.telemetry import WallTracer

    seconds: dict = {}
    outputs: dict = {}
    counters: dict = {}
    profiles: dict = {}
    iters: dict = {}
    sim_cycles = 0
    for backend in backends:
        ctx, solver, xvec, _, device = _build_program(
            crs, b, config, num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu,
            grid_dims=grid_dims)
        wtracer = WallTracer() if wall_profiles else None
        engine = Engine(ctx.compile(), backend=backend, wall_tracer=wtracer)
        with GlobalCounters.track() as delta:
            t0 = time.perf_counter()
            engine.run()
            seconds[backend] = time.perf_counter() - t0
        if getattr(solver, "x_ext", None) is not None:
            outputs[backend] = solver.x_ext.read_global()
        else:
            outputs[backend] = xvec.read_global()
        iters[backend] = solver.stats.total_iterations
        if getattr(engine.backend, "uses_kernels", False):
            counters[backend] = delta
        if wtracer is not None:
            profiles[backend] = wtracer.profile(top=profile_top)
        if backend == "sim":
            sim_cycles = device.profiler.total_cycles
    ref = backends[0]
    result = {
        "num_ipus": num_ipus,
        "tiles_per_ipu": tiles_per_ipu,
        "backends": list(backends),
        "iterations": iters,
        "bit_identical": bool(all(
            np.array_equal(outputs[ref], outputs[b]) for b in backends
        )),
        "sim_cycles": sim_cycles,
    }
    for b in backends:
        result[f"{b}_seconds"] = seconds[b]
        if b != ref:
            result[f"speedup_{b}"] = seconds[ref] / max(seconds[b], 1e-12)
    if "fast" in seconds and "fused" in seconds:
        result["fused_over_fast"] = seconds["fast"] / max(seconds["fused"], 1e-12)
    for b, kc in counters.items():
        result[f"{b}_counters"] = kc
    for b, prof in profiles.items():
        result[f"{b}_wall_profile"] = prof
    return result


def cached_solve_wallclock(crs, config, bs, grid_dims=None, num_ipus: int = 1,
                           tiles_per_ipu: int = 16, backend: str = "sim",
                           **solve_kwargs) -> dict:
    """Host wall-clock of one solve per rhs in ``bs``, cached vs. uncached.

    Runs the whole batch twice: once through a shared
    :class:`~repro.solvers.session.SolverSession` (first solve compiles,
    the rest hit the structure-keyed cache) and once cold (every solve
    rebuilds and re-lowers).  Returns per-run timings, the amortized
    speedup, the session's cache counters, and bit-identity checks of
    solutions and modeled cycles between the two paths.  Wall-clock
    numbers are host measurements — keep them out of the deterministic
    cycle-count artifacts (see :func:`save_result`).
    """
    from repro.solvers import SolverSession, solve

    session = SolverSession(crs, config, num_ipus=num_ipus,
                            tiles_per_ipu=tiles_per_ipu, grid_dims=grid_dims,
                            backend=backend, **solve_kwargs)
    cached_times, cached_results = [], []
    for b in bs:
        t0 = time.perf_counter()
        cached_results.append(session.solve(b))
        cached_times.append(time.perf_counter() - t0)

    cold_times, cold_results = [], []
    for b in bs:
        t0 = time.perf_counter()
        cold_results.append(
            solve(crs, b, config, num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu,
                  grid_dims=grid_dims, backend=backend, **solve_kwargs)
        )
        cold_times.append(time.perf_counter() - t0)

    return {
        "solves": len(bs),
        "cached_seconds": cached_times,
        "cold_seconds": cold_times,
        "cached_total": sum(cached_times),
        "cold_total": sum(cold_times),
        "amortized_speedup": sum(cold_times) / max(sum(cached_times), 1e-12),
        "hit_mean_seconds": (
            sum(cached_times[1:]) / max(len(cached_times) - 1, 1)
        ),
        "cold_mean_seconds": sum(cold_times) / max(len(cold_times), 1),
        "cache": session.stats(),
        "bit_identical_solutions": bool(all(
            np.array_equal(a.x, c.x) for a, c in zip(cached_results, cold_results)
        )),
        "identical_cycles": bool(all(
            a.cycles == c.cycles for a, c in zip(cached_results, cold_results)
        )),
        "cycles": [r.cycles for r in cached_results],
    }
