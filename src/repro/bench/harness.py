"""Shared machinery for the per-table / per-figure benchmark targets.

Each ``benchmarks/bench_*.py`` target regenerates one artifact of the
paper's evaluation section: it runs the experiment, prints the same rows or
series the paper reports, saves a text artifact under
``benchmarks/results/``, and asserts the *shape* of the result (who wins,
by roughly what factor, where crossovers fall).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.machine import IPUDevice
from repro.sparse.distribute import DistributedMatrix
from repro.tensordsl import TensorContext

__all__ = ["print_table", "print_series", "save_result", "ipu_spmv_run", "SpMVRun"]

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def print_table(title: str, headers, rows) -> str:
    """Format and print a fixed-width table; returns the text."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    return text


def print_series(title: str, x_label: str, y_labels, points) -> str:
    """Print an (x, y1, y2, ...) series — the data behind a figure."""
    headers = [x_label, *y_labels]
    return print_table(title, headers, points)


def save_result(name: str, text: str) -> Path:
    """Persist a bench artifact for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@dataclass
class SpMVRun:
    """Cycle breakdown of one SpMV on the simulated device."""

    total_cycles: int
    compute_cycles: int
    exchange_cycles: int
    seconds: float
    num_tiles: int

    @property
    def compute_seconds(self) -> float:
        return self.seconds * self.compute_cycles / max(self.total_cycles, 1)


def ipu_spmv_run(crs, grid_dims=None, num_ipus: int = 1, tiles_per_ipu: int = 16,
                 repeats: int = 1) -> SpMVRun:
    """Simulate ``repeats`` SpMVs and return the per-SpMV cycle breakdown."""
    device = IPUDevice(num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu)
    ctx = TensorContext(device)
    A = DistributedMatrix(ctx, crs, grid_dims=grid_dims)
    rng = np.random.default_rng(0)
    x = A.vector(data=rng.standard_normal(crs.n))
    y = A.vector()
    if repeats == 1:
        A.spmv(x, y)
    else:
        ctx.Repeat(repeats, lambda: A.spmv(x, y))
    ctx.run()
    prof = device.profiler
    total = prof.total_cycles // repeats
    compute = prof.category("spmv") // repeats
    exchange = prof.category("exchange") // repeats
    return SpMVRun(
        total_cycles=total,
        compute_cycles=compute,
        exchange_cycles=exchange,
        seconds=device.spec.seconds(total),
        num_tiles=device.num_tiles,
    )
