"""Shared machinery for the per-table / per-figure benchmark targets.

Each ``benchmarks/bench_*.py`` target regenerates one artifact of the
paper's evaluation section: it runs the experiment, prints the same rows or
series the paper reports, saves a text artifact (and, when structured data
is provided, a machine-readable JSON twin) under ``benchmarks/results/``,
and asserts the *shape* of the result (who wins, by roughly what factor,
where crossovers fall).  The JSON artifacts let successive PRs track the
cycle-count trajectory of the Fig. 5–8 benches without parsing tables.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.machine import IPUDevice
from repro.sparse.distribute import DistributedMatrix
from repro.tensordsl import TensorContext

__all__ = [
    "print_table",
    "print_series",
    "save_result",
    "save_trace",
    "ipu_spmv_run",
    "SpMVRun",
    "backend_wallclock",
    "cached_solve_wallclock",
]

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def print_table(title: str, headers, rows) -> str:
    """Format and print a fixed-width table; returns the text."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    return text


def print_series(title: str, x_label: str, y_labels, points) -> str:
    """Print an (x, y1, y2, ...) series — the data behind a figure."""
    headers = [x_label, *y_labels]
    return print_table(title, headers, points)


def save_result(name: str, text: str, data=None) -> Path:
    """Persist a bench artifact for EXPERIMENTS.md.

    ``data`` (any JSON-serializable structure) additionally writes
    ``benchmarks/results/<name>.json`` so later PRs can diff cycle counts
    mechanically.  The JSON is deterministic — no timestamps — so reruns
    only change it when the measured numbers change.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps({"bench": name, "data": data}, indent=2, sort_keys=True) + "\n"
        )
    return path


def save_trace(name: str, tracer) -> Path:
    """Persist a telemetry trace artifact as Chrome ``trace_event`` JSON.

    Writes ``benchmarks/results/<name>.trace.json`` — deterministic like the
    other artifacts (cycle-domain timestamps, no wall-clock) — and returns
    the path.  Load it in Perfetto or feed it to ``repro trace-report``.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.trace.json"
    tracer.to_chrome(path)
    return path


@dataclass
class SpMVRun:
    """Cycle breakdown of one SpMV on the simulated device."""

    total_cycles: int
    compute_cycles: int
    exchange_cycles: int
    seconds: float
    num_tiles: int
    exchange_phases: int = 0  # engine-counted exchange supersteps
    compile_proxy: int = 0  # optimized-schedule compile-time proxy
    source_compile_proxy: int = 0  # pre-pass schedule compile-time proxy

    @property
    def compute_seconds(self) -> float:
        return self.seconds * self.compute_cycles / max(self.total_cycles, 1)

    def to_dict(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "compute_cycles": self.compute_cycles,
            "exchange_cycles": self.exchange_cycles,
            "exchange_phases": self.exchange_phases,
            "seconds": self.seconds,
            "num_tiles": self.num_tiles,
            "compile_proxy": self.compile_proxy,
            "source_compile_proxy": self.source_compile_proxy,
        }


def ipu_spmv_run(crs, grid_dims=None, num_ipus: int = 1, tiles_per_ipu: int = 16,
                 repeats: int = 1, optimize: bool = True,
                 backend: str = "sim", tracer=None, injector=None) -> SpMVRun:
    """Simulate ``repeats`` SpMVs and return the per-SpMV cycle breakdown.

    ``optimize=False`` executes the raw schedule without the graph
    compiler's passes — the no-pass baseline of the compile ablations.
    ``backend`` selects the runtime backend (``"fast"`` reports zero
    cycles — use it only when the numerics are the measurement).
    ``tracer`` attaches a :class:`~repro.telemetry.Tracer`; pair with
    :func:`save_trace` to persist the timeline as a bench artifact.
    ``injector`` attaches a :class:`~repro.faults.FaultInjector` (the
    fault-campaign benches perturb the same program they time).
    """
    device = IPUDevice(num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu)
    ctx = TensorContext(device)
    A = DistributedMatrix(ctx, crs, grid_dims=grid_dims)
    rng = np.random.default_rng(0)
    x = A.vector(data=rng.standard_normal(crs.n))
    y = A.vector()
    if repeats == 1:
        A.spmv(x, y)
    else:
        ctx.Repeat(repeats, lambda: A.spmv(x, y))
    engine = ctx.run(optimize=optimize, backend=backend, tracer=tracer, injector=injector)
    compiled = engine.compiled
    prof = device.profiler
    total = prof.total_cycles // repeats
    compute = prof.category("spmv") // repeats
    exchange = prof.category("exchange") // repeats
    return SpMVRun(
        total_cycles=total,
        compute_cycles=compute,
        exchange_cycles=exchange,
        seconds=device.spec.seconds(total),
        num_tiles=device.num_tiles,
        exchange_phases=engine.exchanges,
        compile_proxy=compiled.stats.compile_proxy,
        source_compile_proxy=compiled.source_stats.compile_proxy,
    )


def backend_wallclock(crs, grid_dims=None, num_ipus: int = 1,
                      tiles_per_ipu: int = 16, repeats: int = 1) -> dict:
    """Host wall-clock of the same SpMV program under both runtime backends.

    Builds and compiles an identical schedule twice (fresh device each
    time), executes it once under ``sim`` and once under ``fast``, and
    returns the wall-clock seconds of each ``Engine.run()`` together with
    the speedup and a bit-identity check of the results.  Wall-clock
    numbers are host measurements and therefore *not* deterministic —
    benches that record them should keep them out of the cycle-count
    artifacts.
    """
    from repro.graph import Engine

    seconds: dict = {}
    outputs: dict = {}
    sim_cycles = 0
    for backend in ("sim", "fast"):
        device = IPUDevice(num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu)
        ctx = TensorContext(device)
        A = DistributedMatrix(ctx, crs, grid_dims=grid_dims)
        rng = np.random.default_rng(0)
        x = A.vector(data=rng.standard_normal(crs.n))
        y = A.vector()
        if repeats == 1:
            A.spmv(x, y)
        else:
            ctx.Repeat(repeats, lambda: A.spmv(x, y))
        engine = Engine(ctx.compile(), backend=backend)
        t0 = time.perf_counter()
        engine.run()
        seconds[backend] = time.perf_counter() - t0
        outputs[backend] = y.read_global()
        if backend == "sim":
            sim_cycles = device.profiler.total_cycles
    return {
        "num_ipus": num_ipus,
        "tiles_per_ipu": tiles_per_ipu,
        "repeats": repeats,
        "sim_seconds": seconds["sim"],
        "fast_seconds": seconds["fast"],
        "speedup": seconds["sim"] / max(seconds["fast"], 1e-12),
        "bit_identical": bool(np.array_equal(outputs["sim"], outputs["fast"])),
        "sim_cycles": sim_cycles,
    }


def cached_solve_wallclock(crs, config, bs, grid_dims=None, num_ipus: int = 1,
                           tiles_per_ipu: int = 16, backend: str = "sim",
                           **solve_kwargs) -> dict:
    """Host wall-clock of one solve per rhs in ``bs``, cached vs. uncached.

    Runs the whole batch twice: once through a shared
    :class:`~repro.solvers.session.SolverSession` (first solve compiles,
    the rest hit the structure-keyed cache) and once cold (every solve
    rebuilds and re-lowers).  Returns per-run timings, the amortized
    speedup, the session's cache counters, and bit-identity checks of
    solutions and modeled cycles between the two paths.  Wall-clock
    numbers are host measurements — keep them out of the deterministic
    cycle-count artifacts (see :func:`save_result`).
    """
    from repro.solvers import SolverSession, solve

    session = SolverSession(crs, config, num_ipus=num_ipus,
                            tiles_per_ipu=tiles_per_ipu, grid_dims=grid_dims,
                            backend=backend, **solve_kwargs)
    cached_times, cached_results = [], []
    for b in bs:
        t0 = time.perf_counter()
        cached_results.append(session.solve(b))
        cached_times.append(time.perf_counter() - t0)

    cold_times, cold_results = [], []
    for b in bs:
        t0 = time.perf_counter()
        cold_results.append(
            solve(crs, b, config, num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu,
                  grid_dims=grid_dims, backend=backend, **solve_kwargs)
        )
        cold_times.append(time.perf_counter() - t0)

    return {
        "solves": len(bs),
        "cached_seconds": cached_times,
        "cold_seconds": cold_times,
        "cached_total": sum(cached_times),
        "cold_total": sum(cold_times),
        "amortized_speedup": sum(cold_times) / max(sum(cached_times), 1e-12),
        "hit_mean_seconds": (
            sum(cached_times[1:]) / max(len(cached_times) - 1, 1)
        ),
        "cold_mean_seconds": sum(cold_times) / max(len(cold_times), 1),
        "cache": session.stats(),
        "bit_identical_solutions": bool(all(
            np.array_equal(a.x, c.x) for a, c in zip(cached_results, cold_results)
        )),
        "identical_cycles": bool(all(
            a.cycles == c.cycles for a, c in zip(cached_results, cold_results)
        )),
        "cycles": [r.cycles for r in cached_results],
    }
