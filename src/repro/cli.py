"""Command-line interface: solve systems and inspect devices from the shell.

Examples::

    # Solve a built-in workload with an inline JSON config
    python -m repro.cli solve --matrix poisson3d:16 \\
        --config '{"solver": "bicgstab", "tol": 1e-6, "preconditioner": {"solver": "ilu0"}}'

    # Solve a Matrix-Market file with a config file, on a 4-IPU device
    python -m repro.cli solve --matrix path/to/system.mtx --rhs rhs.npy \\
        --config solver.json --ipus 4 --tiles 32

    # Inspect what the graph compiler does to a solver program
    python -m repro.cli compile-report --matrix poisson2d:8 \\
        --config '{"solver": "cg", "tol": 1e-6}' --tree

    # Record a Chrome trace of a CG solve and summarize it
    python -m repro.cli solve --matrix poisson:32 --config cg --trace t.json
    python -m repro.cli trace-report t.json --check

    # Measured wall-clock profile + metrics on the fused backend
    python -m repro.cli solve --matrix poisson:32 --config cg --backend fused \\
        --wall-trace wall.json --metrics metrics.prom --progress 5
    python -m repro.cli metrics-report metrics.prom

    # Inject deterministic faults and recover (docs/resilience.md)
    python -m repro.cli solve --matrix poisson3d:12 --config cg \\
        --inject-faults 'seed=7;bitflip:p=0.005,where=exchange' --resilience

    # Normalize / validate a fault spec without running anything
    python -m repro.cli faults 'seed=7;bitflip:p=0.005;tile_oom:tile=3,at=40'

    # Amortize the compile over repeated solves (docs/performance.md)
    python -m repro.cli solve --matrix poisson:32 --config cg --repeat 5
    python -m repro.cli batch --matrix poisson:32 --config cg --count 8

    # Serve solve jobs through the fault-tolerant runtime and hammer it
    # with an overload + fault-injection load run (docs/serving.md)
    python -m repro.cli serve --matrix poisson:24 --config cg \\
        --jobs 32 --tenants 3 --overload 4 --fault-tenant --check

    # Show the device spec sheet
    python -m repro.cli info

Framework errors map to distinct exit codes (see ``repro.errors``):
10 generic, 11 SRAM overflow, 12 solver breakdown, 13 divergence,
14 bad fault spec, 15 backend capability, 16 service overloaded,
17 job deadline exceeded, 18 tenant quota exceeded.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.errors import ReproError

__all__ = ["main"]


def _load_matrix(spec: str):
    """``poisson[2d|3d]:N`` / ``g3|afshell|geo|hook[:size]`` /
    a Matrix-Market path."""
    from repro.sparse import poisson2d, poisson3d
    from repro.sparse.suitesparse import (
        af_shell_like,
        g3_circuit_like,
        geo_like,
        hook_like,
        load_matrix_market,
    )

    name, _, arg = spec.partition(":")
    if name == "poisson3d":
        m, dims = poisson3d(int(arg or 16))
        return m, dims
    if name in ("poisson2d", "poisson"):
        m, dims = poisson2d(int(arg or 32))
        return m, dims
    generators = {
        "g3": lambda s: g3_circuit_like(grid=s or 110),
        "afshell": lambda s: af_shell_like(nx=s or 56, ny=s or 56),
        "geo": lambda s: geo_like(nx=s or 24, ny=s or 24, nz=s or 24),
        "hook": lambda s: hook_like(nx=s or 24, ny=s or 24, nz=s or 24),
    }
    if name in generators:
        return generators[name](int(arg) if arg else None), None
    path = Path(spec)
    if path.exists():
        return load_matrix_market(path), None
    raise SystemExit(f"unknown matrix spec {spec!r}")


def _cmd_solve(args) -> int:
    import time

    from repro.solvers import ProgramCache, solve

    matrix, dims = _load_matrix(args.matrix)
    if args.rhs:
        b = np.load(args.rhs)
    else:
        b = np.random.default_rng(args.seed).standard_normal(matrix.n)

    if args.trace and args.backend != "sim":
        raise SystemExit("--trace records the modeled cycle timeline and "
                         "requires the cycle-accurate sim backend; use "
                         "--wall-trace for measured host timing on any backend")
    if args.inject_faults and args.backend != "sim":
        raise SystemExit("--inject-faults requires the cycle-accurate sim backend")

    on_progress = None
    if args.progress is not None:
        def on_progress(p):
            print(f"  [progress] iteration {p.iteration}: relative residual "
                  f"{p.relative_residual:.3e} ({p.active_columns} active, "
                  f"{p.wall_seconds:.2f}s)", file=sys.stderr)

    repeat = max(1, args.repeat)
    pcache = ProgramCache() if repeat > 1 else None
    times, result, first = [], None, None
    for i in range(repeat):
        t0 = time.perf_counter()
        result = solve(
            matrix,
            b,
            args.config,
            num_ipus=args.ipus,
            tiles_per_ipu=args.tiles,
            grid_dims=dims,
            backend=args.backend,
            trace=args.trace,
            wall_trace=args.wall_trace,
            metrics=args.metrics,
            on_progress=on_progress,
            progress_every=args.progress if args.progress is not None else 1,
            inject_faults=args.inject_faults,
            resilience=args.resilience,
            cache=pcache,
        )
        times.append(time.perf_counter() - t0)
        if i == 0:
            first = result
    print(f"matrix:            n={matrix.n} nnz={matrix.nnz}")
    print(f"iterations:        {result.iterations}")
    print(f"relative residual: {result.relative_residual:.3e}")
    if result.failure is not None:
        print(f"failure:           {result.failure}")
    if result.resilience is not None:
        print(f"resilience:        {result.resilience.summary()}")
    if result.backend == "sim":
        print(f"modeled IPU time:  {result.seconds * 1e3:.3f} ms ({result.cycles} cycles)")
    else:
        print(f"backend:           {result.backend} (numerics only, no cycle model)")
    if result.kernel_counters is not None:
        kc = result.kernel_counters
        print(f"fused kernels:     {kc['kernels']} launches / {kc['dispatches']} "
              f"dispatches ({kc['fused_compute_sets']} compute sets + "
              f"{kc['fused_exchanges']} exchanges fused, "
              f"{kc['fallback_vertices']} fallback vertices)")
    print(f"host wall-clock:   {result.wall_seconds * 1e3:.1f} ms (measured)")
    if result.wall_profile is not None and result.wall_profile["kernels"]:
        prof = result.wall_profile
        hot = prof["kernels"][0]
        print(f"wall profile:      {len(prof['kernels'])} kernels/steps, "
              f"{prof['total_wall_ns'] / 1e6:.3f} ms in spans; hottest "
              f"{hot['name']} ({hot['launches']} launches, "
              f"{hot['wall_ns'] / 1e6:.3f} ms)")
    if repeat > 1:
        identical = bool(
            np.array_equal(result.x, first.x) and result.cycles == first.cycles
        )
        rest = times[1:]
        stats = pcache.stats()
        print(f"repeat:            {repeat} solves; first (compile) "
              f"{times[0] * 1e3:.1f} ms, cached mean {sum(rest) / len(rest) * 1e3:.1f} ms")
        print(f"compile cache:     hits={stats['hits']} misses={stats['misses']} "
              f"evictions={stats['evictions']}; bit-identical runs: "
              f"{'yes' if identical else 'NO'}")
        if not identical:
            raise SystemExit("cache hit produced a different solution or cycle count")
    if args.profile:
        print("cycle breakdown:")
        for cat, frac in sorted(result.profile.items(), key=lambda kv: -kv[1]):
            print(f"  {cat:<22s} {frac:6.1%}")
        if result.compiled is not None:
            print(result.compile_report)
    if args.trace:
        print(f"trace written to {args.trace} "
              f"({len(result.telemetry)} events; view with Perfetto or "
              f"'repro trace-report')")
    if args.wall_trace:
        print(f"wall trace written to {args.wall_trace} "
              f"({len(result.wall_telemetry)} events, wall_ns clock domain; "
              f"view with Perfetto or 'repro trace-report')")
    if args.metrics:
        print(f"metrics written to {args.metrics} "
              f"({len(result.metrics)} instruments; view with "
              f"'repro metrics-report')")
    if args.resilience_report:
        import json

        Path(args.resilience_report).write_text(
            json.dumps(
                result.resilience.to_dict() if result.resilience is not None else {},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"resilience report written to {args.resilience_report}")
    if args.output:
        np.save(args.output, result.x)
        print(f"solution written to {args.output}")
    return 0


def _cmd_batch(args) -> int:
    """Solve many right-hand sides: one batched program (default), or the
    compile-cache session loop with ``--no-batch-axis``."""
    import time

    from repro.solvers import SolverSession, solve

    matrix, dims = _load_matrix(args.matrix)
    if args.rhs:
        bs = np.load(args.rhs)
        if bs.ndim == 1:
            bs = bs[None, :]
        if bs.ndim != 2 or bs.shape[1] != matrix.n:
            raise SystemExit(
                f"--rhs must be an (m, {matrix.n}) array, got shape {bs.shape}"
            )
    else:
        rng = np.random.default_rng(args.seed)
        bs = rng.standard_normal((args.count, matrix.n))

    print(f"matrix:  n={matrix.n} nnz={matrix.nnz}; {len(bs)} right-hand sides")

    if not args.no_batch_axis and len(bs) > 1:
        # Batched path: every RHS column rides the same program, so each
        # iteration runs ONE halo exchange for all of them (docs/solvers.md).
        t0 = time.perf_counter()
        result = solve(
            matrix,
            bs,
            args.config,
            num_ipus=args.ipus,
            tiles_per_ipu=args.tiles,
            grid_dims=dims,
            backend=args.backend,
        )
        host = time.perf_counter() - t0
        for i, st in enumerate(result.batch_stats):
            line = (f"  rhs {i:>3}: iterations={st.total_iterations:<5} "
                    f"residual={result.relative_residuals[i]:.3e}")
            if st.failure is not None:
                line += f" failure={st.failure}"
            print(line)
        engine = result.engine
        print(f"batch:   {result.batch} RHS in one program; "
              f"{engine.exchanges} halo exchanges total = "
              f"{engine.exchanges / result.batch:.1f} amortized per RHS "
              f"(host {host * 1e3:.1f} ms)")
        if result.backend == "sim":
            print(f"modeled: {result.seconds * 1e3:.3f} ms "
                  f"({result.cycles} cycles) for the whole batch")
        if args.output:
            np.save(args.output, result.x)
            print(f"solutions written to {args.output} (one row per rhs)")
        return 0

    session = SolverSession(
        matrix,
        args.config,
        num_ipus=args.ipus,
        tiles_per_ipu=args.tiles,
        grid_dims=dims,
        backend=args.backend,
    )
    results, times = [], []
    for i, b in enumerate(bs):
        t0 = time.perf_counter()
        result = session.solve(b)
        times.append(time.perf_counter() - t0)
        results.append(result)
        line = (f"  rhs {i:>3}: iterations={result.iterations:<5} "
                f"residual={result.relative_residual:.3e} "
                f"host={times[-1] * 1e3:7.1f} ms")
        if result.backend == "sim":
            line += f" cycles={result.cycles}"
        print(line)
    stats = session.stats()
    print(f"cache:   hits={stats['hits']} misses={stats['misses']} "
          f"evictions={stats['evictions']}")
    if len(times) > 1:
        rest = times[1:]
        print(f"timing:  first (compile) {times[0] * 1e3:.1f} ms, "
              f"cached mean {sum(rest) / len(rest) * 1e3:.1f} ms "
              f"({times[0] * len(rest) / max(sum(rest), 1e-12):.1f}x amortized)")
    if args.output:
        np.save(args.output, np.stack([r.x for r in results]))
        print(f"solutions written to {args.output} (one row per rhs)")
    return 0


def _cmd_faults(args) -> int:
    """Parse/normalize a fault spec; print (or write) its canonical JSON."""
    from repro.faults import FaultPlan

    plan = FaultPlan.parse(args.spec)
    text = plan.to_json(indent=2)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"normalized fault plan ({len(plan)} fault(s)) written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_trace_report(args) -> int:
    """Aggregate a trace file (Chrome or NDJSON) into a readable report."""
    import json

    from repro.telemetry import TelemetryReport, load_trace, validate_chrome_trace

    path = Path(args.trace)
    if not path.exists():
        raise SystemExit(f"no such trace file: {path}")
    if args.check:
        text = path.read_text().lstrip()
        if not text.startswith("{"):
            raise SystemExit(f"{path}: --check expects a Chrome trace_event JSON file")
        errors = validate_chrome_trace(json.loads(text))
        if errors:
            for err in errors[:20]:
                print(f"schema error: {err}", file=sys.stderr)
            raise SystemExit(f"{path}: invalid Chrome trace ({len(errors)} errors)")
        print(f"{path}: valid Chrome trace")
    events, meta = load_trace(path)
    report = TelemetryReport.from_events(events, meta=meta, top=args.top)
    print(report.render())
    return 0


def _cmd_metrics_report(args) -> int:
    """Render a metrics snapshot (Prometheus text or JSON) as kernel tables."""
    import json
    import re

    path = Path(args.path)
    if not path.exists():
        raise SystemExit(f"no such metrics file: {path}")
    text = path.read_text()

    samples: dict = {}  # metric name -> {sorted label tuple -> value}
    if text.lstrip().startswith("{"):
        for name, rec in json.loads(text).items():
            if rec.get("kind") == "histogram":
                continue
            for s in rec.get("series", []):
                key = tuple(sorted(s["labels"].items()))
                samples.setdefault(name, {})[key] = float(s["value"])
    else:
        line_pat = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
        label_pat = re.compile(r'(\w+)="([^"]*)"')
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            m = line_pat.match(line)
            if m is None:
                continue
            name, labels, value = m.groups()
            key = tuple(sorted(label_pat.findall(labels or "")))
            samples.setdefault(name, {})[key] = float(value)

    def series(name: str) -> dict:
        return samples.get(name, {})

    kernels: dict = {}
    for key, ns in series("repro_kernel_wall_ns_total").items():
        labels = dict(key)
        row = kernels.setdefault(
            labels.get("name", "?"),
            {"kind": labels.get("kind", "?"), "wall_ns": 0.0, "launches": 0.0,
             "bytes": 0.0, "flops": 0.0},
        )
        row["wall_ns"] += ns
    for metric, field in (("repro_kernel_launches_total", "launches"),
                          ("repro_kernel_bytes_total", "bytes"),
                          ("repro_kernel_flops_total", "flops")):
        for key, v in series(metric).items():
            kname = dict(key).get("name", "?")
            if kname in kernels:
                kernels[kname][field] += v

    rows = sorted(kernels.items(), key=lambda kv: -kv[1]["wall_ns"])[: args.top]
    if not rows:
        print(f"{path}: no repro_kernel_* series found "
              f"({len(samples)} metric(s) in the snapshot)")
    else:
        total_ns = sum(r["wall_ns"] for r in kernels.values())
        print(f"hottest kernels (top {len(rows)} of {len(kernels)}, measured wall):")
        print(f"  {'kernel':<20} {'kind':<9} {'launches':>8} {'wall ms':>10} "
              f"{'share':>6} {'GB/s':>8} {'GFLOP/s':>8}")
        for kname, r in rows:
            sec = r["wall_ns"] * 1e-9
            gbs = r["bytes"] / sec / 1e9 if sec > 0 and r["bytes"] else 0.0
            gfs = r["flops"] / sec / 1e9 if sec > 0 and r["flops"] else 0.0
            share = r["wall_ns"] / total_ns if total_ns else 0.0
            print(f"  {kname:<20} {r['kind']:<9} {int(r['launches']):>8} "
                  f"{r['wall_ns'] / 1e6:>10.3f} {share:>6.1%} {gbs:>8.2f} {gfs:>8.2f}")

    for gname, label in (
        ("repro_solve_iterations", "iterations"),
        ("repro_solve_final_relative_residual", "final relative residual"),
        ("repro_solve_wall_seconds", "solve wall seconds"),
    ):
        ser = series(gname)
        if ser:
            print(f"{label + ':':<25}{next(iter(ser.values())):g}")
    return 0


def _cmd_compile_report(args) -> int:
    """Lower a solver program through the pass pipeline and show the report."""
    from repro.solvers import compile_solve

    matrix, dims = _load_matrix(args.matrix)
    b = np.random.default_rng(args.seed).standard_normal(matrix.n)
    compiled = compile_solve(
        matrix,
        b,
        args.config,
        optimize=not args.no_opt,
        num_ipus=args.ipus,
        tiles_per_ipu=args.tiles,
        grid_dims=dims,
    )
    src, opt = compiled.source_stats, compiled.stats
    print(f"matrix:               n={matrix.n} nnz={matrix.nnz}")
    print(f"source schedule:      {src.steps} steps, {src.compute_sets} compute sets, "
          f"{src.exchanges} exchanges, {src.region_copies} copies")
    print(f"optimized schedule:   {opt.steps} steps, {opt.compute_sets} compute sets, "
          f"{opt.exchanges} exchanges, {opt.region_copies} copies")
    print(f"compile proxy:        {src.compile_proxy} -> {opt.compile_proxy}")
    print(compiled.report.render())
    if args.tree:
        print("\noptimized program:")
        print(compiled.describe(max_depth=args.depth))
    return 0


def _cmd_serve(args) -> int:
    """Run the serving runtime in-process and drive it with a load run.

    Three optional phases, all against one service instance: a paced
    *baseline* phase (``--jobs``), a burst *overload* phase submitting
    ``--overload`` times the service's capacity at once (rejections are
    the expected, graceful output), and a *fault tenant* whose jobs run
    seeded fault injection through the resilience rollback path on the sim
    backend.  ``--batch-window`` turns on queue-level dynamic batching so
    compatible jobs coalesce into one multi-RHS solve.  ``--check``
    re-solves every served job directly and fails unless the served
    results are bit-identical (docs/serving.md) — batched dispatches
    included.
    """
    import asyncio
    import json
    import time

    from repro.serve import (BatchPolicy, LoadGenerator, RetryPolicy,
                             ServicePolicy, SolverService)
    from repro.solvers import solve

    matrix, dims = _load_matrix(args.matrix)
    rng = np.random.default_rng(args.seed)

    retry = RetryPolicy(base_delay=args.retry_base_delay)
    batch = (BatchPolicy(max_batch=args.max_batch, max_wait_ms=args.batch_window)
             if args.batch_window > 0 and args.max_batch > 1 else None)
    policy = ServicePolicy(
        max_queue_depth=args.queue_depth,
        default_deadline=args.deadline,
        retry=retry,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        batch=batch,
    )
    mreg = None
    if args.metrics:
        from repro.telemetry import MetricsRegistry

        mreg = MetricsRegistry()

    def spec(tenant: str, **extra) -> dict:
        s = {
            "matrix": matrix, "b": rng.standard_normal(matrix.n),
            "config": args.config, "tenant": tenant,
            "seed": int(rng.integers(2**31)),
            "grid_dims": dims, "num_ipus": args.ipus,
            "tiles_per_ipu": args.tiles, "backend": args.backend,
        }
        s.update(extra)
        return s

    async def run() -> dict:
        service = SolverService(policy=policy, workers=args.workers,
                                metrics=mreg)
        gen = LoadGenerator(service)
        phases: dict = {}
        async with service:
            specs = [spec(f"tenant-{i % args.tenants}") for i in range(args.jobs)]
            if args.fault_tenant:
                specs += [
                    spec("faulty", backend="sim",
                         inject_faults=f"seed={7 + i};bitflip:p=0.004,where=exchange",
                         resilience="")
                    for i in range(max(2, args.jobs // 8))
                ]
            report = await gen.run(specs, interarrival=args.interarrival)
            phases["baseline"] = report

            if args.overload > 0:
                capacity = args.queue_depth + args.workers
                burst = [spec(f"tenant-{i % args.tenants}")
                         for i in range(args.overload * capacity)]
                phases["overload"] = await gen.run(burst)
        accounting = service.accounting()
        quarantined = service.breaker.quarantined()
        cache_stats = service.cache.stats()
        return {"phases": phases, "accounting": accounting,
                "quarantined": quarantined, "cache": cache_stats}

    t0 = time.perf_counter()
    out = asyncio.run(run())
    wall = time.perf_counter() - t0

    print(f"matrix:     n={matrix.n} nnz={matrix.nnz}; config {args.config!r} "
          f"on the {args.backend} backend")
    batching = (f"batch window {args.batch_window:g}ms x{args.max_batch}"
                if batch is not None else "batching off")
    print(f"service:    {args.workers} worker(s), queue depth {args.queue_depth}, "
          f"{args.tenants} tenant(s), {batching}; load run took {wall:.2f}s")
    for name, report in out["phases"].items():
        s = report.summary()
        lat = s["exec_latency"]
        outcomes = ", ".join(f"{k}={v}" for k, v in sorted(s["outcomes"].items()))
        print(f"  {name:<9} {s['total']:>4} jobs: {outcomes}")
        if report.served:
            print(f"  {'':<9} exec latency p50={lat['p50'] * 1e3:.1f}ms "
                  f"p95={lat['p95'] * 1e3:.1f}ms "
                  f"(total p50={s['total_latency']['p50'] * 1e3:.1f}ms)")
    acc = out["accounting"]
    print(f"ledger:     submitted={acc['submitted']} accepted={acc['accepted']} "
          f"rejected={acc['rejected']} ok={acc['ok']} failed={acc['failed']} "
          f"timed_out={acc['timed_out']} retries={acc['retries']} "
          f"worker_faults={acc['worker_faults']}")
    print(f"            balanced={'yes' if acc['balanced'] else 'NO'}; "
          f"rejections={acc['rejections'] or '{}'}")
    if batch is not None:
        print(f"batching:   {acc['batches']} batched dispatch(es), "
              f"{acc['coalesced']} job(s) coalesced, "
              f"{acc['redispatched']} redispatched")
    cache = out["cache"]
    print(f"cache:      hits={cache['hits']} misses={cache['misses']} "
          f"evictions={cache['evictions']} size={cache['size']}/{cache['capacity']}")
    if out["quarantined"]:
        print(f"breaker:    {len(out['quarantined'])} structure(s) quarantined")
    if not acc["balanced"]:
        raise SystemExit("job ledger does not balance: a job was lost or duplicated")
    if acc["worker_faults"]:
        raise SystemExit(f"{acc['worker_faults']} worker crash(es) under load")

    if args.check:
        mismatched = 0
        checked = 0
        for report in out["phases"].values():
            for rec in report.served:
                res = rec["result"]
                job = rec["spec"]
                ref = solve(
                    job["matrix"], job["b"], res.effective_config,
                    grid_dims=job.get("grid_dims"),
                    num_ipus=job.get("num_ipus", 1),
                    tiles_per_ipu=job.get("tiles_per_ipu", 16),
                    backend=job.get("backend", "sim"),
                    inject_faults=job.get("inject_faults"),
                    resilience=job.get("resilience"),
                )
                checked += 1
                if not (np.array_equal(res.result.x, ref.x)
                        and res.result.stats.residuals == ref.stats.residuals):
                    mismatched += 1
        print(f"check:      {checked} served job(s) re-solved directly; "
              f"{'all bit-identical' if mismatched == 0 else f'{mismatched} MISMATCHED'}")
        if mismatched:
            raise SystemExit("served results are not bit-identical to direct solve()")

    if args.metrics:
        mreg.write(Path(args.metrics))
        print(f"metrics written to {args.metrics}")
    if args.report:
        doc = {
            "phases": {k: v.summary() for k, v in out["phases"].items()},
            "accounting": acc,
            "cache": cache,
            "quarantined": out["quarantined"],
            "wall_seconds": wall,
        }
        Path(args.report).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.report}")
    return 0


def _cmd_info(args) -> int:
    from repro.machine import MK2

    print("GraphCore Mk2 IPU (simulated):")
    print(f"  tiles per IPU:         {MK2.tiles_per_ipu}")
    print(f"  worker threads / tile: {MK2.workers_per_tile}")
    print(f"  SRAM per tile:         {MK2.sram_per_tile / 1024:.0f} kB")
    print(f"  clock:                 {MK2.clock_hz / 1e9:.2f} GHz")
    print(f"  exchange fabric:       {MK2.exchange_bytes_per_cycle} B/cycle/tile")
    print(f"  IPU-Links:             {MK2.link_bytes_per_cycle_per_ipu} B/cycle/chip")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a sparse linear system")
    p_solve.add_argument("--matrix", required=True,
                         help="poisson[2d|3d]:N | g3|afshell|geo|hook[:size] | file.mtx")
    p_solve.add_argument("--config", required=True,
                         help="solver config: JSON string, path to a .json file, or a "
                              "bare solver name like 'cg'")
    p_solve.add_argument("--rhs", help="right-hand side as a .npy file (default: random)")
    p_solve.add_argument("--ipus", type=int, default=1)
    p_solve.add_argument("--tiles", type=int, default=16, help="tiles per IPU")
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--backend", choices=["sim", "fast", "fused"], default="sim",
                         help="runtime backend: cycle-accurate sim (default), "
                              "numerics-only fast, or kernel-dispatch fused "
                              "(docs/runtime.md)")
    p_solve.add_argument("--profile", action="store_true", help="print the cycle breakdown")
    p_solve.add_argument("--trace",
                         help="write a Chrome trace_event JSON (Perfetto-loadable) of "
                              "the run; requires --backend sim (docs/observability.md)")
    p_solve.add_argument("--wall-trace", metavar="PATH",
                         help="write a measured wall-clock Chrome trace (wall_ns "
                              "clock domain, any backend) of per-kernel/per-step "
                              "host timing (docs/observability.md)")
    p_solve.add_argument("--metrics", metavar="PATH",
                         help="write a metrics snapshot: .json for the structured "
                              "form, anything else Prometheus text; inspect with "
                              "'repro metrics-report' (docs/observability.md)")
    p_solve.add_argument("--progress", nargs="?", const=1, default=None,
                         type=int, metavar="N",
                         help="print live convergence progress to stderr every N "
                              "recorded iterations (default 1)")
    p_solve.add_argument("--output", help="write the solution vector to a .npy file")
    p_solve.add_argument("--inject-faults", metavar="SPEC",
                         help="deterministic seeded fault injection; compact grammar "
                              "like 'seed=7;bitflip:p=0.01,where=exchange', a JSON "
                              "string, or a .json plan file; requires --backend sim "
                              "(docs/resilience.md)")
    p_solve.add_argument("--resilience", nargs="?", const="", default=None,
                         metavar="CONF",
                         help="enable detection + checkpoint/rollback recovery; "
                              "optional 'key=value,...' overrides such as "
                              "'checkpoint_every=5,max_rollbacks=4' (docs/resilience.md)")
    p_solve.add_argument("--resilience-report", metavar="PATH",
                         help="write the resilience report as JSON to PATH")
    p_solve.add_argument("--repeat", type=int, default=1, metavar="N",
                         help="solve the same system N times through the "
                              "structure-keyed compile cache and report the "
                              "amortized host wall-clock (docs/performance.md)")
    p_solve.set_defaults(fn=_cmd_solve)

    p_batch = sub.add_parser(
        "batch",
        help="solve many right-hand sides at once: one batched multi-RHS "
             "program by default (docs/solvers.md), or one solve per rhs "
             "through a compile-cache session with --no-batch-axis")
    p_batch.add_argument("--matrix", required=True,
                         help="poisson[2d|3d]:N | g3|afshell|geo|hook[:size] | file.mtx")
    p_batch.add_argument("--config", required=True,
                         help="solver config: JSON string, path to a .json file, or a "
                              "bare solver name like 'cg'")
    p_batch.add_argument("--rhs",
                         help="right-hand sides as an (m, n) .npy file, one per row "
                              "(default: --count random vectors)")
    p_batch.add_argument("--count", type=int, default=4,
                         help="number of random right-hand sides when --rhs is absent")
    p_batch.add_argument("--ipus", type=int, default=1)
    p_batch.add_argument("--tiles", type=int, default=16, help="tiles per IPU")
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument("--backend", choices=["sim", "fast", "fused"], default="sim")
    p_batch.add_argument("--no-batch-axis", action="store_true",
                         help="solve the right-hand sides one at a time through "
                              "the compile-cache session instead of one batched "
                              "program (the pre-batching behavior)")
    p_batch.add_argument("--output",
                         help="write the stacked solutions to a .npy file, one row per rhs")
    p_batch.set_defaults(fn=_cmd_batch)

    p_faults = sub.add_parser(
        "faults", help="parse a fault-injection spec and print its canonical JSON")
    p_faults.add_argument("spec",
                          help="compact grammar ('seed=7;bitflip:p=0.01'), JSON string, "
                               "or .json plan file")
    p_faults.add_argument("--out", help="write the normalized plan JSON to a file")
    p_faults.set_defaults(fn=_cmd_faults)

    p_trace = sub.add_parser("trace-report",
                             help="aggregate a --trace file into hot-spot / "
                                  "imbalance / convergence summaries")
    p_trace.add_argument("trace", help="trace file (Chrome trace_event JSON or NDJSON)")
    p_trace.add_argument("--top", type=int, default=10,
                         help="how many hottest compute sets to show")
    p_trace.add_argument("--check", action="store_true",
                         help="validate the Chrome trace_event schema first "
                              "(exit nonzero on violations)")
    p_trace.set_defaults(fn=_cmd_trace_report)

    p_metrics = sub.add_parser(
        "metrics-report",
        help="summarize a --metrics snapshot (Prometheus text or JSON): "
             "per-kernel wall time, GB/s, GFLOP/s")
    p_metrics.add_argument("path", help="metrics snapshot written by solve --metrics")
    p_metrics.add_argument("--top", type=int, default=10,
                           help="how many hottest kernels to show")
    p_metrics.set_defaults(fn=_cmd_metrics_report)

    p_rep = sub.add_parser("compile-report",
                           help="show what the graph compiler does to a solver program")
    p_rep.add_argument("--matrix", required=True,
                       help="poisson3d:N | poisson2d:N | g3|afshell|geo|hook[:size] | file.mtx")
    p_rep.add_argument("--config", required=True,
                       help="solver config: JSON string or path to a .json file")
    p_rep.add_argument("--ipus", type=int, default=1)
    p_rep.add_argument("--tiles", type=int, default=16, help="tiles per IPU")
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("--no-opt", action="store_true",
                       help="freeze the raw schedule (skip optimization passes)")
    p_rep.add_argument("--tree", action="store_true", help="print the optimized step tree")
    p_rep.add_argument("--depth", type=int, default=8, help="step-tree depth limit")
    p_rep.set_defaults(fn=_cmd_compile_report)

    p_serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant serving runtime in-process and drive "
             "it with a load run: baseline, overload burst, fault tenant "
             "(docs/serving.md)")
    p_serve.add_argument("--matrix", required=True,
                         help="poisson[2d|3d]:N | g3|afshell|geo|hook[:size] | file.mtx")
    p_serve.add_argument("--config", default="cg",
                         help="solver config: JSON string, .json file, or a bare "
                              "solver name (default: cg)")
    p_serve.add_argument("--ipus", type=int, default=1)
    p_serve.add_argument("--tiles", type=int, default=16, help="tiles per IPU")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="seeds the right-hand sides and per-job retry schedules")
    p_serve.add_argument("--backend", choices=["sim", "fast", "fused"], default="fast",
                         help="backend for regular tenants (fault tenant always "
                              "uses sim); default fast")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker threads executing solves")
    p_serve.add_argument("--queue-depth", type=int, default=8,
                         help="bounded job-queue capacity (admission control)")
    p_serve.add_argument("--jobs", type=int, default=16,
                         help="baseline-phase job count")
    p_serve.add_argument("--tenants", type=int, default=2,
                         help="tenants the baseline/overload jobs rotate across")
    p_serve.add_argument("--deadline", type=float, default=None,
                         help="per-job wall-clock deadline in seconds "
                              "(queue wait included)")
    p_serve.add_argument("--interarrival", type=float, default=0.0,
                         help="baseline-phase pacing between submissions (seconds); "
                              "0 submits everything at once")
    p_serve.add_argument("--overload", type=int, default=0, metavar="FACTOR",
                         help="after the baseline, burst FACTOR x (queue depth + "
                              "workers) jobs at once; typed rejections expected")
    p_serve.add_argument("--quota-rate", type=float, default=None,
                         help="per-tenant token-bucket refill (jobs/second); "
                              "unset disables quotas")
    p_serve.add_argument("--quota-burst", type=float, default=8.0,
                         help="per-tenant token-bucket burst depth")
    p_serve.add_argument("--retry-base-delay", type=float, default=0.05,
                         help="first retry backoff in seconds")
    p_serve.add_argument("--batch-window", type=float, default=0.0, metavar="MS",
                         help="dynamic-batching assembly window in milliseconds: "
                              "compatible queued jobs coalesce into one multi-RHS "
                              "solve; 0 (default) disables queue-level batching")
    p_serve.add_argument("--max-batch", type=int, default=8, metavar="B",
                         help="most jobs one dispatch may coalesce "
                              "(with --batch-window > 0)")
    p_serve.add_argument("--fault-tenant", action="store_true",
                         help="add a tenant whose jobs inject seeded faults and "
                              "recover through the resilience rollback path "
                              "(sim backend)")
    p_serve.add_argument("--check", action="store_true",
                         help="re-solve every served job directly and fail unless "
                              "bit-identical (the serving-is-observational contract)")
    p_serve.add_argument("--metrics", metavar="PATH",
                         help="write the service metrics snapshot (.json or "
                              "Prometheus text)")
    p_serve.add_argument("--report", metavar="PATH",
                         help="write the load-run summary as JSON")
    p_serve.set_defaults(fn=_cmd_serve)

    p_info = sub.add_parser("info", help="print the simulated device spec")
    p_info.set_defaults(fn=_cmd_info)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        # Each framework error family has its own nonzero exit code so
        # scripts and CI can tell an OOM from a breakdown (repro.errors).
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # report piped into head/less and cut short
        sys.exit(0)
