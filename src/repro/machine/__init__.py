"""Deterministic machine model of the GraphCore Mk2 IPU.

The paper measures IPU performance with Poplar's cycle profiler, relying on
the architecture's determinism ("the execution time is the same for every
invocation").  This package reproduces that measurement methodology in
software: a Bulk-Synchronous-Parallel machine with

- tiles holding exclusive SRAM (:mod:`repro.machine.tile`),
- six independent worker threads per tile,
- an all-to-all on-chip exchange fabric and inter-chip IPU-Links
  (:mod:`repro.machine.fabric`),
- the per-operation cycle costs of Table I (:mod:`repro.machine.cycles`),
- a hierarchical cycle profiler (:mod:`repro.machine.profiler`), and
- the IPUTHREADING worker-spawn model (:mod:`repro.machine.threading`).
"""

from repro.machine.spec import IPUSpec, MK2
from repro.machine.cycles import CycleModel
from repro.machine.tile import Tile
from repro.machine.fabric import ExchangeFabric, Transfer
from repro.machine.device import IPUDevice
from repro.machine.profiler import Profiler

__all__ = [
    "IPUSpec",
    "MK2",
    "CycleModel",
    "Tile",
    "ExchangeFabric",
    "Transfer",
    "IPUDevice",
    "Profiler",
]
