"""Architecture specification of the simulated IPU.

All constants are taken from the paper (Sec. II-A, Tables I and III) and
GraphCore's published Mk2 documentation.  The spec is a plain frozen
dataclass so experiments can sweep variants (tile counts, link bandwidths)
without touching the model code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["IPUSpec", "MK2"]


@dataclass(frozen=True)
class IPUSpec:
    """Static parameters of one IPU chip and its interconnect."""

    #: Processor tiles per chip (Mk2: 1,472).
    tiles_per_ipu: int = 1472
    #: Independent worker threads per tile; full utilization needs all six.
    workers_per_tile: int = 6
    #: Local SRAM per tile in bytes (≈612 kB; 900 MB per chip).
    sram_per_tile: int = 612 * 1024
    #: Tile clock in Hz (Mk2 runs at 1.33 GHz).
    clock_hz: float = 1.33e9

    # -- exchange fabric (on-chip, stateless, all-to-all) -------------------------
    #: Bytes a tile can push into the fabric per cycle.
    exchange_bytes_per_cycle: float = 4.0
    #: Fixed cycles charged per communication *instruction* (one per region in
    #: the blockwise scheme, one per cell in the naive scheme) on the issuing
    #: tile.  This is what the Sec. IV reordering minimizes.
    exchange_instr_cycles: int = 6
    #: Cycles for the chip-wide BSP synchronization before an exchange.
    sync_cycles: int = 64

    # -- IPU-Links (inter-chip, stateful, packaged) --------------------------------
    #: Aggregate bytes per cycle per chip over its IPU-Links (Mk2: ten links
    #: at 32 GB/s ≈ 320 GB/s ≈ 240 B/cycle at 1.33 GHz).  Links are a shared
    #: per-chip resource, far below the on-chip all-to-all fabric.
    link_bytes_per_cycle_per_ipu: float = 240.0
    #: Extra synchronization cycles when a superstep spans multiple IPUs.
    link_sync_cycles: int = 256

    # -- scalar pipeline -----------------------------------------------------------
    #: Cycles per scalar float32 arithmetic operation on one worker thread
    #: (Table I: 6 cycles for add/mul/div — the 6-deep rotating pipeline).
    f32_op_cycles: int = 6
    #: Width of the float32 SIMD unit (most f32 instructions are 2-wide).
    f32_vector_width: int = 2

    def with_(self, **kwargs) -> "IPUSpec":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    @property
    def sram_per_ipu(self) -> int:
        return self.sram_per_tile * self.tiles_per_ipu

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds at the tile clock."""
        return cycles / self.clock_hz


#: The GraphCore Mk2 chip used throughout the paper.
MK2 = IPUSpec()
