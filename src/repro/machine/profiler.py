"""Hierarchical cycle profiler — the analogue of Poplar's profiling feature.

The paper's Table IV buckets solver execution into ILU solve / SpMV / reduce
/ elementwise / extended-precision ops; the profiler supports exactly that:
cycles are recorded against a *category* within the currently open step
stack, and reports aggregate per category or per step path.

BSP semantics note: callers record the cycles of one *superstep* (already
max-reduced over tiles) — the profiler sums supersteps into program time.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager

__all__ = ["Profiler"]


class Profiler:
    def __init__(self):
        self._by_category = defaultdict(int)
        self._by_path = defaultdict(int)
        self._stack: list[str] = []
        self.total_cycles = 0

    # -- recording -----------------------------------------------------------------

    @contextmanager
    def step(self, name: str):
        """Open a named step; nested records attribute to ``a/b/c`` paths."""
        self._stack.append(name)
        try:
            yield self
        finally:
            self._stack.pop()

    def record(self, category: str, cycles: int) -> None:
        """Charge ``cycles`` of program time to ``category``."""
        if cycles < 0:
            raise ValueError("negative cycle count")
        self.total_cycles += cycles
        self._by_category[category] += cycles
        path = "/".join(self._stack) if self._stack else "<toplevel>"
        self._by_path[path] += cycles

    def reset(self) -> None:
        self._by_category.clear()
        self._by_path.clear()
        self.total_cycles = 0

    # -- reporting -----------------------------------------------------------------

    def by_category(self) -> dict:
        return dict(self._by_category)

    def by_path(self, inclusive: bool = True) -> dict:
        """Cycles per step path.

        ``inclusive`` (the default) rolls nested records up into every
        ancestor path, so ``solve:cg`` includes the cycles recorded under
        ``solve:cg/cg.iterate`` — the hierarchical view Table IV needs.
        ``inclusive=False`` returns only each path's own (exclusive)
        records.
        """
        if not inclusive:
            return dict(self._by_path)
        rolled = defaultdict(int)
        for path, cycles in self._by_path.items():
            rolled[path] += cycles
            if path != "<toplevel>":
                parts = path.split("/")
                for i in range(1, len(parts)):
                    rolled["/".join(parts[:i])] += cycles
        return dict(rolled)

    def fractions(self) -> dict:
        """Relative share of each category — Table IV's columns.

        Empty when nothing was recorded (rather than zeros-over-one)."""
        if not self.total_cycles:
            return {}
        return {k: v / self.total_cycles for k, v in self._by_category.items()}

    def category(self, name: str) -> int:
        return self._by_category.get(name, 0)

    def report(self) -> str:
        """Human-readable breakdown sorted by share."""
        lines = [f"total cycles: {self.total_cycles}"]
        for cat, frac in sorted(self.fractions().items(), key=lambda kv: -kv[1]):
            lines.append(f"  {cat:<28s} {self._by_category[cat]:>14d}  {frac:6.1%}")
        return "\n".join(lines)
