"""Multi-IPU device: a set of chips wired together by IPU-Links.

An ``IPUDevice`` owns the tiles, the exchange fabric, the cycle model, and a
profiler — everything the graph engine needs to execute programs and account
time.  ``IPUDevice.pod(n)`` builds the paper's IPU-POD configurations
(POD16 = 16 chips across four M2000s).
"""

from __future__ import annotations

from repro.machine.cycles import CycleModel
from repro.machine.fabric import ExchangeFabric
from repro.machine.profiler import Profiler
from repro.machine.spec import MK2, IPUSpec
from repro.machine.tile import Tile

__all__ = ["IPUDevice"]


class IPUDevice:
    """``num_ipus`` chips of ``spec.tiles_per_ipu`` tiles each.

    For laptop-scale experiments, ``tiles_per_ipu`` can be overridden to a
    small number while keeping the Mk2 per-tile parameters — the scaling
    benches do exactly that, holding rows-per-tile constant.
    """

    def __init__(self, num_ipus: int = 1, spec: IPUSpec = MK2, tiles_per_ipu: int | None = None):
        if num_ipus < 1:
            raise ValueError("need at least one IPU")
        if tiles_per_ipu is not None:
            spec = spec.with_(tiles_per_ipu=tiles_per_ipu)
        self.spec = spec
        self.num_ipus = num_ipus
        self.tiles = [
            Tile(tile_id=i, ipu_id=i // spec.tiles_per_ipu, spec=spec)
            for i in range(num_ipus * spec.tiles_per_ipu)
        ]
        self.model = CycleModel(spec=spec)
        self.fabric = ExchangeFabric(self.model, self.ipu_of)
        self.profiler = Profiler()

    @classmethod
    def pod(cls, num_ipus: int, spec: IPUSpec = MK2, tiles_per_ipu: int | None = None):
        """Convenience constructor mirroring GraphCore's POD naming."""
        return cls(num_ipus=num_ipus, spec=spec, tiles_per_ipu=tiles_per_ipu)

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    def tile(self, tile_id: int) -> Tile:
        return self.tiles[tile_id]

    def ipu_of(self, tile_id: int) -> int:
        return self.tiles[tile_id].ipu_id

    def same_ipu(self, a: int, b: int) -> bool:
        return self.ipu_of(a) == self.ipu_of(b)

    # -- aggregate accounting -----------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return self.profiler.total_cycles

    def seconds(self, cycles: int | None = None) -> float:
        """Wall-clock seconds for ``cycles`` (default: total so far)."""
        return self.spec.seconds(self.total_cycles if cycles is None else cycles)

    #: Measured power of four Mk2 IPUs on an M2000 (Sec. VI-A) -> per chip.
    WATTS_PER_IPU = 420.0 / 4

    def energy_j(self, cycles: int | None = None) -> float:
        """Modeled energy for ``cycles`` (default: total so far) at the
        paper's measured IPU power draw."""
        return self.seconds(cycles) * self.WATTS_PER_IPU * self.num_ipus

    def sram_report(self) -> dict:
        """Current/peak SRAM usage — partitioning sanity checks and the
        telemetry layer's per-tile high-water marks use this."""
        used = [t.bytes_used for t in self.tiles]
        peak = [t.bytes_peak for t in self.tiles]
        return {
            "max_tile_bytes": max(used, default=0),
            "total_bytes": sum(used),
            "max_tile_peak_bytes": max(peak, default=0),
            "per_tile_peak_bytes": peak,
            "capacity_per_tile": self.spec.sram_per_tile,
        }

    def __repr__(self):
        return f"IPUDevice(ipus={self.num_ipus}, tiles={self.num_tiles})"
