"""Per-operation cycle cost model (Table I of the paper).

Costs are *per worker thread*: a scalar float32 op occupies one 6-cycle slot
of the rotating pipeline; double-word and emulated-double ops are software
sequences whose cycle counts the paper measured on hardware.  The IPU's
two-pipeline design lets loads/stores dual-issue with float ops, so memory
accesses inside arithmetic kernels are not charged separately (Sec. VI-D
factor three).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dw import joldes, lange_rump, softfloat
from repro.machine.spec import MK2, IPUSpec

__all__ = ["CycleModel", "OP_CYCLES"]

#: Cycles per scalar operation on one worker, by dtype name and op.
#: float32 is native (Table I row 1); "dw"/"dw_fast" are the two TwoFloat
#: families; "float64" is the soft-float emulation.
OP_CYCLES = {
    "float32": {"add": 6, "sub": 6, "mul": 6, "div": 6, "sqrt": 6, "abs": 6, "neg": 6, "cmp": 6},
    "dw": {
        "add": joldes.CYCLES["add"],
        "sub": joldes.CYCLES["add"],
        "mul": joldes.CYCLES["mul"],
        "div": joldes.CYCLES["div"],
        "sqrt": joldes.CYCLES["div"] + joldes.CYCLES["add"],
        "abs": 6,
        "neg": 6,
        "cmp": 12,
    },
    "dw_fast": {
        "add": lange_rump.CYCLES["add"],
        "sub": lange_rump.CYCLES["add"],
        "mul": lange_rump.CYCLES["mul"],
        "div": lange_rump.CYCLES["div"],
        "sqrt": lange_rump.CYCLES["div"] + lange_rump.CYCLES["add"],
        "abs": 6,
        "neg": 6,
        "cmp": 12,
    },
    "float64": {
        "add": softfloat.CYCLES["add"],
        "sub": softfloat.CYCLES["add"],
        "mul": softfloat.CYCLES["mul"],
        "div": softfloat.CYCLES["div"],
        "sqrt": softfloat.CYCLES["div"] + softfloat.CYCLES["add"],
        "abs": 12,
        "neg": 12,
        "cmp": 24,
    },
}

#: dtype name -> bytes per element as stored in tile SRAM.
DTYPE_BYTES = {"float32": 4, "dw": 8, "dw_fast": 8, "float64": 8, "int32": 4}


@dataclass
class CycleModel:
    """Translates operation counts into worker-thread cycles."""

    spec: IPUSpec = field(default_factory=lambda: MK2)
    #: Fixed per-codelet-invocation overhead (vertex dispatch + prologue).
    vertex_overhead: int = 24
    #: Per-matrix-row overhead in sparse kernels (pointer chase + branch;
    #: single-cycle branches, Sec. II-C).
    row_overhead: int = 4

    def op(self, dtype: str, kind: str, count: int = 1) -> int:
        """Cycles for `count` scalar operations of `kind` on one worker."""
        return OP_CYCLES[dtype][kind] * count

    def elementwise(self, dtype: str, ops_per_element: int, n_elements: int) -> int:
        """Cycles for an elementwise kernel over ``n_elements`` on one worker.

        float32 uses the 2-wide SIMD pipelines where available; extended
        types are scalar software sequences.
        """
        per_el = OP_CYCLES[dtype]["add"] * ops_per_element  # homogeneous mix
        if dtype == "float32":
            lanes = self.spec.f32_vector_width
            return self.vertex_overhead + math.ceil(n_elements / lanes) * per_el
        return self.vertex_overhead + n_elements * per_el

    def elementwise_mixed(self, dtype: str, op_counts: dict, n_elements: int) -> int:
        """Like :meth:`elementwise` but with an explicit per-element op mix
        (e.g. ``{"mul": 2, "add": 1}``)."""
        per_el = sum(OP_CYCLES[dtype][k] * c for k, c in op_counts.items())
        if dtype == "float32":
            per_el = math.ceil(per_el / self.spec.f32_vector_width)
        return self.vertex_overhead + n_elements * per_el

    def spmv_rows(self, dtype: str, nnz: int, rows: int) -> int:
        """Cycles for a CRS SpMV over ``rows`` rows / ``nnz`` off-diagonal
        coefficients plus the dense-diagonal multiply, on one worker.

        Per nonzero: one multiply + one add at scalar rate — the gathered
        ``x[col]`` accesses defeat the 2-wide SIMD pairing (Sec. II-C), but
        the dual-issue pipelines overlap the value/index loads with the
        arithmetic (Sec. VI-D factor three).
        """
        per_nnz = OP_CYCLES[dtype]["mul"] + OP_CYCLES[dtype]["add"]
        diag = OP_CYCLES[dtype]["mul"] * rows
        return self.vertex_overhead + nnz * per_nnz + rows * self.row_overhead + diag

    #: Extra per-row cycles in triangular sweeps: the loop-carried dependency
    #: (each row needs the just-written neighbor values) defeats the
    #: dual-issue overlap that SpMV enjoys — pointer chase, branch, and the
    #: store-to-load stall are exposed.
    triangular_row_overhead: int = 16

    def triangular_rows(self, dtype: str, nnz: int, rows: int) -> int:
        """Cycles for a (forward or backward) substitution sweep segment:
        one mul+sub per nonzero, one divide per row, plus the dependency
        stall each row pays."""
        per_nnz = OP_CYCLES[dtype]["mul"] + OP_CYCLES[dtype]["sub"]
        return (
            nnz * per_nnz
            + rows * (OP_CYCLES[dtype]["div"] + self.triangular_row_overhead)
        )

    def reduce(self, dtype: str, n_elements: int) -> int:
        """Cycles for a local tree reduction over ``n_elements``."""
        return self.vertex_overhead + max(n_elements - 1, 0) * OP_CYCLES[dtype]["add"]

    # -- exchange ------------------------------------------------------------------

    def exchange_bytes(self, nbytes: int) -> int:
        """Cycles for one tile to stream ``nbytes`` through the on-chip fabric."""
        return math.ceil(nbytes / self.spec.exchange_bytes_per_cycle)

    def link_bytes(self, nbytes: int) -> int:
        """Cycles for one chip to move ``nbytes`` across its IPU-Links."""
        return math.ceil(nbytes / self.spec.link_bytes_per_cycle_per_ipu)

    def sync(self, inter_ipu: bool = False) -> int:
        """BSP synchronization cost for one superstep boundary."""
        return self.spec.link_sync_cycles if inter_ipu else self.spec.sync_cycles
