"""Exchange fabric and IPU-Link cost model.

On-chip, every tile pair is connected by a stateless all-to-all fabric; the
compiler schedules cycle-precise transfers after a BSP sync.  A region sent
to several neighbor tiles is *broadcast*: the sender streams it once and all
receivers latch it (Sec. IV, benefit 2).  Traffic that crosses chips rides
the slower, stateful IPU-Links.

The model charges, per exchange phase:

- a BSP sync (chip-wide, or fleet-wide if any transfer crosses chips),
- per participating tile, one instruction overhead per region it sends or
  receives (the communication-program size the reordering strategy shrinks),
- streaming time = max over tiles of (bytes sent, bytes received) divided by
  the relevant per-tile bandwidth — tiles stream in parallel, which is what
  produces the paper's flat weak-scaling halo-exchange time (Fig. 6).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.machine.cycles import CycleModel

__all__ = ["Transfer", "ExchangePhase", "ExchangeFabric"]


@dataclass(frozen=True)
class Transfer:
    """One blockwise copy: a contiguous region broadcast from ``src_tile``
    to every tile in ``dst_tiles``."""

    src_tile: int
    dst_tiles: tuple
    nbytes: int

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError("negative transfer size")
        if not self.dst_tiles:
            raise ValueError("transfer with no destination tiles")


@dataclass
class ExchangePhase:
    """Cost breakdown of one exchange superstep."""

    cycles: int = 0
    sync_cycles: int = 0
    stream_cycles: int = 0
    instr_cycles: int = 0
    total_bytes: int = 0
    num_instructions: int = 0
    inter_ipu: bool = False


class ExchangeFabric:
    """Cost model for BSP exchange phases on a (multi-)IPU device."""

    def __init__(self, model: CycleModel, ipu_of):
        """``ipu_of`` maps a global tile id to its IPU index."""
        self.model = model
        self.ipu_of = ipu_of

    def run(self, transfers) -> ExchangePhase:
        """Price one exchange phase consisting of ``transfers``."""
        transfers = list(transfers)
        phase = ExchangePhase()
        if not transfers:
            return phase

        send_bytes = defaultdict(int)
        recv_bytes = defaultdict(int)
        instr_count = defaultdict(int)
        link_out = defaultdict(int)  # per-chip bytes leaving over IPU-Links
        link_in = defaultdict(int)  # per-chip bytes arriving over IPU-Links
        any_inter = False

        for t in transfers:
            src_ipu = self.ipu_of(t.src_tile)
            # Broadcast: the sender streams the region once...
            send_bytes[t.src_tile] += t.nbytes
            instr_count[t.src_tile] += 1
            # ...and every receiver latches its own copy.
            for d in t.dst_tiles:
                recv_bytes[d] += t.nbytes
                instr_count[d] += 1
            # Traffic that crosses chips rides the shared per-chip links
            # (one link transit per destination chip).
            dst_ipus = {self.ipu_of(d) for d in t.dst_tiles} - {src_ipu}
            if dst_ipus:
                any_inter = True
                link_out[src_ipu] += t.nbytes * len(dst_ipus)
                for ipu in dst_ipus:
                    link_in[ipu] += t.nbytes
            phase.total_bytes += t.nbytes * len(t.dst_tiles)
            phase.num_instructions += 1 + len(t.dst_tiles)

        stream = 0
        for tile in set(send_bytes) | set(recv_bytes):
            busy = max(
                self.model.exchange_bytes(send_bytes[tile]),
                self.model.exchange_bytes(recv_bytes[tile]),
            )
            stream = max(stream, busy)
        for ipu in set(link_out) | set(link_in):
            stream = max(
                stream,
                self.model.link_bytes(max(link_out[ipu], link_in[ipu])),
            )

        instr = max(
            (instr_count[t] * self.model.spec.exchange_instr_cycles for t in instr_count),
            default=0,
        )

        phase.inter_ipu = any_inter
        phase.sync_cycles = self.model.sync(inter_ipu=any_inter)
        phase.stream_cycles = stream
        phase.instr_cycles = instr
        phase.cycles = phase.sync_cycles + phase.stream_cycles + phase.instr_cycles
        return phase
