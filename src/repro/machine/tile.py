"""A single IPU tile: exclusive SRAM plus six worker threads."""

from __future__ import annotations

import numpy as np

from repro.errors import SRAMOverflowError
from repro.machine.spec import IPUSpec

# Re-exported for backward compatibility: the class now lives in
# repro.errors so it can participate in the unified error hierarchy.
__all__ = ["Tile", "SRAMOverflowError"]


class Tile:
    """One processor tile.

    ``memory`` maps shard names to NumPy arrays (a double-word shard is a
    pair of arrays registered under ``name`` and ``name + ".lo"``).  The tile
    enforces its SRAM capacity — the hard constraint that shapes all
    partitioning decisions on a real IPU.
    """

    __slots__ = ("tile_id", "ipu_id", "spec", "memory", "_bytes_used", "_bytes_peak")

    def __init__(self, tile_id: int, ipu_id: int, spec: IPUSpec):
        self.tile_id = tile_id
        self.ipu_id = ipu_id
        self.spec = spec
        self.memory: dict[str, np.ndarray] = {}
        self._bytes_used = 0
        self._bytes_peak = 0

    @property
    def bytes_used(self) -> int:
        return self._bytes_used

    @property
    def bytes_peak(self) -> int:
        """High-water mark of SRAM usage over the tile's lifetime — what the
        telemetry layer reports per tile (frees never lower it)."""
        return self._bytes_peak

    @property
    def bytes_free(self) -> int:
        return self.spec.sram_per_tile - self._bytes_used

    def alloc(self, name: str, array: np.ndarray) -> np.ndarray:
        """Place ``array`` in tile SRAM under ``name``; enforce capacity."""
        if name in self.memory:
            raise KeyError(f"tile {self.tile_id}: shard {name!r} already allocated")
        nbytes = int(array.nbytes)
        if nbytes > self.bytes_free:
            raise SRAMOverflowError(
                f"allocating shard {name!r} exceeds SRAM capacity",
                tile_id=self.tile_id,
                requested=nbytes,
                free=self.bytes_free,
                capacity=self.spec.sram_per_tile,
            )
        self.memory[name] = array
        self._bytes_used += nbytes
        if self._bytes_used > self._bytes_peak:
            self._bytes_peak = self._bytes_used
        return array

    def free(self, name: str) -> None:
        arr = self.memory.pop(name)
        self._bytes_used -= int(arr.nbytes)

    def get(self, name: str) -> np.ndarray:
        return self.memory[name]

    def __contains__(self, name: str) -> bool:
        return name in self.memory

    def run_workers(self, worker_cycles) -> int:
        """Execute one compute set on this tile's worker threads.

        ``worker_cycles`` is an iterable of per-worker cycle counts (at most
        ``workers_per_tile`` entries).  BSP semantics: the tile is busy until
        its slowest worker finishes.
        """
        costs = list(worker_cycles)
        if len(costs) > self.spec.workers_per_tile:
            raise ValueError(
                f"{len(costs)} workers requested on a "
                f"{self.spec.workers_per_tile}-worker tile"
            )
        return max(costs, default=0)

    def __repr__(self):
        return (
            f"Tile(id={self.tile_id}, ipu={self.ipu_id}, "
            f"used={self._bytes_used}/{self.spec.sram_per_tile} B)"
        )
