"""``WallTracer``: measured host wall-clock profiling for the fast backends.

The cycle-domain :class:`~repro.telemetry.tracer.Tracer` only works on the
sim backend — the ``fast``/``fused`` backends have no cycle clock, which
left them observably blind beyond the five :class:`GlobalCounters`
integers.  The ``WallTracer`` closes that gap: attached through
``Backend.set_wall_tracer`` (every backend accepts it), it records one
``perf_counter_ns`` span per fused-kernel launch and per non-kernel
dispatch, tagged with the kernel id, step kind, fused step counts, and the
static byte/FLOP estimate from :mod:`repro.graph.passes.costs` — so
measured wall time reads directly as per-kernel GB/s and GFLOP/s
(roofline-style, after the Citadel IPU microbenchmarking methodology).

Events reuse the frozen telemetry event classes and the existing Chrome /
NDJSON exporters, but in a distinct clock domain: ``metadata.clock`` is
``"wall_ns"`` and ``metadata.clock_hz`` is 1e9, so the generic ns→µs
scaling in :func:`~repro.telemetry.exporters.chrome_trace` is exact and a
wall trace loads in Perfetto next to a sim cycle trace without ambiguity
(the sim device's modeled rate travels separately as
``device_clock_hz``).  Timestamps are offsets from the tracer's first
binding, so traces start near zero.

Like the cycle tracer, wall tracing is observational: it never touches the
numerics, so a traced run is bit-identical in tensors to an untraced one —
only wall time (the thing being measured) changes, by the cost of two
``perf_counter_ns`` calls per dispatch.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.telemetry.events import InstantEvent, SpanEvent

__all__ = ["WallTracer", "WALL_CLOCK_HZ"]

#: Nanosecond timestamps exported through the generic cycles→µs scaling.
WALL_CLOCK_HZ = 1e9


class WallTracer:
    """Collects wall-clock spans from one program execution."""

    def __init__(self, metrics=None):
        self.events: list = []
        self.meta: dict = {"clock": "wall_ns", "clock_hz": WALL_CLOCK_HZ}
        self.device = None
        #: Optional :class:`~repro.telemetry.metrics.MetricsRegistry` the
        #: tracer feeds per-kernel series into (``None`` costs nothing).
        self.metrics = metrics
        self._t0: int | None = None
        # name -> [kind, launches, wall_ns, est_bytes, est_flops]
        self._agg: dict = {}

    # -- binding / clock -----------------------------------------------------------

    def bind(self, device) -> None:
        """Attach the executing device (records its shape in the metadata).

        Called by ``Backend.set_wall_tracer``; rebinding on a program
        rebuild keeps the original time origin, so one tracer's timeline
        stays monotone across graceful-degradation restarts.
        """
        self.device = device
        if self._t0 is None:
            self._t0 = time.perf_counter_ns()
        spec = device.spec
        self.meta.update(
            num_ipus=device.num_ipus,
            num_tiles=device.num_tiles,
            tiles_per_ipu=spec.tiles_per_ipu,
            device_clock_hz=spec.clock_hz,
            sram_per_tile=spec.sram_per_tile,
        )

    def now(self) -> int:
        """Nanoseconds since the tracer's first binding."""
        if self._t0 is None:
            self._t0 = time.perf_counter_ns()
        return time.perf_counter_ns() - self._t0

    # -- backend hooks (one call per launch / dispatch) ----------------------------

    def _accumulate(self, name: str, kind: str, dur: int, est_bytes: int,
                    est_flops: int) -> None:
        entry = self._agg.get(name)
        if entry is None:
            entry = self._agg[name] = [kind, 0, 0, 0, 0]
        entry[1] += 1
        entry[2] += dur
        entry[3] += est_bytes
        entry[4] += est_flops
        m = self.metrics
        if m is not None:
            m.counter(
                "repro_kernel_wall_ns_total", "measured wall ns per kernel/step"
            ).inc(dur, name=name, kind=kind)
            m.counter(
                "repro_kernel_launches_total", "launches per kernel/step"
            ).inc(1, name=name, kind=kind)
            if est_bytes:
                m.counter(
                    "repro_kernel_bytes_total", "estimated bytes per kernel/step"
                ).inc(est_bytes, name=name, kind=kind)
            if est_flops:
                m.counter(
                    "repro_kernel_flops_total", "estimated flops per kernel/step"
                ).inc(est_flops, name=name, kind=kind)
            m.histogram(
                "repro_kernel_wall_seconds", "per-launch wall time distribution"
            ).observe(dur * 1e-9, name=name)

    def kernel(self, kernel, start: int) -> None:
        """Record one fused-kernel launch (``start`` from :meth:`now`)."""
        dur = self.now() - start
        self.events.append(
            SpanEvent(
                kernel.name,
                "kernel",
                start,
                dur,
                {
                    "kind": "kernel",
                    "n_compute": kernel.n_compute,
                    "n_exchange": kernel.n_exchange,
                    "n_dispatch": kernel.n_dispatch,
                    "n_fallback": kernel.n_fallback,
                    "est_bytes": kernel.est_bytes,
                    "est_flops": kernel.est_flops,
                },
            )
        )
        self._accumulate(kernel.name, "kernel", dur, kernel.est_bytes, kernel.est_flops)

    def dispatch(self, name: str, kind: str, start: int, est_bytes: int = 0,
                 est_flops: int = 0) -> None:
        """Record one non-kernel step dispatch (``kind`` = compute/exchange)."""
        dur = self.now() - start
        self.events.append(
            SpanEvent(
                name,
                kind,
                start,
                dur,
                {"kind": kind, "est_bytes": est_bytes, "est_flops": est_flops},
            )
        )
        self._accumulate(name, kind, dur, est_bytes, est_flops)

    @contextmanager
    def scope(self, label: str):
        """Span covering a labeled program scope (nests over the launches)."""
        start = self.now()
        try:
            yield self
        finally:
            self.events.append(
                SpanEvent(label, "scope", start, self.now() - start, {})
            )

    def finalize(self) -> None:
        """Emit the end-of-run totals instant (idempotent per totals)."""
        total = sum(e[2] for e in self._agg.values())
        self.events.append(
            InstantEvent(
                "wall_totals",
                "wall",
                self.now(),
                {
                    "spans": sum(e[1] for e in self._agg.values()),
                    "wall_ns": total,
                    "est_bytes": sum(e[3] for e in self._agg.values()),
                    "est_flops": sum(e[4] for e in self._agg.values()),
                },
            )
        )

    # -- views ----------------------------------------------------------------------

    def profile(self, top: int | None = None) -> dict:
        """Aggregated per-kernel wall profile.

        Returns ``{"clock": "wall_ns", "total_wall_ns": ..., "kernels":
        [...]}`` with one row per kernel / step name: launches, total
        measured nanoseconds, the byte/FLOP estimates, and the derived
        GB/s and GFLOP/s.  Rows are sorted hottest-first; ``top`` limits
        how many are returned.
        """
        rows = []
        for name, (kind, launches, ns, est_b, est_f) in self._agg.items():
            sec = ns * 1e-9
            rows.append(
                {
                    "name": name,
                    "kind": kind,
                    "launches": launches,
                    "wall_ns": ns,
                    "est_bytes": est_b,
                    "est_flops": est_f,
                    "gb_per_s": (est_b / sec / 1e9) if sec > 0 and est_b else 0.0,
                    "gflop_per_s": (est_f / sec / 1e9) if sec > 0 and est_f else 0.0,
                }
            )
        rows.sort(key=lambda r: -r["wall_ns"])
        if top is not None:
            rows = rows[:top]
        return {
            "clock": "wall_ns",
            "total_wall_ns": sum(e[2] for e in self._agg.values()),
            "kernels": rows,
        }

    def report(self, top: int = 10):
        """Aggregate the event stream into a :class:`TelemetryReport`."""
        from repro.telemetry.report import TelemetryReport

        return TelemetryReport.from_events(self.events, meta=self.meta, top=top)

    def to_chrome(self, path=None) -> dict:
        """Chrome ``trace_event`` JSON in the wall-clock domain."""
        from repro.telemetry.exporters import chrome_trace, write_chrome

        if path is not None:
            return write_chrome(self.events, path, meta=self.meta)
        return chrome_trace(self.events, meta=self.meta)

    def to_ndjson(self, path) -> None:
        """Newline-delimited JSON, nanosecond timestamps."""
        from repro.telemetry.exporters import write_ndjson

        write_ndjson(self.events, path, meta=self.meta)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self):
        return f"WallTracer(events={len(self.events)}, kernels={len(self._agg)})"
