"""Trace exporters: Chrome ``trace_event`` JSON and newline-delimited JSON.

The Chrome format is the interchange format PopVision, Perfetto, and
``chrome://tracing`` all speak: a ``traceEvents`` list of complete spans
(``ph: "X"``), counter samples (``ph: "C"``), instants (``ph: "i"``), and
metadata records (``ph: "M"``).  Timestamps are microseconds of modeled IPU
time (cycles / ``clock_hz``); the cycle clock rate travels in the top-level
``metadata`` block so :func:`load_trace` can convert back losslessly.

The NDJSON format keeps raw cycle timestamps, one event per line, with a
leading ``{"kind": "meta", ...}`` record — the bench harness diffs these
mechanically without a trace viewer.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.events import CounterEvent, InstantEvent, SpanEvent

__all__ = [
    "chrome_trace",
    "write_chrome",
    "write_ndjson",
    "load_trace",
    "validate_chrome_trace",
]

#: Fallback clock when a trace carries no metadata (the Mk2 rate).
DEFAULT_CLOCK_HZ = 1.33e9

PID = 0  # one simulated device per trace
TID = 0  # the BSP program is a single sequential timeline


def _event_ts(ev) -> int:
    return ev.start if isinstance(ev, SpanEvent) else ev.ts


def chrome_trace(events, meta: dict | None = None) -> dict:
    """Render ``events`` as a Chrome ``trace_event`` JSON object."""
    meta = dict(meta or {})
    clock_hz = float(meta.get("clock_hz", DEFAULT_CLOCK_HZ))
    scale = 1e6 / clock_hz  # cycles -> microseconds

    trace_events: list[dict] = [
        {"ph": "M", "pid": PID, "tid": TID, "name": "process_name",
         "args": {"name": "repro simulated IPU"}},
        {"ph": "M", "pid": PID, "tid": TID, "name": "thread_name",
         "args": {"name": "BSP program"}},
    ]
    for ev in sorted(events, key=_event_ts):
        if isinstance(ev, SpanEvent):
            trace_events.append({
                "ph": "X", "pid": PID, "tid": TID,
                "name": ev.name, "cat": ev.cat,
                "ts": ev.start * scale, "dur": ev.dur * scale,
                "args": ev.args,
            })
        elif isinstance(ev, CounterEvent):
            # Every args key becomes one series on the counter track, so the
            # args dict carries the sampled values and nothing else.
            trace_events.append({
                "ph": "C", "pid": PID, "name": ev.name,
                "ts": ev.ts * scale, "args": ev.values,
            })
        elif isinstance(ev, InstantEvent):
            trace_events.append({
                "ph": "i", "s": "g", "pid": PID, "tid": TID,
                "name": ev.name, "cat": ev.cat,
                "ts": ev.ts * scale, "args": ev.args,
            })
        else:
            raise TypeError(f"unknown telemetry event: {ev!r}")
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {**meta, "clock_hz": clock_hz, "ts_unit": "us"},
    }


def write_chrome(events, path, meta: dict | None = None) -> dict:
    """Write the Chrome trace to ``path`` and return the JSON object."""
    obj = chrome_trace(events, meta=meta)
    Path(path).write_text(json.dumps(obj, indent=1) + "\n")
    return obj


def write_ndjson(events, path, meta: dict | None = None) -> None:
    """Write one JSON object per line, cycle-domain timestamps."""
    lines = [json.dumps({"kind": "meta", **(meta or {})})]
    for ev in sorted(events, key=_event_ts):
        if isinstance(ev, SpanEvent):
            rec = {"kind": "span", "name": ev.name, "cat": ev.cat,
                   "start": ev.start, "dur": ev.dur, "args": ev.args}
        elif isinstance(ev, CounterEvent):
            rec = {"kind": "counter", "name": ev.name, "ts": ev.ts,
                   "values": ev.values}
        elif isinstance(ev, InstantEvent):
            rec = {"kind": "instant", "name": ev.name, "cat": ev.cat,
                   "ts": ev.ts, "args": ev.args}
        else:
            raise TypeError(f"unknown telemetry event: {ev!r}")
        lines.append(json.dumps(rec))
    Path(path).write_text("\n".join(lines) + "\n")


def load_trace(path):
    """Load a trace written by either exporter.

    Returns ``(events, meta)`` with cycle-domain timestamps reconstructed —
    Chrome traces convert microseconds back through ``metadata.clock_hz``.
    """
    text = Path(path).read_text()
    first = text.lstrip()[:1]
    if first == "{" and '"traceEvents"' in text[:4096]:
        return _load_chrome(json.loads(text))
    events = []
    meta: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.get("kind")
        if kind == "meta":
            meta = {k: v for k, v in rec.items() if k != "kind"}
        elif kind == "span":
            events.append(SpanEvent(rec["name"], rec["cat"], rec["start"],
                                    rec["dur"], rec.get("args", {})))
        elif kind == "counter":
            events.append(CounterEvent(rec["name"], rec["ts"], rec["values"]))
        elif kind == "instant":
            events.append(InstantEvent(rec["name"], rec["cat"], rec["ts"],
                                       rec.get("args", {})))
        else:
            raise ValueError(f"unknown NDJSON record kind: {kind!r}")
    return events, meta


def _load_chrome(obj: dict):
    meta = dict(obj.get("metadata", {}))
    clock_hz = float(meta.get("clock_hz", DEFAULT_CLOCK_HZ))
    to_cycles = clock_hz / 1e6

    def cyc(us) -> int:
        return round(us * to_cycles)

    events = []
    for rec in obj.get("traceEvents", []):
        ph = rec.get("ph")
        if ph == "M":
            continue
        if ph == "X":
            events.append(SpanEvent(rec["name"], rec.get("cat", ""),
                                    cyc(rec["ts"]), cyc(rec["dur"]),
                                    rec.get("args", {})))
        elif ph == "C":
            events.append(CounterEvent(rec["name"], cyc(rec["ts"]),
                                       rec.get("args", {})))
        elif ph == "i":
            events.append(InstantEvent(rec["name"], rec.get("cat", ""),
                                       cyc(rec["ts"]), rec.get("args", {})))
        else:
            raise ValueError(f"unknown trace_event phase: {ph!r}")
    return events, meta


#: Comparison slack for the timeline checks: timestamps are float
#: microseconds converted from integer cycles, so exact boundary touches
#: (sibling spans, shared scope ends) may differ by rounding noise.
_TS_EPS = 1e-6


def validate_chrome_trace(obj) -> list:
    """Schema + timeline check of a Chrome trace object; returns a list of
    errors (empty = valid).  This is what the CI bench-smoke job runs
    against the ``--trace`` artifact before uploading it.

    Beyond per-record schema, the trace must describe one coherent BSP
    timeline: events sorted by timestamp, counter tracks non-decreasing,
    and spans on a thread either nested or disjoint.  A program rebuild
    whose clock restarts at zero (the pre-fix graceful-degradation bug)
    produces partially overlapping spans and fails here.
    """
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    te = obj.get("traceEvents")
    if not isinstance(te, list):
        return ["missing or non-list 'traceEvents'"]
    last_ts = None
    counter_last: dict[str, float] = {}
    spans_by_thread: dict[tuple, list] = {}
    for i, rec in enumerate(te):
        where = f"traceEvents[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = rec.get("ph")
        if ph not in ("X", "C", "i", "M"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(rec.get("name"), str) or not rec["name"]:
            errors.append(f"{where}: missing event name")
        if "pid" not in rec:
            errors.append(f"{where}: missing pid")
        if ph == "M":
            continue
        ts = rec.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts - _TS_EPS:
            errors.append(
                f"{where}: non-monotone timestamp {ts} after {last_ts} "
                "(events must be sorted by ts)"
            )
        last_ts = ts if last_ts is None else max(last_ts, ts)
        if ph == "X":
            dur = rec.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: bad dur {dur!r}")
            else:
                spans_by_thread.setdefault(
                    (rec.get("pid"), rec.get("tid")), []
                ).append((ts, dur, rec["name"] if isinstance(rec.get("name"), str) else "?", i))
            if "tid" not in rec:
                errors.append(f"{where}: span missing tid")
        if ph == "C":
            args = rec.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where}: counter needs non-empty args")
            elif any(not isinstance(v, (int, float)) for v in args.values()):
                errors.append(f"{where}: counter args must be numeric")
            else:
                name = rec.get("name")
                prev = counter_last.get(name)
                if prev is not None and ts < prev - _TS_EPS:
                    errors.append(
                        f"{where}: counter track {name!r} goes back in time "
                        f"({ts} after {prev})"
                    )
                counter_last[name] = ts if prev is None else max(prev, ts)
        if ph == "i" and rec.get("s") not in ("g", "p", "t", None):
            errors.append(f"{where}: bad instant scope {rec.get('s')!r}")
    errors.extend(_check_span_nesting(spans_by_thread))
    return errors


def _check_span_nesting(spans_by_thread: dict) -> list:
    """Spans on one thread must nest or be disjoint — partial overlap means
    two executions were written onto the same clock range."""
    errors: list[str] = []
    for (pid, tid), spans in spans_by_thread.items():
        # Longest-first at equal starts so enclosing scopes open before
        # their children.
        stack: list[float] = []  # open span end times
        for start, dur, name, idx in sorted(spans, key=lambda s: (s[0], -s[1])):
            end = start + dur
            while stack and start >= stack[-1] - _TS_EPS:
                stack.pop()
            if stack and end > stack[-1] + _TS_EPS:
                errors.append(
                    f"traceEvents[{idx}]: span {name!r} on pid={pid} tid={tid} "
                    f"[{start}, {end}) partially overlaps an enclosing span "
                    f"ending at {stack[-1]} (timeline not monotone)"
                )
                continue
            stack.append(end)
    return errors
