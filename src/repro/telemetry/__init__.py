"""PopVision-style telemetry: structured tracing across the runtime.

The paper's measurement story leans on Poplar's profiling tools (PopVision
Graph Analyser) for cycle breakdowns and tile load-balance diagnosis; this
package is the reproduction's equivalent.  A :class:`Tracer` attaches to a
runtime backend (``Backend.set_tracer``) and records the BSP timeline as
structured events — compute supersteps with per-tile makespans and load
imbalance, exchange phases with transfer volume and fabric congestion,
labeled program scopes, solver convergence — which export to Chrome
``trace_event`` JSON (Perfetto-loadable) or NDJSON, and aggregate into a
:class:`TelemetryReport`.

Tracing is observational: a traced run is bit-identical in tensors *and*
cycles to an untraced one.  See ``docs/observability.md``.
"""

from repro.telemetry.events import CounterEvent, InstantEvent, SpanEvent
from repro.telemetry.exporters import (
    chrome_trace,
    load_trace,
    validate_chrome_trace,
    write_chrome,
    write_ndjson,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry, log_buckets
from repro.telemetry.report import TelemetryReport
from repro.telemetry.tracer import Tracer
from repro.telemetry.walltrace import WallTracer

__all__ = [
    "Tracer",
    "WallTracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "log_buckets",
    "TelemetryReport",
    "SpanEvent",
    "CounterEvent",
    "InstantEvent",
    "chrome_trace",
    "write_chrome",
    "write_ndjson",
    "load_trace",
    "validate_chrome_trace",
]
