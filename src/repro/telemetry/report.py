"""``TelemetryReport``: aggregate a trace into the questions people ask.

The event stream answers *when*; this module answers *what mattered*: the
top-N hottest compute sets, the distribution of per-superstep load
imbalance, how exchange time divides against compute (BSP supersteps never
overlap, so the "overlap summary" reports the serial shares and the
uncovered gap), SRAM high-water marks, and the convergence trajectory.
``render()`` produces the text the ``repro trace-report`` CLI prints.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.telemetry.events import CounterEvent, InstantEvent, SpanEvent

__all__ = ["TelemetryReport", "IMBALANCE_BUCKETS"]

#: Histogram bucket edges for the per-superstep worst/mean tile ratio.
IMBALANCE_BUCKETS = (1.05, 1.1, 1.25, 1.5, 2.0, 4.0)


def _bucket_label(i: int) -> str:
    if i == 0:
        return f"<= {IMBALANCE_BUCKETS[0]:.2f}"
    if i == len(IMBALANCE_BUCKETS):
        return f"> {IMBALANCE_BUCKETS[-1]:.2f}"
    return f"{IMBALANCE_BUCKETS[i - 1]:.2f}-{IMBALANCE_BUCKETS[i]:.2f}"


@dataclass
class TelemetryReport:
    """Aggregated view of one trace (build with :meth:`from_events`)."""

    meta: dict = field(default_factory=dict)
    wall_cycles: int = 0
    compute_cycles: int = 0
    exchange_cycles: int = 0
    control_cycles: int = 0
    compute_phases: int = 0
    exchange_phases: int = 0
    #: [(name, category, total_cycles, executions, share_of_wall)]
    hottest: list = field(default_factory=list)
    #: [(name, total_cycles, executions)] for labeled scopes
    scopes: list = field(default_factory=list)
    #: bucket label -> superstep count
    imbalance_histogram: dict = field(default_factory=dict)
    mean_imbalance: float = 1.0
    max_imbalance: float = 1.0
    exchange: dict = field(default_factory=dict)
    sram: dict = field(default_factory=dict)
    tile_busy: dict = field(default_factory=dict)
    residual: dict = field(default_factory=dict)
    #: Fault-injection / recovery summary (``fault`` / ``rollback`` /
    #: ``resilience`` instants from docs/resilience.md); empty = none seen.
    faults: dict = field(default_factory=dict)
    #: Wall-clock kernel profile rows from ``kernel``-category spans
    #: (:class:`~repro.telemetry.walltrace.WallTracer` traces):
    #: [(name, launches, wall_ns, est_bytes, est_flops, gb_s, gflop_s)].
    wall_kernels: list = field(default_factory=list)

    @property
    def clock_unit(self) -> str:
        """Timestamp unit of this trace: sim cycles or wall nanoseconds."""
        return "ns" if self.meta.get("clock") == "wall_ns" else "cycles"

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_events(cls, events, meta: dict | None = None, top: int = 10):
        rep = cls(meta=dict(meta or {}))
        per_set: dict = defaultdict(lambda: [None, 0, 0])  # name -> [cat, cycles, n]
        per_scope: dict = defaultdict(lambda: [0, 0])
        per_kernel: dict = defaultdict(lambda: [0, 0, 0, 0])  # n, ns, bytes, flops
        imbalances: list[float] = []
        exch_bytes = 0
        exch_inter = 0
        congestion_sum = 0.0
        residual_points: list = []
        fault_kinds: dict = defaultdict(int)
        rollback_reasons: dict = defaultdict(int)
        resilience_summary: dict = {}
        t_min, t_max = None, 0

        for ev in events:
            if isinstance(ev, SpanEvent):
                end = ev.start + ev.dur
                t_min = ev.start if t_min is None else min(t_min, ev.start)
                t_max = max(t_max, end)
                if ev.cat == "compute":
                    rep.compute_cycles += ev.dur
                    rep.compute_phases += 1
                    entry = per_set[ev.name]
                    entry[0] = ev.args.get("category", "compute")
                    entry[1] += ev.dur
                    entry[2] += 1
                    imb = ev.args.get("imbalance")
                    if imb is not None:
                        imbalances.append(imb)
                elif ev.cat == "exchange":
                    rep.exchange_cycles += ev.dur
                    rep.exchange_phases += 1
                    exch_bytes += ev.args.get("total_bytes", 0)
                    exch_inter += bool(ev.args.get("inter_ipu"))
                    congestion_sum += ev.args.get("congestion", 1.0)
                elif ev.cat == "control":
                    rep.control_cycles += ev.dur
                elif ev.cat == "scope":
                    per_scope[ev.name][0] += ev.dur
                    per_scope[ev.name][1] += 1
                elif ev.cat == "kernel":
                    entry = per_kernel[ev.name]
                    entry[0] += 1
                    entry[1] += ev.dur
                    entry[2] += ev.args.get("est_bytes", 0)
                    entry[3] += ev.args.get("est_flops", 0)
            elif isinstance(ev, CounterEvent) and ev.name == "residual":
                rr = ev.values.get("relative_residual")
                if rr is not None:
                    residual_points.append((ev.ts, rr))
            elif isinstance(ev, InstantEvent):
                if ev.name == "sram_peak":
                    rep.sram = dict(ev.args)
                elif ev.name == "tile_busy":
                    rep.tile_busy = dict(ev.args)
                elif ev.name == "fault":
                    fault_kinds[ev.args.get("kind", "?")] += 1
                elif ev.name == "rollback":
                    rollback_reasons[ev.args.get("reason", "?")] += 1
                elif ev.name == "resilience":
                    resilience_summary = dict(ev.args)

        rep.wall_cycles = (t_max - t_min) if t_min is not None else 0
        wall = max(rep.wall_cycles, 1)
        rep.hottest = sorted(
            ((name, cat, cyc, n, cyc / wall) for name, (cat, cyc, n) in per_set.items()),
            key=lambda row: -row[2],
        )[:top]
        rep.scopes = sorted(
            ((name, cyc, n) for name, (cyc, n) in per_scope.items()),
            key=lambda row: -row[1],
        )[:top]
        rep.wall_kernels = sorted(
            (
                (
                    name,
                    n,
                    ns,
                    b,
                    f,
                    (b / (ns * 1e-9) / 1e9) if ns > 0 and b else 0.0,
                    (f / (ns * 1e-9) / 1e9) if ns > 0 and f else 0.0,
                )
                for name, (n, ns, b, f) in per_kernel.items()
            ),
            key=lambda row: -row[2],
        )[:top]

        hist: dict = defaultdict(int)
        for imb in imbalances:
            i = sum(imb > edge for edge in IMBALANCE_BUCKETS)
            hist[_bucket_label(i)] += 1
        rep.imbalance_histogram = dict(hist)
        if imbalances:
            rep.mean_imbalance = sum(imbalances) / len(imbalances)
            rep.max_imbalance = max(imbalances)

        covered = rep.compute_cycles + rep.exchange_cycles + rep.control_cycles
        rep.exchange = {
            "phases": rep.exchange_phases,
            "total_bytes": exch_bytes,
            "inter_ipu_phases": exch_inter,
            "mean_congestion": (congestion_sum / rep.exchange_phases)
            if rep.exchange_phases else 1.0,
            "compute_share": rep.compute_cycles / wall,
            "exchange_share": rep.exchange_cycles / wall,
            "control_share": rep.control_cycles / wall,
            # BSP supersteps are serial: nothing overlaps, the remainder is
            # host-side / uncovered time.
            "overlapped_cycles": 0,
            "uncovered_share": max(0.0, 1.0 - covered / wall),
        }

        if residual_points:
            residual_points.sort()
            rep.residual = {
                "points": len(residual_points),
                "first": residual_points[0][1],
                "last": residual_points[-1][1],
                "last_cycle": residual_points[-1][0],
            }

        if fault_kinds or rollback_reasons or resilience_summary:
            rep.faults = {
                "injections": sum(fault_kinds.values()),
                "by_kind": dict(fault_kinds),
                "rollbacks": sum(rollback_reasons.values()),
                "rollback_reasons": dict(rollback_reasons),
                "restarts": resilience_summary.get("restarts", 0),
                "extra_iterations": resilience_summary.get("extra_iterations", 0),
                "outcome": resilience_summary.get("outcome"),
                "failure": resilience_summary.get("failure"),
            }
        return rep

    # -- rendering ------------------------------------------------------------------

    def render(self) -> str:
        m = self.meta
        unit = self.clock_unit
        lines = ["telemetry report"]
        if m:
            lines.append(
                f"  device: {m.get('num_ipus', '?')} IPU(s) x "
                f"{m.get('tiles_per_ipu', '?')} tiles"
            )
        if unit == "ns":
            lines.append("  clock domain: wall (host ns, measured)")
        lines.append(f"  wall {unit}: {self.wall_cycles}")
        ex = self.exchange
        if ex:
            lines.append(
                f"  compute {ex['compute_share']:6.1%}   exchange "
                f"{ex['exchange_share']:6.1%}   control {ex['control_share']:6.1%}   "
                f"uncovered {ex['uncovered_share']:6.1%}"
            )
            lines.append(
                f"  exchange: {ex['phases']} phases, {ex['total_bytes']} B moved, "
                f"{ex['inter_ipu_phases']} inter-IPU, mean congestion "
                f"{ex['mean_congestion']:.2f} (BSP: overlap = 0)"
            )
        if self.wall_kernels:
            lines.append(
                f"\n  hottest kernels (top {len(self.wall_kernels)}, measured wall):"
            )
            lines.append(
                f"    {'kernel':<12s} {'launches':>8s} {'wall ms':>10s} "
                f"{'GB/s':>8s} {'GFLOP/s':>8s}"
            )
            for name, n, ns, _b, _f, gbs, gflops in self.wall_kernels:
                lines.append(
                    f"    {name:<12s} {n:>8d} {ns / 1e6:>10.3f} "
                    f"{gbs:>8.2f} {gflops:>8.2f}"
                )
        if self.hottest:
            lines.append(f"\n  hottest compute sets (top {len(self.hottest)}):")
            for name, cat, cyc, n, share in self.hottest:
                lines.append(
                    f"    {name:<28s} {cat:<14s} {cyc:>12d} {unit}  x{n:<6d} {share:6.1%}"
                )
        if self.scopes:
            lines.append("\n  labeled scopes:")
            for name, cyc, n in self.scopes:
                lines.append(f"    {name:<28s} {cyc:>12d} {unit}  x{n}")
        if self.imbalance_histogram:
            lines.append(
                f"\n  load imbalance (worst/mean tile, {self.compute_phases} "
                f"supersteps; mean {self.mean_imbalance:.3f}, max "
                f"{self.max_imbalance:.3f}):"
            )
            for i in range(len(IMBALANCE_BUCKETS) + 1):
                label = _bucket_label(i)
                count = self.imbalance_histogram.get(label, 0)
                if count:
                    lines.append(f"    {label:<12s} {count:>6d}  {'#' * min(count, 40)}")
        if self.sram:
            cap = self.sram.get("capacity_bytes", 0) or 1
            peak = self.sram.get("max_bytes", 0)
            lines.append(
                f"\n  SRAM high-water: {peak} B / tile capacity {cap} B "
                f"({peak / cap:.1%})"
            )
        if self.tile_busy:
            lines.append(
                f"  tile busy-cycle imbalance (whole run): "
                f"{self.tile_busy.get('imbalance', 1.0):.3f}"
            )
        if self.residual:
            r = self.residual
            lines.append(
                f"\n  convergence: {r['points']} samples, relative residual "
                f"{r['first']:.3e} -> {r['last']:.3e} at cycle {r['last_cycle']}"
            )
        if self.faults:
            f = self.faults
            lines.append("\n  faults & recovery:")
            kinds = ", ".join(f"{k}={n}" for k, n in sorted(f["by_kind"].items())) or "-"
            lines.append(f"    injections: {f['injections']} ({kinds})")
            reasons = ", ".join(
                f"{k}={n}" for k, n in sorted(f["rollback_reasons"].items())
            ) or "-"
            lines.append(f"    rollbacks:  {f['rollbacks']} ({reasons})")
            if f.get("restarts"):
                lines.append(f"    restarts:   {f['restarts']} (OOM degradation)")
            lines.append(
                f"    extra iterations paid: {f['extra_iterations']}"
                + (f"   outcome: {f['outcome']}" if f.get("outcome") else "")
                + (f" ({f['failure']})" if f.get("failure") else "")
            )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"TelemetryReport(wall={self.wall_cycles}, "
            f"compute_phases={self.compute_phases}, "
            f"exchange_phases={self.exchange_phases})"
        )
