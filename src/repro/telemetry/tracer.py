"""The ``Tracer``: structured event collection for the runtime backends.

A tracer is handed to a backend via ``Backend.set_tracer`` (see
:mod:`repro.graph.runtime.base`); the cycle-accurate sim backend then emits
one :class:`~repro.telemetry.events.SpanEvent` per BSP superstep — compute
phases with per-tile worker makespans and the load-imbalance ratio,
exchange phases with transfer volume and fabric congestion — plus counter
tracks and, at :meth:`finalize`, per-tile SRAM high-water marks and busy
totals.  Solver convergence (residual vs. cycles, through
:class:`~repro.solvers.base.SolveStats`) joins the stream via
:meth:`convergence`.

Tracing never participates in execution: the hooks only *observe* the
profiler clock and the frozen plans, so a traced run is bit-identical — in
tensors and in cycles — to an untraced one, and a disabled tracer costs the
backends a single ``is None`` check per superstep.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry.events import CounterEvent, InstantEvent, SpanEvent

__all__ = ["Tracer", "TILE_DETAIL_LIMIT"]

#: Above this many participating tiles, span args carry a min/mean/max
#: summary instead of the full per-tile makespan map (keeps traces of
#: 1472-tile devices loadable).
TILE_DETAIL_LIMIT = 64


class Tracer:
    """Collects spans, counters, and instants from one program execution."""

    def __init__(self):
        self.events: list = []
        self.meta: dict = {}
        self.device = None
        self._tile_busy: dict[int, int] = {}
        self._finalized = False
        #: Cycles added to every emitted timestamp.  A graceful-degradation
        #: rebuild runs on a *fresh* device whose profiler clock restarts at
        #: zero; the resilient solve driver advances this offset by the
        #: aborted attempt's cycles (:meth:`shift_clock`) so one tracer's
        #: timeline stays monotone across program rebuilds.
        self._ts_offset = 0

    # -- device binding ------------------------------------------------------------

    def bind(self, device) -> None:
        """Attach the device whose profiler clock timestamps the events."""
        self.device = device
        spec = device.spec
        self.meta.update(
            num_ipus=device.num_ipus,
            num_tiles=device.num_tiles,
            tiles_per_ipu=spec.tiles_per_ipu,
            clock_hz=spec.clock_hz,
            sram_per_tile=spec.sram_per_tile,
        )

    def now(self) -> int:
        """The current cycle on the *device's* clock (offset excluded; the
        emitters apply :attr:`_ts_offset` exactly once)."""
        return self.device.profiler.total_cycles if self.device is not None else 0

    def shift_clock(self, cycles: int) -> None:
        """Advance the timeline offset applied to subsequently emitted
        events — called when execution moves to a rebuilt program whose
        device clock restarts at zero (OOM graceful degradation)."""
        if cycles < 0:
            raise ValueError("clock shift must be non-negative")
        self._ts_offset += int(cycles)

    # -- low-level emitters --------------------------------------------------------

    def span(self, name: str, cat: str, start: int, dur: int, args: dict | None = None):
        self.events.append(SpanEvent(name, cat, start + self._ts_offset, dur, args or {}))

    def counter(self, name: str, values: dict, ts: int | None = None):
        ts = self.now() if ts is None else ts
        self.events.append(CounterEvent(name, ts + self._ts_offset, values))

    def instant(self, name: str, cat: str, args: dict | None = None, ts: int | None = None):
        ts = self.now() if ts is None else ts
        self.events.append(InstantEvent(name, cat, ts + self._ts_offset, args or {}))

    @contextmanager
    def scope(self, label: str):
        """Span covering a labeled program scope (nesting renders as a
        flame graph in Perfetto because inner spans start no earlier)."""
        start = self.now()
        try:
            yield self
        finally:
            self.span(label, "scope", start, self.now() - start)

    # -- backend hooks (one call per superstep) ------------------------------------

    def compute_phase(self, plan, start: int, cycles: int, sync_cycles: int) -> None:
        """Record one compute superstep from its frozen :class:`ComputePlan`."""
        makespans = {tp.tile_id: tp.makespan for tp in plan.tiles}
        n = len(makespans)
        mean = sum(makespans.values()) / n if n else 0.0
        imbalance = plan.worst_tile / mean if mean > 0 else 1.0
        args = {
            "category": plan.category,
            "tiles": n,
            "worst_tile_cycles": plan.worst_tile,
            "mean_tile_cycles": mean,
            "imbalance": imbalance,
            "sync_cycles": sync_cycles,
        }
        if 0 < n <= TILE_DETAIL_LIMIT:
            args["tile_makespans"] = makespans
        else:
            args["tile_makespans_summary"] = {
                "min": min(makespans.values(), default=0),
                "max": plan.worst_tile,
                "mean": mean,
            }
        self.span(plan.name, "compute", start, cycles, args)
        self.counter("imbalance", {"worst/mean": imbalance}, ts=start)
        for tile_id, make in makespans.items():
            self._tile_busy[tile_id] = self._tile_busy.get(tile_id, 0) + make

    def exchange_phase(self, plan, phase, start: int, cycles: int) -> None:
        """Record one exchange superstep from its plan and the fabric's
        :class:`~repro.machine.fabric.ExchangePhase` cost breakdown."""
        senders = {t.src_tile for t in plan.transfers}
        sent_bytes = sum(t.nbytes for t in plan.transfers)
        congestion = 1.0
        if phase.stream_cycles > 0 and senders and self.device is not None:
            # Actual streaming time vs. perfectly balanced senders — >1 means
            # a fabric hotspot (one tile streaming most of the bytes).
            ideal = self.device.model.exchange_bytes(-(-sent_bytes // len(senders)))
            congestion = phase.stream_cycles / max(ideal, 1)
        self.span(
            plan.name,
            "exchange",
            start,
            cycles,
            {
                "total_bytes": phase.total_bytes,
                "sent_bytes": sent_bytes,
                "transfers": len(plan.transfers),
                "senders": len(senders),
                "sync_cycles": phase.sync_cycles,
                "stream_cycles": phase.stream_cycles,
                "instr_cycles": phase.instr_cycles,
                "local_cycles": plan.local_cycles,
                "inter_ipu": phase.inter_ipu,
                "congestion": congestion,
            },
        )
        self.counter("exchange_bytes", {"bytes": phase.total_bytes}, ts=start)

    def control(self, start: int, cycles: int) -> None:
        """Record one control decision (loop iteration / branch sync)."""
        self.span("control", "control", start, cycles)

    # -- solver / end-of-run telemetry ---------------------------------------------

    def convergence(self, stats) -> None:
        """Emit the residual-vs-cycles counter track from a
        :class:`~repro.solvers.base.SolveStats` record."""
        import math

        for it, res, cyc in zip(stats.iterations, stats.residuals, stats.cycles):
            values = {"relative_residual": res}
            if res > 0:
                values["log10_residual"] = math.log10(res)
            self.counter("residual", values, ts=cyc)
            self.counter("iteration", {"n": it}, ts=cyc)

    def resilience(self, report) -> None:
        """Emit the end-of-solve
        :class:`~repro.solvers.resilience.ResilienceReport` summary (the
        report's "faults & recovery" section aggregates this together with
        the per-injection ``fault`` and per-``rollback`` instants)."""
        self.instant("resilience", "fault", report.to_dict(), ts=self.now())

    def finalize(self) -> None:
        """Emit end-of-run per-tile metrics (idempotent)."""
        if self._finalized or self.device is None:
            return
        self._finalized = True
        ts = self.now()
        peaks = {t.tile_id: t.bytes_peak for t in self.device.tiles}
        self.instant(
            "sram_peak",
            "memory",
            {
                "per_tile_bytes": peaks,
                "max_bytes": max(peaks.values(), default=0),
                "capacity_bytes": self.device.spec.sram_per_tile,
            },
            ts=ts,
        )
        self.counter("sram_peak_max", {"bytes": max(peaks.values(), default=0)}, ts=ts)
        if self._tile_busy:
            busy = self._tile_busy
            mean = sum(busy.values()) / len(busy)
            self.instant(
                "tile_busy",
                "compute",
                {
                    "per_tile_cycles": dict(busy),
                    "imbalance": (max(busy.values()) / mean) if mean > 0 else 1.0,
                },
                ts=ts,
            )

    # -- views ----------------------------------------------------------------------

    def report(self, top: int = 10):
        """Aggregate the event stream into a :class:`TelemetryReport`."""
        from repro.telemetry.report import TelemetryReport

        self.finalize()
        return TelemetryReport.from_events(self.events, meta=self.meta, top=top)

    def to_chrome(self, path=None) -> dict:
        """Chrome ``trace_event`` JSON (loadable in Perfetto / about:tracing)."""
        from repro.telemetry.exporters import chrome_trace, write_chrome

        self.finalize()
        if path is not None:
            return write_chrome(self.events, path, meta=self.meta)
        return chrome_trace(self.events, meta=self.meta)

    def to_ndjson(self, path) -> None:
        """Newline-delimited JSON (one event per line, cycle timestamps)."""
        from repro.telemetry.exporters import write_ndjson

        self.finalize()
        write_ndjson(self.events, path, meta=self.meta)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self):
        return f"Tracer(events={len(self.events)}, device={self.device!r})"
