"""``MetricsRegistry``: counters, gauges, and log-bucketed histograms.

The wall-clock observability loop (``docs/observability.md``) needs a
second export surface next to traces: *aggregated* series a scrape-based
monitoring stack can poll — total wall nanoseconds per kernel, launch
counts, solve iterations, residual gauges — rather than one event per
launch.  This module is that surface: a tiny, dependency-free metrics
registry with the three Prometheus instrument kinds the serving layer
(ROADMAP item 1) will expose per job.

Design rules:

- **Zero overhead when disabled.**  Nothing here is global; a registry
  only exists when a caller asks for one, and every producer hook guards
  emission behind one ``is None`` check (the same seam contract as the
  tracers in :mod:`repro.graph.runtime.base`).
- **Instruments are cheap.**  A counter/gauge sample is one dict store; a
  histogram observation is a bisect over its (few) bucket edges.  Labels
  are plain keyword arguments, stored as sorted key-value tuples.
- **Two snapshot formats.**  :meth:`MetricsRegistry.to_prometheus` renders
  the text exposition format (``# TYPE`` headers, ``_bucket``/``_sum``/
  ``_count`` histogram series); :meth:`MetricsRegistry.to_json` renders a
  structured dict.  ``repro metrics-report`` reads either back.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path

__all__ = ["MetricsRegistry", "Counter", "Gauge", "Histogram", "log_buckets"]


def log_buckets(lo: float, hi: float, per_decade: int = 2) -> tuple:
    """Geometric bucket edges from ``lo`` to at least ``hi``.

    ``per_decade`` edges per power of ten — the default (2) gives edges at
    1, ~3.16, 10, ~31.6, ... which keeps wall-time histograms readable
    across the nanosecond-to-second range without hundreds of buckets.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
    edges = []
    step = 10.0 ** (1.0 / per_decade)
    edge = float(lo)
    while edge < hi * (1 + 1e-12):
        edges.append(edge)
        edge *= step
    edges.append(edge)
    return tuple(edges)


#: Default histogram edges: 1 µs .. ~1000 s in half-decade steps (values in
#: seconds; wall-time observations in other units still land monotonically).
DEFAULT_BUCKETS = log_buckets(1e-6, 1e3, per_decade=2)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _render_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.series: dict = {}

    def inc(self, value: float = 1, **labels) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {value})")
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0) + value

    def value(self, **labels) -> float:
        return self.series.get(_label_key(labels), 0)


class Gauge:
    """Last-written value (per label set)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.series: dict = {}

    def set(self, value: float, **labels) -> None:
        self.series[_label_key(labels)] = value

    def value(self, **labels) -> float:
        return self.series.get(_label_key(labels), 0)


class Histogram:
    """Log-bucketed distribution (per label set): counts, sum, and count."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        edges = tuple(sorted(float(e) for e in buckets))
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket edge")
        self.name = name
        self.help = help
        self.buckets = edges
        self.series: dict = {}  # label key -> [counts per edge + inf, sum, n]

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        entry = self.series.get(key)
        if entry is None:
            entry = self.series[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
        entry[0][bisect_left(self.buckets, value)] += 1
        entry[1] += value
        entry[2] += 1

    def snapshot(self, **labels):
        """``(cumulative_bucket_counts, sum, count)`` for one label set."""
        entry = self.series.get(_label_key(labels))
        if entry is None:
            return [0] * (len(self.buckets) + 1), 0.0, 0
        cum, total = [], 0
        for c in entry[0]:
            total += c
            cum.append(total)
        return cum, entry[1], entry[2]


class MetricsRegistry:
    """A named collection of instruments with two snapshot exporters."""

    def __init__(self):
        self._instruments: dict = {}

    # -- instrument accessors (get-or-create) --------------------------------------

    def _get(self, cls, name: str, help: str, **kwargs):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name, help, **kwargs)
        elif not isinstance(inst, cls):
            raise ValueError(
                f"metric {name!r} already registered as {inst.kind}, not {cls.kind}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(self._instruments.values())

    # -- exporters ------------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one scrape's worth)."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if inst.help:
                lines.append(f"# HELP {name} {inst.help}")
            lines.append(f"# TYPE {name} {inst.kind}")
            if isinstance(inst, Histogram):
                for key in sorted(inst.series):
                    cum, total, n = inst.snapshot(**dict(key))
                    for edge, c in zip(inst.buckets, cum[:-1]):
                        le = _render_labels(key + (("le", f"{edge:g}"),))
                        lines.append(f"{name}_bucket{le} {c}")
                    le = _render_labels(key + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{le} {cum[-1]}")
                    lines.append(f"{name}_sum{_render_labels(key)} {total:g}")
                    lines.append(f"{name}_count{_render_labels(key)} {n}")
            else:
                for key in sorted(inst.series):
                    lines.append(f"{name}{_render_labels(key)} {inst.series[key]:g}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        """Structured snapshot (the machine-diffable twin of the text form)."""
        out: dict = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            rec: dict = {"kind": inst.kind, "help": inst.help}
            if isinstance(inst, Histogram):
                rec["buckets"] = list(inst.buckets)
                rec["series"] = [
                    {
                        "labels": dict(key),
                        "counts": list(entry[0]),
                        "sum": entry[1],
                        "count": entry[2],
                    }
                    for key, entry in sorted(inst.series.items())
                ]
            else:
                rec["series"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(inst.series.items())
                ]
            out[name] = rec
        return out

    def write(self, path) -> None:
        """Write a snapshot: ``.json`` paths get JSON, anything else the
        Prometheus text format."""
        path = Path(path)
        if path.suffix == ".json":
            path.write_text(json.dumps(self.to_json(), indent=1, sort_keys=True) + "\n")
        else:
            path.write_text(self.to_prometheus())

    def __repr__(self):
        return f"MetricsRegistry({len(self._instruments)} instruments)"
