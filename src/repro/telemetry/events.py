"""The structured event model behind the telemetry subsystem.

Three event kinds, directly mirroring the Chrome ``trace_event`` vocabulary
(PopVision's Graph Analyser exposes the same primitives):

- :class:`SpanEvent` — a named interval on the BSP timeline (a compute
  superstep, an exchange phase, a labeled program scope, a control
  decision).  Timestamps are **cycles** of modeled program time; exporters
  convert to microseconds using the device clock.
- :class:`CounterEvent` — one or more named series sampled at a cycle
  (per-superstep load imbalance, exchange bytes, solver residual).
- :class:`InstantEvent` — a point-in-time marker carrying structured args
  (per-tile SRAM high-water marks, per-tile busy totals).

Events are immutable; a trace is just a list of them plus a metadata dict
(`num_tiles`, `clock_hz`, ...) captured when the tracer binds a device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SpanEvent", "CounterEvent", "InstantEvent"]


@dataclass(frozen=True)
class SpanEvent:
    """A named interval of ``dur`` cycles starting at cycle ``start``."""

    name: str
    cat: str  # "compute" | "exchange" | "control" | "scope"
    start: int
    dur: int
    args: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CounterEvent:
    """Named numeric series sampled at cycle ``ts`` (one track per name)."""

    name: str
    ts: int
    values: dict  # series label -> number


@dataclass(frozen=True)
class InstantEvent:
    """A point-in-time marker at cycle ``ts`` with structured ``args``."""

    name: str
    cat: str
    ts: int
    args: dict = field(default_factory=dict)
