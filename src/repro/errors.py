"""Unified error hierarchy for the framework.

Every failure the framework raises deliberately derives from
:class:`ReproError`, so callers can catch one base class, and the CLI can
map each family to a distinct nonzero exit code instead of a traceback
(``docs/resilience.md``).  The hierarchy doubles-inherits from the matching
builtin (``MemoryError``, ``ArithmeticError``, ``ValueError``) so existing
``except MemoryError`` style handlers keep working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SRAMOverflowError",
    "SolverBreakdownError",
    "DivergenceError",
    "FaultSpecError",
    "BackendCapabilityError",
    "ServiceOverloadError",
    "JobTimeoutError",
    "QuotaExceededError",
]


class ReproError(Exception):
    """Base class of all deliberate framework errors.

    ``exit_code`` is the process exit status the CLI uses for the family
    (distinct per subclass, never 0/1/2 which argparse and Python claim).
    """

    exit_code = 10


class SRAMOverflowError(ReproError, MemoryError):
    """A tensor shard (or injected allocation) no longer fits in a tile's
    local SRAM.

    Carries the structured context a caller needs to re-partition: the tile
    id, the requested and free byte counts, and the capacity.  The message
    always points at ``IPUDevice.sram_report()`` for the per-tile picture.
    """

    exit_code = 11

    def __init__(
        self,
        message: str = "SRAM capacity exceeded",
        *,
        tile_id: int | None = None,
        requested: int | None = None,
        free: int | None = None,
        capacity: int | None = None,
    ):
        self.tile_id = tile_id
        self.requested = requested
        self.free = free
        self.capacity = capacity
        detail = []
        if tile_id is not None:
            detail.append(f"tile {tile_id}")
        if requested is not None:
            part = f"requested {requested} B"
            if free is not None:
                part += f", {free} B free"
            if capacity is not None:
                part += f" of {capacity} B"
            detail.append(part)
        full = f"{message} ({'; '.join(detail)})" if detail else message
        if detail:
            full += " — see IPUDevice.sram_report() for per-tile usage"
        super().__init__(full)


class SolverBreakdownError(ReproError, ArithmeticError):
    """A Krylov recurrence broke down (e.g. ``|rho| ~ 0`` in CG/BiCGStab).

    Only raised when the caller opts in via
    ``ResilienceConfig(raise_on_failure=True)``; by default a breakdown is
    reported as ``SolveResult.failure == "breakdown"`` instead.
    """

    exit_code = 12

    def __init__(self, message: str, *, solver: str | None = None,
                 iteration: int | None = None):
        self.solver = solver
        self.iteration = iteration
        super().__init__(message)


class DivergenceError(ReproError, ArithmeticError):
    """The solve failed to reach its tolerance — the residual diverged,
    went NaN/Inf, stagnated, or the iteration budget ran out.

    Like :class:`SolverBreakdownError`, raised only under
    ``ResilienceConfig(raise_on_failure=True)``.
    """

    exit_code = 13

    def __init__(self, message: str, *, solver: str | None = None,
                 reason: str | None = None):
        self.solver = solver
        self.reason = reason
        super().__init__(message)


class FaultSpecError(ReproError, ValueError):
    """A fault-plan spec (``repro.faults``) failed to parse or validate."""

    exit_code = 14


class BackendCapabilityError(ReproError, ValueError):
    """A runtime backend was asked for a capability it cannot provide.

    The untimed backends (``fast``, ``fused``) have no cycle clock, so
    attaching a tracer or a fault injector — both defined on the simulated
    superstep timeline — is a caller error, reported uniformly through this
    class (``docs/runtime.md``).
    """

    exit_code = 15

    def __init__(self, message: str, *, backend: str | None = None,
                 capability: str | None = None):
        self.backend = backend
        self.capability = capability
        super().__init__(message)


class ServiceOverloadError(ReproError):
    """The serving runtime shed this job instead of accepting it.

    Raised by :class:`repro.serve.SolverService` admission control when the
    bounded job queue is full, the service is draining for shutdown, or the
    target structure's circuit breaker is open (``docs/serving.md``).
    ``reason`` is one of ``"queue_full"``, ``"shutting_down"``,
    ``"circuit_open"`` so clients can decide between back-off-and-retry
    (queue_full), failover (shutting_down), and reporting a poisoned
    workload (circuit_open).
    """

    exit_code = 16

    def __init__(self, message: str = "service overloaded", *,
                 reason: str = "queue_full", depth: int | None = None,
                 capacity: int | None = None):
        self.reason = reason
        self.depth = depth
        self.capacity = capacity
        detail = [f"reason={reason}"]
        if depth is not None and capacity is not None:
            detail.append(f"queue {depth}/{capacity}")
        super().__init__(f"{message} ({', '.join(detail)})")


class JobTimeoutError(ReproError, TimeoutError):
    """A solve exceeded its wall-clock deadline and was cancelled
    cooperatively (checked in the :class:`~repro.solvers.SolveProgress`
    hook between iterations).

    Carries the partial convergence record so callers can see how far the
    solve got: ``stats`` is a detached
    :class:`~repro.solvers.SolveStats` copy (``None`` when the deadline
    expired before the first recorded iteration, e.g. while the job was
    still queued), ``iteration`` the last recorded iteration, and
    ``wall_seconds``/``budget_seconds`` the measured and allowed time.
    """

    exit_code = 17

    def __init__(self, message: str = "solve deadline exceeded", *,
                 solver: str | None = None, iteration: int | None = None,
                 wall_seconds: float | None = None,
                 budget_seconds: float | None = None, stats=None):
        self.solver = solver
        self.iteration = iteration
        self.wall_seconds = wall_seconds
        self.budget_seconds = budget_seconds
        self.stats = stats
        detail = []
        if iteration is not None:
            detail.append(f"at iteration {iteration}")
        if wall_seconds is not None and budget_seconds is not None:
            detail.append(f"{wall_seconds:.3f}s > budget {budget_seconds:.3f}s")
        super().__init__(f"{message} ({', '.join(detail)})" if detail else message)


class QuotaExceededError(ReproError):
    """A tenant ran out of admission tokens (per-tenant token bucket).

    ``retry_after`` is the seconds until the bucket refills enough for one
    job (``inf`` for a zero-rate bucket) — the client back-off hint
    (``docs/serving.md``).
    """

    exit_code = 18

    def __init__(self, message: str = "tenant quota exceeded", *,
                 tenant: str | None = None, retry_after: float | None = None):
        self.tenant = tenant
        self.retry_after = retry_after
        detail = []
        if tenant is not None:
            detail.append(f"tenant {tenant!r}")
        if retry_after is not None:
            detail.append(f"retry after {retry_after:.3f}s")
        super().__init__(f"{message} ({', '.join(detail)})" if detail else message)
