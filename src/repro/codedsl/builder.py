"""Statement IR and the symbolic-execution builder for CodeDSL codelets.

A :class:`CodeletIR` records statements while the user's Python function runs
symbolically.  Free functions :func:`For`, :func:`If`, :func:`While` and
:func:`Let` append to the *currently open* IR (a context-manager stack), so
user code reads like the paper's C++:

    For(0, x.size, 1, lambda i: x.set(i, x[i] * 2))

Control-flow bodies are passed as lambdas, exactly as in the paper; each
body is symbolically executed once inside a nested statement block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codedsl.values import (
    ArrayRef,
    CallOp,
    LocalVar,
    LoopVar,
    Node,
    Value,
    as_node,
)

__all__ = [
    "Stmt",
    "Store",
    "DeclareLocal",
    "AssignLocal",
    "ForStmt",
    "WhileStmt",
    "IfStmt",
    "CodeletIR",
    "For",
    "If",
    "While",
    "Let",
    "Abs",
    "Sqrt",
    "Min",
    "Max",
    "current_ir",
]


# -- statement nodes -----------------------------------------------------------------


@dataclass
class Stmt:
    pass


@dataclass
class Store(Stmt):
    array: Node
    index: Node
    value: Node


@dataclass
class DeclareLocal(Stmt):
    var: LocalVar
    value: Node


@dataclass
class AssignLocal(Stmt):
    var: LocalVar
    value: Node


@dataclass
class ForStmt(Stmt):
    var: LoopVar
    start: Node
    stop: Node
    step: Node
    body: list = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Node
    body: list = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Node
    then_body: list = field(default_factory=list)
    else_body: list = field(default_factory=list)


# -- builder --------------------------------------------------------------------------

_IR_STACK: list["CodeletIR"] = []


def current_ir() -> "CodeletIR":
    if not _IR_STACK:
        raise RuntimeError(
            "no CodeletIR is open; CodeDSL statements must run inside "
            "'with CodeletIR(...):' or an Execute() body"
        )
    return _IR_STACK[-1]


class CodeletIR:
    """Builds the statement list of one codelet via symbolic execution."""

    def __init__(self, params):
        self.params = list(params)
        self.body: list[Stmt] = []
        self._blocks: list[list[Stmt]] = [self.body]
        self._counter = 0

    # -- context management -----------------------------------------------------------

    def __enter__(self):
        _IR_STACK.append(self)
        return self

    def __exit__(self, *exc):
        popped = _IR_STACK.pop()
        assert popped is self
        return False

    # -- parameter / local handles ------------------------------------------------------

    def array(self, name: str) -> ArrayRef:
        if name not in self.params:
            raise KeyError(f"{name!r} is not a parameter of this codelet")
        from repro.codedsl.values import Param

        return ArrayRef(Param(name))

    def scalar(self, name: str) -> Value:
        if name not in self.params:
            raise KeyError(f"{name!r} is not a parameter of this codelet")
        from repro.codedsl.values import Param

        return Value(Param(name))

    def fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- statement emission ----------------------------------------------------------------

    def _emit(self, stmt: Stmt) -> Stmt:
        self._blocks[-1].append(stmt)
        return stmt

    def emit_store(self, array: ArrayRef, index, value) -> None:
        self._emit(Store(as_node(array), as_node(index), as_node(value)))

    def emit_let(self, value) -> Value:
        var = LocalVar(self.fresh_name("t"))
        self._emit(DeclareLocal(var, as_node(value)))
        return MutableValue(var, self)

    def emit_for(self, start, stop, step, body_fn) -> None:
        var = LoopVar(self.fresh_name("i"))
        stmt = ForStmt(var, as_node(start), as_node(stop), as_node(step))
        self._emit(stmt)
        self._blocks.append(stmt.body)
        try:
            body_fn(Value(var))
        finally:
            self._blocks.pop()

    def emit_while(self, cond, body_fn) -> None:
        stmt = WhileStmt(as_node(cond))
        self._emit(stmt)
        self._blocks.append(stmt.body)
        try:
            body_fn()
        finally:
            self._blocks.pop()

    def emit_if(self, cond, then_fn, else_fn=None) -> None:
        stmt = IfStmt(as_node(cond))
        self._emit(stmt)
        self._blocks.append(stmt.then_body)
        try:
            then_fn()
        finally:
            self._blocks.pop()
        if else_fn is not None:
            self._blocks.append(stmt.else_body)
            try:
                else_fn()
            finally:
                self._blocks.pop()

    # -- compilation --------------------------------------------------------------------

    def compile(self):
        """Generate Python source for this codelet and compile it."""
        from repro.codedsl.codegen import compile_ir

        return compile_ir(self)


class MutableValue(Value):
    """A local variable handle that supports re-assignment via ``.assign``."""

    __slots__ = ("_ir",)

    def __init__(self, var: LocalVar, ir: CodeletIR):
        super().__init__(var)
        self._ir = ir

    def assign(self, value) -> None:
        self._ir._emit(AssignLocal(self.node, as_node(value)))


# -- free functions (paper-style syntax) ---------------------------------------------------


def For(start, stop, step, body_fn) -> None:
    """``For(0, x.size, 1, lambda i: ...)`` — a counted loop."""
    current_ir().emit_for(start, stop, step, body_fn)


def If(cond, then_fn, else_fn=None) -> None:
    current_ir().emit_if(cond, then_fn, else_fn)


def While(cond, body_fn) -> None:
    """Loop while ``cond`` (an expression over mutable locals) holds."""
    current_ir().emit_while(cond, body_fn)


def Let(value) -> MutableValue:
    """Declare a mutable local initialized to ``value``."""
    return current_ir().emit_let(value)


def Abs(x) -> Value:
    return Value(CallOp("abs", (as_node(x),)))


def Sqrt(x) -> Value:
    return Value(CallOp("sqrt", (as_node(x),)))


def Min(a, b) -> Value:
    return Value(CallOp("min", (as_node(a), as_node(b))))


def Max(a, b) -> Value:
    return Value(CallOp("max", (as_node(a), as_node(b))))
