"""CodeDSL: the tile-centric codelet description language (Sec. III).

Algorithms in CodeDSL are written from the perspective of a single tile and
can only touch the parts of tensors mapped to that tile.  A CodeDSL function
is *symbolically executed*: its parameters are :class:`~repro.codedsl.values.Value`
handles whose operators build an expression/statement IR instead of
computing.  The IR is then compiled to a host-language codelet
(:mod:`repro.codedsl.codegen` emits Python source and ``compile()``s it —
the analogue of the paper emitting C++ compiled by the host toolchain), and
its cycle cost is estimated from the same IR
(:mod:`repro.codedsl.estimator`).

Example (the Leibniz kernel of Fig. 1)::

    from repro.codedsl import CodeletIR, For, Select

    ir = CodeletIR(params=["x"])
    with ir:
        x = ir.array("x")
        For(0, x.size, 1, lambda i:
            x.set(i, Select(i % 2 == 0, 1.0, -1.0) / (2 * i + 1)))
    fn = ir.compile()
"""

from repro.codedsl.values import ArrayRef, Select, Value
from repro.codedsl.builder import (
    Abs,
    CodeletIR,
    For,
    If,
    Let,
    Max,
    Min,
    Sqrt,
    While,
    current_ir,
)
from repro.codedsl.codegen import generate_source
from repro.codedsl.estimator import estimate_flops

__all__ = [
    "Value",
    "ArrayRef",
    "Select",
    "CodeletIR",
    "For",
    "If",
    "While",
    "Let",
    "Abs",
    "Sqrt",
    "Min",
    "Max",
    "current_ir",
    "generate_source",
    "estimate_flops",
]
