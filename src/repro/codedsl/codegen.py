"""Codelet code generation: CodeDSL IR → Python source → compiled function.

The paper's framework emits C++ codelets that the host toolchain compiles in
isolation; we emit Python source and ``compile()`` it — same architecture,
host-appropriate backend.  Emitting real source (rather than interpreting
the IR) keeps the analogy honest and lets the host runtime optimize the
loop body once, not per element.

Arithmetic inside a generated codelet runs in host precision and rounds on
stores into the (float32) shard arrays.  Solver-critical kernels use
intrinsic codelets with exact float32 semantics instead (see
``repro.solvers``); CodeDSL codelets serve user programs and glue code.
"""

from __future__ import annotations

import math

from repro.codedsl import builder as B
from repro.codedsl import values as V

__all__ = ["generate_source", "compile_ir"]

_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "//": "//",
    "%": "%",
    "==": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "and": "and",
    "or": "or",
}

_CALLS = {"abs": "abs", "sqrt": "math.sqrt", "min": "min", "max": "max"}


def _expr(node: V.Node) -> str:
    if isinstance(node, V.Const):
        return repr(node.value)
    if isinstance(node, (V.Param, V.LocalVar, V.LoopVar)):
        return node.name
    if isinstance(node, V.BinOp):
        return f"({_expr(node.left)} {_BINOPS[node.op]} {_expr(node.right)})"
    if isinstance(node, V.UnOp):
        op = "not " if node.op == "not" else node.op
        return f"({op}{_expr(node.operand)})"
    if isinstance(node, V.CallOp):
        args = ", ".join(_expr(a) for a in node.args)
        return f"{_CALLS[node.fn]}({args})"
    if isinstance(node, V.IndexOp):
        return f"{_expr(node.array)}[{_expr(node.index)}]"
    if isinstance(node, V.SizeOf):
        return f"{_expr(node.array)}.size"
    if isinstance(node, V.SelectOp):
        return f"({_expr(node.if_true)} if {_expr(node.cond)} else {_expr(node.if_false)})"
    raise TypeError(f"unknown expression node {node!r}")


def _stmts(body, lines, indent):
    pad = "    " * indent
    if not body:
        lines.append(pad + "pass")
        return
    for stmt in body:
        if isinstance(stmt, B.Store):
            lines.append(f"{pad}{_expr(stmt.array)}[{_expr(stmt.index)}] = {_expr(stmt.value)}")
        elif isinstance(stmt, (B.DeclareLocal, B.AssignLocal)):
            lines.append(f"{pad}{stmt.var.name} = {_expr(stmt.value)}")
        elif isinstance(stmt, B.ForStmt):
            lines.append(
                f"{pad}for {stmt.var.name} in range(int({_expr(stmt.start)}), "
                f"int({_expr(stmt.stop)}), int({_expr(stmt.step)})):"
            )
            _stmts(stmt.body, lines, indent + 1)
        elif isinstance(stmt, B.WhileStmt):
            lines.append(f"{pad}while {_expr(stmt.cond)}:")
            _stmts(stmt.body, lines, indent + 1)
        elif isinstance(stmt, B.IfStmt):
            lines.append(f"{pad}if {_expr(stmt.cond)}:")
            _stmts(stmt.then_body, lines, indent + 1)
            if stmt.else_body:
                lines.append(f"{pad}else:")
                _stmts(stmt.else_body, lines, indent + 1)
        else:
            raise TypeError(f"unknown statement {stmt!r}")


def generate_source(ir: B.CodeletIR, name: str = "codelet") -> str:
    """Emit the Python source of one codelet."""
    sig = ", ".join(ir.params)
    lines = [f"def {name}({sig}):"]
    _stmts(ir.body, lines, 1)
    return "\n".join(lines) + "\n"


def compile_ir(ir: B.CodeletIR, name: str = "codelet"):
    """Compile the IR to a callable.  The returned function takes the
    codelet's parameters (shard arrays / scalars) positionally or by name."""
    source = generate_source(ir, name)
    namespace = {"math": math}
    exec(compile(source, f"<codedsl:{name}>", "exec"), namespace)
    fn = namespace[name]
    fn.__codedsl_source__ = source
    return fn
