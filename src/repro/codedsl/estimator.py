"""Cycle/flop estimation for generated codelets.

The engine needs a deterministic cost for every codelet.  For intrinsic
kernels the cost formulas live in :mod:`repro.machine.cycles`; for generated
CodeDSL codelets we *interpret the IR symbolically*, evaluating loop bounds
against the actual shard sizes bound to the vertex and counting arithmetic
operations.  Data-dependent constructs use conservative conventions:

- ``If``: the more expensive branch is charged (the worst case the BSP
  schedule must budget for),
- ``While``: one iteration is charged per estimate (callers with known trip
  counts should use ``For``).
"""

from __future__ import annotations

from repro.codedsl import builder as B
from repro.codedsl import values as V

__all__ = ["estimate_flops"]

#: Arithmetic ops counted per expression node kind.
_ARITH_BINOPS = {"+", "-", "*", "/", "//", "%"}
_CMP_BINOPS = {"==", "!=", "<", "<=", ">", ">=", "and", "or"}


class _Estimator:
    def __init__(self, bindings: dict):
        # Param name -> bound object (array with .size, or scalar).
        self.bindings = bindings

    # -- expression: (value if statically evaluable else None, flop count) ------------

    def expr(self, node: V.Node):
        if isinstance(node, V.Const):
            return node.value, 0
        if isinstance(node, V.Param):
            b = self.bindings.get(node.name)
            if b is not None and not hasattr(b, "size"):
                return b, 0  # scalar parameter with a known value
            return None, 0
        if isinstance(node, (V.LocalVar, V.LoopVar)):
            return None, 0
        if isinstance(node, V.SizeOf):
            arr = node.array
            if isinstance(arr, V.Param):
                b = self.bindings.get(arr.name)
                if b is not None and hasattr(b, "size"):
                    return int(b.size), 0
            return None, 0
        if isinstance(node, V.BinOp):
            lv, lf = self.expr(node.left)
            rv, rf = self.expr(node.right)
            cost = lf + rf + 1
            if lv is not None and rv is not None:
                try:
                    val = _apply(node.op, lv, rv)
                    return val, cost
                except ZeroDivisionError:
                    return None, cost
            return None, cost
        if isinstance(node, V.UnOp):
            v, f = self.expr(node.operand)
            if v is not None:
                return (-v if node.op == "-" else (not v)), f + 1
            return None, f + 1
        if isinstance(node, V.CallOp):
            flops = 1
            for a in node.args:
                flops += self.expr(a)[1]
            return None, flops
        if isinstance(node, V.IndexOp):
            return None, self.expr(node.index)[1]
        if isinstance(node, V.SelectOp):
            cf = self.expr(node.cond)[1]
            tf = self.expr(node.if_true)[1]
            ff = self.expr(node.if_false)[1]
            return None, cf + max(tf, ff) + 1
        raise TypeError(f"unknown node {node!r}")

    # -- statements ------------------------------------------------------------------

    def block(self, body) -> int:
        return sum(self.stmt(s) for s in body)

    def stmt(self, stmt) -> int:
        if isinstance(stmt, B.Store):
            return self.expr(stmt.value)[1] + self.expr(stmt.index)[1]
        if isinstance(stmt, (B.DeclareLocal, B.AssignLocal)):
            return self.expr(stmt.value)[1]
        if isinstance(stmt, B.ForStmt):
            trips = self._trip_count(stmt)
            per_iter = self.block(stmt.body) + 1  # +1: induction update
            return trips * per_iter
        if isinstance(stmt, B.WhileStmt):
            return self.expr(stmt.cond)[1] + self.block(stmt.body)
        if isinstance(stmt, B.IfStmt):
            return self.expr(stmt.cond)[1] + max(
                self.block(stmt.then_body), self.block(stmt.else_body)
            )
        raise TypeError(f"unknown statement {stmt!r}")

    def _trip_count(self, stmt: B.ForStmt) -> int:
        start, _ = self.expr(stmt.start)
        stop, _ = self.expr(stmt.stop)
        step, _ = self.expr(stmt.step)
        if start is None or stop is None or step in (None, 0):
            return 1  # unknown bounds: charge one iteration
        trips = (stop - start + step - 1) // step if step > 0 else 0
        return max(int(trips), 0)


def _apply(op, a, b):
    return {
        "+": lambda: a + b,
        "-": lambda: a - b,
        "*": lambda: a * b,
        "/": lambda: a / b,
        "//": lambda: a // b,
        "%": lambda: a % b,
        "==": lambda: a == b,
        "!=": lambda: a != b,
        "<": lambda: a < b,
        "<=": lambda: a <= b,
        ">": lambda: a > b,
        ">=": lambda: a >= b,
        "and": lambda: a and b,
        "or": lambda: a or b,
    }[op]()


def estimate_flops(ir: B.CodeletIR, bindings: dict) -> int:
    """Count arithmetic operations of one codelet invocation.

    ``bindings`` maps parameter names to the objects the vertex will pass
    (arrays contribute their ``.size`` to loop bounds, scalars their value).
    """
    return _Estimator(bindings).block(ir.body)
