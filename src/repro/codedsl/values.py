"""CodeDSL expression IR: dynamically-typed values with operator overloading.

A :class:`Value` wraps an expression node.  Applying Python operators to
Values (or mixing them with Python numbers) builds larger expressions — no
computation happens until the codelet is compiled and run.  This mirrors the
paper's dynamically-typed embedded C++ DSL.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Node",
    "Const",
    "Param",
    "LocalVar",
    "LoopVar",
    "BinOp",
    "UnOp",
    "CallOp",
    "IndexOp",
    "SizeOf",
    "SelectOp",
    "Value",
    "ArrayRef",
    "Select",
    "as_node",
]


# -- IR nodes ---------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    pass


@dataclass(frozen=True)
class Const(Node):
    value: object


@dataclass(frozen=True)
class Param(Node):
    name: str


@dataclass(frozen=True)
class LocalVar(Node):
    name: str


@dataclass(frozen=True)
class LoopVar(Node):
    name: str


@dataclass(frozen=True)
class BinOp(Node):
    op: str  # +, -, *, /, //, %, ==, !=, <, <=, >, >=, and, or
    left: Node
    right: Node


@dataclass(frozen=True)
class UnOp(Node):
    op: str  # -, not
    operand: Node


@dataclass(frozen=True)
class CallOp(Node):
    fn: str  # abs, sqrt, min, max
    args: tuple


@dataclass(frozen=True)
class IndexOp(Node):
    array: Node
    index: Node


@dataclass(frozen=True)
class SizeOf(Node):
    array: Node


@dataclass(frozen=True)
class SelectOp(Node):
    cond: Node
    if_true: Node
    if_false: Node


# -- user-facing wrappers ------------------------------------------------------------


def as_node(x) -> Node:
    if isinstance(x, Value):
        return x.node
    if isinstance(x, (int, float, bool)):
        return Const(x)
    # NumPy scalars etc. — anything with a float conversion.
    try:
        return Const(float(x))
    except (TypeError, ValueError):
        raise TypeError(f"cannot use {x!r} in a CodeDSL expression") from None


class Value:
    """A dynamically-typed DSL value."""

    __slots__ = ("node",)

    def __init__(self, node: Node):
        self.node = node

    # arithmetic -------------------------------------------------------------------
    def _bin(self, op, other, swap=False):
        a, b = as_node(self), as_node(other)
        if swap:
            a, b = b, a
        return Value(BinOp(op, a, b))

    def __add__(self, o):
        return self._bin("+", o)

    def __radd__(self, o):
        return self._bin("+", o, swap=True)

    def __sub__(self, o):
        return self._bin("-", o)

    def __rsub__(self, o):
        return self._bin("-", o, swap=True)

    def __mul__(self, o):
        return self._bin("*", o)

    def __rmul__(self, o):
        return self._bin("*", o, swap=True)

    def __truediv__(self, o):
        return self._bin("/", o)

    def __rtruediv__(self, o):
        return self._bin("/", o, swap=True)

    def __floordiv__(self, o):
        return self._bin("//", o)

    def __rfloordiv__(self, o):
        return self._bin("//", o, swap=True)

    def __mod__(self, o):
        return self._bin("%", o)

    def __rmod__(self, o):
        return self._bin("%", o, swap=True)

    def __neg__(self):
        return Value(UnOp("-", as_node(self)))

    def __abs__(self):
        return Value(CallOp("abs", (as_node(self),)))

    # comparisons ----------------------------------------------------------------------
    def __eq__(self, o):  # type: ignore[override]
        return self._bin("==", o)

    def __ne__(self, o):  # type: ignore[override]
        return self._bin("!=", o)

    def __lt__(self, o):
        return self._bin("<", o)

    def __le__(self, o):
        return self._bin("<=", o)

    def __gt__(self, o):
        return self._bin(">", o)

    def __ge__(self, o):
        return self._bin(">=", o)

    # logic ------------------------------------------------------------------------------
    def logical_and(self, o):
        return self._bin("and", o)

    def logical_or(self, o):
        return self._bin("or", o)

    def logical_not(self):
        return Value(UnOp("not", as_node(self)))

    __hash__ = None  # Values are expressions, not hashable keys

    def __bool__(self):
        raise TypeError(
            "CodeDSL Values have no Python truth value; use If()/While()/Select() "
            "so the condition becomes part of the generated codelet"
        )

    def __repr__(self):
        return f"Value({self.node!r})"


class ArrayRef(Value):
    """A Value referring to an array parameter; supports indexing and ``.size``.

    Reads use ``x[i]``.  Writes must use ``x.set(i, expr)`` (appending a store
    statement to the enclosing :class:`~repro.codedsl.builder.CodeletIR`) —
    Python's ``x[i] = v`` also works as sugar inside an open IR context.
    """

    __slots__ = ()

    def __getitem__(self, index) -> Value:
        return Value(IndexOp(as_node(self), as_node(index)))

    def __setitem__(self, index, value) -> None:
        self.set(index, value)

    def set(self, index, value) -> None:
        from repro.codedsl.builder import current_ir

        current_ir().emit_store(self, index, value)

    @property
    def size(self) -> Value:
        return Value(SizeOf(as_node(self)))


def Select(cond, if_true, if_false) -> Value:
    """Ternary select — the DSL's ``cond ? a : b`` (Fig. 1)."""
    return Value(SelectOp(as_node(cond), as_node(if_true), as_node(if_false)))
