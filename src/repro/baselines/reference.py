"""Reference numerics of the CPU/GPU baselines.

HYPRE (CPU) and HYPRE+cuSPARSE (GPU) both run native-float64 BiCGStab with
a *global* ILU(0) preconditioner — unlike the IPU, whose block-local ILU
disregards halo values (Sec. VI-D).  This module computes exactly those
numerics, which supplies the baseline iteration counts for the Fig. 8
bench; the time per iteration comes from :mod:`repro.baselines.perf_model`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.sparse.crs import ModifiedCRS
from repro.sparse.levelset import level_schedule

__all__ = ["global_ilu0", "reference_bicgstab", "reference_solve_info"]


def global_ilu0(matrix: ModifiedCRS):
    """Global (un-decomposed) ILU(0) factorization in float64.

    Returns ``(L, U)`` as CSR with unit-lower L.  IKJ algorithm restricted
    to the original sparsity pattern — the textbook variant HYPRE/cuSPARSE
    implement.
    """
    csr = matrix.to_scipy().astype(np.float64)
    csr.sort_indices()
    n = csr.shape[0]
    indptr, indices, data = csr.indptr, csr.indices, csr.data.copy()
    # Row lookup maps for pattern-restricted updates.
    row_pos = [
        {int(c): int(p) for p, c in zip(range(indptr[i], indptr[i + 1]), indices[indptr[i] : indptr[i + 1]])}
        for i in range(n)
    ]
    diag_pos = np.array([row_pos[i][i] for i in range(n)])
    for i in range(n):
        s, e = indptr[i], indptr[i + 1]
        for p in range(s, e):
            k = indices[p]
            if k >= i:
                break
            l_ik = data[p] / data[diag_pos[k]]
            data[p] = l_ik
            # Update against row k's upper part.
            ks, ke = indptr[k], indptr[k + 1]
            for q in range(ks, ke):
                j = indices[q]
                if j <= k:
                    continue
                tgt = row_pos[i].get(int(j))
                if tgt is not None:
                    data[tgt] -= l_ik * data[q]
    lu = sp.csr_matrix((data, indices, indptr), shape=(n, n))
    lower = sp.tril(lu, k=-1).tocsr() + sp.identity(n, format="csr")
    upper = sp.triu(lu, k=0).tocsr()
    return lower, upper


def _ilu_apply(lower, upper):
    """Preconditioner application  z = U⁻¹ L⁻¹ r  (two triangular solves)."""

    def apply(r):
        y = spla.spsolve_triangular(lower, r, lower=True, unit_diagonal=True)
        return spla.spsolve_triangular(upper, y, lower=False)

    return apply


def reference_bicgstab(
    matrix: ModifiedCRS,
    b: np.ndarray,
    tol: float = 1e-9,
    max_iterations: int = 2000,
    use_ilu: bool = True,
):
    """Float64 (P)BiCGStab with global ILU(0) — the baseline numerics.

    Returns ``(x, iterations, history)`` where ``history`` is the relative
    residual after each iteration (the quantity Fig. 8's stop criterion and
    Figs. 9/10's curves use).
    """
    a = matrix.to_scipy().astype(np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    M = _ilu_apply(*global_ilu0(matrix)) if use_ilu else (lambda r: r)
    bnorm = np.linalg.norm(b) or 1.0

    x = np.zeros(n)
    r = b - a @ x
    r0 = r.copy()
    rho_old = alpha = omega = 1.0
    p = np.zeros(n)
    v = np.zeros(n)
    history = []
    for it in range(1, max_iterations + 1):
        rho = float(r0 @ r)
        if abs(rho) < 1e-300:
            break
        beta = (rho / rho_old) * (alpha / omega)
        p = r + beta * (p - omega * v)
        y = M(p)
        v = a @ y
        denom = float(r0 @ v)
        if denom == 0.0:
            break
        alpha = rho / denom
        s = r - alpha * v
        z = M(s)
        t = a @ z
        tt = float(t @ t)
        omega = float(t @ s) / tt if tt > 0 else 0.0
        x = x + alpha * y + omega * z
        r = s - omega * t
        rho_old = rho
        rel = np.linalg.norm(r) / bnorm
        history.append(rel)
        if rel < tol:
            break
    return x, len(history), history


def reference_solve_info(matrix: ModifiedCRS, b: np.ndarray, tol: float = 1e-9) -> dict:
    """Everything the Fig. 8 bench needs about the baseline solve:
    iteration count plus the ILU level structure (for the GPU time model)."""
    _, iterations, history = reference_bicgstab(matrix, b, tol=tol)
    sched = level_schedule(matrix.row_ptr, matrix.col_idx, matrix.n)
    return {
        "iterations": iterations,
        "history": history,
        "num_levels": sched.num_levels,
        "n": matrix.n,
        "nnz": matrix.nnz,
    }
