"""Roofline performance/energy models of the benchmark architectures.

Table III of the paper lists the three platforms; the constants below add
the published memory bandwidths and the latency terms that matter for
sparse solvers.  Sparse kernels move ~12–16 bytes per nonzero and perform
2 flops — hundreds of times below every platform's flop:byte balance point
— so time is ``bytes / bandwidth`` plus per-operation overheads:

- CPU: MPI/threading fork-join latency per operation (HYPRE runs flat MPI),
- GPU: kernel-launch latency per operation, and one *launch per level* in
  level-scheduled triangular solves (the cuSPARSE ILU bottleneck the paper
  discusses in Sec. VI-D),
- IPU: measured directly by the cycle-accurate machine model — the numbers
  fed to the comparison benches come from simulation, not from this file.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ArchSpec",
    "XEON_8470Q",
    "H100_SXM",
    "IPU_M2000",
    "PLATFORMS",
    "spmv_bytes",
    "spmv_time",
    "ilu_solve_time",
    "dot_time",
    "axpy_time",
    "solver_iteration_time",
    "energy_j",
]


@dataclass(frozen=True)
class ArchSpec:
    """One benchmark platform (Table III + published bandwidth figures)."""

    name: str
    #: Sustained memory bandwidth in bytes/s (STREAM-like, not peak).
    mem_bandwidth: float
    #: Peak general-purpose FLOP/s in the precision the platform solves in.
    flops: float
    #: Power draw used for the energy comparison, in watts.
    tdp_w: float
    #: Fixed overhead per device-wide operation (kernel launch / MPI
    #: fork-join / BSP superstep), in seconds.
    op_overhead_s: float
    #: Extra overhead per dependency level in level-scheduled triangular
    #: solves (zero where sweeps run in one pass).
    level_overhead_s: float = 0.0
    #: Fraction of peak bandwidth sparse kernels sustain (irregular access).
    sparse_efficiency: float = 1.0

    def effective_bandwidth(self) -> float:
        return self.mem_bandwidth * self.sparse_efficiency


#: Intel Xeon Platinum 8470Q (52 cores, DDR5): ~300 GB/s STREAM, 2.3 TF FP64,
#: 350 W.  HYPRE runs MPI; a parallel sparse op costs ~3 µs of fork-join.
XEON_8470Q = ArchSpec(
    name="CPU (Xeon 8470Q, HYPRE)",
    mem_bandwidth=300e9,
    flops=2.3e12,
    tdp_w=350.0,
    op_overhead_s=3e-6,
    level_overhead_s=0.0,  # triangular sweeps are one sequential pass
    sparse_efficiency=0.75,
)

#: NVIDIA H100 SXM: 3.35 TB/s HBM3, 34 TF FP64, 700 W; ~4 µs kernel launch,
#: and cuSPARSE's level-scheduled ILU solve launches one kernel per level.
H100_SXM = ArchSpec(
    name="GPU (H100 SXM, cuSPARSE)",
    mem_bandwidth=3.35e12,
    flops=34e12,
    tdp_w=700.0,
    op_overhead_s=4e-6,
    # cuSPARSE's level-scheduled triangular solve issues one kernel per
    # dependency level; launch plus inter-level ordering costs ≈ 4 µs per
    # level (the effect behind the paper's Sec. VI-D observation that the
    # ILU preconditioner suits the CPU far better than the GPU).
    level_overhead_s=4e-6,
    sparse_efficiency=0.6,
)

#: GraphCore M2000 (4 Mk2 IPUs): listed for the spec sheet and the energy
#: model; timing comes from the cycle-accurate simulation.  420 W is the
#: paper's measured IPU-only figure; 1100 W the full-box AC rating.
IPU_M2000 = ArchSpec(
    name="IPU (M2000, this framework)",
    mem_bandwidth=47.5e12,
    flops=11e12,  # FP32
    tdp_w=420.0,
    op_overhead_s=0.0,
    # SpMV on the IPU is partly bound by the f32 pipelines (2 flops per
    # ~12 bytes at 11 TFLOP/s), not by the 47.5 TB/s SRAM: the sustained
    # fraction is well below unity, consistent with the paper's measured
    # 13-19x (GPU) / 55-150x (CPU) ratios.
    sparse_efficiency=0.35,
)

PLATFORMS = {"cpu": XEON_8470Q, "gpu": H100_SXM, "ipu": IPU_M2000}


# -- operation models --------------------------------------------------------------------


def spmv_bytes(n: int, nnz: int, value_bytes: int = 8, index_bytes: int = 4) -> int:
    """Data movement of one CRS SpMV: values + column indices + row pointer,
    the source vector (≈ once, given some reuse) and the result."""
    return nnz * (value_bytes + index_bytes) + n * (index_bytes + 3 * value_bytes)


def spmv_time(arch: ArchSpec, n: int, nnz: int, value_bytes: int = 8) -> float:
    """Seconds for one SpMV on ``arch`` (bandwidth-bound + launch)."""
    return spmv_bytes(n, nnz, value_bytes) / arch.effective_bandwidth() + arch.op_overhead_s


def ilu_solve_time(arch: ArchSpec, n: int, nnz: int, num_levels: int, value_bytes: int = 8) -> float:
    """Seconds for one ILU(0) substitution (forward + backward sweep).

    Each sweep touches L/U values+indices and the solution vector; on GPUs
    every dependency level is a separate kernel launch (the dominant cost
    for deep level structures — Sec. VI-D's "particularly well-suited to
    the CPU" observation comes from exactly this asymmetry).
    """
    stream = spmv_bytes(n, nnz, value_bytes) / arch.effective_bandwidth()
    return stream + arch.op_overhead_s + 2 * num_levels * arch.level_overhead_s


def dot_time(arch: ArchSpec, n: int, value_bytes: int = 8) -> float:
    return 2 * n * value_bytes / arch.effective_bandwidth() + arch.op_overhead_s


def axpy_time(arch: ArchSpec, n: int, value_bytes: int = 8) -> float:
    return 3 * n * value_bytes / arch.effective_bandwidth() + arch.op_overhead_s


def solver_iteration_time(
    arch: ArchSpec, n: int, nnz: int, num_levels: int, value_bytes: int = 8
) -> float:
    """Seconds per PBiCGStab+ILU(0) iteration: 2 SpMV + 2 ILU solves +
    4 dots + 6 vector updates (the Fig. 4 loop body)."""
    return (
        2 * spmv_time(arch, n, nnz, value_bytes)
        + 2 * ilu_solve_time(arch, n, nnz, num_levels, value_bytes)
        + 4 * dot_time(arch, n, value_bytes)
        + 6 * axpy_time(arch, n, value_bytes)
    )


def energy_j(arch: ArchSpec, seconds: float) -> float:
    """Energy at the platform's comparison power draw."""
    return arch.tdp_w * seconds
