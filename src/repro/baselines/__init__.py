"""CPU and GPU comparator stacks (Sec. VI-A / VI-D).

The paper benchmarks against HYPRE on a Xeon Platinum 8470Q and
HYPRE+cuSPARSE on an H100 SXM.  Neither that hardware nor those libraries
are available here, so the comparator splits into two faithful halves:

- :mod:`repro.baselines.reference` — the *numerics*: a native-float64
  BiCGStab with a **global** ILU(0) preconditioner (what HYPRE/cuSPARSE
  compute), which yields the baseline iteration counts; and
- :mod:`repro.baselines.perf_model` — the *time*: roofline models of the
  three architectures parameterized by Table III (memory bandwidth, FLOPs,
  TDP, launch/latency overheads), which convert operation tallies into
  seconds and joules.

Sparse kernels are memory-bandwidth-bound on all three platforms, so
who-wins-by-what-factor is governed by published bandwidths plus the
latency terms this model carries — which is what lets the shape of
Figs. 7/8 survive the substitution.
"""

from repro.baselines.perf_model import (
    ArchSpec,
    H100_SXM,
    IPU_M2000,
    PLATFORMS,
    XEON_8470Q,
    energy_j,
    ilu_solve_time,
    solver_iteration_time,
    spmv_time,
)
from repro.baselines.reference import (
    global_ilu0,
    reference_bicgstab,
    reference_solve_info,
)

__all__ = [
    "ArchSpec",
    "XEON_8470Q",
    "H100_SXM",
    "IPU_M2000",
    "PLATFORMS",
    "spmv_time",
    "ilu_solve_time",
    "solver_iteration_time",
    "energy_j",
    "global_ilu0",
    "reference_bicgstab",
    "reference_solve_info",
]
