"""``repro.faults``: deterministic, seeded fault injection for the runtime.

Real accelerator fleets see transient single-event upsets in SRAM and
exchange streams, congested or stalling inter-chip links, and per-tile
memory exhaustion.  This module models those failure classes against the
simulated IPU *deterministically*: a :class:`FaultPlan` couples a seed with
a declarative list of fault clauses, and a :class:`FaultInjector` replays
the plan at the superstep boundaries of the frozen execution plans —
the same hook seam the telemetry tracer uses (``Backend.set_fault_injector``).

Determinism guarantees (``docs/resilience.md``):

- each fault clause owns an independent child RNG spawned from the plan
  seed (``np.random.SeedSequence``), and draws exactly once per superstep
  it is active in, so the injection schedule is a pure function of
  ``(seed, spec, program)``: two runs of the same program with the same
  plan inject the *same* faults at the *same* supersteps and produce
  bit-identical tensors and cycles;
- with no plan attached the backends execute the exact pre-fault code path
  (one ``is None`` check per superstep), so a fault-free run is
  bit-identical to a build without this module.

Spec grammar (compact form; JSON works too — see :meth:`FaultPlan.parse`)::

    seed=42;bitflip:p=0.01,where=exchange;link_stall:ipus=0-1,cycles=500,p=0.1;tile_oom:tile=3,at=120

Every injection is recorded as an :class:`InjectionRecord` and, when a
tracer is attached, emitted as a telemetry ``Instant`` event
(``name="fault"``) so traces and reports show the fault timeline.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import FaultSpecError, SRAMOverflowError

__all__ = [
    "BitFlip",
    "LinkStall",
    "TileOOM",
    "FaultPlan",
    "FaultInjector",
    "InjectionRecord",
    "FAULT_KINDS",
]

FAULT_KINDS = ("bitflip", "link_stall", "tile_oom")

#: Where a bitflip can strike: data being received in an exchange phase, or
#: resident tensor shards in tile SRAM at a compute-phase boundary.
BITFLIP_SITES = ("exchange", "sram")


# -- fault clauses ---------------------------------------------------------------------


@dataclass(frozen=True)
class BitFlip:
    """Transient single-bit upset: with probability ``p`` per superstep,
    flip one uniformly random bit of one element touched by the phase."""

    p: float
    where: str = "exchange"
    kind = "bitflip"

    def validate(self) -> None:
        if not (0.0 <= self.p <= 1.0):
            raise FaultSpecError(f"bitflip: p must be in [0, 1], got {self.p}")
        if self.where not in BITFLIP_SITES:
            raise FaultSpecError(
                f"bitflip: where must be one of {BITFLIP_SITES}, got {self.where!r}"
            )

    def to_dict(self) -> dict:
        return {"kind": self.kind, "p": self.p, "where": self.where}


@dataclass(frozen=True)
class LinkStall:
    """IPU-Link stall: with probability ``p`` per exchange superstep whose
    transfers cross the ``(src_ipu, dst_ipu)`` pair (either direction), the
    phase pays ``cycles`` extra cycles."""

    src_ipu: int
    dst_ipu: int
    cycles: int
    p: float = 1.0
    kind = "link_stall"

    def validate(self) -> None:
        if self.src_ipu < 0 or self.dst_ipu < 0:
            raise FaultSpecError("link_stall: IPU ids must be non-negative")
        if self.src_ipu == self.dst_ipu:
            raise FaultSpecError("link_stall: the IPU pair must name two distinct chips")
        if self.cycles <= 0:
            raise FaultSpecError(f"link_stall: cycles must be positive, got {self.cycles}")
        if not (0.0 <= self.p <= 1.0):
            raise FaultSpecError(f"link_stall: p must be in [0, 1], got {self.p}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "src_ipu": self.src_ipu,
            "dst_ipu": self.dst_ipu,
            "cycles": self.cycles,
            "p": self.p,
        }


@dataclass(frozen=True)
class TileOOM:
    """Deterministic per-tile memory exhaustion: at superstep boundary
    ``at_superstep`` (a global 1-based counter over compute *and* exchange
    phases), raise :class:`SRAMOverflowError` for ``tile``."""

    tile: int
    at_superstep: int
    kind = "tile_oom"

    def validate(self) -> None:
        if self.tile < 0:
            raise FaultSpecError(f"tile_oom: tile must be non-negative, got {self.tile}")
        if self.at_superstep <= 0:
            raise FaultSpecError(
                f"tile_oom: at_superstep must be >= 1, got {self.at_superstep}"
            )

    def to_dict(self) -> dict:
        return {"kind": self.kind, "tile": self.tile, "at_superstep": self.at_superstep}


_KIND_CLASSES = {"bitflip": BitFlip, "link_stall": LinkStall, "tile_oom": TileOOM}


# -- the plan --------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of fault clauses — the full, declarative
    description of a fault campaign.  Immutable and JSON round-trippable."""

    faults: tuple
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        if not self.faults:
            raise FaultSpecError("fault plan has no fault clauses")
        for f in self.faults:
            f.validate()

    # -- construction ----------------------------------------------------------------

    @classmethod
    def parse(cls, spec) -> "FaultPlan":
        """Accept a plan, a dict, a JSON string, a ``.json`` path, or the
        compact ``seed=N;kind:k=v,...`` grammar (module docstring)."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        if isinstance(spec, Path):
            return cls._from_file(spec)
        if isinstance(spec, str):
            s = spec.strip()
            if not s:
                raise FaultSpecError("empty fault spec")
            if s.startswith("{"):
                try:
                    data = json.loads(s)
                except json.JSONDecodeError as exc:
                    raise FaultSpecError(f"fault spec is not valid JSON: {exc}") from None
                return cls.from_dict(data)
            if s.endswith(".json"):
                return cls._from_file(Path(s))
            return cls._parse_compact(s)
        raise FaultSpecError(
            f"cannot parse a fault plan from {type(spec).__name__}: {spec!r}"
        )

    @classmethod
    def _from_file(cls, path: Path) -> "FaultPlan":
        if not path.exists():
            raise FaultSpecError(f"no such fault-plan file: {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise FaultSpecError(f"{path}: not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultSpecError(f"fault plan must be an object, got {type(data).__name__}")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise FaultSpecError(f"unknown fault-plan keys: {sorted(unknown)}")
        faults = []
        for i, fd in enumerate(data.get("faults", ())):
            kw = dict(fd)
            kind = kw.pop("kind", None)
            klass = _KIND_CLASSES.get(kind)
            if klass is None:
                raise FaultSpecError(
                    f"faults[{i}]: unknown kind {kind!r} (one of {FAULT_KINDS})"
                )
            try:
                faults.append(klass(**kw))
            except TypeError as exc:
                raise FaultSpecError(f"faults[{i}] ({kind}): {exc}") from None
        return cls(faults=tuple(faults), seed=int(data.get("seed", 0)))

    @classmethod
    def _parse_compact(cls, s: str) -> "FaultPlan":
        seed = 0
        faults = []
        for clause in filter(None, (c.strip() for c in s.split(";"))):
            head, _, rest = clause.partition(":")
            head = head.strip()
            if head.startswith("seed=") and not rest:
                try:
                    seed = int(head.split("=", 1)[1])
                except ValueError:
                    raise FaultSpecError(f"bad seed clause {clause!r}") from None
                continue
            kv = {}
            if rest:
                for pair in rest.split(","):
                    key, eq, val = pair.partition("=")
                    if not eq:
                        raise FaultSpecError(
                            f"clause {clause!r}: expected key=value, got {pair!r}"
                        )
                    kv[key.strip()] = val.strip()
            faults.append(cls._compact_clause(head, kv, clause))
        return cls(faults=tuple(faults), seed=seed)

    @staticmethod
    def _compact_clause(kind: str, kv: dict, clause: str):
        def num(key, conv, default=None, required=False):
            if key not in kv:
                if required:
                    raise FaultSpecError(f"clause {clause!r}: missing {key}=")
                return default
            try:
                return conv(kv.pop(key))
            except ValueError:
                raise FaultSpecError(f"clause {clause!r}: bad value for {key}") from None

        if kind == "bitflip":
            p = num("p", float, required=True)
            where = kv.pop("where", "exchange")
            fault = BitFlip(p=p, where=where)
        elif kind == "link_stall":
            pair = kv.pop("ipus", None)
            if pair is None or "-" not in pair:
                raise FaultSpecError(f"clause {clause!r}: expected ipus=A-B")
            try:
                a, b = (int(x) for x in pair.split("-", 1))
            except ValueError:
                raise FaultSpecError(f"clause {clause!r}: bad ipus={pair!r}") from None
            fault = LinkStall(src_ipu=a, dst_ipu=b,
                              cycles=num("cycles", int, required=True),
                              p=num("p", float, default=1.0))
        elif kind == "tile_oom":
            fault = TileOOM(tile=num("tile", int, required=True),
                            at_superstep=num("at", int, required=True))
        else:
            raise FaultSpecError(f"unknown fault kind {kind!r} (one of {FAULT_KINDS})")
        if kv:
            raise FaultSpecError(f"clause {clause!r}: unknown keys {sorted(kv)}")
        return fault

    # -- views -----------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __len__(self) -> int:
        return len(self.faults)


# -- injection records -----------------------------------------------------------------


@dataclass(frozen=True)
class InjectionRecord:
    """One concrete injection: what, where on the BSP timeline, and the
    kind-specific detail (flipped bit, stalled pair, OOM tile...)."""

    kind: str
    superstep: int
    cycle: int
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "superstep": self.superstep,
            "cycle": self.cycle,
            **self.detail,
        }


# -- the injector ----------------------------------------------------------------------


class FaultInjector:
    """Replays a :class:`FaultPlan` against a running backend.

    Attached via ``Backend.set_fault_injector`` (sim backend only);
    :meth:`compute_superstep` / :meth:`exchange_superstep` are called once
    per BSP phase with that phase's frozen plan.  ``disabled`` names fault
    kinds to skip — the resilience layer disables ``tile_oom`` after a
    degradation restart so the rebuilt solve can complete.
    """

    def __init__(self, plan: FaultPlan, disabled=()):
        self.plan = plan
        self.disabled = frozenset(disabled)
        self.records: list[InjectionRecord] = []
        self.superstep = 0
        self.device = None
        self.tracer = None
        children = np.random.SeedSequence(plan.seed).spawn(len(plan.faults))
        self._rngs = [np.random.default_rng(c) for c in children]

    def bind(self, device, tracer=None) -> None:
        self.device = device
        if tracer is not None:
            self.tracer = tracer

    # -- bookkeeping -----------------------------------------------------------------

    def _now(self) -> int:
        return self.device.profiler.total_cycles if self.device is not None else 0

    def _record(self, kind: str, detail: dict) -> InjectionRecord:
        rec = InjectionRecord(kind=kind, superstep=self.superstep,
                              cycle=self._now(), detail=detail)
        self.records.append(rec)
        if self.tracer is not None:
            self.tracer.instant(
                "fault", "fault",
                {"kind": kind, "superstep": rec.superstep, **detail},
                ts=rec.cycle,
            )
        return rec

    def summary(self) -> dict:
        return {
            "injections": len(self.records),
            "by_kind": dict(Counter(r.kind for r in self.records)),
        }

    # -- backend hooks (one call per superstep) --------------------------------------

    def compute_superstep(self, plan) -> None:
        """Called after each compute phase; may corrupt SRAM or raise OOM."""
        self.superstep += 1
        self._check_tile_oom()
        for fault, rng in zip(self.plan.faults, self._rngs):
            if (fault.kind == "bitflip" and fault.where == "sram"
                    and fault.kind not in self.disabled):
                if rng.random() < fault.p:
                    self._flip_sram(rng, plan)

    def exchange_superstep(self, plan, phase) -> int:
        """Called after each exchange phase's copies and fabric pricing but
        before the cycles are recorded; returns extra stall cycles."""
        self.superstep += 1
        self._check_tile_oom()
        extra = 0
        for fault, rng in zip(self.plan.faults, self._rngs):
            if fault.kind in self.disabled:
                continue
            if fault.kind == "bitflip" and fault.where == "exchange":
                if rng.random() < fault.p:
                    self._flip_exchange(rng, plan)
            elif fault.kind == "link_stall":
                if rng.random() < fault.p and self._crosses(plan, fault):
                    extra += fault.cycles
                    self._record("link_stall", {
                        "src_ipu": fault.src_ipu, "dst_ipu": fault.dst_ipu,
                        "cycles": fault.cycles, "exchange": plan.name,
                    })
        return extra

    # -- per-kind mechanics ----------------------------------------------------------

    def _check_tile_oom(self) -> None:
        for fault in self.plan.faults:
            if fault.kind != "tile_oom" or fault.kind in self.disabled:
                continue
            if self.superstep == fault.at_superstep:
                self._record("tile_oom", {"tile": fault.tile})
                free = 0
                capacity = None
                if self.device is not None and fault.tile < self.device.num_tiles:
                    tile = self.device.tile(fault.tile)
                    free = tile.bytes_free
                    capacity = tile.spec.sram_per_tile
                raise SRAMOverflowError(
                    f"injected tile OOM fault at superstep {self.superstep}",
                    tile_id=fault.tile,
                    requested=free + 1,
                    free=free,
                    capacity=capacity,
                )

    def _crosses(self, plan, fault) -> bool:
        if self.device is None or self.device.num_ipus < 2:
            return False
        pair = {fault.src_ipu, fault.dst_ipu}
        ipu_of = self.device.ipu_of
        for t in plan.transfers:
            src = ipu_of(t.src_tile)
            for dst_tile in t.dst_tiles:
                dst = ipu_of(dst_tile)
                if src != dst and {src, dst} == pair:
                    return True
        return False

    @staticmethod
    def _dst_indices(op):
        """Resolve a CopyOp destination index to a flat list of positions."""
        idx = op.dst_index
        if isinstance(idx, slice):
            return range(*idx.indices(op.dst.shape[0]))
        return np.asarray(idx).ravel()

    @staticmethod
    def _flip_bit(arr: np.ndarray, pos: int, bit: int) -> tuple:
        view = arr.view(np.uint32 if arr.dtype.itemsize == 4 else np.uint64)
        old = float(arr[pos])
        view[pos] ^= view.dtype.type(1) << view.dtype.type(bit)
        return old, float(arr[pos])

    def _flip_exchange(self, rng, plan) -> None:
        ops = [op for op in plan.ops if op.dst.dtype.kind == "f" and op.dst.size]
        if not ops:
            return
        op = ops[int(rng.integers(len(ops)))]
        indices = self._dst_indices(op)
        if len(indices) == 0:
            return
        pos = int(indices[int(rng.integers(len(indices)))])
        bit = int(rng.integers(op.dst.dtype.itemsize * 8))
        old, new = self._flip_bit(op.dst, pos, bit)
        self._record("bitflip", {
            "where": "exchange", "exchange": plan.name,
            "index": pos, "bit": bit, "old": old, "new": new,
        })

    def _flip_sram(self, rng, plan) -> None:
        candidates = []
        for tile in self.device.tiles:
            for name in sorted(tile.memory):
                arr = tile.memory[name]
                if arr.dtype.kind == "f" and arr.size:
                    candidates.append((tile.tile_id, name, arr))
        if not candidates:
            return
        tile_id, name, arr = candidates[int(rng.integers(len(candidates)))]
        pos = int(rng.integers(arr.size))
        bit = int(rng.integers(arr.dtype.itemsize * 8))
        old, new = self._flip_bit(arr, pos, bit)
        self._record("bitflip", {
            "where": "sram", "tile": tile_id, "shard": name,
            "index": pos, "bit": bit, "old": old, "new": new,
            "compute_set": plan.name,
        })

    def __repr__(self):
        return (
            f"FaultInjector(seed={self.plan.seed}, faults={len(self.plan)}, "
            f"injections={len(self.records)})"
        )
