"""Software-emulated double precision (the DSLs' third extended type).

The paper's framework emulates IEEE binary64 in software (compiler-rt style)
when double-word range/precision is insufficient.  A bit-level soft-float
implementation would execute the *same rounding* NumPy's float64 already
performs, so numerically we delegate to NumPy float64; what distinguishes the
emulated type is its *cost*, which the machine cycle model charges per
Table I (≈1080/1260/2520 cycles for add/mul/div — roughly 8× the double-word
cost).  This module carries those constants plus the conversion helpers the
tensor DSL uses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CYCLES", "DIGITS", "to_emulated", "from_emulated"]

#: IPU cycles per emulated binary64 operation on one worker thread (Table I,
#: midpoint of "depends on whether normalization of the result is required").
CYCLES = {"add": 1080, "mul": 1260, "div": 2520}

#: Decimal digits of precision (Table I).
DIGITS = 16.0


def to_emulated(values) -> np.ndarray:
    """Convert working-precision values to the emulated binary64 type."""
    return np.asarray(values, dtype=np.float64)


def from_emulated(values) -> np.ndarray:
    """Round emulated binary64 values back to working precision (float32)."""
    return np.asarray(values, dtype=np.float64).astype(np.float32)
