"""Vectorized double-word arrays.

``DWArray`` stores a NumPy float32 ``hi`` array and a float32 ``lo`` array and
applies the double-word kernels elementwise — this is how the extended-
precision residual/update steps of MPIR run across all tile shards.

Reductions (``sum``/``dot``/``norm2``) use a pairwise tree of accurate
double-word additions, so the accumulated error stays O(u² log n) rather than
O(u n) — essential for the 1e-13 residuals of Figs. 9/10.
"""

from __future__ import annotations

import numpy as np

from repro.dw import joldes
from repro.dw.eft import two_prod
from repro.dw.scalar import DWScalar

__all__ = ["DWArray"]


class DWArray:
    """Array of double-word (float32 + float32) numbers."""

    __slots__ = ("hi", "lo", "arith")

    def __init__(self, hi, lo=None, arith=joldes):
        self.hi = np.asarray(hi, dtype=np.float32)
        self.lo = (
            np.zeros_like(self.hi)
            if lo is None
            else np.asarray(lo, dtype=np.float32)
        )
        if self.hi.shape != self.lo.shape:
            raise ValueError(f"hi/lo shape mismatch: {self.hi.shape} vs {self.lo.shape}")
        self.arith = arith

    # -- construction / conversion ------------------------------------------------

    @classmethod
    def from_float64(cls, values, arith=joldes):
        """Split float64 values into normalized (hi, lo) float32 pairs."""
        v = np.asarray(values, dtype=np.float64)
        hi = v.astype(np.float32)
        lo = (v - hi.astype(np.float64)).astype(np.float32)
        return cls(hi, lo, arith)

    @classmethod
    def zeros(cls, shape, arith=joldes):
        return cls(np.zeros(shape, dtype=np.float32), None, arith)

    @classmethod
    def from_product(cls, a, b, arith=joldes):
        """Exact elementwise product of two float32 arrays as a DWArray."""
        p, e = two_prod(np.asarray(a, np.float32), np.asarray(b, np.float32))
        return cls(p, e, arith)

    def to_float64(self) -> np.ndarray:
        return self.hi.astype(np.float64) + self.lo.astype(np.float64)

    def to_float32(self) -> np.ndarray:
        """Round to working precision (the hi word, for normalized values)."""
        return self.hi.copy()

    def copy(self) -> "DWArray":
        return DWArray(self.hi.copy(), self.lo.copy(), self.arith)

    # -- container protocol ---------------------------------------------------------

    @property
    def shape(self):
        return self.hi.shape

    @property
    def size(self):
        return self.hi.size

    def __len__(self):
        return len(self.hi)

    def __getitem__(self, idx):
        h, l = self.hi[idx], self.lo[idx]
        if np.ndim(h) == 0:
            return DWScalar(h, l, self.arith)
        return DWArray(h, l, self.arith)

    def __setitem__(self, idx, value):
        if isinstance(value, (DWArray, DWScalar)):
            self.hi[idx] = value.hi
            self.lo[idx] = value.lo
        else:
            v = np.asarray(value, dtype=np.float64)
            hi = v.astype(np.float32)
            self.hi[idx] = hi
            self.lo[idx] = (v - hi.astype(np.float64)).astype(np.float32)

    def __repr__(self):
        return f"DWArray(shape={self.shape}, value≈{self.to_float64()!r})"

    # -- arithmetic -----------------------------------------------------------------

    def _wrap(self, pair):
        return DWArray(pair[0], pair[1], self.arith)

    @staticmethod
    def _plain(other):
        """Return a float32 array/scalar for fp-operand kernels, or None."""
        if isinstance(other, (DWArray, DWScalar)):
            return None
        if isinstance(other, (int, float, np.floating, np.integer)):
            return np.float32(other)
        arr = np.asarray(other)
        if arr.dtype == np.float32:
            return arr
        return None  # float64 operands must be split explicitly

    def _coerce(self, other):
        if isinstance(other, (DWArray, DWScalar)):
            return other
        return DWArray.from_float64(other, self.arith)

    def __neg__(self):
        return self._wrap(self.arith.neg(self.hi, self.lo))

    def __add__(self, other):
        p = self._plain(other)
        if p is not None:
            return self._wrap(self.arith.add_dw_fp(self.hi, self.lo, p))
        o = self._coerce(other)
        return self._wrap(self.arith.add_dw_dw(self.hi, self.lo, o.hi, o.lo))

    __radd__ = __add__

    def __sub__(self, other):
        p = self._plain(other)
        if p is not None:
            return self._wrap(self.arith.add_dw_fp(self.hi, self.lo, -p))
        o = self._coerce(other)
        return self._wrap(self.arith.sub_dw_dw(self.hi, self.lo, o.hi, o.lo))

    def __rsub__(self, other):
        return (-self) + other

    def __mul__(self, other):
        p = self._plain(other)
        if p is not None:
            return self._wrap(self.arith.mul_dw_fp(self.hi, self.lo, p))
        o = self._coerce(other)
        return self._wrap(self.arith.mul_dw_dw(self.hi, self.lo, o.hi, o.lo))

    __rmul__ = __mul__

    def __truediv__(self, other):
        p = self._plain(other)
        if p is not None:
            return self._wrap(self.arith.div_dw_fp(self.hi, self.lo, p))
        o = self._coerce(other)
        return self._wrap(self.arith.div_dw_dw(self.hi, self.lo, o.hi, o.lo))

    def __rtruediv__(self, other):
        return self._coerce(np.broadcast_to(np.asarray(other, np.float64), self.shape)) / self

    # -- reductions -------------------------------------------------------------------

    def sum(self) -> DWScalar:
        """Pairwise-tree double-word sum of all elements."""
        hi = self.hi.ravel()
        lo = self.lo.ravel()
        if hi.size == 0:
            return DWScalar(0.0, 0.0, self.arith)
        while hi.size > 1:
            n = hi.size
            half = n // 2
            h2, l2 = self.arith.add_dw_dw(hi[:half], lo[:half], hi[half : 2 * half], lo[half : 2 * half])
            if n % 2:
                h2 = np.concatenate([h2, hi[-1:]])
                l2 = np.concatenate([l2, lo[-1:]])
            hi, lo = h2, l2
        return DWScalar(hi[0], lo[0], self.arith)

    def dot(self, other) -> DWScalar:
        """Double-word dot product; ``other`` may be DWArray or float32 array."""
        return (self * other).sum()

    def norm2(self) -> DWScalar:
        """Euclidean norm in double-word precision."""
        return (self * self).sum().sqrt()
