"""Ergonomic scalar wrapper around the double-word arithmetic kernels."""

from __future__ import annotations

import numpy as np

from repro.dw import joldes
from repro.dw.eft import two_prod

__all__ = ["DWScalar"]


class DWScalar:
    """A double-word scalar: the unevaluated sum ``hi + lo`` of two float32s.

    Arithmetic dispatches to an algorithm family (:mod:`repro.dw.joldes` by
    default, :mod:`repro.dw.lange_rump` for the fast variants); mixed
    operations with Python/NumPy scalars use the cheaper dw∘fp kernels, as
    the TwoFloat library does.
    """

    __slots__ = ("hi", "lo", "arith")

    def __init__(self, hi, lo=0.0, arith=joldes):
        self.hi = np.float32(hi)
        self.lo = np.float32(lo)
        self.arith = arith

    # -- construction / conversion ------------------------------------------------

    @classmethod
    def from_float(cls, value, arith=joldes):
        """Split a Python/NumPy float (read as float64) into a normalized pair."""
        v = np.float64(value)
        hi = np.float32(v)
        lo = np.float32(v - np.float64(hi))
        return cls(hi, lo, arith)

    def to_float(self) -> float:
        """Best float64 approximation of the represented value."""
        return float(np.float64(self.hi) + np.float64(self.lo))

    def __float__(self) -> float:
        return self.to_float()

    def __repr__(self) -> str:
        return f"DWScalar({self.to_float()!r}, hi={float(self.hi)!r}, lo={float(self.lo)!r})"

    # -- helpers ------------------------------------------------------------------

    def _wrap(self, pair):
        return DWScalar(pair[0], pair[1], self.arith)

    @staticmethod
    def _is_plain(other) -> bool:
        return isinstance(other, (int, float, np.floating, np.integer))

    def _coerce(self, other) -> "DWScalar":
        if isinstance(other, DWScalar):
            return other
        return DWScalar.from_float(other, self.arith)

    # -- arithmetic ---------------------------------------------------------------

    def __neg__(self):
        return self._wrap(self.arith.neg(self.hi, self.lo))

    def __abs__(self):
        return -self if self.hi < 0 else DWScalar(self.hi, self.lo, self.arith)

    def __add__(self, other):
        if self._is_plain(other):
            return self._wrap(self.arith.add_dw_fp(self.hi, self.lo, np.float32(other)))
        o = self._coerce(other)
        return self._wrap(self.arith.add_dw_dw(self.hi, self.lo, o.hi, o.lo))

    __radd__ = __add__

    def __sub__(self, other):
        if self._is_plain(other):
            return self._wrap(self.arith.add_dw_fp(self.hi, self.lo, np.float32(-np.float32(other))))
        o = self._coerce(other)
        return self._wrap(self.arith.sub_dw_dw(self.hi, self.lo, o.hi, o.lo))

    def __rsub__(self, other):
        return (-self) + other

    def __mul__(self, other):
        if self._is_plain(other):
            return self._wrap(self.arith.mul_dw_fp(self.hi, self.lo, np.float32(other)))
        o = self._coerce(other)
        return self._wrap(self.arith.mul_dw_dw(self.hi, self.lo, o.hi, o.lo))

    __rmul__ = __mul__

    def __truediv__(self, other):
        if self._is_plain(other):
            return self._wrap(self.arith.div_dw_fp(self.hi, self.lo, np.float32(other)))
        o = self._coerce(other)
        return self._wrap(self.arith.div_dw_dw(self.hi, self.lo, o.hi, o.lo))

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def sqrt(self) -> "DWScalar":
        """Square root via one double-word Newton step on the f32 estimate.

        One refinement doubles the ~24-bit estimate to full dw precision.
        """
        if self.hi < 0:
            raise ValueError("sqrt of negative double-word number")
        if self.hi == 0 and self.lo == 0:
            return DWScalar(0.0, 0.0, self.arith)
        s0 = np.float32(np.sqrt(np.float32(self.hi)))
        # s = s0 + (x - s0*s0) / (2*s0), with the residual formed exactly.
        ph, pl = two_prod(s0, s0)
        rh, rl = self.arith.sub_dw_dw(self.hi, self.lo, ph, pl)
        ch, cl = self.arith.div_dw_fp(rh, rl, np.float32(2.0) * s0)
        return self._wrap(self.arith.add_dw_fp(ch, cl, s0))

    # -- comparisons (on the exact represented value) ------------------------------

    def _cmp_key(self):
        return (float(self.hi), float(self.lo))

    def __eq__(self, other):
        o = self._coerce(other) if not isinstance(other, DWScalar) else other
        return self._cmp_key() == o._cmp_key()

    def __lt__(self, other):
        o = self._coerce(other) if not isinstance(other, DWScalar) else other
        return self._cmp_key() < o._cmp_key()

    def __le__(self, other):
        return self == other or self < other

    def __gt__(self, other):
        return not self <= other

    def __ge__(self, other):
        return not self < other

    def __hash__(self):
        return hash(self._cmp_key())
