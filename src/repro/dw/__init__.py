"""TwoFloat: double-word arithmetic for single-precision floating point.

A double-word (dw) number represents a value as the unevaluated sum of two
floating-point numbers ``hi + lo`` with ``|lo| <= ulp(hi)/2``.  With an
underlying ``float32`` this yields roughly 13.3–14.0 decimal digits of
precision (Table I of the paper) while keeping the float32 exponent range.

Two arithmetic families are provided, mirroring the paper's TwoFloat library:

- :mod:`repro.dw.joldes` — the tight-error-bound algorithms of
  Joldes, Muller & Popescu (ACM TOMS 2017).  Slower, but the error does not
  grow across chained operations; the paper selects these for MPIR.
- :mod:`repro.dw.lange_rump` — the faster, normalization-omitting algorithms
  in the style of Lange & Rump (ACM TOMS 2020).  Fewer flops, looser bounds.

:mod:`repro.dw.eft` holds the error-free transforms both families build on,
:mod:`repro.dw.scalar` and :mod:`repro.dw.array` wrap them in ergonomic
scalar/NumPy-array containers, and :mod:`repro.dw.softfloat` is the
software-emulated double-precision alternative (Sec. III-D).
"""

from repro.dw.eft import fast_two_sum, fma, split, two_prod, two_sum
from repro.dw.scalar import DWScalar
from repro.dw.array import DWArray
from repro.dw import joldes, lange_rump, softfloat

__all__ = [
    "two_sum",
    "fast_two_sum",
    "two_prod",
    "split",
    "fma",
    "DWScalar",
    "DWArray",
    "joldes",
    "lange_rump",
    "softfloat",
]
