"""Fast ("sloppy") double-word arithmetic in the style of Lange & Rump (TOMS 2020).

These variants omit normalization/renormalization steps, trading accuracy for
speed: 7–25 flops per operation instead of Joldes et al.'s 20–34.  The error
of a single operation is still O(u²), but — unlike the accurate family — the
bounds assume inputs are well normalized and the *relative error grows with
chained operations*, which is why the paper prefers the Joldes family for
MPIR (Sec. III-D).  They are exposed for the arithmetic-variant ablation
(bench A4) and for users whose workloads tolerate the looser bounds.

Interface mirrors :mod:`repro.dw.joldes`: ``(hi, lo)`` pairs in and out.
"""

from __future__ import annotations

from repro.dw.eft import fast_two_sum, fma, two_prod, two_sum

__all__ = [
    "add_dw_fp",
    "add_dw_dw",
    "sub_dw_dw",
    "mul_dw_fp",
    "mul_dw_dw",
    "div_dw_fp",
    "div_dw_dw",
    "neg",
    "FLOPS",
    "CYCLES",
]

#: Floating-point operations per double-word operation (paper: "7 to 25").
FLOPS = {"add": 11, "mul": 9, "div": 10}
#: IPU cycles per double-word operation on one worker thread (6 cycles/flop,
#: same conversion the Joldes family uses in Table I).
CYCLES = {"add": 66, "mul": 54, "div": 60}


def neg(xh, xl):
    """Negate a double-word number (exact)."""
    return -xh, -xl


def add_dw_fp(xh, xl, y):
    """Sloppy double-word + floating-point: skip the final renormalization's
    second pass (error O(u²) but unnormalized output possible)."""
    sh, sl = two_sum(xh, y)
    return sh, sl + xl


def add_dw_dw(xh, xl, yh, yl):
    """SloppyDWPlusDW (Joldes Alg. 5 / Lange-Rump pair sum): 11 flops.

    The relative error is unbounded when ``xh`` and ``yh`` nearly cancel with
    opposite signs — the classic failure the accurate variant repairs.
    """
    sh, sl = two_sum(xh, yh)
    v = xl + yl
    w = sl + v
    return fast_two_sum(sh, w)


def sub_dw_dw(xh, xl, yh, yl):
    """Sloppy double-word subtraction."""
    return add_dw_dw(xh, xl, -yh, -yl)


def mul_dw_fp(xh, xl, y):
    """Sloppy double-word * floating-point: 5 flops, no renormalized tail EFT."""
    ch, cl1 = two_prod(xh, y)
    return ch, fma(xl, y, cl1)


def mul_dw_dw(xh, xl, yh, yl):
    """DWTimesDW1-style product without the low-low term and without
    renormalization: 9 flops."""
    ch, cl1 = two_prod(xh, yh)
    p = fma(xh, yl, xl * yh)
    return ch, cl1 + p


def div_dw_fp(xh, xl, y):
    """Sloppy double-word / floating-point: single residual correction, 7 flops."""
    th = xh / y
    r = fma(-th, y, xh) + xl
    return th, r / y


def div_dw_dw(xh, xl, yh, yl):
    """Sloppy double-word / double-word: working-precision quotient plus one
    unnormalized correction, 10 flops."""
    th = xh / yh
    r = fma(-th, yh, xh) + (xl - th * yl)
    return th, r / yh
