"""Accurate double-word arithmetic after Joldes, Muller & Popescu (TOMS 2017).

All functions take and return ``(hi, lo)`` pairs of NumPy scalars or arrays in
the working precision (normally float32).  Results are *normalized*:
``|lo| <= ulp(hi)/2``.  These are the algorithms the paper selects for the
extended-precision steps of MPIR, because their relative error bounds
(a few u² per operation) do not degrade across chained operations.

Algorithm numbers reference the TOMS paper.  ``FLOPS``/``CYCLES`` record the
per-operation cost charged by the IPU cycle model; the cycle figures are the
measured IPU counts from Table I of the reproduced paper (6 cycles per
scalar float32 op on one worker → 22/27/40 flops for add/mul/div).
"""

from __future__ import annotations

from repro.dw.eft import fast_two_sum, fma, two_prod, two_sum

__all__ = [
    "add_dw_fp",
    "add_dw_dw",
    "sub_dw_dw",
    "mul_dw_fp",
    "mul_dw_dw",
    "div_dw_fp",
    "div_dw_dw",
    "neg",
    "FLOPS",
    "CYCLES",
]

#: Floating-point operations per double-word operation (paper: "20 to 34").
FLOPS = {"add": 20, "mul": 27, "div": 34}
#: IPU cycles per double-word operation on one worker thread (Table I).
CYCLES = {"add": 132, "mul": 162, "div": 240}


def neg(xh, xl):
    """Negate a double-word number (exact)."""
    return -xh, -xl


def add_dw_fp(xh, xl, y):
    """DWPlusFP (Alg. 4): double-word + floating-point, error <= 2u²."""
    sh, sl = two_sum(xh, y)
    v = xl + sl
    return fast_two_sum(sh, v)


def add_dw_dw(xh, xl, yh, yl):
    """AccurateDWPlusDW (Alg. 6): double-word + double-word, error <= 3u²/(1-4u)."""
    sh, sl = two_sum(xh, yh)
    th, tl = two_sum(xl, yl)
    c = sl + th
    vh, vl = fast_two_sum(sh, c)
    w = tl + vl
    return fast_two_sum(vh, w)


def sub_dw_dw(xh, xl, yh, yl):
    """Double-word subtraction via :func:`add_dw_dw` with a negated operand."""
    return add_dw_dw(xh, xl, -yh, -yl)


def mul_dw_fp(xh, xl, y):
    """DWTimesFP3 (Alg. 9, FMA variant): double-word * floating-point, error <= 2u²."""
    ch, cl1 = two_prod(xh, y)
    cl3 = fma(xl, y, cl1)
    return fast_two_sum(ch, cl3)


def mul_dw_dw(xh, xl, yh, yl):
    """DWTimesDW3 (Alg. 12, FMA variant): double-word * double-word, error <= 4u²."""
    ch, cl1 = two_prod(xh, yh)
    tl0 = xl * yl
    tl1 = fma(xh, yl, tl0)
    cl2 = fma(xl, yh, tl1)
    cl3 = cl1 + cl2
    return fast_two_sum(ch, cl3)


def div_dw_fp(xh, xl, y):
    """DWDivFP3 (Alg. 15): double-word / floating-point, error <= 3u²."""
    th = xh / y
    ph, pl = two_prod(th, y)
    dh = xh - ph
    dt = dh - pl
    d = dt + xl
    tl = d / y
    return fast_two_sum(th, tl)


def div_dw_dw(xh, xl, yh, yl):
    """DWDivDW2 (Alg. 17): double-word / double-word, error <= 15u² + 56u³.

    One working-precision division to get the quotient estimate, a
    double-word residual, and a correction division.
    """
    th = xh / yh
    rh, rl = mul_dw_fp(yh, yl, th)
    pih = xh - rh
    dl = xl - rl
    d = pih + dl
    tl = d / yh
    return fast_two_sum(th, tl)
