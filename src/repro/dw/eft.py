"""Error-free transforms (EFTs) — the building blocks of double-word arithmetic.

All functions work elementwise on NumPy arrays or scalars and preserve the
input dtype.  Every intermediate operation is performed in the working
precision, exactly as it would execute on the IPU's float32 pipelines; the
returned error terms are therefore *exact* (the defining property of an EFT).

The IPU provides a fused multiply-add; NumPy does not.  For float32 operands
we emulate FMA bit-exactly by widening to float64: a product of two 24-bit
mantissas fits in 48 bits < 53, so ``float64(a) * float64(b)`` is exact and
one float64 addition plus a final rounding to float32 rounds identically to a
hardware FMA.  For float64 operands we fall back to Dekker splitting.
"""

from __future__ import annotations

import numpy as np

__all__ = ["two_sum", "fast_two_sum", "two_prod", "split", "fma"]

#: Dekker split constants: 2**ceil(p/2) + 1 for precision p.
_SPLITTERS = {
    np.dtype(np.float32): np.float32(4097.0),  # 2**12 + 1
    np.dtype(np.float64): np.float64(134217729.0),  # 2**27 + 1
}


def _dtype_of(a, b):
    dt = np.result_type(a, b)
    if dt not in _SPLITTERS:
        raise TypeError(f"unsupported dtype for double-word arithmetic: {dt}")
    return dt


def two_sum(a, b):
    """Knuth's 2Sum: return ``(s, e)`` with ``s = fl(a + b)`` and ``a + b = s + e`` exactly.

    Six flops, no magnitude precondition.
    """
    s = a + b
    bb = s - a
    e = (a - (s - bb)) + (b - bb)
    return s, e


def fast_two_sum(a, b):
    """Dekker's Fast2Sum: like :func:`two_sum` but requires ``|a| >= |b|`` (or a == 0).

    Three flops.  The double-word algorithms only invoke it where the
    precondition is guaranteed, so it is not checked here.
    """
    s = a + b
    e = b - (s - a)
    return s, e


def split(a):
    """Dekker split: return ``(hi, lo)`` with ``a = hi + lo`` and each half
    representable in ~p/2 bits, enabling exact products without FMA."""
    dt = np.result_type(a)
    c = _SPLITTERS[np.dtype(dt)] * a
    hi = c - (c - a)
    lo = a - hi
    return hi, lo


def fma(a, b, c):
    """Fused multiply-add ``fl(a * b + c)`` with a single rounding.

    For float32 this is bit-exact (computed in float64, rounded once); it
    models the IPU's f32 FMA instruction.  float64 inputs pass through
    ``a * b + c`` with two roundings — adequate because the float64 path only
    backs the *emulated* double type, whose cost dominates its last-bit error.
    """
    dt = np.result_type(a, b, c)
    if np.dtype(dt) == np.dtype(np.float32):
        wide = (
            np.asarray(a, dtype=np.float64) * np.asarray(b, dtype=np.float64)
            + np.asarray(c, dtype=np.float64)
        )
        narrow = np.asarray(wide, dtype=np.float32)
        # Collapse 0-d results back to scalars so scalar in -> scalar out.
        return narrow[()] if narrow.ndim == 0 else narrow
    return a * b + c


def two_prod(a, b):
    """2Prod: return ``(p, e)`` with ``p = fl(a * b)`` and ``a * b = p + e`` exactly.

    Uses the FMA formulation ``e = fma(a, b, -p)`` for float32 (2 flops on
    hardware) and Dekker's 17-flop splitting product for float64.
    """
    dt = _dtype_of(a, b)
    p = a * b
    if np.dtype(dt) == np.dtype(np.float32):
        e = fma(a, b, -p)
        return p, e
    ah, al = split(a)
    bh, bl = split(b)
    e = ((ah * bh - p) + ah * bl + al * bh) + al * bl
    return p, e
