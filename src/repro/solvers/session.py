"""Structure-keyed compile cache and reusable solve sessions.

Time-stepping codes (the paper's OpenFOAM motivation) solve the *same*
sparse system shape hundreds of times with a new right-hand side each
step.  On a real IPU the Poplar graph compile dominates the first solve
and is amortized by keeping the ``poplar::Engine`` alive; this module is
the analogue for the simulated pipeline:

- :func:`fingerprint_solve` — a structural fingerprint of everything the
  lowered program depends on: the matrix (sparsity pattern *and* values —
  the values are baked into tile-local blocks at distribution time), the
  canonicalized solver config, the device shape, the partition, the halo
  strategy, the optimization setting, and the runtime backend,
- :class:`ProgramCache` — an LRU map from fingerprint to a ready-to-run
  :class:`CompiledSolve`, with hit/miss/eviction counters that surface in
  telemetry and the CLI,
- :class:`CompiledSolve` — one built-and-lowered solver program plus a
  snapshot of every graph variable's initial shard contents; ``prepare``
  restores that snapshot and rebinds a new ``b`` / ``x0``, so a cache hit
  re-executes the identical :class:`~repro.graph.CompiledProgram` without
  re-running a single compiler pass — bit-identical in tensors *and* in
  modeled cycles to a cold compile,
- :class:`SolverSession` / :func:`solve_many` — the user-facing wrappers:
  a session pins (matrix, config, device shape) and exposes ``solve(b)``;
  ``solve_many`` batches a list of right-hand sides through one session.

Rebinding is sound because every solver recomputes its derived state
in-program from the bound vectors (``r = b − Ax``, ``‖b‖²`` via an
on-device reduction grabbed by a per-run host callback) — nothing about a
specific ``b`` is frozen into the artifact at build time.  The cache key
deliberately excludes ``b`` and ``x0`` for the same reason.

See ``docs/performance.md`` for the amortization numbers and
``benchmarks/bench_compile_cache.py`` for the measurement.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.solvers.config import load_config

__all__ = [
    "CompiledSolve",
    "ProgramCache",
    "SolverSession",
    "batch_bucket",
    "default_cache",
    "fingerprint_matrix",
    "fingerprint_solve",
    "resolve_cache",
    "solve_many",
]


def batch_bucket(batch: int, max_batch: int) -> int:
    """Round a batch width up to its cache bucket.

    The serving batcher pads assembled widths to the next power of two
    (capped at ``max_batch``), so the program cache holds at most
    ``O(log max_batch)`` batched artifacts per structure instead of one
    per width — a width-7 batch reuses the width-8 program instead of
    compiling (and LRU-thrashing) its own.  Padding columns are zero
    right-hand sides: per-column convergence masking retires them at
    iteration 0, so real columns stay bit-identical (see
    ``docs/serving.md``).
    """
    if batch < 1:
        raise ReproError(f"batch_bucket: batch must be >= 1, got {batch}")
    if max_batch < batch:
        raise ReproError(
            f"batch_bucket: max_batch ({max_batch}) < batch ({batch})")
    bucket = 1
    while bucket < batch:
        bucket *= 2
    return min(bucket, max_batch)


def fingerprint_matrix(matrix) -> str:
    """Content hash of a :class:`~repro.sparse.crs.ModifiedCRS` matrix.

    Covers the sparsity *structure* (row_ptr/col_idx drive the partition,
    the halo layout, and the exchange plans) and the *values* (diag and
    off-diagonals are baked into each tile's local block at
    :class:`~repro.sparse.distribute.DistributedMatrix` build time, so a
    value change must miss the cache even when the pattern is unchanged).
    """
    h = hashlib.sha256()
    h.update(f"n={matrix.n}".encode())
    for name in ("row_ptr", "col_idx", "diag", "values"):
        arr = np.ascontiguousarray(getattr(matrix, name))
        h.update(name.encode())
        h.update(arr.dtype.str.encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def fingerprint_solve(
    matrix,
    config,
    *,
    num_ipus: int = 1,
    tiles_per_ipu: int = 16,
    num_tiles: int | None = None,
    grid_dims=None,
    blockwise_halo: bool = True,
    optimize: bool = True,
    backend: str = "sim",
    resilient: bool = False,
    batch: int = 1,
) -> str:
    """The cache key: everything the lowered program artifact depends on.

    ``b`` and ``x0`` are deliberately absent — they are host-rebindable
    (see the module docstring).  ``resilient`` keys on whether a
    :class:`~repro.solvers.resilience.ResilienceMonitor` was woven into
    the schedule (its detection callbacks are program steps).  ``batch``
    keys on the RHS batch width: a batched program allocates ``(n, batch)``
    shards and a masked iteration loop, so each width is its own artifact
    (``b``'s *values* still rebind freely within a width).
    """
    parts = {
        "matrix": fingerprint_matrix(matrix),
        "config": json.dumps(load_config(config), sort_keys=True, default=str),
        "num_ipus": int(num_ipus),
        "tiles_per_ipu": int(tiles_per_ipu),
        "num_tiles": None if num_tiles is None else int(num_tiles),
        "grid_dims": None if grid_dims is None else [int(d) for d in grid_dims],
        "blockwise_halo": bool(blockwise_halo),
        "optimize": bool(optimize),
        "backend": str(backend),
        "resilient": bool(resilient),
        "batch": int(batch),
    }
    return hashlib.sha256(json.dumps(parts, sort_keys=True).encode()).hexdigest()


@dataclass
class CompiledSolve:
    """One built solver program, ready to re-run against new host values.

    Holds the live object graph of a single ``_build_program`` +
    ``ctx.compile`` invocation — context, solver tree, bound x/b vectors,
    device, monitor — plus ``initial_state``: a deep copy of every graph
    variable's shard arrays taken *before* the first execution.
    :meth:`prepare` rolls the device back to that image, which is what
    makes a re-run bit-identical to the first run (the program itself is
    never mutated by execution; only the shard arrays are).
    """

    key: str
    ctx: object  # TensorContext
    solver: object  # the root Solver
    xvec: object  # DistVector bound to x
    bvec: object  # DistVector bound to b
    device: object  # IPUDevice the graph's shards live on
    compiled: object  # the frozen CompiledProgram artifact
    monitor: object = None  # ResilienceMonitor woven into the schedule, or None
    build_seconds: float = 0.0  # host wall-clock of build + lowering
    runs: int = 0  # executions served from this entry
    initial_state: dict = field(default_factory=dict, repr=False)
    #: Execution lock: an entry is *stateful* (``prepare`` + the run mutate
    #: its shard arrays in place), so concurrent executors sharing one
    #: cache must hold this around prepare-and-run.  The serving runtime
    #: (``repro.serve``) serializes per structure through it; the cache's
    #: own lock only protects the LRU map, never a running solve.
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                 compare=False)

    @classmethod
    def capture(cls, key, ctx, solver, xvec, bvec, device, compiled,
                monitor=None, build_seconds: float = 0.0) -> "CompiledSolve":
        """Snapshot the post-build, pre-run state of every graph variable."""
        initial = {
            name: {
                t: (sh.data.copy(), None if sh.lo is None else sh.lo.copy())
                for t, sh in var.shards.items()
            }
            for name, var in ctx.graph.variables.items()
        }
        return cls(
            key=key, ctx=ctx, solver=solver, xvec=xvec, bvec=bvec,
            device=device, compiled=compiled, monitor=monitor,
            build_seconds=build_seconds, initial_state=initial,
        )

    def prepare(self, b, x0=None, rconfig=None) -> None:
        """Reset for a fresh run: restore the initial image, rebind hosts.

        Restores every variable's shard arrays, clears the solver tree's
        :class:`~repro.solvers.base.SolveStats` *in place* (runtime
        callbacks close over them), resets the monitor and the device
        profiler clock, then writes the new ``b`` (and ``x0``, default
        zeros — the build-time initial image) through the halo-reordering
        host writes.
        """
        for name, var in self.ctx.graph.variables.items():
            snap = self.initial_state.get(name)
            if snap is None:
                continue
            for tile_id, (data, lo) in snap.items():
                sh = var.shards.get(tile_id)
                if sh is None:
                    continue
                sh.data[...] = data
                if lo is not None and sh.lo is not None:
                    sh.lo[...] = lo
        for s in self.solver.iter_tree():
            s.stats.reset()
            # Batched programs also carry one SolveStats per RHS column;
            # the record callbacks close over the list's elements, so
            # clear them in place too.
            for st in s.batch_stats or ():
                st.reset()
        if self.monitor is not None:
            self.monitor.reset(rconfig)
        self.device.profiler.reset()
        self.bvec.write_global(np.asarray(b, dtype=np.float64))
        if x0 is not None:
            self.xvec.write_global(np.asarray(x0, dtype=np.float64))
        self.runs += 1


class ProgramCache:
    """LRU cache of :class:`CompiledSolve` entries keyed by fingerprint.

    Thread/task-safe: every map operation (get/put/evict/clear) and every
    hit/miss/eviction counter update happens under one internal ``RLock``,
    so a cross-tenant cache shared by the serving runtime's worker pool
    (``docs/serving.md``) never corrupts its LRU order or under-counts.
    The lock covers the *map only* — executing a cached entry mutates that
    entry's shard arrays, which concurrent executors must serialize through
    :attr:`CompiledSolve.lock` instead.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ReproError("ProgramCache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, CompiledSolve] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> CompiledSolve | None:
        """Look up ``key``; counts a hit (and refreshes LRU order) or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, entry: CompiledSolve) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __contains__(self, key: str) -> bool:  # no LRU / counter side effects
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self):
        s = self.stats()
        return (
            f"ProgramCache(size={s['size']}/{s['capacity']}, "
            f"hits={s['hits']}, misses={s['misses']}, evictions={s['evictions']})"
        )


#: Process-wide cache used by ``solve(..., cache=True)`` and the CLI.
_DEFAULT_CACHE = ProgramCache()


def default_cache() -> ProgramCache:
    """The process-wide :class:`ProgramCache` (``solve(..., cache=True)``)."""
    return _DEFAULT_CACHE


def resolve_cache(cache) -> ProgramCache | None:
    """``None``/``False`` → caching off; ``True`` → the process-wide
    default; a :class:`ProgramCache` → itself."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return _DEFAULT_CACHE
    if isinstance(cache, ProgramCache):
        return cache
    raise TypeError(f"cannot interpret cache={cache!r} (True/False/ProgramCache)")


class SolverSession:
    """A reusable solve pipeline pinned to one (matrix, config, shape).

    The first :meth:`solve` builds and lowers the program; every later
    call with the same structure rebinds ``b``/``x0`` into the cached
    :class:`~repro.graph.CompiledProgram` and re-executes it — no symbolic
    execution, no compiler passes, no re-partitioning.  Per-call keyword
    overrides are allowed (e.g. a different ``num_tiles``) and simply key
    a different cache entry.

        session = SolverSession(matrix, "cg", grid_dims=(40, 40))
        for b in rhs_stream:
            x = session.solve(b).x
    """

    def __init__(self, matrix, config, cache: ProgramCache | None = None, **solve_kwargs):
        if "device" in solve_kwargs:
            raise ReproError(
                "SolverSession manages its own devices; 'device' is not supported"
            )
        self.matrix = matrix
        self.config = config
        self.cache = cache if cache is not None else ProgramCache()
        self.solve_kwargs = dict(solve_kwargs)

    def solve(self, b, x0=None, **overrides):
        """Solve ``A x = b`` through the session's compile cache."""
        from repro.solvers.api import solve as _solve

        if "device" in overrides:
            raise ReproError(
                "SolverSession manages its own devices; 'device' is not supported"
            )
        kwargs = {**self.solve_kwargs, **overrides}
        return _solve(self.matrix, b, self.config, x0=x0, cache=self.cache, **kwargs)

    def stats(self) -> dict:
        """The session cache's hit/miss/eviction counters."""
        return self.cache.stats()

    def __repr__(self):
        return f"SolverSession(config={self.config!r}, cache={self.cache!r})"


def solve_many(matrix, bs, config, x0s=None, cache: ProgramCache | None = None,
               **solve_kwargs) -> list:
    """Solve one system per right-hand side in ``bs`` through a shared
    session — the batch entry point (CLI ``batch`` subcommand).

    ``x0s`` is an optional parallel list of initial guesses.  Returns one
    :class:`~repro.solvers.api.SolveResult` per rhs, in order.
    """
    session = SolverSession(matrix, config, cache=cache, **solve_kwargs)
    if x0s is not None and len(x0s) != len(bs):
        raise ReproError(f"solve_many: {len(bs)} rhs but {len(x0s)} initial guesses")
    return [
        session.solve(b, x0=None if x0s is None else x0s[i])
        for i, b in enumerate(bs)
    ]
