"""Mixed-Precision Iterative Refinement (Sec. V-B — contribution 2).

The three-step loop of Moler's method, with the paper's novel twist that
the extended-precision steps use *double-word arithmetic* (or software
emulated binary64):

1. residual ``r = b − A·x`` in extended precision,
2. correction ``A·c = r`` solved by any framework solver in working f32,
3. update ``x ← x + c`` in extended precision.

``precision="float32"`` degrades the method to plain (non-mixed) iterative
refinement — the ablation of Figs. 9/10 showing that IR *without* extended
precision does not improve convergence.
"""

from __future__ import annotations

from repro.solvers.base import Solver
from repro.tensordsl import Type

__all__ = ["MPIR"]

_PRECISIONS = {"dw": Type.DOUBLEWORD, "float64": Type.FLOAT64, "float32": Type.FLOAT32}


class MPIR(Solver):
    name = "mpir"

    def __init__(
        self,
        A,
        inner: Solver,
        precision: str = "dw",
        tol: float = 1e-12,
        max_outer: int = 50,
        record_history: bool = True,
        verbose: int = 0,
        **params,
    ):
        super().__init__(A, precision=precision, tol=tol, max_outer=max_outer, **params)
        if precision not in _PRECISIONS:
            raise ValueError(f"unknown MPIR precision {precision!r} (dw/float64/float32)")
        self.inner = inner
        self.precision = _PRECISIONS[precision]
        self.tol = tol
        self.max_outer = max_outer
        self.record_history = record_history
        #: Print per-refinement progress via a CPU callback; 0 disables.
        self.verbose = verbose
        #: Extended-precision solution, readable after the run.
        self.x_ext = None
        self._x_out = None  # the caller's f32 vector (for post_restore)

    @property
    def rhs_dtype(self) -> str:
        """The right-hand side should be stored in the extended precision so
        the residual is meaningful below f32 resolution."""
        return self.precision

    def _setup(self) -> None:
        self.inner.setup()

    def post_restore(self) -> None:
        """The refinement prologue re-widens the caller's f32 vector into
        ``x_ext``; after a checkpoint restore, round the restored extended
        solution back into that vector so the re-run resumes from the
        checkpoint instead of the original guess (losing only the lo word —
        extra refinements recover it)."""
        if self.x_ext is not None and self._x_out is not None:
            self._x_out.owned.var.scatter(self.x_ext.owned.var.gather())

    def classify_failure(self, engine):
        failure = super().classify_failure(engine)
        if failure == "max_iterations":
            # The cont flag carries a divergence cutoff (rnorm2 >= bnorm2 *
            # 1e10 exits early); a huge final relative residual means that
            # guard, not the refinement budget, ended the loop.
            if self.stats.final_residual >= 1e5:
                return "divergence"
            inner_classify = getattr(self.inner, "classify_failure", None)
            if inner_classify is not None and inner_classify(engine) == "breakdown":
                return "breakdown"
        return failure

    def solve_into(self, x, b) -> None:
        self.setup()
        ctx = self.ctx
        A = self.A
        prec = self.precision

        x_ext = self.workspace("x_ext", dtype=prec)
        ax = self.workspace("ax", dtype=prec)
        r_ext = self.workspace("r_ext", dtype=prec)
        r32 = self.workspace("r32")
        c = self.workspace("c")
        self.x_ext = x_ext
        self._x_out = x

        rnorm2 = ctx.scalar(1.0, dtype=prec)
        it = ctx.scalar(0.0)
        cont = ctx.scalar(1.0)

        x_ext.owned.assign(x.t)  # widen the initial guess
        it.assign(0.0)
        cont.assign(1.0)
        bnorm2 = (b.t * b.t).reduce()
        tol2 = (bnorm2 * (self.tol * self.tol)).materialize()
        bnorm2_host = [1.0]
        ctx.callback(
            lambda engine, _v=bnorm2.var: bnorm2_host.__setitem__(
                0, max(engine.read_scalar(_v), 1e-300)
            )
        )

        def body():
            # Step 1: extended-precision residual r = b - A x.
            A.spmv(x_ext, ax)
            r_ext.owned.assign(b.t - ax.t)
            rnorm2.assign((r_ext.t * r_ext.t).reduce())
            it.assign(it + 1.0)
            if self.record_history:
                stats = self.stats

                def record(engine, _r=rnorm2.var, _i=it.var):
                    r2 = max(engine.read_scalar(_r), 0.0)
                    stats.record(int(engine.read_scalar(_i)), (r2 / bnorm2_host[0]) ** 0.5,
                                 cycles=engine.profiler.total_cycles)

                ctx.callback(record)
            else:
                self._emit_tick(it)
            if self.verbose:

                def progress(engine, _r=rnorm2.var, _i=it.var):
                    rel = (max(engine.read_scalar(_r), 0.0) / bnorm2_host[0]) ** 0.5
                    print(
                        f"[mpir] refinement {int(engine.read_scalar(_i))}: "
                        f"relative residual {rel:.3e}"
                    )

                ctx.callback(progress)
            # Continue while above tolerance; stop on divergence (MPIR only
            # converges for systems that are "not too ill-conditioned" —
            # a runaway residual means the working-precision inner solver
            # cannot produce useful corrections).
            cont.assign((rnorm2 > tol2) * (rnorm2 < bnorm2 * 1e10))
            self._emit_resilience(it, rnorm2, {"x": x, "x_ext": x_ext})

            def refine():
                # Step 2: correction in working precision.
                r32.owned.assign(r_ext.t)  # round to f32
                c.owned.assign(0.0)
                self.inner.solve_into(c, r32)
                # Step 3: extended-precision update.
                x_ext.owned.assign(x_ext.t + c.t)

            ctx.If(cont, refine)

        ctx.While(cont, body, max_iterations=self.max_outer, label=f"{self.name}.refine")
        # Round the refined solution back into the caller's f32 vector.
        x.owned.assign(x_ext.t)
