"""Detection, checkpoint/rollback, and graceful degradation for solvers.

The counterpart of :mod:`repro.faults`: where that module *injects*
failures, this one survives them.  Three pieces:

- :class:`ResilienceConfig` — the policy knobs a caller hands to
  ``solve(..., resilience=...)``: checkpoint cadence, rollback budget,
  detection thresholds, the exponential patience backoff, and the
  OOM-degradation policy.
- :class:`ResilienceMonitor` — attached to a solver before symbolic
  execution; the solver emits one host callback per iteration that feeds
  the monitor the residual track.  The monitor detects NaN/Inf residuals,
  divergence (residual blowing up past the best seen), and stagnation (no
  improvement within an exponentially widening patience window), raising
  :class:`RollbackSignal` out of the engine; it also snapshots the
  registered solver state (x, r, p, rho...) every ``checkpoint_every``
  iterations.  A rollback restores the snapshot and re-runs the program —
  the solver prologues recompute all derived state (r = b − Ax, the Krylov
  basis) from the restored x, so a restored checkpoint is simply a better
  initial guess and the restart is mathematically clean.
- :class:`ResilienceReport` — what happened, attached to
  ``SolveResult.resilience`` and summarized in the telemetry report's
  "faults & recovery" section.

See ``docs/resilience.md`` for the recovery policies and their rationale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

import numpy as np

from repro.errors import ReproError

__all__ = [
    "ResilienceConfig",
    "ResilienceMonitor",
    "ResilienceReport",
    "RollbackSignal",
    "RollbackRecord",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Policy knobs for the resilient solve driver."""

    #: Snapshot the registered solver state every this many iterations
    #: (0 disables periodic checkpoints; the iteration-0 baseline remains).
    checkpoint_every: int = 10
    #: How many rollback-and-retry attempts before giving up.
    max_rollbacks: int = 3
    #: Patience multiplier applied per rollback: after r rollbacks the
    #: stagnation window is ``stagnation_window * backoff**r`` iterations —
    #: the exponential iteration-budget backoff.
    backoff: float = 2.0
    #: Iterations without a new best residual before declaring stagnation.
    stagnation_window: int = 40
    #: Residual growth factor over the best seen that counts as divergence.
    divergence_factor: float = 1e8
    #: On SRAMOverflowError, rebuild the program re-partitioned to half the
    #: tiles (never below ``min_tiles``) instead of crashing.
    degrade_on_oom: bool = True
    min_tiles: int = 1
    #: Raise SolverBreakdownError / DivergenceError when the solve still
    #: fails after recovery, instead of reporting SolveResult.failure.
    raise_on_failure: bool = False

    def __post_init__(self):
        if self.checkpoint_every < 0:
            raise ReproError("resilience: checkpoint_every must be >= 0")
        if self.max_rollbacks < 0:
            raise ReproError("resilience: max_rollbacks must be >= 0")
        if self.backoff < 1.0:
            raise ReproError("resilience: backoff must be >= 1.0")
        if self.stagnation_window < 1:
            raise ReproError("resilience: stagnation_window must be >= 1")
        if self.divergence_factor <= 1.0:
            raise ReproError("resilience: divergence_factor must be > 1.0")
        if self.min_tiles < 1:
            raise ReproError("resilience: min_tiles must be >= 1")

    @classmethod
    def parse(cls, spec) -> "ResilienceConfig | None":
        """``None``/``False`` → disabled; ``True``/``""`` → defaults; a
        ``key=value,key=value`` string or a dict override fields."""
        if spec is None or spec is False:
            return None
        if isinstance(spec, cls):
            return spec
        if spec is True:
            return cls()
        if isinstance(spec, dict):
            return cls._from_kv(dict(spec))
        if isinstance(spec, str):
            s = spec.strip()
            if not s:
                return cls()
            kv = {}
            for pair in s.split(","):
                key, eq, val = pair.partition("=")
                if not eq:
                    raise ReproError(
                        f"resilience spec {spec!r}: expected key=value, got {pair!r}"
                    )
                kv[key.strip()] = val.strip()
            return cls._from_kv(kv)
        raise ReproError(f"cannot parse a resilience config from {spec!r}")

    @classmethod
    def _from_kv(cls, kv: dict) -> "ResilienceConfig":
        types = {f.name: f.type for f in fields(cls)}
        coerced = {}
        for key, val in kv.items():
            if key not in types:
                raise ReproError(
                    f"resilience spec: unknown key {key!r} (one of {sorted(types)})"
                )
            typ = types[key]
            if isinstance(val, str):
                if typ == "bool":
                    val = val.lower() in ("1", "true", "yes", "on")
                elif typ == "int":
                    val = int(val)
                elif typ == "float":
                    val = float(val)
            coerced[key] = val
        return cls(**coerced)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class RollbackSignal(Exception):
    """Raised out of a host callback when the monitor detects a failure;
    the solve driver catches it, restores the checkpoint, and retries.
    Internal control flow — never escapes ``solve()``."""

    def __init__(self, reason: str, iteration: int = 0):
        self.reason = reason
        self.iteration = iteration
        super().__init__(f"{reason} at iteration {iteration}")


@dataclass(frozen=True)
class RollbackRecord:
    """One rollback: why, where it fired, and where it resumed from."""

    reason: str
    iteration: int
    cycle: int
    restored_iteration: int

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "iteration": self.iteration,
            "cycle": self.cycle,
            "restored_iteration": self.restored_iteration,
        }


class ResilienceMonitor:
    """Watches one solver's residual track; owns the checkpoints."""

    def __init__(self, config: ResilienceConfig):
        self.config = config
        self.solver = None  # set by Solver.enable_resilience
        #: name -> graph Variable; registered by the solver at symbolic time.
        self.vars: dict = {}
        self._checkpoint: dict | None = None
        self.checkpoint_iteration = 0
        self.checkpoints = 0
        self.rollbacks: list[RollbackRecord] = []
        self.iterations_observed = 0
        self._best = math.inf
        self._since_best = 0

    # -- registration / snapshots ----------------------------------------------------

    def register(self, name: str, var) -> None:
        self.vars.setdefault(name, var)

    def reset(self, config: ResilienceConfig | None = None) -> None:
        """Clear all per-run state for a fresh run of the same program.

        The variable registry and the solver link survive — they were wired
        in at symbolic-execution time and stay valid for the lifetime of the
        compiled program.  A reusable solve session calls this (optionally
        swapping the policy ``config``) before every cached re-run.
        """
        if config is not None:
            self.config = config
        self._checkpoint = None
        self.checkpoint_iteration = 0
        self.checkpoints = 0
        self.rollbacks.clear()
        self.iterations_observed = 0
        self._best = math.inf
        self._since_best = 0

    @property
    def patience(self) -> int:
        """Stagnation window under the exponential backoff: widens by
        ``backoff`` per rollback so each retry gets a larger budget."""
        return int(self.config.stagnation_window
                   * (self.config.backoff ** len(self.rollbacks)))

    @staticmethod
    def _snapshot_var(var) -> dict:
        return {
            t: (sh.data.copy(), None if sh.lo is None else sh.lo.copy())
            for t, sh in var.shards.items()
        }

    def take_checkpoint(self, iteration: int) -> None:
        self._checkpoint = {n: self._snapshot_var(v) for n, v in self.vars.items()}
        self.checkpoint_iteration = iteration
        self.checkpoints += 1

    def baseline(self) -> None:
        """Snapshot the pre-run state so a rollback is always possible."""
        self.take_checkpoint(0)

    def restore_state(self) -> None:
        """Write the checkpointed shard arrays back (no bookkeeping)."""
        if self._checkpoint is None:
            return
        for name, var in self.vars.items():
            snap = self._checkpoint.get(name)
            if snap is None:
                continue
            for tile_id, (data, lo) in snap.items():
                sh = var.shards[tile_id]
                sh.data[...] = data
                if lo is not None:
                    sh.lo[...] = lo
        if self.solver is not None:
            self.solver.post_restore()

    def best_solution(self):
        """``(x_in_original_row_order, iteration)`` of the latest checkpoint.

        Assembled straight from the snapshot arrays — the live shards are
        not touched, so this is safe to call after a partially corrupted or
        aborted run.  Returns ``(None, 0)`` when no checkpoint (or no
        solution variable) was registered.  The OOM degradation path uses
        this to warm-start the rebuilt program from the best-known iterate
        instead of discarding all converged progress.
        """
        name = "x" if "x" in self.vars else ("x_ext" if "x_ext" in self.vars else None)
        if name is None or self._checkpoint is None:
            return None, 0
        snap = self._checkpoint.get(name)
        var = self.vars[name]
        if snap is None or self.solver is None:
            return None, 0
        flat = np.zeros(var.size, dtype=np.float64)
        for tile_id, (data, lo) in snap.items():
            iv = var.shards[tile_id].interval
            chunk = data.astype(np.float64)
            if lo is not None:
                chunk = chunk + lo.astype(np.float64)
            flat[iv.start : iv.stop] = chunk
        # Undo the Sec. IV halo reordering back to the original row order.
        perm = self.solver.A.perm
        out = np.empty_like(flat)
        out[perm] = flat
        return out, self.checkpoint_iteration

    # -- the per-iteration hook ------------------------------------------------------

    def observe(self, engine, iteration: int, rnorm2: float) -> None:
        """Called from the solver's per-iteration host callback with the
        device-tracked squared residual norm."""
        self.iterations_observed += 1
        if math.isnan(rnorm2) or math.isinf(rnorm2):
            raise RollbackSignal("nan_residual", iteration)
        if rnorm2 < self._best:
            self._best = rnorm2
            self._since_best = 0
        else:
            self._since_best += 1
            if self._best > 0 and rnorm2 > self._best * self.config.divergence_factor:
                raise RollbackSignal("divergence", iteration)
            if self._since_best >= self.patience:
                raise RollbackSignal("stagnation", iteration)
        if (self.config.checkpoint_every > 0
                and iteration - self.checkpoint_iteration >= self.config.checkpoint_every):
            self.take_checkpoint(iteration)

    # -- rollback --------------------------------------------------------------------

    def budget_left(self) -> bool:
        return len(self.rollbacks) < self.config.max_rollbacks

    def rollback(self, signal: RollbackSignal, cycle: int) -> RollbackRecord:
        """Record the failure, restore the checkpoint, reset detection."""
        rec = RollbackRecord(
            reason=signal.reason,
            iteration=signal.iteration,
            cycle=cycle,
            restored_iteration=self.checkpoint_iteration,
        )
        self.rollbacks.append(rec)
        self._best = math.inf
        self._since_best = 0
        self.restore_state()
        return rec


@dataclass
class ResilienceReport:
    """What the resilient solve driver did, end to end."""

    enabled: bool = True
    #: clean | recovered | degraded | failed
    outcome: str = "clean"
    failure: str | None = None
    faults_injected: int = 0
    faults_by_kind: dict = field(default_factory=dict)
    checkpoints: int = 0
    rollbacks: int = 0
    rollback_reasons: list = field(default_factory=list)
    #: Full program rebuilds (OOM degradation re-partitions).
    restarts: int = 0
    iterations: int = 0
    #: Iterations paid beyond the final attempt (rolled-back work).
    extra_iterations: int = 0
    #: Checkpointed iterations carried into a degraded rebuild as its warm
    #: start (0 when every restart began from the original initial guess).
    carried_iterations: int = 0
    final_num_tiles: int | None = None

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "outcome": self.outcome,
            "failure": self.failure,
            "faults_injected": self.faults_injected,
            "faults_by_kind": dict(self.faults_by_kind),
            "checkpoints": self.checkpoints,
            "rollbacks": self.rollbacks,
            "rollback_reasons": list(self.rollback_reasons),
            "restarts": self.restarts,
            "iterations": self.iterations,
            "extra_iterations": self.extra_iterations,
            "carried_iterations": self.carried_iterations,
            "final_num_tiles": self.final_num_tiles,
        }

    def summary(self) -> str:
        parts = [f"outcome={self.outcome}"]
        if self.failure:
            parts.append(f"failure={self.failure}")
        parts.append(f"faults={self.faults_injected}")
        parts.append(f"rollbacks={self.rollbacks}")
        if self.restarts:
            parts.append(f"restarts={self.restarts}")
            if self.carried_iterations:
                parts.append(f"carried_iterations={self.carried_iterations}")
        parts.append(f"extra_iterations={self.extra_iterations}")
        return " ".join(parts)
