"""Preconditioned BiCGStab (Sec. V-C, Fig. 4).

A Krylov solver for nonsymmetric and symmetric systems; any other solver
of the framework can serve as its preconditioner.  The implementation below
is written in TensorDSL and mirrors the paper's Fig. 4 line by line (with
the additional setup, early-exit, and statistics code the figure elides);
Python cannot overload ``=``, so loop-carried updates use ``.assign``.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import Solver, SolveStats
from repro.solvers.identity import Identity

__all__ = ["PBiCGStab"]

#: Breakdown guard: |rho| below this aborts the iteration (singularity exit).
_BREAKDOWN = 1e-30


class PBiCGStab(Solver):
    name = "bicgstab"
    supports_batch = True
    _breakdown = _BREAKDOWN

    def __init__(
        self,
        A,
        preconditioner: Solver | None = None,
        tol: float = 1e-9,
        max_iterations: int = 1000,
        fixed_iterations: int | None = None,
        record_history: bool = True,
        verbose: int = 0,
        **params,
    ):
        super().__init__(
            A,
            tol=tol,
            max_iterations=max_iterations,
            fixed_iterations=fixed_iterations,
            **params,
        )
        #: Print residual progress from a CPU callback every ``verbose``
        #: iterations (Sec. III-A step 4: "we use CPU callbacks to inform
        #: the user about the solver's progress"); 0 disables.
        self.verbose = verbose
        self.preconditioner = preconditioner or Identity(A)
        self.tol = tol
        self.max_iterations = max_iterations
        self.fixed_iterations = fixed_iterations
        self.record_history = record_history
        self._rho_var = None  # read back post-run to classify breakdowns

    def _setup(self) -> None:
        self.preconditioner.setup()

    def classify_failure(self, engine):
        if self.batch_stats is not None:
            return self._classify_batched(engine)
        failure = super().classify_failure(engine)
        if failure == "max_iterations" and self._rho_var is not None:
            rho = engine.read_scalar(self._rho_var)
            if rho != rho or abs(rho) <= _BREAKDOWN:
                return "breakdown"
        return failure

    def solve_into(self, x, b) -> None:
        if x.batch > 1:
            self._solve_into_batched(x, b)
            return
        self.setup()
        ctx = self.ctx
        A = self.A
        M = self.preconditioner

        # Workspace vectors (allocated once; reused every execution).
        r = self.workspace("r")
        r0 = self.workspace("r0")
        p = self.workspace("p")
        v = self.workspace("v")  # v = A·y  (AyA in Fig. 4)
        s = self.workspace("s")
        t_ = self.workspace("t")
        y = self.workspace("y")
        z = self.workspace("z")

        # Loop-carried scalars.  (Initial values are (re)assigned as program
        # steps so nested/repeated invocations restart cleanly.)
        rho = ctx.scalar(1.0)
        self._rho_var = rho.var
        rho_old = ctx.scalar(1.0)
        alpha = ctx.scalar(1.0)
        omega = ctx.scalar(1.0)
        beta = ctx.scalar(0.0)
        rnorm2 = ctx.scalar(1.0)
        it = ctx.scalar(0.0)
        cont = ctx.scalar(1.0)

        # --- setup: r = b - A x;  r0 = r;  p = v = 0 --------------------------------
        A.spmv(x, v)
        r.owned.assign(b.t - v.t)
        r0.owned.assign(r.t)
        p.owned.assign(0.0)
        v.owned.assign(0.0)
        for scalar, init in ((rho, 1.0), (rho_old, 1.0), (alpha, 1.0), (omega, 1.0), (it, 0.0)):
            scalar.assign(init)
        rnorm2.assign(r.t.dot(r.t))
        bnorm2 = b.t.dot(b.t)
        tol2 = (bnorm2 * (self.tol * self.tol)).materialize()
        cont.assign(rnorm2 > tol2)
        bnorm2_host = [1.0]

        def grab_bnorm(engine, _v=bnorm2.var):
            bnorm2_host[0] = max(engine.read_scalar(_v), 1e-300)

        ctx.callback(grab_bnorm)

        def _safe(denominator):
            """Guard a scalar divisor against exact zero (breakdown keeps the
            iteration finite; the `cont` flag then exits cleanly)."""
            return denominator + denominator.eq(0.0) * 1e-30

        # --- iteration body (Fig. 4) ---------------------------------------------------
        def body():
            rho.assign(r0.t.dot(r.t))
            beta.assign((rho / _safe(rho_old)) * (alpha / _safe(omega)))
            p.owned.assign(r.t + beta * (p.t - omega * v.t))
            y.owned.assign(0.0)
            M.solve_into(y, p)  # yA = preconditioner.solve(pA)
            A.spmv(y, v)  # AyA = A * yA (SpMV)
            alpha.assign(rho / _safe(r0.t.dot(v.t)))
            s.owned.assign(r.t - alpha * v.t)
            z.owned.assign(0.0)
            M.solve_into(z, s)  # zA = preconditioner.solve(sA)
            A.spmv(z, t_)  # tA = A * zA (SpMV)
            omega.assign(t_.t.dot(s.t) / _safe(t_.t.dot(t_.t)))
            x.owned.assign(x.t + alpha * y.t + omega * z.t)
            r.owned.assign(s.t - omega * t_.t)
            rho_old.assign(rho)
            rnorm2.assign(r.t.dot(r.t))
            it.assign(it + 1.0)
            # terminate = ... : convergence OR breakdown (|rho| ~ 0).
            cont.assign((rnorm2 > tol2) * (abs(rho) > _BREAKDOWN))
            self._emit_resilience(it, rnorm2, {"x": x, "r": r, "p": p, "rho": rho})
            if self.record_history:
                stats = self.stats

                def record(engine, _r=rnorm2.var, _i=it.var):
                    r2 = max(engine.read_scalar(_r), 0.0)
                    stats.record(
                        int(engine.read_scalar(_i)), (r2 / bnorm2_host[0]) ** 0.5,
                        cycles=engine.profiler.total_cycles,
                    )

                ctx.callback(record)
            else:
                self._emit_tick(it)
            if self.verbose:

                def progress(engine, _r=rnorm2.var, _i=it.var):
                    i = int(engine.read_scalar(_i))
                    if i % self.verbose == 0:
                        rel = (max(engine.read_scalar(_r), 0.0) / bnorm2_host[0]) ** 0.5
                        print(f"[{self.name}] iteration {i}: relative residual {rel:.3e}")

                ctx.callback(progress)

        if self.fixed_iterations is not None:
            # Fixed-burst mode (MPIR inner solves, preconditioner use): run a
            # set number of iterations but still take the early exits due to
            # convergence or singularity (Fig. 4 caption).
            ctx.Repeat(self.fixed_iterations, lambda: ctx.If(cont, body),
                       label=f"{self.name}.iterate")
        else:
            ctx.While(cont, body, max_iterations=self.max_iterations,
                      label=f"{self.name}.iterate")

    # -- multi-RHS (docs/solvers.md, "Batched Krylov solves") -----------------------

    def _solve_into_batched(self, x, b) -> None:
        """Batched PBiCGStab with per-column convergence masking.

        The loop-carried scalars (``rho``/``alpha``/``omega``/``beta``)
        stay *unmasked* so active columns compute exactly the single-RHS
        recurrence; masking is applied at the points where a scalar feeds a
        vector update (``alpha_eff``/``omega_eff``), which freezes the
        iterates of converged or broken-down columns bit-for-bit:
        ``s = r - 0·v = r``, ``x += 0·y + 0·z``, ``r = s - 0·t = r``.
        The direction ``p`` freezes through a mask-combine.  See the CG
        counterpart for why masking by exactly 0/1 preserves bit-identity.
        """
        self.setup()
        ctx = self.ctx
        A = self.A
        M = self.preconditioner
        batch = x.batch
        self.batch_stats = [SolveStats() for _ in range(batch)]

        r = self.workspace("r", batch=batch)
        r0 = self.workspace("r0", batch=batch)
        p = self.workspace("p", batch=batch)
        v = self.workspace("v", batch=batch)
        s = self.workspace("s", batch=batch)
        t_ = self.workspace("t", batch=batch)
        y = self.workspace("y", batch=batch)
        z = self.workspace("z", batch=batch)

        rho = ctx.scalar(1.0, batch=batch)
        self._rho_var = rho.var
        rho_old = ctx.scalar(1.0, batch=batch)
        alpha = ctx.scalar(1.0, batch=batch)
        omega = ctx.scalar(1.0, batch=batch)
        beta = ctx.scalar(0.0, batch=batch)
        alpha_eff = ctx.scalar(0.0, batch=batch)
        omega_eff = ctx.scalar(0.0, batch=batch)
        rnorm2 = ctx.scalar(1.0, batch=batch)
        active = ctx.scalar(1.0, batch=batch)
        it = ctx.scalar(0.0)
        cont = ctx.scalar(1.0)

        # --- setup: r = b - A x;  r0 = r;  p = v = 0 (all columns) ------------------
        A.spmv(x, v)
        r.owned.assign(b.t - v.t)
        r0.owned.assign(r.t)
        p.owned.assign(0.0)
        v.owned.assign(0.0)
        for scalar, init in ((rho, 1.0), (rho_old, 1.0), (alpha, 1.0), (omega, 1.0), (it, 0.0)):
            scalar.assign(init)
        rnorm2.assign(r.t.dot(r.t))
        bnorm2 = b.t.dot(b.t)
        tol2 = (bnorm2 * (self.tol * self.tol)).materialize()
        active.assign(rnorm2 > tol2)
        cont.assign(ctx.batch_reduce(active, "max"))
        bnorm2_host = [np.ones(batch)]
        ctx.callback(
            lambda e, _v=bnorm2.var: bnorm2_host.__setitem__(
                0, np.maximum(e.read_batch(_v), 1e-300)
            )
        )

        def _safe(denominator):
            return denominator + denominator.eq(0.0) * 1e-30

        def body():
            rho.assign(r0.t.dot(r.t))
            beta.assign((rho / _safe(rho_old)) * (alpha / _safe(omega)))
            p.owned.assign(
                (r.t + beta * (p.t - omega * v.t)) * active + p.t * (1.0 - active)
            )
            y.owned.assign(0.0)
            M.solve_into(y, p)
            A.spmv(y, v)
            alpha.assign(rho / _safe(r0.t.dot(v.t)))
            alpha_eff.assign(active * alpha)
            s.owned.assign(r.t - alpha_eff * v.t)
            z.owned.assign(0.0)
            M.solve_into(z, s)
            A.spmv(z, t_)
            omega.assign(t_.t.dot(s.t) / _safe(t_.t.dot(t_.t)))
            omega_eff.assign(active * omega)
            x.owned.assign(x.t + alpha_eff * y.t + omega_eff * z.t)
            r.owned.assign(s.t - omega_eff * t_.t)
            rho_old.assign(rho)
            rnorm2.assign(r.t.dot(r.t))
            it.assign(it + 1.0)
            if self.record_history:
                stats = self.stats
                batch_stats = self.batch_stats

                def record(engine, _r=rnorm2.var, _i=it.var, _a=active.var):
                    # Reads the at-start `active` flag (updated below), so a
                    # column's history covers exactly its advancing
                    # iterations — matching its single-RHS solve.  Uses the
                    # single-RHS callback's `** 0.5` host expression (libm
                    # pow can differ from IEEE sqrt by an ulp).
                    i = int(engine.read_scalar(_i))
                    r2 = engine.read_batch(_r)
                    act = engine.read_batch(_a)
                    rel = [
                        (max(float(r2[j]), 0.0) / float(bnorm2_host[0][j])) ** 0.5
                        for j in range(len(batch_stats))
                    ]
                    cyc = engine.profiler.total_cycles
                    stats.record(i, max(rel), cycles=cyc,
                                 active=int(np.count_nonzero(act)))
                    for j, st in enumerate(batch_stats):
                        if act[j] != 0.0:
                            st.record(i, rel[j], cycles=cyc)

                ctx.callback(record)
            else:
                self._emit_tick(it)
            if self.verbose:

                def progress(engine, _r=rnorm2.var, _i=it.var, _a=active.var):
                    i = int(engine.read_scalar(_i))
                    if i % self.verbose == 0:
                        r2 = np.maximum(engine.read_batch(_r), 0.0)
                        rel = np.sqrt(r2 / bnorm2_host[0])
                        n_active = int(np.count_nonzero(engine.read_batch(_a)))
                        print(
                            f"[{self.name}] iteration {i}: worst relative "
                            f"residual {rel.max():.3e} ({n_active}/{batch} "
                            "RHS still active)"
                        )

                ctx.callback(progress)
            active.assign(active * (rnorm2 > tol2) * (abs(rho) > _BREAKDOWN))
            cont.assign(ctx.batch_reduce(active, "max"))

        if self.fixed_iterations is not None:
            ctx.Repeat(self.fixed_iterations, lambda: ctx.If(cont, body),
                       label=f"{self.name}.iterate")
        else:
            ctx.While(cont, body, max_iterations=self.max_iterations,
                      label=f"{self.name}.iterate")
