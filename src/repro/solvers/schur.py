"""Schur-complement interface correction (Sec. VI-D — the paper's future work).

The block-local (D)ILU preconditioner "completely disregards halo values",
which is why its effectiveness degrades with the tile count.  The paper
suggests compensating with a Schur-complement-style method that solves an
additional system over the halo/separator cells of all tiles, noting it
"would likely necessitate a multi-step process, as the resulting additional
matrix would likely be too large to be solved on a single tile".

This solver implements the single-step variant as a *multiplicative
two-level preconditioner*:

1. ``x ← M_block(b)``       (any framework solver, e.g. block ILU(0)),
2. ``r ← b − A x``          (one extra SpMV),
3. restrict ``r`` to the interface cells (blockwise copies of the Sec. IV
   separator regions — their contiguity makes the gather cheap),
4. solve ``A_SS z_S = r_S`` with a direct factorization on one tile,
5. prolong ``z_S`` back and update ``x ← x + P z_S``.

The interface factor lives in one tile's SRAM (the limitation the paper
predicts); construction fails with a clear error when it does not fit,
pointing at the multi-step distributed variant as the remedy.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graph import Exchange, RegionCopy
from repro.graph.codelet import Codelet, ComputeSet
from repro.graph.program import Execute as ExecuteStep
from repro.machine.tile import SRAMOverflowError
from repro.solvers.base import Solver

__all__ = ["SchurInterface"]


class SchurInterface(Solver):
    name = "schur"

    def __init__(self, A, inner: Solver, interface_tile: int = 0, **params):
        super().__init__(A, **params)
        self.inner = inner
        self.interface_tile = interface_tile
        self._iface = None

    # -- setup -------------------------------------------------------------------------

    def _setup(self) -> None:
        self.inner.setup()
        A = self.A
        plan = A.plan

        # The interface: all separator cells, laid out region by region so
        # every restriction/prolongation is one blockwise copy per region.
        regions = plan.regions
        cells = (
            np.concatenate([r.cells for r in regions])
            if regions
            else np.empty(0, dtype=np.int64)
        )
        offsets = {}
        off = 0
        for r in regions:
            offsets[r.rid] = off
            off += r.size
        m = cells.size

        iface = {"cells": cells, "offsets": offsets, "m": m}
        if m:
            a_ss = sp.csc_matrix(A.crs.to_scipy()[np.ix_(cells, cells)])
            lu = spla.splu(a_ss)
            lu_nnz = int(lu.L.nnz + lu.U.nnz)
            # The factor must fit the interface tile's SRAM (f32 values +
            # i32 indices) — the single-tile limitation of Sec. VI-D.
            tile = self.ctx.device.tile(self.interface_tile)
            try:
                iface["lu_store"] = tile.alloc(
                    self.ctx.graph.unique_name("schur.lu"),
                    np.zeros(lu_nnz * 2, dtype=np.float32),
                )
            except SRAMOverflowError as exc:
                raise SRAMOverflowError(
                    f"Schur interface factor ({lu_nnz} entries for {m} separator "
                    f"cells) exceeds tile SRAM; a multi-step distributed interface "
                    f"solve (Sec. VI-D) or fewer tiles is required",
                    tile_id=self.interface_tile,
                    requested=lu_nnz * 2 * 4,
                    free=tile.bytes_free,
                    capacity=tile.spec.sram_per_tile,
                ) from exc
            iface["lu"] = lu
            iface["lu_nnz"] = lu_nnz
            # On-device interface vector (gathered residual / correction).
            iface["svec"] = self.ctx.graph.add_single_tile(
                self.ctx.graph.unique_name("schur.s"), (m,), "float32",
                tile_id=self.interface_tile,
            )
        self._iface = iface

    # -- restriction / prolongation ------------------------------------------------------

    def _restrict(self, vec) -> None:
        """Gather separator entries of ``vec`` into the interface vector."""
        svec = self._iface["svec"]
        copies = [
            RegionCopy(
                vec.owned.var,
                r.owner,
                self.A.plan.sep_offset[r.rid],
                ((svec, self.interface_tile, self._iface["offsets"][r.rid]),),
                r.size,
            )
            for r in self.A.plan.regions
        ]
        if copies:
            self.ctx.append(Exchange(copies, name="exchange"))

    def _prolong(self, vec) -> None:
        """Scatter the interface vector back into ``vec``'s separator cells."""
        svec = self._iface["svec"]
        copies = [
            RegionCopy(
                svec,
                self.interface_tile,
                self._iface["offsets"][r.rid],
                ((vec.owned.var, r.owner, self.A.plan.sep_offset[r.rid]),),
                r.size,
            )
            for r in self.A.plan.regions
        ]
        if copies:
            self.ctx.append(Exchange(copies, name="exchange"))

    # -- solve -------------------------------------------------------------------------------

    def solve_into(self, x, b) -> None:
        self.setup()
        iface = self._iface
        # Step 1: the block preconditioner.
        self.inner.solve_into(x, b)
        if iface["m"] == 0:
            return  # single tile: no interface to correct

        ax = self.workspace("ax")
        r = self.workspace("r")
        c = self.workspace("c")

        # Step 2: interface residual.
        self.A.spmv(x, ax)
        r.owned.assign(b.t - ax.t)
        # Step 3: gather.
        self._restrict(r)

        # Step 4: direct interface solve on one tile.
        svec = iface["svec"]
        lu = iface["lu"]
        model = self.ctx.device.model

        def run(ctx):
            sh = svec.shard(self.interface_tile)
            sh.data[...] = lu.solve(sh.data.astype(np.float64)).astype(np.float32)

        def cycles(ctx):
            # Forward + backward substitution through the LU factor on the
            # single interface tile (one worker: the solve is sequential).
            return model.triangular_rows("float32", iface["lu_nnz"], iface["m"])

        cs = ComputeSet(self.ctx.graph.unique_name("cs_schur"), category="schur_solve")
        cs.add_vertex(Codelet("schur_solve", run, cycles, category="schur_solve"),
                      self.interface_tile, {})
        self.ctx.append(ExecuteStep(cs))

        # Step 5: prolong and update.
        c.owned.assign(0.0)
        self._prolong(c)
        x.owned.assign(x.t + c.t)
