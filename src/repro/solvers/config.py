"""JSON solver configuration (Sec. V).

The solver hierarchy and its parameters are configured through a JSON
document, so users adapt the setup to their problem without touching code::

    {
      "solver": "mpir",
      "precision": "dw",
      "inner": {
        "solver": "bicgstab",
        "fixed_iterations": 100,
        "preconditioner": {"solver": "ilu0"}
      }
    }

Nested keys: ``preconditioner`` (for Krylov solvers) and ``inner`` (for
MPIR) recursively describe sub-solvers — any solver can precondition any
other.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.solvers.base import Solver
from repro.solvers.bicgstab import PBiCGStab
from repro.solvers.cg import ConjugateGradient
from repro.solvers.gauss_seidel import GaussSeidel
from repro.solvers.identity import Identity
from repro.solvers.ilu import DILU, ILU0
from repro.solvers.jacobi import Jacobi
from repro.solvers.mpir import MPIR
from repro.solvers.multigrid import Multigrid
from repro.solvers.richardson import Richardson
from repro.solvers.schur import SchurInterface

__all__ = ["SOLVERS", "build_solver", "load_config"]

SOLVERS = {
    "bicgstab": PBiCGStab,
    "cg": ConjugateGradient,
    "gauss_seidel": GaussSeidel,
    "ilu0": ILU0,
    "dilu": DILU,
    "jacobi": Jacobi,
    "identity": Identity,
    "mpir": MPIR,
    "multigrid": Multigrid,
    "richardson": Richardson,
    "schur": SchurInterface,
}


def load_config(source) -> dict:
    """Accept a dict, a JSON string, a path to a JSON file, or a bare
    solver name (``"cg"`` is shorthand for ``{"solver": "cg"}``)."""
    if isinstance(source, dict):
        return source
    if isinstance(source, str) and source in SOLVERS:
        return {"solver": source}
    if isinstance(source, (str, Path)):
        p = Path(source)
        if p.suffix == ".json" and p.exists():
            return json.loads(p.read_text())
        return json.loads(str(source))
    raise TypeError(f"cannot interpret solver config {source!r}")


def build_solver(A, config) -> Solver:
    """Recursively instantiate the solver tree described by ``config``."""
    cfg = dict(load_config(config))
    try:
        kind = cfg.pop("solver")
    except KeyError:
        raise ValueError("solver config needs a 'solver' key") from None
    if kind not in SOLVERS:
        raise ValueError(f"unknown solver {kind!r}; available: {sorted(SOLVERS)}")
    cls = SOLVERS[kind]
    kwargs = {}
    for key, val in cfg.items():
        if key == "preconditioner":
            kwargs["preconditioner"] = build_solver(A, val)
        elif key == "inner":
            kwargs["inner"] = build_solver(A, val)
        else:
            kwargs[key] = val
    if kind in ("mpir", "schur") and "inner" not in kwargs:
        raise ValueError(f"{kind} config needs an 'inner' solver")
    return cls(A, **kwargs)
