"""Solver framework (Sec. V).

Every solver implements the same two-phase interface:

- :meth:`Solver.setup` — one-time work appended to the schedule before the
  solve (e.g. the (D)ILU factorization, level-set analysis),
- :meth:`Solver.solve_into` — appends the program steps that (approximately)
  solve ``A x = b`` into ``x``.

The modular design is the paper's key framework feature: *any* solver can
serve as the preconditioner of another (``preconditioner.solve(p)`` inside
PBiCGStab is just a nested ``solve_into``), enabling arbitrarily nested
configurations driven by a JSON file (:mod:`repro.solvers.config`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sparse.distribute import DistVector, DistributedMatrix

__all__ = ["Solver", "SolveStats", "SolveProgress"]


@dataclass(frozen=True)
class SolveProgress:
    """One live progress sample from a running solve.

    Emitted through the ``on_progress`` callback of
    :func:`repro.solvers.api.solve` every ``progress_every`` recorded
    iterations, while the device program is still running.
    """

    #: Cumulative (inner) iteration count at this sample.
    iteration: int
    #: Relative residual ``||r|| / ||b||`` at this sample (for a batched
    #: solve: the worst still-active column).
    relative_residual: float
    #: Host wall-clock seconds since the solve call started.
    wall_seconds: float
    #: Number of RHS columns still iterating (1 for single-RHS solves).
    active_columns: int = 1


def _graph_var(obj):
    """Resolve a DistVector / Tensor / Variable to its graph Variable."""
    obj = getattr(obj, "owned", obj)
    return getattr(obj, "var", obj)


class SolveStats:
    """Host-side convergence record filled in by runtime callbacks."""

    def __init__(self):
        #: Relative residual after each recorded iteration.
        self.residuals: list[float] = []
        #: Cumulative (inner) iteration count at each record.
        self.iterations: list[int] = []
        #: Modeled device cycles at each record — the x-axis of the
        #: residual-vs-cycles convergence telemetry (zero under backends
        #: without a cycle model).
        self.cycles: list[int] = []
        #: Why the solve stopped short of its tolerance, or ``None`` when it
        #: converged: "max_iterations", "breakdown", "nan_residual",
        #: "stagnation", "divergence", "silent_corruption".
        self.failure: str | None = None
        #: Optional live-progress hook ``fn(iteration, relative_residual,
        #: active_columns)`` fired by every :meth:`record` — the seam the
        #: solve API uses for ``on_progress`` (docs/observability.md).
        #: ``None`` costs one attribute check per recorded iteration.
        self.progress = None
        #: Optional per-iteration hook ``fn(iteration)`` fired on *every*
        #: iteration — by :meth:`record` when history is kept, and by the
        #: solver's dedicated tick callback (:meth:`Solver._emit_tick`)
        #: when ``record_history=False`` leaves no record.  This is the
        #: deadline-enforcement seam: unlike ``progress`` it is installed
        #: on every member of the solver tree, so an MPIR inner burst or a
        #: history-less loop cannot overshoot ``max_wall_seconds``.
        self.tick = None

    def record(
        self,
        iteration: int,
        relative_residual: float,
        cycles: int = 0,
        active: int | None = None,
    ) -> None:
        self.iterations.append(int(iteration))
        self.residuals.append(float(relative_residual))
        self.cycles.append(int(cycles))
        if self.tick is not None:
            self.tick(int(iteration))
        if self.progress is not None:
            self.progress(int(iteration), float(relative_residual),
                          1 if active is None else int(active))

    def reset(self) -> None:
        """Clear the record *in place* for a fresh run of the same program.

        Runtime callbacks close over this object, so a reusable solve
        session (:mod:`repro.solvers.session`) must empty it rather than
        replace it.
        """
        self.residuals.clear()
        self.iterations.clear()
        self.cycles.clear()
        self.failure = None
        self.progress = None
        self.tick = None

    def copy(self) -> "SolveStats":
        """Detached snapshot — what a cached-session solve hands back to the
        caller so the next run's :meth:`reset` cannot mutate their result."""
        out = SolveStats()
        out.residuals = list(self.residuals)
        out.iterations = list(self.iterations)
        out.cycles = list(self.cycles)
        out.failure = self.failure
        return out

    def residual_series(self) -> list:
        """``(cycles, iteration, relative_residual)`` triples, in order."""
        return list(zip(self.cycles, self.iterations, self.residuals))

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")

    @property
    def total_iterations(self) -> int:
        return self.iterations[-1] if self.iterations else 0

    def __repr__(self):
        failure = f", failure={self.failure!r}" if self.failure is not None else ""
        return (
            f"SolveStats(iterations={self.total_iterations}, "
            f"final_residual={self.final_residual:.3e}{failure})"
        )


class Solver:
    """Base class: a (possibly approximate) linear solver for one matrix."""

    name = "base"

    #: Whether :meth:`solve_into` accepts multi-RHS (batched) vectors.
    #: Batched Krylov solves (docs/solvers.md) require every solver in the
    #: nested config tree to opt in.
    supports_batch = False

    def __init__(self, A: DistributedMatrix, **params):
        self.A = A
        self.ctx = A.ctx
        self.params = params
        self.stats = SolveStats()
        #: Per-RHS convergence records for a batched solve (one
        #: :class:`SolveStats` per RHS column), ``None`` otherwise.
        self.batch_stats: list | None = None
        self._setup_done = False
        #: ResilienceMonitor when the resilient solve driver is active
        #: (:mod:`repro.solvers.resilience`); ``None`` costs nothing.
        self._monitor = None

    # -- lifecycle ------------------------------------------------------------------

    def setup(self) -> None:
        """Append one-time setup steps (idempotent)."""
        if self._setup_done:
            return
        self._setup()
        self._setup_done = True

    def _setup(self) -> None:  # pragma: no cover - trivial default
        pass

    def solve_into(self, x: DistVector, b: DistVector) -> None:
        """Append steps computing ``x ≈ A⁻¹ b`` (x's content = initial guess)."""
        raise NotImplementedError

    def iter_tree(self):
        """Yield this solver and every nested sub-solver (preconditioners,
        MPIR inner solvers, multigrid smoothers...), depth-first.  The solve
        session resets the whole tree's :class:`SolveStats` between runs."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Solver):
                yield from value.iter_tree()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Solver):
                        yield from item.iter_tree()

    # -- resilience (docs/resilience.md) ------------------------------------------------

    def enable_resilience(self, monitor) -> None:
        """Attach a :class:`~repro.solvers.resilience.ResilienceMonitor`.

        Must happen *before* :meth:`solve_into` — the per-iteration
        detection callback is appended to the schedule during symbolic
        execution.
        """
        self._monitor = monitor
        monitor.solver = self

    def post_restore(self) -> None:
        """Hook after a checkpoint restore; solvers whose program prologue
        would clobber restored state (e.g. MPIR re-widening x into x_ext)
        override this to reconcile it."""

    def _emit_resilience(self, it, rnorm2, checkpoint_vars: dict) -> None:
        """Append the per-iteration detection/checkpoint callback (no-op
        without a monitor).  ``checkpoint_vars`` names the solver state the
        monitor snapshots (e.g. ``{"x": x, "r": r, "p": p, "rho": rho}``)."""
        monitor = self._monitor
        if monitor is None:
            return
        for name, obj in checkpoint_vars.items():
            monitor.register(name, _graph_var(obj))

        def cb(engine, _i=it.var, _r=rnorm2.var):
            monitor.observe(engine, int(engine.read_scalar(_i)), engine.read_scalar(_r))

        self.ctx.callback(cb)

    def classify_failure(self, engine) -> str | None:
        """Why this solve fell short of its tolerance (``None`` = it didn't).

        The base classification trusts the device-tracked residual history;
        Krylov subclasses refine "max_iterations" into "breakdown" when
        their rho collapsed.
        """
        tol = getattr(self, "tol", None)
        if tol is None:
            return None
        return self._classify_stats(self.stats, tol)

    def _classify_batched(self, engine) -> str | None:
        """Per-RHS failure classification for a batched solve.

        Fills each ``batch_stats[j].failure`` and returns the first non-None
        per-column failure as the aggregate verdict (``None`` = every RHS
        converged).  Krylov solvers expose ``_rho_var``/``_breakdown`` so a
        stalled column with a collapsed rho classifies as "breakdown", same
        as the single-RHS path.
        """
        tol = getattr(self, "tol", None)
        if tol is None or not self.batch_stats:
            return None
        rho = None
        rho_var = getattr(self, "_rho_var", None)
        if rho_var is not None:
            rho = engine.read_batch(rho_var)
        breakdown = getattr(self, "_breakdown", 0.0)
        failures = []
        for j, st in enumerate(self.batch_stats):
            f = self._classify_stats(st, tol)
            if f == "max_iterations" and rho is not None and j < len(rho):
                rj = float(rho[j])
                if rj != rj or abs(rj) <= breakdown:
                    f = "breakdown"
            st.failure = f
            failures.append(f)
        return next((f for f in failures if f is not None), None)

    @staticmethod
    def _classify_stats(stats: SolveStats, tol: float) -> str | None:
        """Classification of one residual history against ``tol`` (shared
        between the aggregate record and each per-RHS record)."""
        if not stats.residuals:
            return None
        final = stats.final_residual
        if math.isnan(final) or math.isinf(final):
            return "nan_residual"
        if final <= tol:
            return None
        return "max_iterations"

    # -- shared helpers -----------------------------------------------------------------

    def workspace(self, tag: str, dtype: str = "float32", batch: int = 1) -> DistVector:
        """Allocate a solver-owned distributed temporary."""
        return self.A.vector(
            name=self.ctx.graph.unique_name(f"{self.name}.{tag}"), dtype=dtype, batch=batch
        )

    def _emit_tick(self, it) -> None:
        """Append a per-iteration host callback firing ``stats.tick``.

        Iteration bodies call this on their ``record_history=False`` path
        so the deadline seam exists even when nothing is recorded
        (:meth:`SolveStats.record` fires the hook itself otherwise).  An
        unset hook makes the callback a no-op, so the emitted program is
        identical whether or not a deadline is later installed.
        """
        stats = self.stats

        def cb(engine, _i=it.var):
            hook = stats.tick
            if hook is not None:
                hook(int(engine.read_scalar(_i)))

        self.ctx.callback(cb)

    def record_residual_callback(self, iter_counter, rnorm2_tensor, bnorm2: float):
        """Host callback factory: log sqrt(rnorm²)/||b|| into ``self.stats``."""
        stats = self.stats
        scale = 1.0 / np.sqrt(bnorm2) if bnorm2 > 0 else 1.0

        def cb(engine):
            r2 = max(engine.read_scalar(rnorm2_tensor.var), 0.0)
            it = engine.read_scalar(iter_counter.var) if iter_counter is not None else len(stats.residuals)
            stats.record(int(it), np.sqrt(r2) * scale, cycles=engine.profiler.total_cycles)

        return cb

    def __repr__(self):
        return f"{type(self).__name__}({self.params})"
