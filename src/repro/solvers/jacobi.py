"""(Damped) Jacobi iteration.

The simplest parallel smoother: ``x ← x + ω D⁻¹ (b − A x)``.  The modified
CRS format's dense diagonal array makes ``D⁻¹`` application a single
elementwise multiply.  Used standalone for well-conditioned systems and as
a cheap preconditioner/smoother in nested configs.
"""

from __future__ import annotations

from repro.solvers.base import Solver

__all__ = ["Jacobi"]


class Jacobi(Solver):
    name = "jacobi"
    # The sweep is pure elementwise algebra plus one SpMV; the unbatched
    # D⁻¹ broadcasts across the RHS axis, so batched vectors work as-is.
    supports_batch = True

    def __init__(self, A, sweeps: int = 1, omega: float = 0.8, **params):
        super().__init__(A, sweeps=sweeps, omega=omega, **params)
        self.sweeps = sweeps
        self.omega = omega
        self._inv_diag = None

    def _setup(self) -> None:
        # Reciprocal diagonal in the reordered layout, once.
        inv = 1.0 / self.A.crs.diag
        self._inv_diag = self.A.vector(name=self.ctx.graph.unique_name("jacobi.invdiag"))
        self._inv_diag.write_global(inv)

    def solve_into(self, x, b) -> None:
        self.setup()
        ax = self.workspace("ax", dtype=x.dtype, batch=x.batch)

        def sweep():
            self.A.spmv(x, ax)
            x.owned.assign(x.t + (b.t - ax.t) * self._inv_diag.t * self.omega)

        if self.sweeps == 1:
            sweep()
        else:
            self.ctx.Repeat(self.sweeps, sweep, label=f"{self.name}.sweeps")
