"""Level-set-scheduled triangular/GS sweeps over one tile's local block.

All sequential row sweeps in the framework (Gauss-Seidel smoothing, ILU/DILU
forward and backward substitution) share the same shape: process rows in
dependency order, updating ``x[row]`` from a subset of the row's entries.
``SweepPlan`` precomputes the level structure once (Sec. V-A) and executes
each level vectorized; the cycle cost model uses the IPUTHREADING
single-compute-set strategy (Sec. V-A / the IPUTHREADING library).

Dependencies are the entries whose column is itself updated by the sweep;
for structurally symmetric matrices the level order reproduces the
sequential algorithm's result exactly (every coupled row pair is ordered by
the lower-triangular dependency between them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine import threading as thr
from repro.sparse.levelset import LevelSchedule

__all__ = ["SweepPlan", "build_sweep"]


@dataclass
class SweepPlan:
    """Precomputed level-ordered entry layout for one tile's sweep."""

    n: int
    schedule: LevelSchedule
    #: Per level: rows processed (ascending), their entries (cols, vals)
    #: grouped by row, and the per-row segment pointer into them.
    level_rows: list
    level_cols: list
    level_vals: list
    level_ptr: list

    # -- execution ----------------------------------------------------------------

    def run(self, x_full: np.ndarray, rhs: np.ndarray, diag=None) -> None:
        """Sweep in place: ``x[row] = (rhs[row] - Σ vals·x_full[cols]) / diag[row]``.

        ``x_full`` is the tile's working vector (owned prefix + halo suffix);
        only owned rows are written.  ``diag=None`` means unit diagonal.
        """
        for rows, cols, vals, ptr in zip(
            self.level_rows, self.level_cols, self.level_vals, self.level_ptr
        ):
            if rows.size == 0:
                continue
            if cols.size:
                contrib = vals * x_full[cols]
                padded = np.concatenate([contrib, np.zeros(1, dtype=contrib.dtype)])
                sums = np.add.reduceat(padded, np.minimum(ptr[:-1], contrib.size))
                sums[ptr[1:] == ptr[:-1]] = 0
            else:
                sums = np.zeros(rows.size, dtype=x_full.dtype)
            out = rhs[rows] - sums
            if diag is not None:
                out = out / diag[rows]
            x_full[rows] = out

    # -- cost ------------------------------------------------------------------------

    def worker_cycles(self, model, workers: int, dtype: str = "float32"):
        """Per-level per-worker cycle costs for the threading model."""
        out = []
        for rows, cols in zip(self.level_rows, self.level_cols):
            if rows.size == 0:
                continue
            splits = np.array_split(np.arange(rows.size), min(workers, rows.size))
            nnz = cols.size
            out.append(
                [
                    model.triangular_rows(dtype, nnz * s.size // max(rows.size, 1), s.size)
                    for s in splits
                ]
            )
        return out

    def cycles(self, model, spec, dtype: str = "float32") -> int:
        """Total tile cycles with IPUTHREADING worker management."""
        return thr.iputhreading(
            self.worker_cycles(model, spec.workers_per_tile, dtype), spec
        ).cycles


def _levels_directional(n: int, dep_rows, dep_cols, backward: bool):
    """level_of[row] for deps (row depends on col); forward: col<row only,
    backward: col>row only — both guaranteed acyclic."""
    level_of = np.zeros(n, dtype=np.int64)
    # Group deps per row.
    order = np.argsort(dep_rows, kind="stable")
    dr, dc = dep_rows[order], dep_cols[order]
    ptr = np.searchsorted(dr, np.arange(n + 1))
    row_iter = range(n - 1, -1, -1) if backward else range(n)
    for i in row_iter:
        cols = dc[ptr[i] : ptr[i + 1]]
        if cols.size:
            level_of[i] = level_of[cols].max() + 1
    return level_of


def build_sweep(
    n: int,
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    values: np.ndarray,
    include,
    backward: bool = False,
) -> SweepPlan:
    """Build a sweep plan over one tile's local CRS block.

    ``include(rows, cols)`` selects which entries feed the update formula;
    dependency edges are the included entries whose column is an owned row
    updated earlier in the sweep direction (``col < row`` forward,
    ``col > row`` backward).  Halo columns (``col >= n``) never induce
    dependencies — the block-local treatment the paper discusses in
    Sec. VI-D.
    """
    row_ptr = np.asarray(row_ptr)
    col_idx = np.asarray(col_idx, dtype=np.int64)
    values = np.asarray(values)
    e_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(row_ptr))
    keep = np.asarray(include(e_rows, col_idx), dtype=bool)
    e_rows, e_cols, e_vals = e_rows[keep], col_idx[keep], values[keep]

    dep = ((e_cols > e_rows) if backward else (e_cols < e_rows)) & (e_cols < n)
    level_of = _levels_directional(n, e_rows[dep], e_cols[dep], backward)

    num_levels = int(level_of.max()) + 1 if n else 0
    # Rows per level, ascending.
    row_order = np.lexsort((np.arange(n), level_of))
    row_bounds = np.searchsorted(level_of[row_order], np.arange(num_levels + 1))
    # Entries sorted by (level of their row, row).
    entry_order = np.lexsort((e_rows, level_of[e_rows]))
    e_rows, e_cols, e_vals = e_rows[entry_order], e_cols[entry_order], e_vals[entry_order]
    entry_bounds = np.searchsorted(level_of[e_rows], np.arange(num_levels + 1))

    level_rows, level_cols, level_vals, level_ptr = [], [], [], []
    for k in range(num_levels):
        rows = np.sort(row_order[row_bounds[k] : row_bounds[k + 1]])
        lr = e_rows[entry_bounds[k] : entry_bounds[k + 1]]
        lc = e_cols[entry_bounds[k] : entry_bounds[k + 1]]
        lv = e_vals[entry_bounds[k] : entry_bounds[k + 1]]
        ptr = np.concatenate([np.searchsorted(lr, rows, side="left"), [lr.size]])
        level_rows.append(rows)
        level_cols.append(lc)
        level_vals.append(lv)
        level_ptr.append(ptr)

    sched = LevelSchedule(levels=level_rows, n=n)
    return SweepPlan(
        n=n,
        schedule=sched,
        level_rows=level_rows,
        level_cols=level_cols,
        level_vals=level_vals,
        level_ptr=level_ptr,
    )
