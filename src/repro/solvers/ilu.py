"""ILU(0) and DILU preconditioners (Sec. V-E).

Both approximate ``A ≈ LU`` on the original sparsity pattern.  Each tile
factors its *local block* independently — the decomposition "completely
disregards halo values" (Sec. VI-D), which is exactly why the preconditioner
weakens as the tile count grows (visible in the Fig. 8 bench).

- **ILU(0)**: IKJ factorization restricted to the pattern; substitution is a
  unit-lower forward solve followed by an upper backward solve.
- **DILU**: only the diagonal is modified
  (``d_i = a_ii − Σ_{k<i} a_ik d_k⁻¹ a_ki``); substitution uses the original
  off-diagonals with the modified diagonal: ``M = (D+L) D⁻¹ (D+U)``.

Factorization and substitution are parallelized per tile over the six
worker threads with Level-Set Scheduling; cycle costs use the IPUTHREADING
model.  All numerics run in float32, like the IPU.
"""

from __future__ import annotations

import numpy as np

from repro.graph.codelet import Codelet, ComputeSet
from repro.graph.program import Execute as ExecuteStep
from repro.machine.cycles import OP_CYCLES
from repro.solvers.base import Solver
from repro.solvers.sweeps import build_sweep

__all__ = ["ILU0", "DILU"]


def _factor_ilu0(n, row_ptr, col_idx, values, diag):
    """In-place-style block-local ILU(0); returns (values_f, diag_u, flops).

    Lower entries end up holding L (unit diagonal implied), upper entries
    hold U's off-diagonals, ``diag_u`` holds U's diagonal.
    """
    vals = values.astype(np.float32).copy()
    diag_u = diag.astype(np.float32).copy()
    # Per-row lookup: local col -> entry position (halo columns excluded).
    row_map = []
    for i in range(n):
        s, e = row_ptr[i], row_ptr[i + 1]
        row_map.append({int(c): int(s + k) for k, c in enumerate(col_idx[s:e]) if c < n})
    flops = 0
    for i in range(n):
        lower = sorted((c, p) for c, p in row_map[i].items() if c < i)
        for k, pos_ik in lower:
            l_ik = np.float32(vals[pos_ik] / diag_u[k])
            vals[pos_ik] = l_ik
            flops += 1
            # Update row i against row k's upper part (cols > k).
            for j, pos_kj in row_map[k].items():
                if j <= k:
                    continue
                if j == i:
                    diag_u[i] = np.float32(diag_u[i] - l_ik * vals[pos_kj])
                    flops += 2
                elif j in row_map[i]:
                    p = row_map[i][j]
                    vals[p] = np.float32(vals[p] - l_ik * vals[pos_kj])
                    flops += 2
    return vals, diag_u, flops


def _factor_dilu(n, row_ptr, col_idx, values, diag):
    """Block-local DILU diagonal; returns (d, flops)."""
    d = diag.astype(np.float32).copy()
    row_map = []
    for i in range(n):
        s, e = row_ptr[i], row_ptr[i + 1]
        row_map.append({int(c): int(s + k) for k, c in enumerate(col_idx[s:e]) if c < n})
    flops = 0
    for i in range(n):
        for k, pos_ik in row_map[i].items():
            if k >= i:
                continue
            pos_ki = row_map[k].get(i)
            if pos_ki is not None:
                d[i] = np.float32(d[i] - values[pos_ik] * values[pos_ki] / d[k])
                flops += 3
    return d, flops


class _ILUBase(Solver):
    """Shared machinery: factor at setup, substitution sweeps per solve."""

    def _setup(self) -> None:
        self._tile_data = {}
        factor_cycle_costs = {}
        for t in self.A.tiles:
            loc = self.A.local[t]
            data = self._factor_tile(loc)
            self._tile_data[t] = data
            factor_cycle_costs[t] = data["factor_flops"] * (
                OP_CYCLES["float32"]["mul"] + OP_CYCLES["float32"]["add"]
            ) // 2 + self.ctx.device.model.vertex_overhead
        # The factorization executes once on-device: numerics were computed
        # during symbolic execution (they depend only on the static matrix),
        # the compute set charges the level-scheduled cost.
        cs = ComputeSet(self.ctx.graph.unique_name("cs_ilu_factor"), category="ilu_factor")
        for t in self.A.tiles:
            cs.add_vertex(
                Codelet(
                    f"{self.name}_factor@{t}",
                    run=lambda ctx: None,
                    cycles=lambda ctx, c=factor_cycle_costs[t]: c,
                    category="ilu_factor",
                ),
                t,
                {},
            )
        self.ctx.append(ExecuteStep(cs))

    def _factor_tile(self, loc) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def solve_into(self, x, b) -> None:
        self.setup()
        cs = ComputeSet(self.ctx.graph.unique_name(f"cs_{self.name}_solve"), category="ilu_solve")
        model = self.ctx.device.model
        spec = self.ctx.device.spec
        for t in self.A.tiles:
            data = self._tile_data[t]
            loc = self.A.local[t]

            def run(ctx, t=t, data=data, loc=loc):
                rhs = b.owned.var.shard(t).data
                out = x.owned.var.shard(t).data
                self._substitute(data, loc, rhs, out)

            def cycles(ctx, data=data):
                return data["fwd"].cycles(model, spec) + data["bwd"].cycles(model, spec)

            cs.add_vertex(Codelet(f"{self.name}@{t}", run, cycles, category="ilu_solve"), t, {})
        self.ctx.append(ExecuteStep(cs))

    def _substitute(self, data, loc, rhs, out):  # pragma: no cover - abstract
        raise NotImplementedError


class ILU0(_ILUBase):
    name = "ilu0"

    def _factor_tile(self, loc) -> dict:
        n = loc["n"]
        vals, diag_u, flops = _factor_ilu0(
            n, loc["row_ptr"], loc["col_idx"], loc["values"], loc["diag"]
        )
        local_only = lambda rows, cols: cols < n
        fwd = build_sweep(
            n, loc["row_ptr"], loc["col_idx"], vals,
            include=lambda rows, cols: (cols < rows) & local_only(rows, cols),
        )
        bwd = build_sweep(
            n, loc["row_ptr"], loc["col_idx"], vals,
            include=lambda rows, cols: (cols > rows) & local_only(rows, cols),
            backward=True,
        )
        return {"fwd": fwd, "bwd": bwd, "diag_u": diag_u, "factor_flops": flops}

    def _substitute(self, data, loc, rhs, out):
        n = loc["n"]
        work = np.zeros(n, dtype=np.float32)
        # Forward: L y = rhs (unit diagonal).
        work[...] = 0.0
        data["fwd"].run(work, rhs, diag=None)
        # Backward: U x = y.
        y = work.copy()
        data["bwd"].run(work, y, diag=data["diag_u"])
        out[...] = work


class DILU(_ILUBase):
    name = "dilu"

    def _factor_tile(self, loc) -> dict:
        n = loc["n"]
        d, flops = _factor_dilu(
            n, loc["row_ptr"], loc["col_idx"], loc["values"], loc["diag"]
        )
        local_only = lambda rows, cols: cols < n
        fwd = build_sweep(
            n, loc["row_ptr"], loc["col_idx"], loc["values"],
            include=lambda rows, cols: (cols < rows) & local_only(rows, cols),
        )
        bwd = build_sweep(
            n, loc["row_ptr"], loc["col_idx"], loc["values"],
            include=lambda rows, cols: (cols > rows) & local_only(rows, cols),
            backward=True,
        )
        return {"fwd": fwd, "bwd": bwd, "d": d, "factor_flops": flops}

    def _substitute(self, data, loc, rhs, out):
        n = loc["n"]
        d = data["d"]
        # (D+L) w = rhs.
        w = np.zeros(n, dtype=np.float32)
        data["fwd"].run(w, rhs, diag=d)
        # (D+U) x = D w.
        z = (d * w).astype(np.float32)
        x = np.zeros(n, dtype=np.float32)
        data["bwd"].run(x, z, diag=d)
        out[...] = x
