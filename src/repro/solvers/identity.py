"""Identity "solver": x := b (the no-preconditioner placeholder)."""

from __future__ import annotations

from repro.solvers.base import Solver

__all__ = ["Identity"]


class Identity(Solver):
    """M = I.  Using it as a preconditioner turns PBiCGStab into plain
    BiCGStab; it also serves as a copy primitive in nested configs."""

    name = "identity"
    supports_batch = True  # x := b is batch-transparent

    def solve_into(self, x, b) -> None:
        x.owned.assign(b.owned)
