"""(Preconditioned) Richardson iteration.

The simplest possible iterative scheme: ``x ← x + ω M⁻¹ (b − A x)``.
With ``M = I`` it is plain Richardson; with any framework solver as ``M``
it is the classic stationary outer iteration — useful as a cheap smoother
and as the minimal example of the framework's solver-nesting machinery.
"""

from __future__ import annotations

from repro.solvers.base import Solver
from repro.solvers.identity import Identity

__all__ = ["Richardson"]


class Richardson(Solver):
    name = "richardson"

    def __init__(self, A, sweeps: int = 10, omega: float = 1.0,
                 preconditioner: Solver | None = None, **params):
        super().__init__(A, sweeps=sweeps, omega=omega, **params)
        self.sweeps = sweeps
        self.omega = omega
        self.preconditioner = preconditioner or Identity(A)

    def _setup(self) -> None:
        self.preconditioner.setup()

    def solve_into(self, x, b) -> None:
        self.setup()
        ax = self.workspace("ax")
        r = self.workspace("r")
        z = self.workspace("z")

        def sweep():
            self.A.spmv(x, ax)
            r.owned.assign(b.t - ax.t)
            z.owned.assign(0.0)
            self.preconditioner.solve_into(z, r)
            x.owned.assign(x.t + z.t * self.omega)

        if self.sweeps == 1:
            sweep()
        else:
            self.ctx.Repeat(self.sweeps, sweep, label=f"{self.name}.sweeps")
