"""Geometric multigrid (V-cycle) for structured-grid problems.

The paper motivates Gauss-Seidel by its "smoothing properties … as a
smoother in multigrid algorithms" (Sec. V-D) but stops short of a multigrid
solver; this module builds one on the framework's pieces:

- a hierarchy of Galerkin-coarsened operators ``A_{l+1} = R A_l P``,
  each distributed across the tiles with its own Sec.-IV halo plan,
- linear-interpolation prolongation / full-weighting restriction applied
  as :class:`~repro.sparse.rectop.DistributedRectOp` transfers,
- level-set-scheduled Gauss-Seidel smoothing on every level,
- a direct coarsest-grid solve on a single tile (gather → LU → scatter).

Usable standalone (V-cycles to a tolerance) or — like every framework
solver — as a preconditioner, e.g. for PBiCGStab.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graph import Exchange, RegionCopy
from repro.graph.codelet import Codelet, ComputeSet
from repro.graph.program import Execute as ExecuteStep
from repro.solvers.base import Solver
from repro.sparse.crs import ModifiedCRS
from repro.sparse.distribute import DistributedMatrix
from repro.sparse.rectop import DistributedRectOp

__all__ = ["Multigrid", "interpolation_1d", "build_transfer"]


def interpolation_1d(n_fine: int, n_coarse: int) -> sp.csr_matrix:
    """1-D linear interpolation from even-index coarse vertices."""
    rows, cols, vals = [], [], []
    for f in range(n_fine):
        c, rem = divmod(f, 2)
        if rem == 0:
            rows.append(f), cols.append(c), vals.append(1.0)
        else:
            rows.append(f), cols.append(c), vals.append(0.5)
            if c + 1 < n_coarse:
                rows.append(f), cols.append(c + 1), vals.append(0.5)
            else:
                rows.append(f), cols.append(c), vals.append(0.5)
    return sp.csr_matrix((vals, (rows, cols)), shape=(n_fine, n_coarse))


def build_transfer(dims):
    """(P, coarse_dims): d-dimensional prolongation as a Kronecker product
    matching the row convention ``x + nx*(y + ny*z)``."""
    dims = tuple(dims)
    coarse = tuple((d + 1) // 2 for d in dims)
    p = interpolation_1d(dims[0], coarse[0])
    for axis in range(1, len(dims)):
        p = sp.kron(interpolation_1d(dims[axis], coarse[axis]), p, format="csr")
    return p.tocsr(), coarse


class Multigrid(Solver):
    name = "multigrid"

    def __init__(
        self,
        A: DistributedMatrix,
        grid_dims,
        levels: int | None = None,
        pre_smooth: int = 1,
        post_smooth: int = 1,
        cycles: int = 10,
        coarsest_size: int = 64,
        coarse_tile: int = 0,
        smoother: dict | None = None,
        **params,
    ):
        super().__init__(A, levels=levels, pre_smooth=pre_smooth,
                         post_smooth=post_smooth, cycles=cycles, **params)
        self.grid_dims = tuple(grid_dims)
        self.levels_requested = levels
        self.pre_smooth = pre_smooth
        self.post_smooth = post_smooth
        self.cycles = cycles
        self.coarsest_size = coarsest_size
        self.coarse_tile = coarse_tile
        #: Smoother config (any framework solver); default: 1 GS sweep.
        self.smoother_cfg = smoother or {"solver": "gauss_seidel", "sweeps": 1}

    # -- hierarchy construction -----------------------------------------------------

    def _setup(self) -> None:
        if int(np.prod(self.grid_dims)) != self.A.n:
            raise ValueError("grid_dims inconsistent with the matrix size")
        ctx = self.ctx
        self.hierarchy = [{"A": self.A, "dims": self.grid_dims}]
        dims = self.grid_dims
        crs = self.A.crs
        level = 0
        while True:
            n_coarse = int(np.prod(tuple((d + 1) // 2 for d in dims)))
            if n_coarse < self.coarsest_size or n_coarse == int(np.prod(dims)):
                break
            if self.levels_requested is not None and level + 1 >= self.levels_requested:
                break
            p, coarse_dims = build_transfer(dims)
            r = (p.T * (1.0 / 2 ** len(dims))).tocsr()
            a_c = ModifiedCRS.from_scipy(r @ crs.to_scipy() @ p)
            A_fine = self.hierarchy[-1]["A"]
            tiles = min(len(A_fine.tiles), a_c.n)
            A_coarse = DistributedMatrix(
                ctx, a_c, num_tiles=tiles, grid_dims=coarse_dims,
                name=ctx.graph.unique_name("A_mg"),
            )
            entry = {
                "A": A_coarse,
                "dims": coarse_dims,
                "R": DistributedRectOp(ctx, r, A_coarse, A_fine),
                "P": DistributedRectOp(ctx, p, A_fine, A_coarse),
            }
            self.hierarchy.append(entry)
            dims, crs = coarse_dims, a_c
            level += 1

        # Smoothers and per-level workspaces.
        from repro.solvers.config import build_solver  # local: avoids a cycle

        for lv in self.hierarchy:
            lv["smoother"] = build_solver(lv["A"], self.smoother_cfg)
            lv["smoother"].setup()
            lv["r"] = lv["A"].vector(name=ctx.graph.unique_name("mg.r"))
            lv["ax"] = lv["A"].vector(name=ctx.graph.unique_name("mg.ax"))
            lv["b"] = lv["A"].vector(name=ctx.graph.unique_name("mg.b"))
            lv["x"] = lv["A"].vector(name=ctx.graph.unique_name("mg.x"))

        # Coarsest-grid direct factorization (in the plan's layout order).
        coarsest = self.hierarchy[-1]["A"]
        perm = coarsest.perm
        a_perm = sp.csc_matrix(coarsest.crs.to_scipy()[np.ix_(perm, perm)])
        self._coarse_lu = spla.splu(a_perm)
        self._coarse_gather = ctx.graph.add_single_tile(
            ctx.graph.unique_name("mg.coarse"), (coarsest.n,), "float32",
            tile_id=self.coarse_tile,
        )

    @property
    def num_levels(self) -> int:
        return len(self.hierarchy)

    # -- coarsest solve ----------------------------------------------------------------

    def _coarse_solve(self, x, b) -> None:
        """Gather b to one tile, LU-solve, scatter into x."""
        coarsest = self.hierarchy[-1]["A"]
        gvec = self._coarse_gather
        model = self.ctx.device.model

        offset = 0
        gather, scatter = [], []
        for t in coarsest.tiles:
            count = coarsest.plan.owned_count(t)
            gather.append(RegionCopy(b.owned.var, t, 0, ((gvec, self.coarse_tile, offset),), count))
            scatter.append(RegionCopy(gvec, self.coarse_tile, offset, ((x.owned.var, t, 0),), count))
            offset += count
        self.ctx.append(Exchange(gather, name="exchange"))

        lu = self._coarse_lu
        lu_nnz = int(lu.L.nnz + lu.U.nnz)

        def run(ctx):
            sh = gvec.shard(self.coarse_tile)
            sh.data[...] = lu.solve(sh.data.astype(np.float64)).astype(np.float32)

        def cycles(ctx):
            return model.triangular_rows("float32", lu_nnz, coarsest.n)

        cs = ComputeSet(self.ctx.graph.unique_name("cs_mg_coarse"), category="mg_coarse")
        cs.add_vertex(Codelet("mg_coarse", run, cycles, category="mg_coarse"),
                      self.coarse_tile, {})
        self.ctx.append(ExecuteStep(cs))
        self.ctx.append(Exchange(scatter, name="exchange"))

    # -- the V-cycle ------------------------------------------------------------------------

    def _vcycle(self, level: int, x, b) -> None:
        lv = self.hierarchy[level]
        if level == self.num_levels - 1:
            self._coarse_solve(x, b)
            return
        nxt = self.hierarchy[level + 1]
        A = lv["A"]
        for _ in range(self.pre_smooth):
            lv["smoother"].solve_into(x, b)
        A.spmv(x, lv["ax"])
        lv["r"].owned.assign(b.t - lv["ax"].t)
        nxt["R"].apply(lv["r"], nxt["b"])
        nxt["x"].owned.assign(0.0)
        self._vcycle(level + 1, nxt["x"], nxt["b"])
        nxt["P"].apply(nxt["x"], lv["r"])  # r reused as the correction buffer
        x.owned.assign(x.t + lv["r"].t)
        for _ in range(self.post_smooth):
            lv["smoother"].solve_into(x, b)

    def solve_into(self, x, b) -> None:
        self.setup()
        ctx = self.ctx
        rnorm2 = ctx.scalar(1.0)
        it = ctx.scalar(0.0)
        it.assign(0.0)

        def cycle():
            self._vcycle(0, x, b)
            self.A.spmv(x, self.hierarchy[0]["ax"])
            self.hierarchy[0]["r"].owned.assign(b.t - self.hierarchy[0]["ax"].t)
            rnorm2.assign(self.hierarchy[0]["r"].t.dot(self.hierarchy[0]["r"].t))
            it.assign(it + 1.0)
            stats = self.stats

            def record(engine, _r=rnorm2.var, _i=it.var):
                stats.record(int(engine.read_scalar(_i)),
                             max(engine.read_scalar(_r), 0.0) ** 0.5,
                             cycles=engine.profiler.total_cycles)

            ctx.callback(record)

        ctx.Repeat(self.cycles, cycle, label=f"{self.name}.cycles")
