"""Top-level convenience API: one call from matrix to solution.

Wraps the whole pipeline — device, context, distribution, halo reordering,
solver construction from JSON, symbolic execution, graph compilation, and
concrete execution — behind :func:`solve`.  Examples and benchmarks go
through this entry point.  The schedule is lowered exactly once through the
pass pipeline (:mod:`repro.graph.passes`) into a
:class:`~repro.graph.CompiledProgram`, which the engine executes;
:func:`compile_solve` stops after lowering, for compile-report inspection.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import (
    DivergenceError,
    JobTimeoutError,
    ReproError,
    SolverBreakdownError,
    SRAMOverflowError,
)
from repro.graph import CompiledProgram, Engine, GlobalCounters
from repro.machine import IPUDevice
from repro.solvers.base import SolveProgress, SolveStats
from repro.solvers.config import build_solver
from repro.solvers.resilience import (
    ResilienceConfig,
    ResilienceMonitor,
    ResilienceReport,
    RollbackSignal,
)
from repro.solvers.session import CompiledSolve, fingerprint_solve, resolve_cache
from repro.sparse.crs import ModifiedCRS
from repro.sparse.distribute import DistributedMatrix
from repro.tensordsl import TensorContext, Type

__all__ = ["solve", "compile_solve", "SolveResult"]


@dataclass
class SolveResult:
    """Everything a caller needs after a solve."""

    x: np.ndarray  # solution in the original row order (best precision available)
    stats: SolveStats
    cycles: int
    seconds: float  # modeled wall-clock on the IPU
    relative_residual: float  # true ||b - Ax|| / ||b|| computed on the host in f64
    #: Number of RHS columns solved simultaneously (1 = classic solve).
    #: Batched solves return ``x`` with shape ``(batch, n)`` plus per-RHS
    #: ``batch_stats`` / ``relative_residuals``.
    batch: int = 1
    batch_stats: list | None = None  # per-RHS SolveStats when batch > 1
    relative_residuals: list | None = None  # per-RHS true residuals when batch > 1
    energy_j: float = 0.0  # modeled energy at the paper's measured power draw
    profile: dict = field(default_factory=dict)  # profiler category fractions
    engine: object = None
    solver: object = None
    compiled: CompiledProgram | None = None  # the executed program artifact
    backend: str = "sim"  # runtime backend the program executed on
    telemetry: object = None  # Tracer when solve(..., trace=...) was used
    #: ResilienceReport when faults and/or resilience were active, else None.
    resilience: object = None
    #: :class:`~repro.graph.GlobalCounters` delta for this solve (kernel
    #: launches, dispatches, fused/fallback breakdown) when the backend
    #: dispatches fused kernels (``backend="fused"``), else None.
    kernel_counters: dict | None = None
    #: Measured host wall-clock seconds for the whole solve call, recorded
    #: on every backend (contrast ``seconds``, which is the sim backend's
    #: *modeled* device time and reads zero elsewhere).
    wall_seconds: float = 0.0
    #: Aggregated per-kernel wall profile (:meth:`WallTracer.profile`) when
    #: wall tracing or metrics were enabled, else None.
    wall_profile: dict | None = None
    #: :class:`~repro.telemetry.WallTracer` when ``wall_trace``/``metrics``
    #: was used (wall-domain events + exporters), else None.
    wall_telemetry: object = None
    #: :class:`~repro.telemetry.MetricsRegistry` when ``metrics`` was used.
    metrics: object = None

    @property
    def iterations(self) -> int:
        return self.stats.total_iterations

    @property
    def failure(self) -> str | None:
        """Why the solve fell short of its tolerance (None = converged)."""
        return self.stats.failure

    @property
    def compile_stats(self):
        """Optimized-schedule :class:`GraphStats` (None on legacy results)."""
        return self.compiled.stats if self.compiled is not None else None

    @property
    def compile_report(self) -> str:
        return self.compiled.report.render() if self.compiled is not None else ""

    def __repr__(self):
        timing = (
            f"cycles={self.cycles}, seconds={self.seconds:.3e}, "
            f"energy_j={self.energy_j:.3e}"
            if self.backend == "sim"
            else f"backend={self.backend!r}"
        )
        failure = f", failure={self.failure!r}" if self.failure is not None else ""
        n = self.x.shape[-1] if self.x.ndim > 1 else len(self.x)
        batched = f", batch={self.batch}" if self.batch > 1 else ""
        return (
            f"SolveResult(n={n}{batched}, iterations={self.iterations}, "
            f"relative_residual={self.relative_residual:.3e}, {timing}{failure})"
        )


def _build_program(
    matrix: ModifiedCRS,
    b: np.ndarray,
    config,
    num_ipus: int = 1,
    tiles_per_ipu: int = 16,
    num_tiles: int | None = None,
    grid_dims=None,
    x0: np.ndarray | None = None,
    device: IPUDevice | None = None,
    blockwise_halo: bool = True,
    monitor=None,
    batch: int = 1,
):
    """Construct the full solver schedule; shared by solve/compile_solve."""
    if device is None:
        device = IPUDevice(num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu)
    ctx = TensorContext(device)
    A = DistributedMatrix(
        ctx, matrix, num_tiles=num_tiles, grid_dims=grid_dims, blockwise=blockwise_halo
    )
    solver = build_solver(A, config)
    if batch > 1:
        unsupported = sorted(
            {s.name for s in solver.iter_tree() if not s.supports_batch}
        )
        if unsupported:
            raise ReproError(
                f"batched solves (batch={batch}) are not supported by "
                f"solver(s) {', '.join(unsupported)}; use a float32 cg/"
                "bicgstab config with identity or jacobi preconditioning, "
                "or solve the right-hand sides one at a time"
            )
        if getattr(solver, "rhs_dtype", Type.FLOAT32) != Type.FLOAT32:
            raise ReproError(
                "batched solves support the float32 working-precision path only"
            )
    if monitor is not None:
        # Attach before solve_into: detection callbacks are appended to the
        # schedule during symbolic execution.
        solver.enable_resilience(monitor)

    rhs_dtype = getattr(solver, "rhs_dtype", Type.FLOAT32)
    bvec = A.vector(
        name="b", dtype=rhs_dtype, data=np.asarray(b, dtype=np.float64), batch=batch
    )
    xvec = A.vector(name="x", batch=batch)
    if x0 is not None:
        xvec.write_global(np.asarray(x0, dtype=np.float64))

    # One profiler scope per solver phase: setup (factorizations, level-set
    # analysis) and the iteration itself, so Profiler.by_path() yields the
    # hierarchical Table IV breakdown instead of one "<toplevel>" bucket.
    with ctx.scope(f"setup:{solver.name}"):
        solver.setup()
    with ctx.scope(f"solve:{solver.name}"):
        solver.solve_into(xvec, bvec)
    return ctx, solver, xvec, bvec, device


def compile_solve(
    matrix: ModifiedCRS,
    b: np.ndarray,
    config,
    optimize: bool = True,
    **kwargs,
) -> CompiledProgram:
    """Build and lower a solver program without executing it.

    Returns the :class:`CompiledProgram` artifact — the CLI's
    ``compile-report`` view and the ablation benches use this to measure
    compile-time proxies through the real lowering pipeline.
    """
    b_arr = np.asarray(b)
    batch = b_arr.shape[0] if b_arr.ndim == 2 else 1
    ctx, _, _, _, _ = _build_program(matrix, b, config, batch=batch, **kwargs)
    return ctx.compile(optimize=optimize)


def solve(
    matrix: ModifiedCRS,
    b: np.ndarray,
    config,
    num_ipus: int = 1,
    tiles_per_ipu: int = 16,
    num_tiles: int | None = None,
    grid_dims=None,
    x0: np.ndarray | None = None,
    device: IPUDevice | None = None,
    blockwise_halo: bool = True,
    optimize: bool = True,
    backend: str = "sim",
    trace=None,
    wall_trace=None,
    metrics=None,
    on_progress=None,
    progress_every: int = 1,
    max_wall_seconds: float | None = None,
    inject_faults=None,
    resilience=None,
    cache=None,
) -> SolveResult:
    """Solve ``A x = b`` with the solver described by ``config`` on a
    simulated IPU device.

    ``b`` may be a single right-hand side ``(n,)`` or a batch ``(batch, n)``
    — a batched solve runs all RHS columns through *one* program with one
    halo exchange per iteration (``docs/solvers.md``), returning ``x`` of
    shape ``(batch, n)`` plus per-RHS ``batch_stats`` and
    ``relative_residuals``.  Batching requires a float32 cg/bicgstab config
    (identity/jacobi preconditioning) and is incompatible with
    ``inject_faults``/``resilience``.

    ``config`` is a dict / JSON string / path / bare solver name (see
    :mod:`repro.solvers.config`).  ``grid_dims`` enables the structured
    partitioner for stencil matrices.  ``optimize=False`` skips the graph
    compiler's optimization passes (the no-pass ablation baseline).
    ``backend="fast"`` executes numerics only (bit-identical solution,
    zero reported cycles); ``backend="fused"`` additionally dispatches the
    compiled program's fused whole-device kernels and populates
    ``SolveResult.kernel_counters`` — see ``docs/runtime.md``.

    ``trace`` enables telemetry (``docs/observability.md``; requires the
    sim backend): ``True`` collects events into ``SolveResult.telemetry``,
    a path additionally writes the Chrome ``trace_event`` JSON there, and a
    :class:`~repro.telemetry.Tracer` instance records into that tracer.
    Tracing is observational — the traced run is bit-identical in tensors
    and cycles to an untraced one.

    ``wall_trace`` enables measured host wall-clock profiling on *any*
    backend (``docs/observability.md``): ``True`` collects per-launch
    ``perf_counter_ns`` spans into ``SolveResult.wall_telemetry``, a path
    additionally writes a wall-domain Chrome trace there, and a
    :class:`~repro.telemetry.WallTracer` instance records into that
    tracer.  ``metrics`` collects counters/gauges/histograms into a
    :class:`~repro.telemetry.MetricsRegistry` (``True``, an instance, or a
    path — ``.json`` writes a JSON snapshot, anything else Prometheus
    text) and is returned as ``SolveResult.metrics``.  ``on_progress``
    receives a :class:`~repro.solvers.SolveProgress` sample every
    ``progress_every`` recorded iterations while the solve runs.  All
    three are observational: the solution, residual history, and kernel
    counters are bit-identical to an unobserved run.

    ``max_wall_seconds`` is a cooperative wall-clock deadline
    (``docs/serving.md``): the budget is checked on *every* iteration of
    every solver in the config tree (nested inner solves and
    ``record_history=False`` loops included), independent of
    ``progress_every``, and an
    exceeded budget cancels the solve mid-iteration with a typed
    :class:`~repro.errors.JobTimeoutError` carrying the partial
    :class:`~repro.solvers.SolveStats` record.  It works on every backend
    and composes with caching (an aborted cached entry is restored by the
    next ``prepare``).

    ``inject_faults`` enables deterministic seeded fault injection
    (``docs/resilience.md``; requires the sim backend): a
    :class:`~repro.faults.FaultPlan`, dict, JSON path/string, or the
    compact spec grammar (e.g. ``"seed=7;bitflip:p=0.01,where=exchange"``).
    ``resilience`` enables detection and recovery: ``True``/``""`` for the
    default :class:`~repro.solvers.resilience.ResilienceConfig`, or a
    ``"key=value,..."`` string / dict of overrides.  Either one populates
    ``SolveResult.resilience`` with a
    :class:`~repro.solvers.resilience.ResilienceReport`.

    ``cache`` enables the structure-keyed compile cache
    (``docs/performance.md``): ``True`` uses the process-wide
    :class:`~repro.solvers.session.ProgramCache`, or pass your own
    instance.  A hit rebinds ``b``/``x0`` into the cached
    :class:`~repro.graph.CompiledProgram` and re-executes it — no passes
    re-run, and solution *and* cycles are bit-identical to a cold
    compile.  An explicit ``device`` disables caching (the cached shards
    live on a cache-owned device).  Repeated-solve callers should prefer
    :class:`~repro.solvers.session.SolverSession` /
    :func:`~repro.solvers.session.solve_many`.
    """
    from repro.faults import FaultInjector, FaultPlan
    from repro.telemetry import MetricsRegistry, Tracer, WallTracer

    t_wall0 = time.perf_counter()

    tracer = None
    trace_path = None
    if isinstance(trace, Tracer):
        tracer = trace
    elif isinstance(trace, (str, Path)):
        tracer, trace_path = Tracer(), trace
    elif trace:
        tracer = Tracer()

    mreg = None
    metrics_path = None
    if isinstance(metrics, MetricsRegistry):
        mreg = metrics
    elif isinstance(metrics, (str, Path)):
        mreg, metrics_path = MetricsRegistry(), metrics
    elif metrics:
        mreg = MetricsRegistry()

    wtracer = None
    wall_path = None
    if isinstance(wall_trace, WallTracer):
        wtracer = wall_trace
        if mreg is not None and wtracer.metrics is None:
            wtracer.metrics = mreg
    elif isinstance(wall_trace, (str, Path)):
        wtracer, wall_path = WallTracer(metrics=mreg), wall_trace
    elif wall_trace:
        wtracer = WallTracer(metrics=mreg)
    elif mreg is not None:
        # Metrics alone still want the per-kernel wall series; an internal
        # tracer feeds the registry (and the result's wall_profile).
        wtracer = WallTracer(metrics=mreg)

    stride = max(1, int(progress_every))
    deadline = None if max_wall_seconds is None else float(max_wall_seconds)
    if deadline is not None and deadline <= 0:
        raise ReproError(f"max_wall_seconds must be > 0, got {max_wall_seconds!r}")

    def _progress(iteration: int, relative_residual: float, active: int) -> None:
        wall = time.perf_counter() - t_wall0
        if deadline is not None and wall > deadline:
            # Cooperative cancellation: raised from the per-iteration record
            # callback, it unwinds the engine mid-solve on any backend.  The
            # partial SolveStats record is attached by the handler below.
            raise JobTimeoutError(
                solver=None, iteration=iteration, wall_seconds=wall,
                budget_seconds=deadline,
            )
        if iteration % stride:
            return
        if mreg is not None:
            mreg.gauge("repro_solve_iteration", "latest recorded iteration").set(iteration)
            mreg.gauge(
                "repro_solve_relative_residual", "latest tracked relative residual"
            ).set(relative_residual)
            mreg.gauge(
                "repro_solve_active_columns", "RHS columns still iterating"
            ).set(active)
        if on_progress is not None:
            on_progress(SolveProgress(iteration, relative_residual, wall, active))

    progress_hook = (
        _progress
        if (on_progress is not None or mreg is not None or deadline is not None)
        else None
    )

    def _deadline_tick(iteration: int) -> None:
        # The budget check alone, fired on *every* iteration of *every*
        # solver in the tree — nested inner solves (an MPIR refinement
        # burst) and ``record_history=False`` loops included — so the
        # overshoot past ``max_wall_seconds`` is bounded by one iteration,
        # not one root record or one whole inner burst.
        wall = time.perf_counter() - t_wall0
        if wall > deadline:
            raise JobTimeoutError(
                solver=None, iteration=iteration, wall_seconds=wall,
                budget_seconds=deadline,
            )

    plan = FaultPlan.parse(inject_faults) if inject_faults is not None else None
    rconfig = ResilienceConfig.parse(resilience)
    b64 = np.asarray(b, dtype=np.float64)
    if b64.ndim not in (1, 2):
        raise ReproError(f"b must be 1-D (n,) or batched 2-D (batch, n), got shape {b64.shape}")
    if b64.shape[-1] != matrix.n:
        raise ReproError(f"b has {b64.shape[-1]} rows but the matrix has {matrix.n}")
    batch = b64.shape[0] if b64.ndim == 2 else 1
    if batch > 1:
        # The resilience driver's checkpoint/restore and the fault
        # injector's corruption sites are written against single-RHS
        # shards; fail loudly instead of corrupting a batched solve.
        if plan is not None:
            raise ReproError("fault injection does not support batched solves (batch > 1)")
        if rconfig is not None:
            raise ReproError("resilience does not support batched solves (batch > 1)")
        if x0 is not None and np.asarray(x0).shape != b64.shape:
            raise ReproError(
                f"batched x0 must match b's shape {b64.shape}, "
                f"got {np.asarray(x0).shape}"
            )
    pcache = resolve_cache(cache)
    if device is not None:
        # A caller-owned device would end up holding cache-owned shards;
        # every entry builds on a fresh device instead.
        pcache = None

    monitors: list[ResilienceMonitor] = []
    prior_records: list = []
    prior_cycles = 0
    restarts = 0
    carried_iterations = 0
    disabled: set[str] = set()
    cur_tiles = num_tiles
    cur_device = device
    aborted: str | None = None
    # Delta over the whole solve (restarts included) — the counters are
    # process-global, so concurrent engines would fold into one delta.
    with GlobalCounters.track() as kernel_track:
        while True:
            monitor = None
            injector = None
            built_device = None
            entry = None
            try:
                if pcache is not None:
                    key = fingerprint_solve(
                        matrix,
                        config,
                        num_ipus=num_ipus,
                        tiles_per_ipu=tiles_per_ipu,
                        num_tiles=cur_tiles,
                        grid_dims=grid_dims,
                        blockwise_halo=blockwise_halo,
                        optimize=optimize,
                        backend=backend,
                        resilient=rconfig is not None,
                        batch=batch,
                    )
                    entry = pcache.get(key)
                if entry is not None:
                    # Cache hit: rebind host values into the cached artifact and
                    # re-execute — no symbolic execution, no compiler passes.
                    entry.prepare(b64, x0=x0, rconfig=rconfig)
                    ctx, solver, xvec, bvec = entry.ctx, entry.solver, entry.xvec, entry.bvec
                    built_device, compiled, monitor = entry.device, entry.compiled, entry.monitor
                else:
                    monitor = ResilienceMonitor(rconfig) if rconfig is not None else None
                    t_build = time.perf_counter()
                    ctx, solver, xvec, bvec, built_device = _build_program(
                        matrix,
                        b,
                        config,
                        num_ipus=num_ipus,
                        tiles_per_ipu=tiles_per_ipu,
                        num_tiles=cur_tiles,
                        grid_dims=grid_dims,
                        # Under caching x0 is bound via prepare() below, so the
                        # snapshotted initial image stays x0-free (x = 0).
                        x0=None if pcache is not None else x0,
                        device=cur_device,
                        blockwise_halo=blockwise_halo,
                        monitor=monitor,
                        batch=batch,
                    )
                    compiled = ctx.compile(optimize=optimize)
                    if pcache is not None:
                        entry = CompiledSolve.capture(
                            key, ctx, solver, xvec, bvec, built_device, compiled,
                            monitor=monitor,
                            build_seconds=time.perf_counter() - t_build,
                        )
                        pcache.put(key, entry)
                        entry.prepare(b64, x0=x0, rconfig=rconfig)
                if tracer is not None and pcache is not None:
                    tracer.instant(
                        "compile_cache",
                        "compile",
                        {"event": "hit" if entry.runs > 1 else "miss", **pcache.stats()},
                        ts=0,
                    )
                if plan is not None:
                    injector = FaultInjector(plan, disabled=frozenset(disabled))
                if progress_hook is not None:
                    # After prepare()/reset(): a cache hit clears the hook
                    # along with the rest of the stats record.
                    solver.stats.progress = progress_hook
                if deadline is not None:
                    for member in solver.iter_tree():
                        member.stats.tick = _deadline_tick
                if deadline is not None:
                    # The build itself may have eaten the whole budget; bail
                    # before launching the engine rather than one iteration in.
                    wall = time.perf_counter() - t_wall0
                    if wall > deadline:
                        raise JobTimeoutError(
                            iteration=solver.stats.total_iterations,
                            wall_seconds=wall, budget_seconds=deadline,
                        )
                engine = Engine(compiled, backend=backend, tracer=tracer,
                                injector=injector, wall_tracer=wtracer)
                if monitor is not None:
                    monitor.baseline()
                aborted = None
                while True:
                    try:
                        engine.run()
                    except RollbackSignal as sig:
                        cycle = built_device.profiler.total_cycles
                        if not monitor.budget_left():
                            aborted = sig.reason
                            monitor.restore_state()  # leave the best-known iterate in x
                            break
                        rec = monitor.rollback(sig, cycle)
                        if tracer is not None:
                            tracer.instant(
                                "rollback",
                                "fault",
                                {
                                    "reason": rec.reason,
                                    "iteration": rec.iteration,
                                    "restored_iteration": rec.restored_iteration,
                                    "attempt": len(monitor.rollbacks),
                                },
                                ts=cycle,
                            )
                        continue
                    if monitor is None or injector is None:
                        break
                    # Injected faults can corrupt a Krylov recurrence without
                    # tripping any device-side check — the tracked residual
                    # converges while the true residual does not.  Verify on the
                    # host and treat a miss as one more detection event.
                    tolv = getattr(solver, "tol", None)
                    if tolv is None:
                        break
                    if getattr(solver, "x_ext", None) is not None:
                        xv = solver.x_ext.read_global()
                    else:
                        xv = xvec.read_global()
                    bn_ = np.linalg.norm(b64)
                    rel_ = float(np.linalg.norm(matrix.spmv(xv) - b64) / bn_) if bn_ > 0 else 0.0
                    if rel_ <= tolv * 10 or solver.classify_failure(engine) is not None:
                        break  # good enough — or already failed for a named reason
                    sig = RollbackSignal("silent_corruption", solver.stats.total_iterations)
                    cycle = built_device.profiler.total_cycles
                    if not monitor.budget_left():
                        aborted = "silent_corruption"
                        break
                    rec = monitor.rollback(sig, cycle)
                    if tracer is not None:
                        tracer.instant(
                            "rollback",
                            "fault",
                            {
                                "reason": rec.reason,
                                "iteration": rec.iteration,
                                "restored_iteration": rec.restored_iteration,
                                "attempt": len(monitor.rollbacks),
                            },
                            ts=cycle,
                        )
            except JobTimeoutError as exc:
                # Deadline fired from inside the engine (or just before it),
                # so ``solver`` exists: hand the caller the partial
                # convergence record with the typed error.
                exc.solver = solver.name
                exc.stats = solver.stats.copy()
                raise
            except SRAMOverflowError:
                if rconfig is None or not rconfig.degrade_on_oom:
                    raise
                if monitor is not None:
                    monitors.append(monitor)
                    # Warm-start the rebuilt program from the best checkpointed
                    # iterate instead of discarding all converged progress.
                    warm_x, warm_it = monitor.best_solution()
                    if warm_x is not None and warm_it > 0:
                        x0 = warm_x
                        carried_iterations += warm_it
                if injector is not None:
                    prior_records.extend(injector.records)
                if built_device is not None:
                    prior_cycles += built_device.profiler.total_cycles
                    if tracer is not None:
                        # The rebuilt program runs on a fresh device whose clock
                        # restarts at zero; keep the trace timeline monotone.
                        tracer.shift_clock(built_device.profiler.total_cycles)
                have = cur_tiles
                if have is None:
                    n_dev = (
                        cur_device.num_tiles if cur_device is not None else num_ipus * tiles_per_ipu
                    )
                    have = min(n_dev, matrix.n)
                want = max(rconfig.min_tiles, have // 2)
                if want >= have:
                    raise  # cannot shrink further — give up
                # Graceful degradation: rebuild on fewer tiles (more rows per
                # tile, larger per-tile shards is fine — the overflow here is
                # per-shard count / injected, not aggregate capacity) and don't
                # re-fire injected OOMs against the degraded build.
                disabled.add("tile_oom")
                restarts += 1
                cur_tiles = want
                cur_device = None  # always rebuild on a fresh device
                continue
            else:
                if monitor is not None:
                    monitors.append(monitor)
                break

    # Prefer the extended-precision solution when the solver kept one.
    if getattr(solver, "x_ext", None) is not None:
        x = solver.x_ext.read_global()
    else:
        x = xvec.read_global()
    if b64.ndim == 2 and np.asarray(x).ndim == 1:
        # A (1, n) batch runs the classic single-RHS program, but 2-D in
        # means 2-D out.
        x = np.asarray(x).reshape(1, -1)

    # Both the residual and its normalization in f64: ``np.linalg.norm(b)``
    # in the caller's dtype (e.g. float32) accumulates in that precision and
    # skews the reported relative residual near tight tolerances.
    def _true_residual(xj, bj):
        resid = matrix.spmv(xj) - bj
        bn = np.linalg.norm(bj)
        return float(np.linalg.norm(resid) / bn) if bn > 0 else float(np.linalg.norm(resid))

    if batch > 1:
        relative_residuals = [_true_residual(x[j], b64[j]) for j in range(batch)]
        rel = max(relative_residuals)
    else:
        relative_residuals = None
        rel = _true_residual(np.ravel(x), np.ravel(b64))

    failure = aborted if aborted is not None else solver.classify_failure(engine)
    solver.stats.failure = failure

    report = None
    if rconfig is not None or plan is not None:
        records = prior_records + (list(injector.records) if injector is not None else [])
        rollbacks = [rb for m in monitors for rb in m.rollbacks]
        iters_observed = sum(m.iterations_observed for m in monitors)
        if failure is not None:
            outcome = "failed"
        elif restarts:
            outcome = "degraded"
        elif rollbacks:
            outcome = "recovered"
        else:
            outcome = "clean"
        report = ResilienceReport(
            enabled=rconfig is not None,
            outcome=outcome,
            failure=failure,
            faults_injected=len(records),
            faults_by_kind=dict(Counter(r.kind for r in records)),
            checkpoints=sum(m.checkpoints for m in monitors),
            rollbacks=len(rollbacks),
            rollback_reasons=[rb.reason for rb in rollbacks],
            restarts=restarts,
            iterations=solver.stats.total_iterations,
            extra_iterations=(
                max(0, iters_observed - solver.stats.total_iterations) if monitors else 0
            ),
            carried_iterations=carried_iterations,
            final_num_tiles=len(solver.A.tiles),
        )

    if tracer is not None:
        tracer.convergence(solver.stats)
        if report is not None:
            tracer.resilience(report)
        if trace_path is not None:
            tracer.to_chrome(trace_path)

    if rconfig is not None and rconfig.raise_on_failure and failure is not None:
        if failure == "breakdown":
            raise SolverBreakdownError(
                f"{solver.name}: Krylov breakdown (|rho| ~ 0)",
                solver=solver.name,
                iteration=solver.stats.total_iterations,
            )
        raise DivergenceError(
            f"{solver.name}: failed to reach tol={getattr(solver, 'tol', None)}",
            solver=solver.name,
            reason=failure,
        )

    prof = built_device.profiler
    total_cycles = prior_cycles + prof.total_cycles
    batch_stats = getattr(solver, "batch_stats", None)
    if batch_stats is not None and pcache is not None:
        batch_stats = [st.copy() for st in batch_stats]

    if wtracer is not None and wall_path is not None:
        wtracer.to_chrome(wall_path)
    wall_seconds = time.perf_counter() - t_wall0
    if mreg is not None:
        mreg.counter("repro_solves_total", "completed solve() calls").inc(
            1, backend=engine.backend.name
        )
        mreg.gauge(
            "repro_solve_wall_seconds", "wall seconds of the last solve call"
        ).set(wall_seconds)
        mreg.gauge(
            "repro_solve_iterations", "iterations of the last solve"
        ).set(solver.stats.total_iterations)
        mreg.gauge(
            "repro_solve_final_relative_residual", "true relative residual (f64)"
        ).set(rel)
        if metrics_path is not None:
            mreg.write(metrics_path)

    return SolveResult(
        x=x,
        # Detach the stats under caching: the next hit resets them in place.
        stats=solver.stats.copy() if pcache is not None else solver.stats,
        batch=batch,
        batch_stats=batch_stats,
        relative_residuals=relative_residuals,
        cycles=total_cycles,
        seconds=built_device.seconds(total_cycles),
        energy_j=built_device.energy_j(total_cycles),
        relative_residual=rel,
        profile=prof.fractions(),
        engine=engine,
        solver=solver,
        compiled=compiled,
        backend=engine.backend.name,
        telemetry=tracer,
        resilience=report,
        kernel_counters=(
            kernel_track if getattr(engine.backend, "uses_kernels", False) else None
        ),
        wall_seconds=wall_seconds,
        wall_profile=wtracer.profile() if wtracer is not None else None,
        wall_telemetry=wtracer,
        metrics=mreg,
    )
