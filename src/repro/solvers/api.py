"""Top-level convenience API: one call from matrix to solution.

Wraps the whole pipeline — device, context, distribution, halo reordering,
solver construction from JSON, symbolic execution, graph compilation, and
concrete execution — behind :func:`solve`.  Examples and benchmarks go
through this entry point.  The schedule is lowered exactly once through the
pass pipeline (:mod:`repro.graph.passes`) into a
:class:`~repro.graph.CompiledProgram`, which the engine executes;
:func:`compile_solve` stops after lowering, for compile-report inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.graph import CompiledProgram, Engine
from repro.machine import IPUDevice
from repro.solvers.base import SolveStats
from repro.solvers.config import build_solver
from repro.sparse.crs import ModifiedCRS
from repro.sparse.distribute import DistributedMatrix
from repro.tensordsl import TensorContext, Type

__all__ = ["solve", "compile_solve", "SolveResult"]


@dataclass
class SolveResult:
    """Everything a caller needs after a solve."""

    x: np.ndarray  # solution in the original row order (best precision available)
    stats: SolveStats
    cycles: int
    seconds: float  # modeled wall-clock on the IPU
    relative_residual: float  # true ||b - Ax|| / ||b|| computed on the host in f64
    energy_j: float = 0.0  # modeled energy at the paper's measured power draw
    profile: dict = field(default_factory=dict)  # profiler category fractions
    engine: object = None
    solver: object = None
    compiled: CompiledProgram | None = None  # the executed program artifact
    backend: str = "sim"  # runtime backend the program executed on
    telemetry: object = None  # Tracer when solve(..., trace=...) was used

    @property
    def iterations(self) -> int:
        return self.stats.total_iterations

    @property
    def compile_stats(self):
        """Optimized-schedule :class:`GraphStats` (None on legacy results)."""
        return self.compiled.stats if self.compiled is not None else None

    @property
    def compile_report(self) -> str:
        return self.compiled.report.render() if self.compiled is not None else ""

    def __repr__(self):
        timing = (
            f"cycles={self.cycles}, seconds={self.seconds:.3e}, "
            f"energy_j={self.energy_j:.3e}"
            if self.backend == "sim"
            else f"backend={self.backend!r}"
        )
        return (
            f"SolveResult(n={len(self.x)}, iterations={self.iterations}, "
            f"relative_residual={self.relative_residual:.3e}, {timing})"
        )


def _build_program(
    matrix: ModifiedCRS,
    b: np.ndarray,
    config,
    num_ipus: int = 1,
    tiles_per_ipu: int = 16,
    num_tiles: int | None = None,
    grid_dims=None,
    x0: np.ndarray | None = None,
    device: IPUDevice | None = None,
    blockwise_halo: bool = True,
):
    """Construct the full solver schedule; shared by solve/compile_solve."""
    if device is None:
        device = IPUDevice(num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu)
    ctx = TensorContext(device)
    A = DistributedMatrix(
        ctx, matrix, num_tiles=num_tiles, grid_dims=grid_dims, blockwise=blockwise_halo
    )
    solver = build_solver(A, config)

    rhs_dtype = getattr(solver, "rhs_dtype", Type.FLOAT32)
    bvec = A.vector(name="b", dtype=rhs_dtype, data=np.asarray(b, dtype=np.float64))
    xvec = A.vector(name="x")
    if x0 is not None:
        xvec.write_global(np.asarray(x0, dtype=np.float64))

    # One profiler scope per solver phase: setup (factorizations, level-set
    # analysis) and the iteration itself, so Profiler.by_path() yields the
    # hierarchical Table IV breakdown instead of one "<toplevel>" bucket.
    with ctx.scope(f"setup:{solver.name}"):
        solver.setup()
    with ctx.scope(f"solve:{solver.name}"):
        solver.solve_into(xvec, bvec)
    return ctx, solver, xvec, bvec, device


def compile_solve(
    matrix: ModifiedCRS,
    b: np.ndarray,
    config,
    optimize: bool = True,
    **kwargs,
) -> CompiledProgram:
    """Build and lower a solver program without executing it.

    Returns the :class:`CompiledProgram` artifact — the CLI's
    ``compile-report`` view and the ablation benches use this to measure
    compile-time proxies through the real lowering pipeline.
    """
    ctx, _, _, _, _ = _build_program(matrix, b, config, **kwargs)
    return ctx.compile(optimize=optimize)


def solve(
    matrix: ModifiedCRS,
    b: np.ndarray,
    config,
    num_ipus: int = 1,
    tiles_per_ipu: int = 16,
    num_tiles: int | None = None,
    grid_dims=None,
    x0: np.ndarray | None = None,
    device: IPUDevice | None = None,
    blockwise_halo: bool = True,
    optimize: bool = True,
    backend: str = "sim",
    trace=None,
) -> SolveResult:
    """Solve ``A x = b`` with the solver described by ``config`` on a
    simulated IPU device.

    ``config`` is a dict / JSON string / path / bare solver name (see
    :mod:`repro.solvers.config`).  ``grid_dims`` enables the structured
    partitioner for stencil matrices.  ``optimize=False`` skips the graph
    compiler's optimization passes (the no-pass ablation baseline).
    ``backend="fast"`` executes numerics only (bit-identical solution,
    zero reported cycles) — see ``docs/runtime.md``.

    ``trace`` enables telemetry (``docs/observability.md``; requires the
    sim backend): ``True`` collects events into ``SolveResult.telemetry``,
    a path additionally writes the Chrome ``trace_event`` JSON there, and a
    :class:`~repro.telemetry.Tracer` instance records into that tracer.
    Tracing is observational — the traced run is bit-identical in tensors
    and cycles to an untraced one.
    """
    from repro.telemetry import Tracer

    tracer = None
    trace_path = None
    if isinstance(trace, Tracer):
        tracer = trace
    elif isinstance(trace, (str, Path)):
        tracer, trace_path = Tracer(), trace
    elif trace:
        tracer = Tracer()

    ctx, solver, xvec, bvec, device = _build_program(
        matrix,
        b,
        config,
        num_ipus=num_ipus,
        tiles_per_ipu=tiles_per_ipu,
        num_tiles=num_tiles,
        grid_dims=grid_dims,
        x0=x0,
        device=device,
        blockwise_halo=blockwise_halo,
    )
    compiled = ctx.compile(optimize=optimize)
    engine = Engine(compiled, backend=backend, tracer=tracer)
    engine.run()
    if tracer is not None:
        tracer.convergence(solver.stats)
        if trace_path is not None:
            tracer.to_chrome(trace_path)

    # Prefer the extended-precision solution when the solver kept one.
    if getattr(solver, "x_ext", None) is not None:
        x = solver.x_ext.read_global()
    else:
        x = xvec.read_global()

    resid = matrix.spmv(x) - np.asarray(b, dtype=np.float64)
    bn = np.linalg.norm(b)
    rel = float(np.linalg.norm(resid) / bn) if bn > 0 else float(np.linalg.norm(resid))

    prof = device.profiler
    return SolveResult(
        x=x,
        stats=solver.stats,
        cycles=prof.total_cycles,
        seconds=device.seconds(),
        energy_j=device.energy_j(),
        relative_residual=rel,
        profile=prof.fractions(),
        engine=engine,
        solver=solver,
        compiled=compiled,
        backend=engine.backend.name,
        telemetry=tracer,
    )
