"""Top-level convenience API: one call from matrix to solution.

Wraps the whole pipeline — device, context, distribution, halo reordering,
solver construction from JSON, symbolic execution, and concrete execution —
behind :func:`solve`.  Examples and benchmarks go through this entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine import IPUDevice
from repro.solvers.base import SolveStats
from repro.solvers.config import build_solver
from repro.sparse.crs import ModifiedCRS
from repro.sparse.distribute import DistributedMatrix
from repro.tensordsl import TensorContext, Type

__all__ = ["solve", "SolveResult"]


@dataclass
class SolveResult:
    """Everything a caller needs after a solve."""

    x: np.ndarray  # solution in the original row order (best precision available)
    stats: SolveStats
    cycles: int
    seconds: float  # modeled wall-clock on the IPU
    relative_residual: float  # true ||b - Ax|| / ||b|| computed on the host in f64
    profile: dict = field(default_factory=dict)  # profiler category fractions
    engine: object = None
    solver: object = None

    @property
    def iterations(self) -> int:
        return self.stats.total_iterations


def solve(
    matrix: ModifiedCRS,
    b: np.ndarray,
    config,
    num_ipus: int = 1,
    tiles_per_ipu: int = 16,
    num_tiles: int | None = None,
    grid_dims=None,
    x0: np.ndarray | None = None,
    device: IPUDevice | None = None,
    blockwise_halo: bool = True,
) -> SolveResult:
    """Solve ``A x = b`` with the solver described by ``config`` on a
    simulated IPU device.

    ``config`` is a dict / JSON string / path (see
    :mod:`repro.solvers.config`).  ``grid_dims`` enables the structured
    partitioner for stencil matrices.
    """
    if device is None:
        device = IPUDevice(num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu)
    ctx = TensorContext(device)
    A = DistributedMatrix(
        ctx, matrix, num_tiles=num_tiles, grid_dims=grid_dims, blockwise=blockwise_halo
    )
    solver = build_solver(A, config)

    rhs_dtype = getattr(solver, "rhs_dtype", Type.FLOAT32)
    bvec = A.vector(name="b", dtype=rhs_dtype, data=np.asarray(b, dtype=np.float64))
    xvec = A.vector(name="x")
    if x0 is not None:
        xvec.write_global(np.asarray(x0, dtype=np.float64))

    solver.solve_into(xvec, bvec)
    engine = ctx.run()

    # Prefer the extended-precision solution when the solver kept one.
    if getattr(solver, "x_ext", None) is not None:
        x = solver.x_ext.read_global()
    else:
        x = xvec.read_global()

    resid = matrix.spmv(x) - np.asarray(b, dtype=np.float64)
    bn = np.linalg.norm(b)
    rel = float(np.linalg.norm(resid) / bn) if bn > 0 else float(np.linalg.norm(resid))

    prof = device.profiler
    return SolveResult(
        x=x,
        stats=solver.stats,
        cycles=prof.total_cycles,
        seconds=device.seconds(),
        relative_residual=rel,
        profile=prof.fractions(),
        engine=engine,
        solver=solver,
    )
