"""Level-set-scheduled Gauss-Seidel (Sec. V-D).

Each sweep updates ``x_i ← (b_i − Σ_{j≠i} a_ij x_j) / a_ii`` sequentially
per tile, parallelized over the six worker threads with Level-Set
Scheduling.  Halo values are refreshed by a blockwise exchange before each
sweep and treated as constants within it (block-local Gauss-Seidel — the
standard domain-decomposed hybrid).

``direction`` selects the sweep pattern: ``"forward"`` (the classic
Eq. 1 order), ``"backward"``, or ``"symmetric"`` (forward then backward —
the SGS smoother, which is symmetric and therefore safe as a CG
preconditioner).
"""

from __future__ import annotations

import numpy as np

from repro.graph.codelet import Codelet, ComputeSet
from repro.graph.program import Execute as ExecuteStep
from repro.solvers.base import Solver
from repro.solvers.sweeps import build_sweep

__all__ = ["GaussSeidel"]

_DIRECTIONS = ("forward", "backward", "symmetric")


class GaussSeidel(Solver):
    name = "gauss_seidel"

    def __init__(self, A, sweeps: int = 1, direction: str = "forward", **params):
        super().__init__(A, sweeps=sweeps, direction=direction, **params)
        if direction not in _DIRECTIONS:
            raise ValueError(f"unknown sweep direction {direction!r} ({_DIRECTIONS})")
        self.sweeps = sweeps
        self.direction = direction
        self._plans = None

    def _setup(self) -> None:
        # Sweep plans per tile over ALL off-diagonal entries; dependencies
        # are the directional local-triangular ones (Sec. V-A).
        self._plans = {"forward": {}, "backward": {}}
        for t in self.A.tiles:
            loc = self.A.local[t]
            everything = lambda rows, cols: np.ones(rows.size, dtype=bool)
            self._plans["forward"][t] = build_sweep(
                loc["n"], loc["row_ptr"], loc["col_idx"], loc["values"],
                include=everything,
            )
            if self.direction in ("backward", "symmetric"):
                self._plans["backward"][t] = build_sweep(
                    loc["n"], loc["row_ptr"], loc["col_idx"], loc["values"],
                    include=everything, backward=True,
                )

    def _emit_sweep(self, x, b, direction: str) -> None:
        self.A.exchange(x)
        cs = ComputeSet(self.ctx.graph.unique_name("cs_gs"), category="gs_sweep")
        model = self.ctx.device.model
        spec = self.ctx.device.spec
        for t in self.A.tiles:
            plan = self._plans[direction][t]
            loc = self.A.local[t]

            def run(ctx, t=t, plan=plan, loc=loc):
                xo = x.owned.var.shard(t).data
                halo = (
                    x.halo.var.shard(t).data
                    if self.A.plan.halo_count(t)
                    else np.empty(0, dtype=np.float32)
                )
                xfull = np.concatenate([xo, halo])
                plan.run(xfull, b.owned.var.shard(t).data, diag=loc["diag"])
                xo[...] = xfull[: loc["n"]]

            def cycles(ctx, plan=plan):
                return plan.cycles(model, spec)

            cs.add_vertex(Codelet(f"gs@{t}", run, cycles, category="gs_sweep"), t, {})
        self.ctx.append(ExecuteStep(cs))

    def solve_into(self, x, b) -> None:
        self.setup()

        def sweep():
            if self.direction == "forward":
                self._emit_sweep(x, b, "forward")
            elif self.direction == "backward":
                self._emit_sweep(x, b, "backward")
            else:  # symmetric: forward then backward
                self._emit_sweep(x, b, "forward")
                self._emit_sweep(x, b, "backward")

        if self.sweeps == 1:
            sweep()
        else:
            self.ctx.Repeat(self.sweeps, sweep, label=f"{self.name}.sweeps")
