"""Solver suite (Sec. V): modular, nestable, JSON-configurable.

Any solver can precondition any other.  Entry points:

- :func:`repro.solvers.solve` — one-call pipeline (matrix → solution),
- :func:`repro.solvers.build_solver` — construct a solver tree from JSON,
- the solver classes themselves for programmatic composition.
"""

from repro.solvers.api import SolveResult, compile_solve, solve
from repro.solvers.base import Solver, SolveProgress, SolveStats
from repro.solvers.bicgstab import PBiCGStab
from repro.solvers.cg import ConjugateGradient
from repro.solvers.config import SOLVERS, build_solver, load_config
from repro.solvers.gauss_seidel import GaussSeidel
from repro.solvers.identity import Identity
from repro.solvers.ilu import DILU, ILU0
from repro.solvers.jacobi import Jacobi
from repro.solvers.mpir import MPIR
from repro.solvers.multigrid import Multigrid
from repro.solvers.resilience import ResilienceConfig, ResilienceMonitor, ResilienceReport
from repro.solvers.richardson import Richardson
from repro.solvers.schur import SchurInterface
from repro.solvers.session import (
    CompiledSolve,
    ProgramCache,
    SolverSession,
    default_cache,
    fingerprint_matrix,
    fingerprint_solve,
    solve_many,
)

__all__ = [
    "solve",
    "compile_solve",
    "SolveResult",
    "Solver",
    "SolveStats",
    "SolveProgress",
    "PBiCGStab",
    "ConjugateGradient",
    "GaussSeidel",
    "ILU0",
    "DILU",
    "Jacobi",
    "Identity",
    "MPIR",
    "Multigrid",
    "Richardson",
    "SchurInterface",
    "ResilienceConfig",
    "ResilienceMonitor",
    "ResilienceReport",
    "CompiledSolve",
    "ProgramCache",
    "SolverSession",
    "default_cache",
    "fingerprint_matrix",
    "fingerprint_solve",
    "solve_many",
    "SOLVERS",
    "build_solver",
    "load_config",
]
