"""Preconditioned Conjugate Gradient.

All four benchmark matrices are symmetric positive definite (Table II), for
which CG is the canonical Krylov method — one SpMV and one preconditioner
application per iteration versus PBiCGStab's two of each.  Written in
TensorDSL like PBiCGStab (Fig. 4 style); requires an SPD matrix and an SPD
preconditioner to converge.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import Solver, SolveStats
from repro.solvers.identity import Identity

__all__ = ["ConjugateGradient"]

_BREAKDOWN = 1e-30


class ConjugateGradient(Solver):
    name = "cg"
    supports_batch = True
    _breakdown = _BREAKDOWN

    def __init__(
        self,
        A,
        preconditioner: Solver | None = None,
        tol: float = 1e-9,
        max_iterations: int = 1000,
        fixed_iterations: int | None = None,
        record_history: bool = True,
        **params,
    ):
        super().__init__(A, tol=tol, max_iterations=max_iterations, **params)
        self.preconditioner = preconditioner or Identity(A)
        self.tol = tol
        self.max_iterations = max_iterations
        self.fixed_iterations = fixed_iterations
        self.record_history = record_history
        self._rho_var = None  # read back post-run to classify breakdowns

    def _setup(self) -> None:
        self.preconditioner.setup()

    def classify_failure(self, engine):
        if self.batch_stats is not None:
            return self._classify_batched(engine)
        failure = super().classify_failure(engine)
        if failure == "max_iterations" and self._rho_var is not None:
            rho = engine.read_scalar(self._rho_var)
            if rho != rho or abs(rho) <= _BREAKDOWN:
                return "breakdown"
        return failure

    def solve_into(self, x, b) -> None:
        if x.batch > 1:
            self._solve_into_batched(x, b)
            return
        self.setup()
        ctx = self.ctx
        A = self.A
        M = self.preconditioner

        r = self.workspace("r")
        z = self.workspace("z")
        p = self.workspace("p")
        ap = self.workspace("ap")

        rho = ctx.scalar(1.0)
        self._rho_var = rho.var
        rho_old = ctx.scalar(1.0)
        alpha = ctx.scalar(0.0)
        beta = ctx.scalar(0.0)
        rnorm2 = ctx.scalar(1.0)
        it = ctx.scalar(0.0)
        cont = ctx.scalar(1.0)

        def _safe(d):
            return d + d.eq(0.0) * 1e-30

        # r = b - A x;  z = M⁻¹ r;  p = z.
        A.spmv(x, ap)
        r.owned.assign(b.t - ap.t)
        z.owned.assign(0.0)
        M.solve_into(z, r)
        p.owned.assign(z.t)
        rho.assign(r.t.dot(z.t))
        rho_old.assign(rho)
        it.assign(0.0)
        rnorm2.assign(r.t.dot(r.t))
        bnorm2 = b.t.dot(b.t)
        tol2 = (bnorm2 * (self.tol * self.tol)).materialize()
        cont.assign(rnorm2 > tol2)
        bnorm2_host = [1.0]
        ctx.callback(
            lambda e, _v=bnorm2.var: bnorm2_host.__setitem__(0, max(e.read_scalar(_v), 1e-300))
        )

        def body():
            A.spmv(p, ap)
            alpha.assign(rho / _safe(p.t.dot(ap.t)))
            x.owned.assign(x.t + alpha * p.t)
            r.owned.assign(r.t - alpha * ap.t)
            z.owned.assign(0.0)
            M.solve_into(z, r)
            rho_old.assign(rho)
            rho.assign(r.t.dot(z.t))
            beta.assign(rho / _safe(rho_old))
            p.owned.assign(z.t + beta * p.t)
            rnorm2.assign(r.t.dot(r.t))
            it.assign(it + 1.0)
            cont.assign((rnorm2 > tol2) * (abs(rho) > _BREAKDOWN))
            self._emit_resilience(it, rnorm2, {"x": x, "r": r, "p": p, "rho": rho})
            if self.record_history:
                stats = self.stats

                def record(engine, _r=rnorm2.var, _i=it.var):
                    stats.record(
                        int(engine.read_scalar(_i)),
                        (max(engine.read_scalar(_r), 0.0) / bnorm2_host[0]) ** 0.5,
                        cycles=engine.profiler.total_cycles,
                    )

                ctx.callback(record)
            else:
                self._emit_tick(it)

        if self.fixed_iterations is not None:
            ctx.Repeat(self.fixed_iterations, lambda: ctx.If(cont, body),
                       label=f"{self.name}.iterate")
        else:
            ctx.While(cont, body, max_iterations=self.max_iterations,
                      label=f"{self.name}.iterate")

    # -- multi-RHS (docs/solvers.md, "Batched Krylov solves") -----------------------

    def _solve_into_batched(self, x, b) -> None:
        """Batched CG: one program solves all RHS columns simultaneously.

        Every SpMV/exchange/reduction carries the whole batch, so the loop
        runs exactly the same number of halo exchanges per iteration as a
        single-RHS solve.  Convergence is tracked per column through the
        ``active`` flag vector:

        - ``alpha`` is masked (``active * alpha``), so converged or
          broken-down columns update ``x``/``r`` by exactly ``0`` while
          active columns see a multiply by exactly ``1.0f`` — both are
          bitwise-exact, which keeps each column's iterates identical to
          the single-RHS solve of that column alone;
        - ``p`` has no pure scalar-masked form (its update adds the
          unscaled ``z``), so frozen columns keep their old direction via
          a mask-combine;
        - the loop continues while *any* column is active
          (:meth:`~repro.tensordsl.context.TensorContext.batch_reduce`),
          a tile-local collapse that adds no exchange.
        """
        self.setup()
        ctx = self.ctx
        A = self.A
        M = self.preconditioner
        batch = x.batch
        self.batch_stats = [SolveStats() for _ in range(batch)]

        r = self.workspace("r", batch=batch)
        z = self.workspace("z", batch=batch)
        p = self.workspace("p", batch=batch)
        ap = self.workspace("ap", batch=batch)

        rho = ctx.scalar(1.0, batch=batch)
        self._rho_var = rho.var
        rho_old = ctx.scalar(1.0, batch=batch)
        alpha = ctx.scalar(0.0, batch=batch)
        beta = ctx.scalar(0.0, batch=batch)
        rnorm2 = ctx.scalar(1.0, batch=batch)
        active = ctx.scalar(1.0, batch=batch)
        it = ctx.scalar(0.0)
        cont = ctx.scalar(1.0)

        def _safe(d):
            return d + d.eq(0.0) * 1e-30

        # r = b - A x;  z = M⁻¹ r;  p = z  — for all columns at once.
        A.spmv(x, ap)
        r.owned.assign(b.t - ap.t)
        z.owned.assign(0.0)
        M.solve_into(z, r)
        p.owned.assign(z.t)
        rho.assign(r.t.dot(z.t))
        rho_old.assign(rho)
        it.assign(0.0)
        rnorm2.assign(r.t.dot(r.t))
        bnorm2 = b.t.dot(b.t)
        tol2 = (bnorm2 * (self.tol * self.tol)).materialize()
        active.assign(rnorm2 > tol2)
        cont.assign(ctx.batch_reduce(active, "max"))
        bnorm2_host = [np.ones(batch)]
        ctx.callback(
            lambda e, _v=bnorm2.var: bnorm2_host.__setitem__(
                0, np.maximum(e.read_batch(_v), 1e-300)
            )
        )

        def body():
            A.spmv(p, ap)
            alpha.assign(active * (rho / _safe(p.t.dot(ap.t))))
            x.owned.assign(x.t + alpha * p.t)
            r.owned.assign(r.t - alpha * ap.t)
            z.owned.assign(0.0)
            M.solve_into(z, r)
            rho_old.assign(rho)
            rho.assign(r.t.dot(z.t))
            beta.assign(rho / _safe(rho_old))
            p.owned.assign((z.t + beta * p.t) * active + p.t * (1.0 - active))
            rnorm2.assign(r.t.dot(r.t))
            it.assign(it + 1.0)
            if self.record_history:
                stats = self.stats
                batch_stats = self.batch_stats

                def record(engine, _r=rnorm2.var, _i=it.var, _a=active.var):
                    # Runs before the `active` update below, so `act` is the
                    # at-start flag: a column records exactly the iterations
                    # in which it actually advanced — the same history its
                    # single-RHS solve would have.  The per-column relative
                    # residual uses the same host expression as the
                    # single-RHS callback (`** 0.5`, not np.sqrt — libm pow
                    # can differ from IEEE sqrt by an ulp).
                    i = int(engine.read_scalar(_i))
                    r2 = engine.read_batch(_r)
                    act = engine.read_batch(_a)
                    rel = [
                        (max(float(r2[j]), 0.0) / float(bnorm2_host[0][j])) ** 0.5
                        for j in range(len(batch_stats))
                    ]
                    cyc = engine.profiler.total_cycles
                    stats.record(i, max(rel), cycles=cyc,
                                 active=int(np.count_nonzero(act)))
                    for j, st in enumerate(batch_stats):
                        if act[j] != 0.0:
                            st.record(i, rel[j], cycles=cyc)

                ctx.callback(record)
            else:
                self._emit_tick(it)
            active.assign(active * (rnorm2 > tol2) * (abs(rho) > _BREAKDOWN))
            cont.assign(ctx.batch_reduce(active, "max"))

        if self.fixed_iterations is not None:
            ctx.Repeat(self.fixed_iterations, lambda: ctx.If(cont, body),
                       label=f"{self.name}.iterate")
        else:
            ctx.While(cont, body, max_iterations=self.max_iterations,
                      label=f"{self.name}.iterate")
