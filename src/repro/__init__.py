"""Graphene-style sparse linear solver framework for (simulated) IPUs.

This package reproduces the system described in *Accelerating Sparse Linear
Solvers on Intelligence Processing Units* (Noack, Krüger, Koch — IPPS 2025):

- :mod:`repro.dw` — the TwoFloat double-word arithmetic library,
- :mod:`repro.machine` — a deterministic BSP model of the GraphCore Mk2 IPU,
- :mod:`repro.graph` — a Poplar-like graph/program/engine layer,
- :mod:`repro.codedsl` / :mod:`repro.tensordsl` — the two embedded DSLs,
- :mod:`repro.sparse` — modified CRS, partitioning, halo regions, level sets,
- :mod:`repro.solvers` — PBiCGStab, Gauss-Seidel, ILU(0)/DILU, MPIR,
- :mod:`repro.baselines` — CPU (HYPRE-like) and GPU (cuSPARSE-like) comparators.

See ``DESIGN.md`` for the complete system inventory and the per-experiment
index, and ``EXPERIMENTS.md`` for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
