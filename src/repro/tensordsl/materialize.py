"""Expression materialization: fuse an expression tree into per-tile codelets.

Materialization is where symbolic execution meets the dataflow graph: the
whole expression tree becomes ONE generated codelet per tile (delayed
materialization, Sec. III-C), evaluated over the tile's shards with exact
working-precision semantics:

- ``float32`` ops run on NumPy float32 arrays (IEEE RN, same as IPU f32),
- ``dw`` ops run the Joldes et al. kernels on (hi, lo) float32 pairs,
- ``float64`` ops run on NumPy float64 (bit-equal to a correct soft-float).

Broadcasting follows NumPy rules — scalar shards are size-1 arrays that
broadcast inside the codelet, avoiding materializing expanded tensors
(exactly the paper's approach).
"""

from __future__ import annotations

import numpy as np

from repro.dw import joldes
from repro.dw.eft import two_prod
from repro.graph.codelet import BatchReduceSpec, Codelet, ElementwiseSpec, ReduceSpec
from repro.tensordsl.expression import BinExpr, ConstExpr, ConvertExpr, Expr, Leaf, UnExpr
from repro.tensordsl.types import Type, promote

__all__ = [
    "eval_expr",
    "eval_expr_on_tile",
    "convert_value",
    "elementwise_codelet",
    "partial_reduce_codelet",
    "combine_codelet",
    "batch_reduce_codelet",
    "category_for",
    "worker_chunks",
]


# -- value representation helpers ------------------------------------------------------
# float32 / float64 values are NumPy arrays (or scalars); dw values are
# (hi, lo) tuples of float32 arrays.


def convert_value(value, src: str, dst: str):
    if src == dst:
        return value
    if src == Type.DOUBLEWORD:
        wide = np.asarray(value[0], np.float64) + np.asarray(value[1], np.float64)
        return wide.astype(np.float32) if dst == Type.FLOAT32 else wide
    if dst == Type.DOUBLEWORD:
        wide = np.asarray(value, dtype=np.float64)
        hi = wide.astype(np.float32)
        lo = (wide - hi.astype(np.float64)).astype(np.float32)
        return hi, lo
    target = np.float32 if dst == Type.FLOAT32 else np.float64
    return np.asarray(value, dtype=target)


def _dw_sqrt(hi, lo):
    """Vectorized double-word square root (one Newton refinement)."""
    hi = np.asarray(hi, np.float32)
    lo = np.asarray(lo, np.float32)
    with np.errstate(divide="ignore", invalid="ignore"):
        s0 = np.sqrt(hi)
        ph, pl = two_prod(s0, s0)
        rh, rl = joldes.sub_dw_dw(hi, lo, ph, pl)
        ch, cl = joldes.div_dw_fp(rh, rl, np.float32(2.0) * s0)
        oh, ol = joldes.add_dw_fp(ch, cl, s0)
    zero = hi == 0
    oh = np.where(zero, np.float32(0), oh)
    ol = np.where(zero, np.float32(0), ol)
    return oh, ol


def _dw_view64(value):
    return np.asarray(value[0], np.float64) + np.asarray(value[1], np.float64)


_CMP = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}

_DW_BIN = {
    "+": joldes.add_dw_dw,
    "-": joldes.sub_dw_dw,
    "*": joldes.mul_dw_dw,
    "/": joldes.div_dw_dw,
}


def _expand_batch(value, dt: str):
    """Append a trailing length-1 axis so an unbatched operand broadcasts
    against a ``(n, batch)`` value (numpy aligns trailing axes, so a bare
    ``(n,)`` array would otherwise pair ``n`` with ``batch``)."""
    if dt == Type.DOUBLEWORD:
        return np.asarray(value[0])[..., None], np.asarray(value[1])[..., None]
    return np.asarray(value)[..., None]


def _align_batch(value, operand: Expr, batch: int, dt: str):
    if batch > 1 and operand.batch == 1:
        return _expand_batch(value, dt)
    return value


def eval_expr(expr: Expr, resolve):
    """Evaluate ``expr`` with leaves supplied by ``resolve(leaf)``.

    ``resolve`` returns the leaf's value in its variable's dtype
    representation (a numpy array, or a (hi, lo) pair for dw).  This is the
    single source of truth for op semantics: the per-tile path resolves
    leaves to shard views, the fused whole-device path resolves them to flat
    per-device arrays — both run the exact same numpy/Joldes code, which is
    why the two backends are bit-identical.
    """
    if isinstance(expr, Leaf):
        return resolve(expr)
    if isinstance(expr, ConstExpr):
        return convert_value(np.float64(expr.value), Type.FLOAT64, expr.dtype)
    if isinstance(expr, ConvertExpr):
        inner = eval_expr(expr.operand, resolve)
        return convert_value(inner, expr.operand.dtype, expr.target)
    if isinstance(expr, UnExpr):
        v = eval_expr(expr.operand, resolve)
        dt = expr.operand.dtype
        if dt == Type.DOUBLEWORD:
            hi, lo = v
            if expr.op == "neg":
                return -hi, -lo
            if expr.op == "abs":
                neg = hi < 0
                return np.where(neg, -hi, hi), np.where(neg, -lo, lo)
            if expr.op == "sqrt":
                return _dw_sqrt(hi, lo)
        else:
            if expr.op == "neg":
                return -v
            if expr.op == "abs":
                return np.abs(v)
            if expr.op == "sqrt":
                return np.sqrt(v)
        raise ValueError(f"unknown unary op {expr.op!r}")
    if isinstance(expr, BinExpr):
        batch = expr.batch
        if expr.op in _CMP:
            cmp_dt = promote(expr.left.dtype, expr.right.dtype)
            lv = convert_value(eval_expr(expr.left, resolve), expr.left.dtype, cmp_dt)
            rv = convert_value(eval_expr(expr.right, resolve), expr.right.dtype, cmp_dt)
            lv = _align_batch(lv, expr.left, batch, cmp_dt)
            rv = _align_batch(rv, expr.right, batch, cmp_dt)
            if cmp_dt == Type.DOUBLEWORD:
                lv, rv = _dw_view64(lv), _dw_view64(rv)
            return _CMP[expr.op](lv, rv).astype(np.float32)
        dt = expr.dtype
        lv = convert_value(eval_expr(expr.left, resolve), expr.left.dtype, dt)
        rv = convert_value(eval_expr(expr.right, resolve), expr.right.dtype, dt)
        lv = _align_batch(lv, expr.left, batch, dt)
        rv = _align_batch(rv, expr.right, batch, dt)
        if dt == Type.DOUBLEWORD:
            return _DW_BIN[expr.op](lv[0], lv[1], rv[0], rv[1])
        op = {"+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide}[expr.op]
        return op(lv, rv)
    raise TypeError(f"unknown expression {expr!r}")


def _tile_resolver(tile_id: int):
    def resolve(leaf: Leaf):
        sh = leaf.var.shard(tile_id)
        if leaf.var.dtype == Type.DOUBLEWORD:
            return sh.data, sh.lo
        return sh.data

    return resolve


def eval_expr_on_tile(expr: Expr, tile_id: int):
    """Evaluate ``expr`` over the shards of ``tile_id``; returns the value in
    ``expr.dtype`` representation."""
    return eval_expr(expr, _tile_resolver(tile_id))


# -- codelet factories -------------------------------------------------------------------


def category_for(dtype: str) -> str:
    """Profiler bucket: extended-precision ops are a Table IV line item."""
    return "elementwise" if dtype == Type.FLOAT32 else "extended_precision"


def worker_chunks(n: int, workers: int) -> list:
    """Split ``n`` elements over worker threads (empty workers dropped)."""
    if n <= 0:
        return []
    base, extra = divmod(n, workers)
    return [base + (1 if i < extra else 0) for i in range(workers) if base + (1 if i < extra else 0) > 0]


def _elementwise_worker_cycles(model, dtype, op_counts, n, workers):
    if not op_counts:  # pure copy/convert
        op_counts = {"add": 1}
    return [
        model.elementwise_mixed(dtype, op_counts, chunk)
        for chunk in worker_chunks(n, workers)
    ] or [model.vertex_overhead]


def elementwise_codelet(model, expr: Expr, out_var, tile_id: int, workers: int) -> Codelet:
    """Fused elementwise codelet writing ``expr`` into ``out_var``'s shard."""
    out_dt = out_var.dtype
    op_counts = expr.op_counts()

    def run(ctx):
        value = convert_value(eval_expr_on_tile(expr, tile_id), expr.dtype, out_dt)
        if out_var.batch > 1 and expr.batch == 1:
            value = _expand_batch(value, out_dt)
        sh = out_var.shard(tile_id)
        if out_dt == Type.DOUBLEWORD:
            sh.data[...] = np.broadcast_to(value[0], sh.data.shape)
            sh.lo[...] = np.broadcast_to(value[1], sh.lo.shape)
        else:
            sh.data[...] = np.broadcast_to(value, sh.data.shape)

    def cycles(ctx):
        n = out_var.shard(tile_id).size * out_var.batch
        return _elementwise_worker_cycles(model, expr.dtype, op_counts, n, workers)

    return Codelet(
        f"ew@{tile_id}",
        run,
        cycles,
        category=category_for(expr.dtype),
        spec=ElementwiseSpec(expr, out_var),
    )


REDUCE_OPS = ("sum", "max", "min")


def _dw_tree_sum(hi, lo):
    """Pairwise double-word summation of flat (hi, lo) arrays."""
    while hi.size > 1:
        half = hi.size // 2
        h2, l2 = joldes.add_dw_dw(hi[:half], lo[:half], hi[half : 2 * half], lo[half : 2 * half])
        if hi.size % 2:
            h2 = np.concatenate([h2, hi[-1:]])
            l2 = np.concatenate([l2, lo[-1:]])
        hi, lo = h2, l2
    return (hi[0], lo[0]) if hi.size else (np.float32(0), np.float32(0))


def _reduce_value(value, dt: str, op: str):
    """Reduce a tile-local value; returns scalar (or (hi, lo) for dw)."""
    if dt == Type.DOUBLEWORD:
        hi = np.atleast_1d(np.asarray(value[0], np.float32)).ravel()
        lo = np.atleast_1d(np.asarray(value[1], np.float32)).ravel()
        if op == "sum":
            return _dw_tree_sum(hi, lo)
        wide = hi.astype(np.float64) + lo.astype(np.float64)
        k = int(np.argmax(wide) if op == "max" else np.argmin(wide))
        return hi[k], lo[k]
    arr = np.atleast_1d(np.asarray(value)).ravel()
    if op == "sum":
        # Pairwise (numpy's default) keeps f32 partial sums well-behaved.
        return arr.sum(dtype=arr.dtype)
    return arr.max() if op == "max" else arr.min()


def _reduce_value_batched(value, dt: str, op: str, n: int, batch: int):
    """Per-RHS reduction of a ``(n, batch)`` tile value → length-``batch`` arrays.

    Each column goes through exactly the same :func:`_reduce_value` code as
    the single-RHS path — numpy's pairwise summation of a strided column
    view is bit-identical to the contiguous 1-D sum (the split points are
    index-based), whereas a single ``sum(axis=0)`` over the 2-D array is
    not.  This per-column loop is what makes every batched reduction
    bit-identical per RHS to its single-RHS counterpart.
    """
    if dt == Type.DOUBLEWORD:
        hi = np.broadcast_to(np.asarray(value[0], np.float32), (n, batch))
        lo = np.broadcast_to(np.asarray(value[1], np.float32), (n, batch))
        out_hi = np.empty(batch, np.float32)
        out_lo = np.empty(batch, np.float32)
        for j in range(batch):
            out_hi[j], out_lo[j] = _reduce_value((hi[:, j], lo[:, j]), dt, op)
        return out_hi, out_lo
    arr = np.asarray(value)
    full = np.broadcast_to(arr, (n, batch))
    out = np.empty(batch, arr.dtype)
    for j in range(batch):
        out[j] = _reduce_value(full[:, j], dt, op)
    return out


def partial_reduce_codelet(model, expr: Expr, out_var, tile_id: int, workers: int,
                           op: str = "sum") -> Codelet:
    """Per-tile partial reduction of ``expr`` into ``out_var``'s one-element shard."""
    dt = expr.dtype
    op_counts = expr.op_counts()

    def run(ctx):
        value = eval_expr_on_tile(expr, tile_id)
        sh = out_var.shard(tile_id)
        if out_var.batch > 1:
            n = _expr_tile_size(expr, tile_id)
            result = _reduce_value_batched(value, dt, op, n, out_var.batch)
        else:
            result = _reduce_value(value, dt, op)
        if dt == Type.DOUBLEWORD:
            sh.data[0], sh.lo[0] = result
        else:
            sh.data[0] = result

    def cycles(ctx):
        # Elementwise evaluation fused with the local reduction tree.
        n = _expr_tile_size(expr, tile_id) * out_var.batch
        per_worker = worker_chunks(n, workers)
        costs = [
            model.elementwise_mixed(dt, op_counts, c) + model.reduce(dt, c) - model.vertex_overhead
            for c in per_worker
        ] or [model.vertex_overhead]
        # Worker 0 combines the per-worker partials.
        costs[0] += model.reduce(dt, len(per_worker)) - model.vertex_overhead
        return costs

    return Codelet(
        f"reduce@{tile_id}",
        run,
        cycles,
        category="reduce",
        spec=ReduceSpec(expr, out_var, op),
    )


def combine_codelet(model, gathered_var, out_var, tile_id: int, op: str = "sum") -> Codelet:
    """Combine gathered per-tile partials into the final scalar (on one tile)."""
    dt = gathered_var.dtype

    def run(ctx):
        g = gathered_var.shard(tile_id)
        o = out_var.shard(tile_id)
        value = (g.data, g.lo) if dt == Type.DOUBLEWORD else g.data
        if gathered_var.batch > 1:
            result = _reduce_value_batched(
                value, dt, op, gathered_var.size, gathered_var.batch
            )
        else:
            result = _reduce_value(value, dt, op)
        if dt == Type.DOUBLEWORD:
            o.data[0], o.lo[0] = result
        else:
            o.data[0] = result

    def cycles(ctx):
        return model.reduce(dt, gathered_var.size * gathered_var.batch)

    return Codelet(f"combine@{tile_id}", run, cycles, category="reduce")


def batch_reduce_codelet(model, in_var, out_var, tile_id: int, op: str = "max") -> Codelet:
    """Collapse the trailing batch axis of a replicated batched scalar.

    ``out = max_j in[:, j]`` (or min) — tile-local on every replica, so the
    any-RHS-still-active loop condition costs no exchange.  max/min only:
    they are order-insensitive, which keeps sim and fused bit-identical.
    """
    if op not in ("max", "min"):
        raise ValueError(f"batch reduction supports max/min, got {op!r}")
    if in_var.dtype == Type.DOUBLEWORD:
        raise ValueError("batch reduction over dw scalars is not supported")

    def run(ctx):
        arr = in_var.shard(tile_id).data[0]
        out_var.shard(tile_id).data[0] = arr.max() if op == "max" else arr.min()

    def cycles(ctx):
        return model.reduce(in_var.dtype, in_var.batch)

    return Codelet(
        f"batchred@{tile_id}",
        run,
        cycles,
        category="reduce",
        spec=BatchReduceSpec(in_var, out_var, op),
    )


def _expr_tile_size(expr: Expr, tile_id: int) -> int:
    """Number of elements the expression produces on this tile."""
    n = 1
    for leaf in expr.leaves():
        if not leaf.var.is_scalar:
            n = max(n, leaf.var.shard(tile_id).size)
    return n
