"""TensorContext: symbolic-execution driver and control-flow stack.

Owns the graph, the schedule being generated, and the control-flow stack of
Sec. III-B: control functions (:meth:`TensorContext.If`,
:meth:`TensorContext.While`, :meth:`TensorContext.Repeat`) push a program
step, symbolically execute the branch lambda, and pop — the top of the
stack is always the step under construction.
"""

from __future__ import annotations

import numpy as np

from contextlib import contextmanager

from repro.codedsl import estimate_flops
from repro.codedsl.builder import CodeletIR
from repro.graph import (
    CompiledProgram,
    ComputeSet,
    Codelet,
    Engine,
    Exchange,
    Execute as ExecuteStep,
    Graph,
    HostCallback,
    If as IfStep,
    Interval,
    RegionCopy,
    Repeat as RepeatStep,
    RepeatWhile,
    Sequence,
    compile_program,
)
from repro.machine import IPUDevice
from repro.tensordsl.expression import Expr
from repro.tensordsl.materialize import (
    batch_reduce_codelet,
    category_for,
    combine_codelet,
    elementwise_codelet,
    partial_reduce_codelet,
)
from repro.tensordsl.tensor import Tensor
from repro.tensordsl.types import Type

__all__ = ["TensorContext"]


class TensorContext:
    """Builds a graph program by symbolically executing TensorDSL code."""

    def __init__(self, device: IPUDevice, eager: bool = False):
        self.device = device
        self.graph = Graph(device)
        self.root = Sequence()
        #: The control-flow stack (Sec. III-B): innermost open step last.
        self._stack: list[Sequence] = [self.root]
        #: Eager mode materializes every operator immediately — the
        #: no-delayed-materialization ablation baseline.
        self.eager = eager

    # -- schedule construction ------------------------------------------------------

    @property
    def current_seq(self) -> Sequence:
        return self._stack[-1]

    def append(self, step):
        return self.current_seq.add(step)

    # -- tensor creation ---------------------------------------------------------------

    def tensor(self, shape, dtype: str = Type.FLOAT32, name: str | None = None,
               data=None, tile_ids=None, batch: int = 1) -> Tensor:
        """Create a materialized tensor distributed linearly over tiles.

        ``batch > 1`` adds a trailing multi-RHS axis (``docs/solvers.md``);
        host ``data`` is then batch-leading ``(batch,) + shape``.
        """
        shape = tuple(shape) if not isinstance(shape, int) else (shape,)
        name = name or self.graph.unique_name("t")
        size = int(np.prod(shape)) if shape else 1
        if size == 1:
            var = self.graph.add_replicated(name, shape, dtype, tile_ids=tile_ids, batch=batch)
        else:
            mapping = self.graph.linear_mapping(size, tile_ids=tile_ids)
            var = self.graph.add_variable(name, shape, dtype, mapping=mapping, batch=batch)
        if data is not None:
            var.scatter(data)
        return Tensor(self, var=var)

    def scalar(self, value=0.0, dtype: str = Type.FLOAT32, name: str | None = None,
               tile_ids=None, batch: int = 1) -> Tensor:
        """Create a replicated scalar tensor initialized to ``value``
        (``batch > 1``: one value per RHS, all initialized alike)."""
        t = self.tensor((), dtype=dtype, name=name, tile_ids=tile_ids, batch=batch)
        t.write(value)
        return t

    def from_mapping(self, name: str, shape, dtype: str, mapping, batch: int = 1) -> Tensor:
        """Create a tensor with an explicit tile mapping (used by the sparse
        layer, whose halo-reordered layouts are anything but linear)."""
        var = self.graph.add_variable(name, shape, dtype, mapping=mapping, batch=batch)
        return Tensor(self, var=var)

    # -- materialization ---------------------------------------------------------------------

    def _participating_tiles(self, expr: Expr):
        """Tiles that hold every leaf, and the distributed mapping (if any)."""
        dist_var = None
        tiles = None
        for leaf in expr.leaves():
            v = leaf.var
            tset = set(v.tile_ids)
            tiles = tset if tiles is None else (tiles & tset)
            if not v.is_scalar and not v.replicated:
                if dist_var is None:
                    dist_var = v
                elif [
                    (iv.tile_id, iv.start, iv.stop)
                    for iv in sorted((s.interval for s in dist_var.shards.values()), key=lambda i: i.start)
                ] != [
                    (iv.tile_id, iv.start, iv.stop)
                    for iv in sorted((s.interval for s in v.shards.values()), key=lambda i: i.start)
                ]:
                    raise ValueError(
                        f"operands {dist_var.name!r} and {v.name!r} have different tile mappings"
                    )
        if tiles is None:  # constants only
            tiles = set(range(self.device.num_tiles))
        if not tiles:
            raise ValueError("expression has no common tile")
        return sorted(tiles), dist_var

    def materialize_expr(self, expr: Expr) -> Tensor:
        """Fuse ``expr`` into one codelet per tile writing a fresh variable."""
        tiles, dist_var = self._participating_tiles(expr)
        name = self.graph.unique_name("m")
        if dist_var is None:
            out = self.graph.add_replicated(
                name, expr.shape, expr.dtype, tile_ids=tiles, batch=expr.batch
            )
        else:
            mapping = [dist_var.shard(t).interval for t in dist_var.tile_ids]
            out = self.graph.add_variable(
                name, expr.shape, expr.dtype, mapping=mapping, batch=expr.batch
            )
        self._emit_elementwise(expr, out)
        return Tensor(self, var=out)

    def assign(self, var, expr: Expr) -> None:
        """Schedule ``expr`` to be evaluated into the existing ``var``."""
        self._emit_elementwise(expr, var)

    def _emit_elementwise(self, expr: Expr, out_var) -> None:
        cs = ComputeSet(self.graph.unique_name("cs"), category=category_for(expr.dtype))
        workers = self.device.spec.workers_per_tile
        # A replicated out_var can span more tiles than the operands (e.g. a
        # scalar on every device tile assigned from a reduction that lives
        # only on the matrix's tiles, when the matrix occupies a strict
        # subset of the device).  Emit only where every leaf has a shard;
        # off-tile replicas go stale, which is fine — scalar reads and all
        # distributed expressions resolve on the participating tiles.
        common = set(out_var.tile_ids)
        for leaf in expr.leaves():
            common &= set(leaf.var.tile_ids)
        if not common:
            raise ValueError(
                f"assignment into {out_var.name!r} has no tile holding every operand"
            )
        if expr.batch not in (1, out_var.batch):
            raise ValueError(
                f"cannot assign batch-{expr.batch} expression into "
                f"batch-{out_var.batch} variable {out_var.name!r}"
            )
        for t in out_var.tile_ids:
            if t not in common:
                continue
            cl = elementwise_codelet(self.device.model, expr, out_var, t, workers)
            cs.add_vertex(cl, t, {})
        self.append(ExecuteStep(cs))

    # -- reductions ------------------------------------------------------------------------------

    def reduce_expr(self, expr: Expr, op: str = "sum") -> Tensor:
        """Global reduction (sum/max/min): per-tile partials → gather →
        combine → broadcast."""
        if op not in ("sum", "max", "min"):
            raise ValueError(f"unknown reduction op {op!r} (sum/max/min)")
        tiles, dist_var = self._participating_tiles(expr)
        if dist_var is None:
            # Scalar expression: "reducing" it is just materializing it.
            return self.materialize_expr(expr)
        tiles = dist_var.tile_ids
        dtype = expr.dtype
        batch = expr.batch
        workers = self.device.spec.workers_per_tile

        partials = self.graph.add_variable(
            self.graph.unique_name("part"),
            (len(tiles),),
            dtype,
            mapping=[Interval(t, i, i + 1) for i, t in enumerate(tiles)],
            batch=batch,
        )
        cs = ComputeSet(self.graph.unique_name("cs_reduce"), category="reduce")
        for t in tiles:
            cs.add_vertex(partial_reduce_codelet(self.device.model, expr, partials, t, workers, op=op), t, {})
        self.append(ExecuteStep(cs))

        root = tiles[0]
        gathered = self.graph.add_single_tile(
            self.graph.unique_name("gath"), (len(tiles),), dtype, tile_id=root, batch=batch
        )
        self.append(
            Exchange(
                [
                    RegionCopy(partials, t, 0, ((gathered, root, i),), 1)
                    for i, t in enumerate(tiles)
                ],
                name="exchange",
            )
        )

        result = self.graph.add_replicated(
            self.graph.unique_name("red"), (), dtype, tile_ids=tiles, batch=batch
        )
        cs2 = ComputeSet(self.graph.unique_name("cs_combine"), category="reduce")
        cs2.add_vertex(combine_codelet(self.device.model, gathered, result, root, op=op), root, {})
        self.append(ExecuteStep(cs2))

        # Broadcast the scalar back to every participating tile.
        others = [t for t in tiles if t != root]
        if others:
            self.append(
                Exchange(
                    [RegionCopy(result, root, 0, tuple((result, t, 0) for t in others), 1)],
                    name="exchange",
                )
            )
        return Tensor(self, var=result)

    def batch_reduce(self, tensor: Tensor, op: str = "max") -> Tensor:
        """Collapse the trailing batch axis of a replicated batched scalar
        into an unbatched scalar (``max``/``min`` over the RHS axis).

        Tile-local — every replica reduces its own copy, so unlike
        :meth:`reduce_expr` this emits no exchange.  The canonical use is
        the batched-Krylov loop condition: ``any RHS still active`` is
        ``batch_reduce(active, "max")``.
        """
        t = tensor.materialize()
        var = t.var
        if var.batch == 1:
            return t
        if not (var.replicated and var.is_scalar):
            raise ValueError("batch_reduce needs a replicated scalar tensor")
        out = self.graph.add_replicated(
            self.graph.unique_name("bred"), (), var.dtype, tile_ids=var.tile_ids
        )
        cs = ComputeSet(self.graph.unique_name("cs_batchred"), category="reduce")
        for tile in var.tile_ids:
            cs.add_vertex(
                batch_reduce_codelet(self.device.model, var, out, tile, op=op), tile, {}
            )
        self.append(ExecuteStep(cs))
        return Tensor(self, var=out)

    # -- control flow (the control-flow stack of Sec. III-B) ------------------------------------

    def _as_cond_var(self, cond) -> object:
        if isinstance(cond, Tensor):
            t = cond.materialize()
            if not t.var.is_scalar:
                raise ValueError("control-flow conditions must be scalar tensors")
            if t.var.batch > 1:
                raise ValueError(
                    "control-flow conditions must be unbatched — collapse the "
                    "batch axis first (ctx.batch_reduce)"
                )
            return t.var
        raise TypeError("condition must be a TensorDSL tensor")

    def If(self, cond, then_fn, else_fn=None) -> None:
        cond_var = self._as_cond_var(cond)
        then_seq = self._capture(then_fn)
        else_seq = self._capture(else_fn) if else_fn is not None else None
        self.append(IfStep(cond_var, then_seq, else_seq))

    def While(self, cond, body_fn, max_iterations: int = 100_000,
              label: str | None = None) -> None:
        """Run ``body_fn`` while the scalar ``cond`` tensor is nonzero.

        ``cond`` must be materialized; the body updates it via ``assign``
        (the ``terminate`` flag pattern of Fig. 4).  A ``label`` opens a
        profiler scope around the loop (Table IV path breakdown).
        """
        cond_var = self._as_cond_var(cond)
        body_seq = self._capture(body_fn)
        self.append(
            RepeatWhile(cond_var, body_seq, max_iterations=max_iterations, label=label)
        )

    def Repeat(self, count: int, body_fn, label: str | None = None) -> None:
        self.append(RepeatStep(count, self._capture(body_fn), label=label))

    @contextmanager
    def scope(self, name: str):
        """Append a labeled sequence: a named profiler scope for the steps
        generated inside the ``with`` block (per-phase Table IV paths)."""
        seq = Sequence(label=name)
        self.append(seq)
        self._stack.append(seq)
        try:
            yield self
        finally:
            self._stack.pop()

    def _capture(self, body_fn) -> Sequence:
        """Symbolically execute ``body_fn`` into a fresh schedule step."""
        seq = Sequence()
        self._stack.append(seq)
        try:
            body_fn()
        finally:
            self._stack.pop()
        return seq

    # -- CodeDSL bridge ------------------------------------------------------------------------------

    def Execute(self, tensors, fn) -> None:
        """Run a CodeDSL kernel over the shards of ``tensors`` on each tile.

        ``fn`` receives one :class:`~repro.codedsl.values.ArrayRef` per
        tensor and is symbolically executed once; the generated codelet runs
        on every tile that holds all the tensors' shards (tile-centric
        semantics: each tile sees only its own shard).
        """
        tensors = [t.materialize() for t in tensors]
        params = [f"p{i}" for i in range(len(tensors))]
        ir = CodeletIR(params=params)
        with ir:
            fn(*[ir.array(p) for p in params])
        compiled = ir.compile()
        tiles = sorted(set.intersection(*(set(t.var.tile_ids) for t in tensors)))
        if not tiles:
            raise ValueError("tensors share no tile")
        model = self.device.model
        cs = ComputeSet(self.graph.unique_name("cs_codedsl"), category="codedsl")
        for tile_id in tiles:
            bindings = {p: t.var.shard(tile_id).data for p, t in zip(params, tensors)}
            flops = estimate_flops(ir, bindings)

            def run(ctx, _b=bindings):
                compiled(**_b)

            def cycles(ctx, _f=flops):
                return model.vertex_overhead + _f * model.spec.f32_op_cycles

            cs.add_vertex(Codelet(f"codedsl@{tile_id}", run, cycles, category="codedsl"), tile_id, {})
        self.append(ExecuteStep(cs))

    # -- host interaction --------------------------------------------------------------------------------

    def callback(self, fn) -> None:
        """Insert a host callback (progress reporting, host I/O)."""
        self.append(HostCallback(fn))

    def print(self, label: str, tensor: Tensor | None = None) -> None:
        """Print a label (and optionally a scalar tensor's value) at runtime."""
        if tensor is not None:
            t = tensor.materialize()

            def fn(engine, _v=t.var, _l=label):
                print(f"{_l}: {engine.read_scalar(_v)}")

        else:

            def fn(engine, _l=label):
                print(_l)

        self.append(HostCallback(fn))

    # -- compilation & execution ----------------------------------------------------------------------------

    def compile(self, optimize: bool = True, passes=None) -> CompiledProgram:
        """Lower the constructed schedule through the pass pipeline.

        Returns the immutable :class:`CompiledProgram` artifact (optimized
        schedule + stats + pass report).  ``optimize=False`` freezes the raw
        schedule — the no-pass ablation baseline.  The source schedule is
        never mutated, so a context can be compiled repeatedly (e.g. with
        different pipelines) and extended afterwards.
        """
        return compile_program(self.graph, self.root, passes=passes, optimize=optimize)

    def run(self, optimize: bool = True, passes=None, backend="sim", tracer=None,
            injector=None) -> Engine:
        """Compile the generated schedule and execute it on the machine model.

        ``backend`` selects the runtime: ``"sim"`` (cycle-accurate, the
        default) or ``"fast"`` (bit-identical numerics, no cycle
        accounting) — see ``docs/runtime.md``.  ``tracer`` attaches a
        :class:`~repro.telemetry.Tracer` to the backend
        (``docs/observability.md``); ``injector`` attaches a
        :class:`~repro.faults.FaultInjector` (``docs/resilience.md``);
        both require the sim backend.
        """
        engine = Engine(
            self.compile(optimize=optimize, passes=passes), backend=backend,
            tracer=tracer, injector=injector,
        )
        engine.run()
        return engine
