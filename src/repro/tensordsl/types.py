"""Tensor element types and promotion rules.

Mirrors the paper's DSL type system (Sec. III-D): native single precision,
double-word extended precision, and software-emulated double precision.
Mixing dtypes in one expression promotes to the widest participant.
"""

from __future__ import annotations

__all__ = ["Type", "promote", "RANK"]


class Type:
    """dtype name constants (paper syntax: ``Type::FLOAT32``)."""

    FLOAT32 = "float32"
    DOUBLEWORD = "dw"
    FLOAT64 = "float64"


#: Promotion lattice: float32 < double-word < emulated double.
RANK = {Type.FLOAT32: 0, Type.DOUBLEWORD: 1, Type.FLOAT64: 2}


def promote(*dtypes: str) -> str:
    """Widest dtype among the participants."""
    best = Type.FLOAT32
    for d in dtypes:
        if d not in RANK:
            raise ValueError(f"unknown tensor dtype {d!r}")
        if RANK[d] > RANK[best]:
            best = d
    return best
