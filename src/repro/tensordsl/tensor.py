"""The user-facing Tensor handle.

A Tensor either *is* a materialized graph variable or *holds* a lazy
expression.  Operators always return lazy tensors (unless the context is in
eager mode — the ablation baseline for Sec. III-C); materialization happens
when a value is genuinely needed: assignment, reduction, control-flow
conditions, host reads.

Inside loop bodies, update tensors with ``t.assign(expr)`` — it writes into
the tensor's existing storage, so every loop iteration updates the same
tiles.  Python's ``=`` merely rebinds the host-side handle (the C++ DSL can
overload ``operator=``; Python cannot).
"""

from __future__ import annotations

import numpy as np

from repro.tensordsl.expression import BinExpr, ConstExpr, ConvertExpr, Expr, Leaf, UnExpr

__all__ = ["Tensor"]


class Tensor:
    """Handle to a (lazy or materialized) TensorDSL tensor."""

    def __init__(self, ctx, expr: Expr | None = None, var=None):
        if (expr is None) == (var is None):
            raise ValueError("Tensor needs exactly one of expr / var")
        self.ctx = ctx
        self.var = var
        self._expr = expr

    # -- expression access -----------------------------------------------------------

    @property
    def expr(self) -> Expr:
        return Leaf(self.var) if self.var is not None else self._expr

    @property
    def dtype(self) -> str:
        return self.expr.dtype

    @property
    def shape(self) -> tuple:
        return self.expr.shape

    @property
    def is_materialized(self) -> bool:
        return self.var is not None

    # -- operator helpers ---------------------------------------------------------------

    def _coerce(self, other) -> Expr:
        if isinstance(other, Tensor):
            if other.ctx is not self.ctx:
                raise ValueError("cannot mix tensors from different contexts")
            return other.expr
        if isinstance(other, (int, float, np.floating, np.integer)):
            return ConstExpr(float(other))
        raise TypeError(f"cannot use {other!r} in a TensorDSL expression")

    def _make(self, expr: Expr) -> "Tensor":
        t = Tensor(self.ctx, expr=expr)
        return t.materialize() if self.ctx.eager else t

    def _bin(self, op, other, swap=False):
        a, b = self.expr, self._coerce(other)
        if swap:
            a, b = b, a
        return self._make(BinExpr(op, a, b))

    # -- arithmetic -------------------------------------------------------------------------

    def __add__(self, o):
        return self._bin("+", o)

    def __radd__(self, o):
        return self._bin("+", o, swap=True)

    def __sub__(self, o):
        return self._bin("-", o)

    def __rsub__(self, o):
        return self._bin("-", o, swap=True)

    def __mul__(self, o):
        return self._bin("*", o)

    def __rmul__(self, o):
        return self._bin("*", o, swap=True)

    def __truediv__(self, o):
        return self._bin("/", o)

    def __rtruediv__(self, o):
        return self._bin("/", o, swap=True)

    def __neg__(self):
        return self._make(UnExpr("neg", self.expr))

    def __abs__(self):
        return self._make(UnExpr("abs", self.expr))

    def abs(self):
        return self.__abs__()

    def sqrt(self):
        return self._make(UnExpr("sqrt", self.expr))

    # -- comparisons (produce 0/1 flag tensors) ----------------------------------------------

    def __lt__(self, o):
        return self._bin("<", o)

    def __le__(self, o):
        return self._bin("<=", o)

    def __gt__(self, o):
        return self._bin(">", o)

    def __ge__(self, o):
        return self._bin(">=", o)

    def eq(self, o):
        return self._bin("==", o)

    def ne(self, o):
        return self._bin("!=", o)

    __hash__ = object.__hash__

    # -- precision ----------------------------------------------------------------------------

    def astype(self, dtype: str) -> "Tensor":
        if dtype == self.dtype:
            return self
        return self._make(ConvertExpr(self.expr, dtype))

    # -- materialization & data movement --------------------------------------------------------

    def materialize(self) -> "Tensor":
        """Force the expression into a fresh variable (no-op if materialized)."""
        if self.var is not None:
            return self
        return self.ctx.materialize_expr(self.expr)

    def assign(self, value) -> "Tensor":
        """Schedule ``value`` to be written into this tensor's storage."""
        if self.var is None:
            raise ValueError("cannot assign into an unmaterialized expression")
        self.ctx.assign(self.var, self._coerce(value))
        return self

    # -- reductions ---------------------------------------------------------------------------------

    def reduce(self, op: str = "sum") -> "Tensor":
        """Global reduction (sum/max/min) over all elements → replicated
        scalar tensor."""
        return self.ctx.reduce_expr(self.expr, op=op)

    def max(self) -> "Tensor":
        return self.reduce(op="max")

    def min(self) -> "Tensor":
        return self.reduce(op="min")

    def norm_inf(self) -> "Tensor":
        """Infinity norm as a (materialized) scalar tensor."""
        return abs(self).reduce(op="max")

    def dot(self, other) -> "Tensor":
        return (self * other).reduce()

    def norm2(self) -> "Tensor":
        """Euclidean norm as a (materialized) scalar tensor."""
        return (self * self).reduce().sqrt().materialize()

    # -- host access -----------------------------------------------------------------------------------

    def value(self) -> np.ndarray:
        """Host-side read of the materialized tensor's current contents."""
        if self.var is None:
            raise ValueError("materialize() the tensor before reading it")
        return self.var.gather()

    def write(self, values) -> None:
        """Host-side write into the tensor's storage (initialization)."""
        if self.var is None:
            raise ValueError("materialize() the tensor before writing it")
        self.var.scatter(values)

    def __repr__(self):
        state = f"var={self.var.name!r}" if self.var is not None else "lazy"
        return f"Tensor(shape={self.shape}, dtype={self.dtype}, {state})"
