"""TensorDSL: the global-tensor language (Sec. III).

TensorDSL operates on tensors mapped across one or many tiles, providing a
global view regardless of distribution.  It supports elementwise algebra,
reductions, broadcasting, and copies — but not element access (that is
CodeDSL's job).

Key mechanics reproduced from the paper:

- **Symbolic execution** — user code runs once on the host; tensor
  operators build *expression objects* (Sec. III-C) instead of computing.
- **Delayed materialization** — an expression becomes codelets only when
  its value is needed; the whole tree fuses into one generated codelet per
  tile, which shrinks the dataflow graph and lets the host compiler
  optimize across operations.
- **Control-flow stack** (Sec. III-B) — ``If``/``While``/``Repeat`` push a
  program step, symbolically execute the branch lambdas, and pop, so the
  schedule is generated automatically.
- **Extended precision** — tensors carry ``float32``, ``dw`` (double-word)
  or ``float64`` (emulated) dtypes; mixed expressions promote upward.
"""

from repro.tensordsl.types import Type
from repro.tensordsl.context import TensorContext
from repro.tensordsl.tensor import Tensor

__all__ = ["Type", "TensorContext", "Tensor"]
