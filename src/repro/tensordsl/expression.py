"""Lazy expression objects (Sec. III-C).

Evaluating ``x * 4`` during symbolic execution does not touch the dataflow
graph; it returns an expression node.  Nodes combine into trees; when a
value is needed the whole tree is *materialized* — fused into one codelet
per tile (see :mod:`repro.tensordsl.materialize`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tensordsl.types import Type, promote

__all__ = ["Expr", "Leaf", "ConstExpr", "BinExpr", "UnExpr", "ConvertExpr", "OP_KINDS"]

#: expression op -> cycle-model op kind.
OP_KINDS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "neg": "neg",
    "abs": "abs",
    "sqrt": "sqrt",
    "<": "cmp",
    "<=": "cmp",
    ">": "cmp",
    ">=": "cmp",
    "==": "cmp",
    "!=": "cmp",
}


@dataclass(frozen=True)
class Expr:
    """Base expression node; concrete nodes define dtype and shape."""

    @property
    def dtype(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def shape(self) -> tuple:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def batch(self) -> int:
        """Width of the trailing multi-RHS batch axis (1 = unbatched)."""
        return 1

    def leaves(self):
        """Yield all variable leaves of the tree."""
        raise NotImplementedError

    def op_counts(self) -> dict:
        """Per-element arithmetic op mix (for the cycle model)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Leaf(Expr):
    """A materialized variable used as an operand."""

    var: object  # repro.graph.Variable

    @property
    def dtype(self):
        return self.var.dtype

    @property
    def shape(self):
        return self.var.shape

    @property
    def batch(self):
        return getattr(self.var, "batch", 1)

    def leaves(self):
        yield self

    def op_counts(self):
        return {}


@dataclass(frozen=True)
class ConstExpr(Expr):
    """A host constant embedded in the codelet (no storage)."""

    value: float
    const_dtype: str = Type.FLOAT32

    @property
    def dtype(self):
        return self.const_dtype

    @property
    def shape(self):
        return ()

    def leaves(self):
        return iter(())

    def op_counts(self):
        return {}


def _broadcast_shape(a: tuple, b: tuple) -> tuple:
    """NumPy-style broadcast for the 1-D + scalar cases TensorDSL supports."""
    if a == b:
        return a
    if a == ():
        return b
    if b == ():
        return a
    raise ValueError(f"cannot broadcast shapes {a} and {b}")


def _merge_counts(*counts, extra=None):
    out = {}
    for c in counts:
        for k, v in c.items():
            out[k] = out.get(k, 0) + v
    if extra:
        out[extra] = out.get(extra, 0) + 1
    return out


@dataclass(frozen=True)
class BinExpr(Expr):
    op: str
    left: Expr
    right: Expr

    @property
    def dtype(self):
        if self.op in ("<", "<=", ">", ">=", "==", "!="):
            return Type.FLOAT32  # predicates are working-precision flags
        return promote(self.left.dtype, self.right.dtype)

    @property
    def shape(self):
        return _broadcast_shape(self.left.shape, self.right.shape)

    @property
    def batch(self):
        lb, rb = self.left.batch, self.right.batch
        if lb != rb and 1 not in (lb, rb):
            raise ValueError(f"cannot broadcast batch widths {lb} and {rb}")
        return max(lb, rb)

    def leaves(self):
        yield from self.left.leaves()
        yield from self.right.leaves()

    def op_counts(self):
        return _merge_counts(
            self.left.op_counts(), self.right.op_counts(), extra=OP_KINDS[self.op]
        )


@dataclass(frozen=True)
class UnExpr(Expr):
    op: str  # neg, abs, sqrt
    operand: Expr

    @property
    def dtype(self):
        return self.operand.dtype

    @property
    def shape(self):
        return self.operand.shape

    @property
    def batch(self):
        return self.operand.batch

    def leaves(self):
        yield from self.operand.leaves()

    def op_counts(self):
        return _merge_counts(self.operand.op_counts(), extra=OP_KINDS[self.op])


@dataclass(frozen=True)
class ConvertExpr(Expr):
    """Precision conversion (f32 <-> dw <-> f64)."""

    operand: Expr
    target: str

    @property
    def dtype(self):
        return self.target

    @property
    def shape(self):
        return self.operand.shape

    @property
    def batch(self):
        return self.operand.batch

    def leaves(self):
        yield from self.operand.leaves()

    def op_counts(self):
        return _merge_counts(self.operand.op_counts(), extra="add")
