"""Sparse-matrix substrate: formats, workloads, partitioning, halo regions.

- :mod:`repro.sparse.crs` — the modified CRS format with a separate dense
  diagonal (Sec. II-C),
- :mod:`repro.sparse.poisson` — 7-point (3-D) and 5-point (2-D) Poisson
  discretizations used by the scaling benches,
- :mod:`repro.sparse.suitesparse` — synthetic structural doubles of the
  paper's four SuiteSparse matrices plus a Matrix-Market reader,
- :mod:`repro.sparse.partition` — row-wise domain decomposition across
  tiles (structured-grid blocks and graph-growing for general matrices),
- :mod:`repro.sparse.halo` — the region-based reordering strategy of
  Sec. IV enabling blockwise halo exchanges (plus the naive per-cell
  baseline used in the ablation),
- :mod:`repro.sparse.levelset` — Level-Set Scheduling (Sec. V-A).
"""

from repro.sparse.crs import ModifiedCRS
from repro.sparse.poisson import poisson2d, poisson3d
from repro.sparse.partition import Partition, partition_rows
from repro.sparse.halo import HaloPlan, build_halo_plan, build_naive_plan
from repro.sparse.levelset import LevelSchedule, level_schedule

__all__ = [
    "ModifiedCRS",
    "poisson2d",
    "poisson3d",
    "Partition",
    "partition_rows",
    "HaloPlan",
    "build_halo_plan",
    "build_naive_plan",
    "LevelSchedule",
    "level_schedule",
]
