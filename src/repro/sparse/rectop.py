"""Rectangular distributed operators (grid-transfer machinery).

``DistributedRectOp`` applies an arbitrary rectangular sparse operator
``y = R x`` between two *differently distributed* vectors — the primitive
multigrid restriction/prolongation needs.  Unlike the square-matrix halo
machinery of Sec. IV (where a consistent cell ordering makes every exchange
a single blockwise copy), a general rectangular operator's remote operands
are scattered in their owners' layouts, so each source tile first *packs*
them into a contiguous staging buffer (a local gather codelet — exactly the
"requires reordering" cost Burchard et al.'s schemes pay) and then ships
one blockwise region per destination tile.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph import Exchange, RegionCopy
from repro.graph.codelet import Codelet, ComputeSet
from repro.graph.program import Execute as ExecuteStep
from repro.sparse.distribute import DistVector, segment_sums

__all__ = ["DistributedRectOp"]


class DistributedRectOp:
    """Distributed ``y = R x`` with output rows owned like ``out_matrix``'s
    vectors and input columns read from ``in_matrix``'s vectors."""

    def __init__(self, ctx, R, out_matrix, in_matrix, name: str | None = None):
        R = sp.csr_matrix(R)
        if R.shape[0] != out_matrix.n or R.shape[1] != in_matrix.n:
            raise ValueError(
                f"operator shape {R.shape} does not map "
                f"n={in_matrix.n} onto n={out_matrix.n}"
            )
        self.ctx = ctx
        self.out_matrix = out_matrix
        self.in_matrix = in_matrix
        self.name = name or ctx.graph.unique_name("rect")
        self._build(R)

    def _build(self, R: sp.csr_matrix) -> None:
        out_plan = self.out_matrix.plan
        in_plan = self.in_matrix.plan
        in_owner = self.in_matrix.partition.owner

        self.local: dict[int, dict] = {}
        #: (src_tile, dst_tile) -> sorted global input cells staged across.
        self.pair_cells: dict[tuple, np.ndarray] = {}

        for t in self.out_matrix.tiles:
            rows_global = out_plan.owned_order[t]  # output layout order
            sub = R[rows_global]  # rows in local output order
            cols_needed = np.unique(sub.indices)
            local_in_map = in_plan.local_index_map(t)
            n_owned_in = in_plan.owned_count(t)

            remote = np.array(
                [c for c in cols_needed if int(in_owner[c]) != t], dtype=np.int64
            )
            by_src: dict[int, list] = {}
            for c in remote:
                by_src.setdefault(int(in_owner[c]), []).append(int(c))

            # The tile's input view: [its owned input shard | staging halo].
            stage_index = {}
            offset = 0
            for src in sorted(by_src):
                cells = np.array(sorted(by_src[src]), dtype=np.int64)
                self.pair_cells[(src, t)] = cells
                for k, c in enumerate(cells):
                    stage_index[int(c)] = n_owned_in + offset + k
                offset += cells.size

            def col_to_local(c: int) -> int:
                if int(in_owner[c]) == t:
                    # Owned input cell: position within the owned layout.
                    return local_in_map[int(c)]
                return stage_index[int(c)]

            cols_local = np.array([col_to_local(int(c)) for c in sub.indices], dtype=np.int32)
            self.local[t] = {
                "n_rows": rows_global.size,
                "row_ptr": sub.indptr.astype(np.int32),
                "cols": cols_local,
                "vals": sub.data.astype(np.float32),
                "stage_size": offset,
                "n_owned_in": n_owned_in,
            }

        # Staging buffers: one per communicating pair, plus the per-tile
        # receive halo.  Allocated in tile SRAM.
        self._stage_send = {}
        self._recv = {}
        for (src, dst), cells in self.pair_cells.items():
            self._stage_send[(src, dst)] = self.ctx.graph.add_single_tile(
                self.ctx.graph.unique_name(f"{self.name}.stage"),
                (cells.size,), "float32", tile_id=src,
            )
        for t in self.out_matrix.tiles:
            size = self.local[t]["stage_size"]
            if size:
                self._recv[t] = self.ctx.graph.add_single_tile(
                    self.ctx.graph.unique_name(f"{self.name}.recv"),
                    (size,), "float32", tile_id=t,
                )
        # Receive offsets per pair (in ascending src order, matching stage_index).
        self._recv_offset = {}
        for t in self.out_matrix.tiles:
            offset = 0
            for src in sorted(s for (s, d) in self.pair_cells if d == t):
                self._recv_offset[(src, t)] = offset
                offset += self.pair_cells[(src, t)].size

    # -- program steps ------------------------------------------------------------------

    def apply(self, x: DistVector, y: DistVector) -> None:
        """Append the steps computing ``y = R x``."""
        if x.matrix is not self.in_matrix or y.matrix is not self.out_matrix:
            raise ValueError("vectors do not match this operator's distributions")
        model = self.ctx.device.model
        in_plan = self.in_matrix.plan

        # Phase 1: pack codelets on every source tile.
        if self.pair_cells:
            cs_pack = ComputeSet(self.ctx.graph.unique_name("cs_pack"), category="transfer")
            for (src, dst), cells in self.pair_cells.items():
                lmap = in_plan.local_index_map(src)
                positions = np.array([lmap[int(c)] for c in cells], dtype=np.int64)
                stage = self._stage_send[(src, dst)]

                def run(ctx, src=src, positions=positions, stage=stage):
                    stage.shard(src).data[...] = x.owned.var.shard(src).data[positions]

                def cycles(ctx, n=cells.size):
                    # One load+store per element, no overlap (gather).
                    return model.vertex_overhead + n * 4

                cs_pack.add_vertex(Codelet("pack", run, cycles, category="transfer"), src, {})
            self.ctx.append(ExecuteStep(cs_pack))

            # Phase 2: one blockwise copy per communicating pair.
            copies = [
                RegionCopy(
                    self._stage_send[(src, dst)], src, 0,
                    ((self._recv[dst], dst, self._recv_offset[(src, dst)]),),
                    cells.size,
                )
                for (src, dst), cells in self.pair_cells.items()
            ]
            self.ctx.append(Exchange(copies, name="exchange"))

        # Phase 3: the local sparse apply on every output tile.
        cs = ComputeSet(self.ctx.graph.unique_name("cs_rect"), category="transfer")
        workers = self.ctx.device.spec.workers_per_tile
        for t in self.out_matrix.tiles:
            loc = self.local[t]

            def run(ctx, t=t, loc=loc):
                xin = x.owned.var.shard(t).data
                if loc["stage_size"]:
                    xin = np.concatenate([xin, self._recv[t].shard(t).data])
                contrib = loc["vals"] * xin[loc["cols"]]
                y.owned.var.shard(t).data[...] = segment_sums(
                    contrib, loc["row_ptr"], loc["n_rows"]
                )

            def cycles(ctx, loc=loc):
                nnz = loc["vals"].size
                rows = loc["n_rows"]
                per_worker_nnz = -(-nnz // workers)
                per_worker_rows = -(-rows // workers)
                return [model.spmv_rows("float32", per_worker_nnz, per_worker_rows)] * min(
                    workers, max(rows, 1)
                )

            cs.add_vertex(Codelet(f"rect@{t}", run, cycles, category="transfer"), t, {})
        self.ctx.append(ExecuteStep(cs))
