"""Poisson-equation workload generators (Sec. VI-A).

The scaling benches use matrices from discretizing the Poisson equation on a
regular cubic 3-D grid with a 7-point stencil; a 5-point 2-D variant is
provided for small examples.  Both return :class:`ModifiedCRS` plus the grid
dimensions (which the structured partitioner needs).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.crs import ModifiedCRS

__all__ = ["poisson3d", "poisson2d", "poisson_rhs"]


def _lap1d(n: int) -> sp.csr_matrix:
    return sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr")


def poisson3d(nx: int, ny: int | None = None, nz: int | None = None):
    """7-point Poisson matrix on an ``nx × ny × nz`` grid.

    Returns ``(ModifiedCRS, (nx, ny, nz))``.  Row index = x + nx*(y + ny*z).
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    ix, iy, iz = sp.identity(nx), sp.identity(ny), sp.identity(nz)
    a = (
        sp.kron(iz, sp.kron(iy, _lap1d(nx)))
        + sp.kron(iz, sp.kron(_lap1d(ny), ix))
        + sp.kron(sp.kron(_lap1d(nz), iy), ix)
    )
    return ModifiedCRS.from_scipy(a), (nx, ny, nz)


def poisson2d(nx: int, ny: int | None = None):
    """5-point Poisson matrix on an ``nx × ny`` grid.

    Returns ``(ModifiedCRS, (nx, ny))``.  Row index = x + nx*y.
    """
    ny = nx if ny is None else ny
    a = sp.kron(sp.identity(ny), _lap1d(nx)) + sp.kron(_lap1d(ny), sp.identity(nx))
    return ModifiedCRS.from_scipy(a), (nx, ny)


def poisson_rhs(n: int, seed: int = 0) -> np.ndarray:
    """A reproducible smooth-ish right-hand side for solver experiments."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n)
