"""Sliced ELLPACK (SELL-C-σ) — the format the paper leaves as future work.

Sec. II-C argues that ELLPACK/SELL's benefits (vectorizable, cache-friendly
column-major chunks) largely evaporate on the IPU: the 2-wide float32 SIMD
cannot pair the *gathered* ``x[col]`` operands anyway, and the cacheless
SRAM makes the contiguous layout irrelevant — so the expected gain reduces
to amortized per-row overhead, paid for with padding.  This module
implements the format so that prediction can be tested (ablation bench
``bench_ablation_sell.py``).

Layout: rows are sorted by descending length within windows of ``sigma``
rows, grouped into chunks of ``chunk`` rows, and each chunk is padded to
its longest row and stored column-major.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.cycles import CycleModel, OP_CYCLES
from repro.sparse.crs import ModifiedCRS

__all__ = ["SellBlock", "sell_spmv_cycles", "crs_spmv_cycles"]


@dataclass
class SellBlock:
    """A square block in SELL-C-σ with the diagonal kept dense (the same
    modified layout as our CRS: Sec. II-C)."""

    n: int
    chunk: int
    diag: np.ndarray
    #: Per chunk: (rows, padded_cols, padded_vals) with column-major padding;
    #: padded arrays have shape (width, chunk) — entry [k, i] is the k-th
    #: coefficient of the chunk's i-th row (or padding: col == row, val == 0).
    chunks: list
    perm: np.ndarray  # permutation applied by the length sort (new -> old)

    @property
    def padded_nnz(self) -> int:
        return sum(c[2].size for c in self.chunks)

    @property
    def nnz(self) -> int:
        return int(sum((c[2] != 0).sum() for c in self.chunks))

    @property
    def padding_ratio(self) -> float:
        stored = self.padded_nnz
        return stored / max(self.nnz, 1)

    @classmethod
    def from_crs(cls, crs: ModifiedCRS, chunk: int = 4, sigma: int | None = None) -> "SellBlock":
        n = crs.n
        sigma = n if sigma is None else sigma
        lengths = crs.rows_nnz()
        order = np.arange(n)
        for start in range(0, n, sigma):
            window = order[start : start + sigma]
            order[start : start + sigma] = window[np.argsort(-lengths[window], kind="stable")]
        chunks = []
        for start in range(0, n, chunk):
            rows = order[start : start + chunk]
            width = int(lengths[rows].max()) if rows.size else 0
            cols = np.tile(rows, (width, 1)).astype(np.int64)  # pad: col = row
            vals = np.zeros((width, rows.size))
            for i, r in enumerate(rows):
                c, v = crs.row(int(r))
                cols[: c.size, i] = c
                vals[: v.size, i] = v
            chunks.append((rows.copy(), cols, vals))
        return cls(n=n, chunk=chunk, diag=crs.diag.copy(), chunks=chunks, perm=order)

    def spmv(self, x) -> np.ndarray:
        """Reference SpMV in the SELL layout (must equal the CRS result)."""
        x = np.asarray(x)
        y = self.diag * x
        for rows, cols, vals in self.chunks:
            if vals.size:
                y[rows] += (vals * x[cols]).sum(axis=0)
        return y


def sell_spmv_cycles(model: CycleModel, block: SellBlock, workers: int = 6) -> int:
    """Modeled cycles of a SELL SpMV on one tile (max over workers).

    Per padded coefficient: one mul + one add at scalar rate (the gathered
    ``x[col]`` defeats SIMD pairing, same as CRS); per chunk a small fixed
    overhead replaces CRS's per-row branch — the format's entire upside.
    """
    per_nnz = OP_CYCLES["float32"]["mul"] + OP_CYCLES["float32"]["add"]
    chunk_overhead = 4
    splits = np.array_split(np.arange(len(block.chunks)), workers)
    worst = 0
    for s in splits:
        padded = sum(block.chunks[i][2].size for i in s)
        rows = sum(block.chunks[i][0].size for i in s)
        cost = (
            model.vertex_overhead
            + padded * per_nnz
            + len(s) * chunk_overhead
            + rows * OP_CYCLES["float32"]["mul"]  # dense diagonal
        )
        worst = max(worst, cost)
    return worst


def crs_spmv_cycles(model: CycleModel, crs: ModifiedCRS, workers: int = 6) -> int:
    """Modeled cycles of the modified-CRS SpMV on one tile (max over workers)."""
    rows = np.array_split(np.arange(crs.n), workers)
    lengths = crs.rows_nnz()
    return max(
        model.spmv_rows("float32", int(lengths[s].sum()), s.size) for s in rows if s.size
    )
