"""Modified Compressed Row Storage (Sec. II-C).

Diagonal entries are stored in a separate dense array rather than inside
the CRS structure.  This saves their column indices and gives solvers like
Gauss-Seidel and (D)ILU direct access to each row's pivot.  The CRS arrays
hold only the off-diagonal entries.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["ModifiedCRS"]


class ModifiedCRS:
    """A square sparse matrix in modified CRS format.

    Attributes
    ----------
    diag : float array of shape (n,)
        Dense diagonal (must be structurally nonzero).
    values, col_idx : arrays of length nnz_offdiag
        Off-diagonal entries, row-major.
    row_ptr : int array of shape (n+1,)
        Row starts into ``values``/``col_idx``.
    """

    def __init__(self, diag, values, col_idx, row_ptr, dtype=np.float64):
        self.diag = np.asarray(diag, dtype=dtype)
        self.values = np.asarray(values, dtype=dtype)
        self.col_idx = np.asarray(col_idx, dtype=np.int64)
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64)
        n = self.diag.size
        if self.row_ptr.size != n + 1:
            raise ValueError("row_ptr must have n+1 entries")
        if self.row_ptr[-1] != self.values.size or self.values.size != self.col_idx.size:
            raise ValueError("inconsistent CRS arrays")
        if np.any(self.diag == 0):
            raise ValueError(
                "modified CRS requires nonzero diagonal entries "
                "(apply a row permutation first)"
            )

    # -- properties ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.diag.size

    @property
    def shape(self):
        return (self.n, self.n)

    @property
    def nnz(self) -> int:
        """Total stored entries including the dense diagonal."""
        return self.values.size + self.n

    @property
    def nnz_offdiag(self) -> int:
        return self.values.size

    def row(self, i: int):
        """Off-diagonal (cols, vals) of row ``i``."""
        s, e = self.row_ptr[i], self.row_ptr[i + 1]
        return self.col_idx[s:e], self.values[s:e]

    # -- conversions -------------------------------------------------------------------

    @classmethod
    def from_scipy(cls, mat, dtype=np.float64) -> "ModifiedCRS":
        """Build from any SciPy sparse matrix (square, nonzero diagonal)."""
        csr = sp.csr_matrix(mat)
        if csr.shape[0] != csr.shape[1]:
            raise ValueError("matrix must be square")
        csr.sum_duplicates()
        csr.sort_indices()
        diag = csr.diagonal()
        # Strip the diagonal out of the CRS structure.
        offdiag = csr - sp.diags(diag, format="csr")
        offdiag.eliminate_zeros()
        offdiag.sort_indices()
        return cls(diag, offdiag.data, offdiag.indices, offdiag.indptr, dtype=dtype)

    def to_scipy(self) -> sp.csr_matrix:
        off = sp.csr_matrix(
            (self.values, self.col_idx, self.row_ptr), shape=self.shape
        )
        return (off + sp.diags(self.diag)).tocsr()

    # -- operations --------------------------------------------------------------------------

    def spmv(self, x) -> np.ndarray:
        """Reference (host-side) SpMV: ``y = A x``.  Used by tests/baselines."""
        x = np.asarray(x)
        y = self.diag * x
        contrib = self.values * x[self.col_idx]
        np.add.at(y, np.repeat(np.arange(self.n), np.diff(self.row_ptr)), contrib)
        return y

    def permute(self, perm) -> "ModifiedCRS":
        """Symmetric permutation ``PAPᵀ``: row i of the result is row perm[i]
        of the original, with columns relabeled accordingly."""
        perm = np.asarray(perm)
        if perm.size != self.n or set(perm.tolist()) != set(range(self.n)):
            raise ValueError("perm must be a permutation of 0..n-1")
        csr = self.to_scipy()
        p = sp.csr_matrix(
            (np.ones(self.n), (np.arange(self.n), perm)), shape=self.shape
        )
        return ModifiedCRS.from_scipy(p @ csr @ p.T, dtype=self.values.dtype if self.values.size else np.float64)

    def rows_nnz(self) -> np.ndarray:
        """Off-diagonal entries per row."""
        return np.diff(self.row_ptr)

    def astype(self, dtype) -> "ModifiedCRS":
        return ModifiedCRS(self.diag, self.values, self.col_idx, self.row_ptr, dtype=dtype)

    def __repr__(self):
        return f"ModifiedCRS(n={self.n}, nnz={self.nnz})"
