"""Distributed matrices and vectors on the (simulated) IPU.

``DistributedMatrix`` decomposes a :class:`ModifiedCRS` row-wise across the
device's tiles (Sec. II-B), reorders each tile's cells per the Sec. IV halo
strategy, and stores the local modified-CRS blocks in tile SRAM.  Vectors
(``DistVector``) carry an *owned* tensor (the authoritative values, in the
reordered layout) plus a *halo* tensor (cached neighbor values refreshed by
blockwise exchanges).

SpMV numerics:

- working precision (float32): true float32 products; row sums are short
  (one rounding vs. per-term rounding differs below the f32 noise floor),
- extended precision (for the MPIR residual): products/accumulation are
  evaluated in binary64 and the result is stored in the target
  representation (double-word split or float64).  The *stored* precision of
  operands and results — which is what bounds MPIR's attainable residual —
  is exactly that of the paper's double-word/soft-float pipelines, while
  the cycle model charges the Table I costs of those pipelines.
"""

from __future__ import annotations

import numpy as np

from repro.graph import Exchange, Interval
from repro.graph.codelet import Codelet, ComputeSet, SpmvSpec
from repro.graph.program import Execute as ExecuteStep
from repro.sparse.crs import ModifiedCRS
from repro.sparse.halo import HaloPlan, build_halo_plan, build_naive_plan
from repro.sparse.partition import Partition, partition_rows
from repro.tensordsl import Tensor, Type

__all__ = ["DistVector", "DistributedMatrix", "segment_sums"]


def segment_sums(contrib: np.ndarray, row_ptr: np.ndarray, n: int) -> np.ndarray:
    """Per-row sums of CRS-ordered contributions (empty rows -> 0).

    ``contrib`` may carry a trailing batch axis ``(nnz, B)`` (the SpMM path);
    segments then reduce along axis 0 — ``np.add.reduceat`` over rows is
    bit-identical per column to the 1-D per-column reduction, so batched
    SpMV results match single-RHS SpMVs exactly.
    """
    if contrib.size == 0:
        return np.zeros((n,) + contrib.shape[1:], dtype=contrib.dtype)
    starts = row_ptr[:-1]
    pad = np.zeros((1,) + contrib.shape[1:], dtype=contrib.dtype)
    padded = np.concatenate([contrib, pad])
    sums = np.add.reduceat(padded, np.minimum(starts, contrib.shape[0]), axis=0)
    empty = row_ptr[1:] == starts
    sums[empty] = 0
    return sums


class DistVector:
    """A vector distributed in the halo-reordered layout.

    ``owned`` holds each tile's authoritative cells; ``halo`` holds cached
    copies of neighbor cells, refreshed by :meth:`DistributedMatrix.exchange`.
    TensorDSL algebra applies to ``owned`` (all owned tensors of one matrix
    share the same mapping, so they combine freely).
    """

    def __init__(self, matrix: "DistributedMatrix", owned: Tensor, halo: Tensor):
        self.matrix = matrix
        self.owned = owned
        self.halo = halo

    @property
    def t(self) -> Tensor:
        """The owned tensor — use this in TensorDSL expressions."""
        return self.owned

    @property
    def dtype(self) -> str:
        return self.owned.dtype

    @property
    def batch(self) -> int:
        return self.owned.var.batch

    def write_global(self, values) -> None:
        """Host-write values given in the ORIGINAL row order (batched vectors
        take ``(batch, n)``, or ``(n,)`` broadcast to every RHS)."""
        values = np.asarray(values)
        self.owned.write(values[..., self.matrix.perm])

    def read_global(self) -> np.ndarray:
        """Host-read values in the ORIGINAL row order (batched: ``(batch, n)``)."""
        reordered = self.owned.value()
        out = np.empty_like(reordered)
        out[..., self.matrix.perm] = reordered
        return out

    def __repr__(self):
        batch = f", batch={self.batch}" if self.batch > 1 else ""
        return f"DistVector(n={self.matrix.n}, dtype={self.dtype}{batch})"


class DistributedMatrix:
    """A modified-CRS matrix decomposed across tiles with halo regions."""

    def __init__(
        self,
        ctx,
        crs: ModifiedCRS,
        num_tiles: int | None = None,
        grid_dims=None,
        partition: Partition | None = None,
        plan: HaloPlan | None = None,
        blockwise: bool = True,
        name: str = "A",
    ):
        self.ctx = ctx
        self.crs = crs
        self.name = name
        device = ctx.device
        if partition is None:
            parts = min(num_tiles or device.num_tiles, crs.n, device.num_tiles)
            partition = partition_rows(crs, parts, grid_dims=grid_dims)
        self.partition = partition
        if plan is None:
            builder = build_halo_plan if blockwise else build_naive_plan
            plan = builder(crs, partition)
        self.plan = plan
        self.tiles = plan.tiles()
        #: perm[new_index] = old_index (the Sec. IV reordering).
        self.perm = plan.global_permutation()
        self._build_local_blocks()

    # -- construction -----------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.crs.n

    def _build_local_blocks(self) -> None:
        """Extract and allocate each tile's local modified-CRS block."""
        crs = self.crs
        self.local: dict[int, dict] = {}
        device = self.ctx.device
        for t in self.tiles:
            rows = self.plan.owned_order[t]
            lmap = self.plan.local_index_map(t)
            n_loc = rows.size
            ptr = [0]
            cols_loc, vals = [], []
            for g in rows:
                cg, vg = crs.row(int(g))
                cols_loc.extend(lmap[int(c)] for c in cg)
                vals.extend(vg)
                ptr.append(len(cols_loc))
            vals64 = np.asarray(vals, dtype=np.float64)
            diag64 = crs.diag[rows].astype(np.float64)
            local = {
                "rows_global": rows,
                "n": n_loc,
                "diag": diag64.astype(np.float32),
                "values": vals64.astype(np.float32),
                "col_idx": np.asarray(cols_loc, dtype=np.int32),
                "row_ptr": np.asarray(ptr, dtype=np.int32),
            }
            # Double-word copy of the coefficients for the extended-precision
            # residual SpMV of MPIR (standard mixed-precision IR practice:
            # the residual must see A beyond working precision, else the f32
            # rounding of A bounds the attainable accuracy).
            local["values_lo"] = (vals64 - local["values"].astype(np.float64)).astype(np.float32)
            local["diag_lo"] = (diag64 - local["diag"].astype(np.float64)).astype(np.float32)
            local["values_ext"] = local["values"].astype(np.float64) + local["values_lo"].astype(np.float64)
            local["diag_ext"] = local["diag"].astype(np.float64) + local["diag_lo"].astype(np.float64)
            tile = device.tile(t)
            for key in ("diag", "values", "col_idx", "row_ptr", "values_lo", "diag_lo"):
                tile.alloc(f"{self.name}.{key}@{t}", local[key])
            local["row_of_entry"] = np.repeat(
                np.arange(n_loc, dtype=np.int32), np.diff(local["row_ptr"])
            )
            self.local[t] = local

    # -- vectors -------------------------------------------------------------------------

    def _owned_mapping(self):
        offset = 0
        mapping = []
        for t in self.tiles:
            c = self.plan.owned_count(t)
            mapping.append(Interval(t, offset, offset + c))
            offset += c
        return mapping

    def _halo_mapping(self):
        offset = 0
        mapping = []
        for t in self.tiles:
            c = self.plan.halo_count(t)
            if c:
                mapping.append(Interval(t, offset, offset + c))
                offset += c
        return mapping, offset

    def vector(self, name: str | None = None, dtype: str = Type.FLOAT32, data=None,
               batch: int = 1) -> DistVector:
        """Create a distributed vector compatible with this matrix.

        ``batch > 1`` creates a multi-RHS vector: every owned/halo element
        stores ``batch`` contiguous values, so one halo exchange refreshes
        all RHS columns at once.
        """
        name = name or self.ctx.graph.unique_name("v")
        owned = self.ctx.from_mapping(name, (self.n,), dtype, self._owned_mapping(), batch=batch)
        halo_map, halo_total = self._halo_mapping()
        if halo_total:
            halo = self.ctx.from_mapping(name + ".halo", (halo_total,), dtype, halo_map, batch=batch)
        else:
            halo = self.ctx.tensor((), dtype=dtype, name=name + ".halo", tile_ids=self.tiles, batch=batch)
        vec = DistVector(self, owned, halo)
        if data is not None:
            vec.write_global(data)
        return vec

    # -- program steps ----------------------------------------------------------------------

    def exchange(self, vec: DistVector) -> None:
        """Append the blockwise halo exchange refreshing ``vec``'s halo buffer.

        One communication program (``Exchange`` step) is emitted per sending
        tile — the blockwise programs of Sec. IV.  The graph compiler's
        exchange-coalescing pass merges adjacent programs into a single
        fabric phase, so the optimized schedule pays one BSP sync for the
        whole halo update; without the pass each block pays its own sync.
        """
        copies = self.plan.copies(vec.owned.var, vec.halo.var)
        by_src: dict[int, list] = {}
        for rc in copies:
            by_src.setdefault(rc.src_tile, []).append(rc)
        for t in sorted(by_src):
            self.ctx.append(Exchange(by_src[t], name="exchange"))

    def _worker_row_chunks(self, t: int, workers: int):
        """Contiguous row ranges per worker, balanced by nonzero count."""
        local = self.local[t]
        nnz_prefix = local["row_ptr"]
        n = local["n"]
        total = int(nnz_prefix[-1]) + n  # off-diag + diagonal work
        chunks = []
        start = 0
        for w in range(workers):
            target = (w + 1) * total / workers
            # Smallest end such that work(0..end) >= target.
            end = int(np.searchsorted(nnz_prefix[1:] + np.arange(1, n + 1), target, side="left")) + 1
            end = min(max(end, start), n)
            if w == workers - 1:
                end = n
            if end > start:
                chunks.append((start, end))
            start = end
        return chunks

    def spmv(self, x: DistVector, y: DistVector, accumulate_category: str | None = None) -> None:
        """Append ``y = A x`` (halo exchange + per-tile SpMV compute set).

        Working precision when both vectors are float32; extended precision
        (binary64 evaluation, result stored in ``y.dtype``) otherwise.
        """
        self.exchange(x)
        batch = x.owned.var.batch
        if batch != y.owned.var.batch:
            raise ValueError(
                f"spmv batch mismatch: x batch {batch} vs y batch {y.owned.var.batch}"
            )
        if batch > 1 and (x.dtype != Type.FLOAT32 or y.dtype != Type.FLOAT32):
            raise ValueError(
                "batched SpMV supports the float32 working-precision path only"
            )
        cost_dtype = x.dtype if x.dtype != Type.FLOAT32 else y.dtype
        # SpMVs bucket as "spmv" regardless of precision (Table IV's taxonomy:
        # "Extended-Precision Ops" covers the MPIR vector ops, while the
        # residual SpMV counts as SpMV); the *cost* still uses the extended
        # per-op cycle counts.
        category = accumulate_category or "spmv"
        model = self.ctx.device.model
        workers = self.ctx.device.spec.workers_per_tile
        cs = ComputeSet(self.ctx.graph.unique_name("cs_spmv"), category=category)
        for t in self.tiles:
            local = self.local[t]
            chunks = self._worker_row_chunks(t, workers)

            def run(ctx, t=t, local=local):
                self._spmv_tile(t, local, x, y)

            def cycles(ctx, t=t, local=local, chunks=chunks):
                ptr = local["row_ptr"]
                # SpMM: every nonzero touches all `batch` RHS columns; the
                # vertex overhead amortizes across the batch (the PopSparse
                # effect the multi-RHS path exists for).
                return [
                    model.spmv_rows(
                        cost_dtype, int(ptr[e] - ptr[s]) * batch, (e - s) * batch
                    )
                    for s, e in chunks
                ] or [model.vertex_overhead]

            # Whole-device lowering only vectorizes the f32 working-precision
            # path; extended-precision SpMVs fall back to batched dispatch.
            spec = (
                SpmvSpec(self, x, y)
                if x.dtype == Type.FLOAT32 and y.dtype == Type.FLOAT32
                else None
            )
            cs.add_vertex(
                Codelet(f"spmv@{t}", run, cycles, category=category, spec=spec), t, {}
            )
        self.ctx.append(ExecuteStep(cs))

    def _spmv_tile(self, t: int, local: dict, x: DistVector, y: DistVector) -> None:
        n_loc = local["n"]
        xo_sh = x.owned.var.shard(t)
        yo_sh = y.owned.var.shard(t)
        halo_sh = x.halo.var.shard(t) if self.plan.halo_count(t) else None

        if x.dtype == Type.FLOAT32 and y.dtype == Type.FLOAT32:
            xfull = (
                np.concatenate([xo_sh.data, halo_sh.data])
                if halo_sh is not None
                else xo_sh.data
            )
            if x.owned.var.batch > 1:
                # SpMM: (nnz, B) contributions, one segmented sum over rows.
                contrib = local["values"][:, None] * xfull[local["col_idx"]]
                sums = segment_sums(contrib, local["row_ptr"], n_loc)
                yo_sh.data[...] = local["diag"][:, None] * xo_sh.data + sums
                return
            contrib = local["values"] * xfull[local["col_idx"]]
            sums = segment_sums(contrib, local["row_ptr"], n_loc)
            yo_sh.data[...] = local["diag"] * xo_sh.data + sums
            return

        # Extended precision: binary64 evaluation, stored per y.dtype.
        def wide(shard, dtype):
            if dtype == Type.DOUBLEWORD:
                return shard.data.astype(np.float64) + shard.lo.astype(np.float64)
            return shard.data.astype(np.float64)

        xo = wide(xo_sh, x.dtype)
        xfull = (
            np.concatenate([xo, wide(halo_sh, x.dtype)]) if halo_sh is not None else xo
        )
        contrib = local["values_ext"] * xfull[local["col_idx"]]
        sums = np.bincount(local["row_of_entry"], weights=contrib, minlength=n_loc)
        result = local["diag_ext"] * xo + sums
        if y.dtype == Type.DOUBLEWORD:
            hi = result.astype(np.float32)
            yo_sh.data[...] = hi
            yo_sh.lo[...] = (result - hi.astype(np.float64)).astype(np.float32)
        elif y.dtype == Type.FLOAT64:
            yo_sh.data[...] = result
        else:
            yo_sh.data[...] = result.astype(np.float32)
