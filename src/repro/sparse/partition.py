"""Row-wise matrix partitioning across tiles (Sec. II-B / IV).

The matrix is conceptualized as a mesh of cells (rows); partitioning assigns
each cell to a tile.  Two strategies:

- **grid**: block decomposition of a structured grid (the Poisson scaling
  benches) — near-cubic tile subdomains minimize the surface-to-volume
  ratio, i.e. the halo size.
- **graph**: for general matrices, a bandwidth-reducing ordering (reverse
  Cuthill-McKee) chunked into equal contiguous pieces — locality-preserving
  subdomains with small separators, without an external partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.sparse.crs import ModifiedCRS

__all__ = ["Partition", "partition_rows", "partition_grid", "partition_graph", "grid_factors"]


@dataclass
class Partition:
    """Assignment of matrix rows to tiles."""

    owner: np.ndarray  # row -> tile id
    num_parts: int

    def __post_init__(self):
        self.owner = np.asarray(self.owner, dtype=np.int64)

    def rows_of(self, tile: int) -> np.ndarray:
        """Rows owned by ``tile``, ascending."""
        return np.flatnonzero(self.owner == tile)

    def counts(self) -> np.ndarray:
        return np.bincount(self.owner, minlength=self.num_parts)

    @property
    def n(self) -> int:
        return self.owner.size


def grid_factors(parts: int, ndim: int) -> tuple:
    """Factor ``parts`` into ``ndim`` near-equal factors (px*py*pz = parts)."""
    factors = [1] * ndim
    remaining = parts
    for axis in range(ndim - 1):
        target = round(remaining ** (1.0 / (ndim - axis)))
        best = 1
        for f in range(1, remaining + 1):
            if remaining % f == 0 and abs(f - target) < abs(best - target):
                best = f
        factors[axis] = best
        remaining //= best
    factors[ndim - 1] = remaining
    return tuple(factors)


def partition_grid(dims, parts: int) -> Partition:
    """Block-decompose a structured grid of ``dims = (nx[, ny[, nz]])``."""
    dims = tuple(dims)
    ndim = len(dims)
    pf = grid_factors(parts, ndim)
    if any(p > d for p, d in zip(pf, dims)):
        raise ValueError(f"cannot split grid {dims} into {pf} blocks")
    # Block index of each coordinate along each axis.
    axis_block = [
        np.minimum((np.arange(d) * p) // d, p - 1) for d, p in zip(dims, pf)
    ]
    # Row index convention: x + nx*(y + ny*z).
    grids = np.indices(dims)  # shape (ndim, *dims), index [axis][x,y,z]
    flat = np.zeros(dims, dtype=np.int64)
    blk = np.zeros(dims, dtype=np.int64)
    stride = 1
    for axis in range(ndim):
        flat += grids[axis] * stride
        stride *= dims[axis]
    bstride = 1
    for axis in range(ndim):
        blk += axis_block[axis][grids[axis]] * bstride
        bstride *= pf[axis]
    owner = np.zeros(int(np.prod(dims)), dtype=np.int64)
    owner[flat.ravel()] = blk.ravel()
    return Partition(owner=owner, num_parts=parts)


def partition_graph(matrix: ModifiedCRS, parts: int) -> Partition:
    """Chunk a reverse-Cuthill-McKee ordering into equal contiguous pieces."""
    adj = sp.csr_matrix(
        (np.ones_like(matrix.values), matrix.col_idx, matrix.row_ptr),
        shape=matrix.shape,
    )
    order = reverse_cuthill_mckee(adj, symmetric_mode=True)
    owner = np.empty(matrix.n, dtype=np.int64)
    bounds = np.linspace(0, matrix.n, parts + 1).astype(np.int64)
    for t in range(parts):
        owner[order[bounds[t] : bounds[t + 1]]] = t
    return Partition(owner=owner, num_parts=parts)


def partition_rows(matrix: ModifiedCRS, parts: int, grid_dims=None) -> Partition:
    """Partition ``matrix`` rows over ``parts`` tiles.

    With ``grid_dims`` the structured block decomposition is used; otherwise
    the general graph strategy.
    """
    if parts < 1:
        raise ValueError("need at least one part")
    if parts == 1:
        return Partition(owner=np.zeros(matrix.n, dtype=np.int64), num_parts=1)
    if grid_dims is not None:
        part = partition_grid(grid_dims, parts)
        if part.n != matrix.n:
            raise ValueError("grid_dims inconsistent with matrix size")
        return part
    return partition_graph(matrix, parts)
