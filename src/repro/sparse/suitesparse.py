"""Benchmark matrices: synthetic doubles of the paper's SuiteSparse set.

The paper evaluates on four SuiteSparse matrices (Table II) — all real,
symmetric, positive definite.  The collection is not available offline and
the originals (0.5–1.6 M rows) exceed laptop-scale simulation, so this
module generates *structural doubles*: SPD matrices of the same class
(graph-Laplacian based, hence symmetric positive definite by construction)
that preserve each original's character at a configurable reduced size:

==============  ======================================  ====================
paper matrix    character                               double
==============  ======================================  ====================
G3_circuit      circuit simulation; ~4.9 nnz/row;       2-D grid Laplacian +
                irregular long-range connections        random long edges
af_shell7       sheet-metal shell; ~35 nnz/row;         thin 3-D slab with a
                thin 3-D structure, wide stencil        27-point Laplacian
Geo_1438        geomechanics; ~44 nnz/row; 3-D,         anisotropic 3-D
                anisotropic stiffness                   27-point Laplacian
Hook_1498       steel hook elasticity; ~41 nnz/row;     3-D 27-point with
                strong material-coefficient jumps       1e4 contrast regions
==============  ======================================  ====================

Each generator documents why the substitution preserves the behaviour the
experiments measure (structure class, nnz/row, SPD-ness, conditioning).
Users with the real files can load them via :func:`load_matrix_market`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.crs import ModifiedCRS

__all__ = [
    "g3_circuit_like",
    "af_shell_like",
    "geo_like",
    "hook_like",
    "load_matrix_market",
    "MATRICES",
    "PAPER_STATS",
]


def _laplacian_from_edges(n, rows, cols, weights, shift=1e-3) -> sp.csr_matrix:
    """SPD graph Laplacian  L = D - W + shift*I  from an undirected edge list."""
    w = sp.coo_matrix((weights, (rows, cols)), shape=(n, n))
    w = w + w.T
    degree = np.asarray(w.sum(axis=1)).ravel()
    return (sp.diags(degree + shift) - w).tocsr()


def _grid_edges(dims, offsets, weight_fn, rng):
    """Edge list of a structured grid graph for the given positive offsets."""
    nd = len(dims)
    idx = np.arange(int(np.prod(dims))).reshape(dims[::-1])  # z,y,x layout
    rows, cols, weights = [], [], []
    for off in offsets:
        src = [slice(None)] * nd
        dst = [slice(None)] * nd
        for axis, d in enumerate(off):  # off = (dx, dy, dz, ...)
            ax = nd - 1 - axis  # numpy axis for this coordinate
            if d == 0:
                continue
            if d > 0:
                src[ax] = slice(0, dims[axis] - d)
                dst[ax] = slice(d, dims[axis])
            else:
                src[ax] = slice(-d, dims[axis])
                dst[ax] = slice(0, dims[axis] + d)
        i = idx[tuple(src)].ravel()
        j = idx[tuple(dst)].ravel()
        rows.append(i)
        cols.append(j)
        weights.append(weight_fn(i, j, off, rng))
    return np.concatenate(rows), np.concatenate(cols), np.concatenate(weights)


def _offsets_27():
    """One representative offset per undirected neighbor pair of the full
    26-neighbor stencil (13 offsets; the Laplacian builder symmetrizes)."""
    offs = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) != (0, 0, 0)
    ]
    return [o for o in offs if o > tuple(-c for c in o)]


def g3_circuit_like(grid: int = 110, extra_edge_frac: float = 0.04, seed: int = 0, shift: float = 1e-4):
    """Circuit-simulation double of *G3_circuit*.

    A 2-D grid Laplacian (≈5 nnz/row like the original's 4.86) with a
    sprinkling of random long-range "wire" edges that break the pure grid
    structure — the feature that makes circuit matrices partition worse than
    mesh matrices.  SPD by construction.
    """
    rng = np.random.default_rng(seed)
    n = grid * grid
    rows, cols, weights = _grid_edges(
        (grid, grid), [(1, 0), (0, 1)], lambda i, j, o, r: r.uniform(0.5, 2.0, i.size), rng
    )
    m = int(extra_edge_frac * n)
    ri = rng.integers(0, n, m)
    rj = rng.integers(0, n, m)
    keep = ri != rj
    rows = np.concatenate([rows, ri[keep]])
    cols = np.concatenate([cols, rj[keep]])
    weights = np.concatenate([weights, rng.uniform(0.1, 1.0, keep.sum())])
    return ModifiedCRS.from_scipy(_laplacian_from_edges(n, rows, cols, weights, shift=shift))


def af_shell_like(nx: int = 56, ny: int = 56, layers: int = 4, seed: int = 1, shift: float = 1e-4):
    """Sheet-metal-shell double of *af_shell7*.

    A thin 3-D slab (a shell has large in-plane extent, few through-thickness
    layers) with the full 27-point coupling — matching the original's wide
    ~35 nnz/row stencil and quasi-2-D connectivity.  SPD by construction.
    """
    rng = np.random.default_rng(seed)
    dims = (nx, ny, layers)
    rows, cols, weights = _grid_edges(
        dims,
        _offsets_27(),
        lambda i, j, o, r: np.full(i.size, 1.0 / (abs(o[0]) + abs(o[1]) + abs(o[2]))),
        rng,
    )
    return ModifiedCRS.from_scipy(
        _laplacian_from_edges(int(np.prod(dims)), rows, cols, weights, shift=shift)
    )


def geo_like(nx: int = 24, ny: int = 24, nz: int = 24, anisotropy: float = 25.0, seed: int = 2, shift: float = 1e-3):
    """Geomechanics double of *Geo_1438*.

    A 3-D 27-point Laplacian (≈44 nnz/row in the original) with anisotropic
    vertical stiffness — geological strata are much stiffer vertically than
    horizontally, which is what drives the original's conditioning.
    """
    rng = np.random.default_rng(seed)

    def weight(i, j, off, r):
        base = 1.0 / (abs(off[0]) + abs(off[1]) + abs(off[2]))
        return np.full(i.size, base * (anisotropy if off[2] != 0 else 1.0))

    dims = (nx, ny, nz)
    rows, cols, weights = _grid_edges(dims, _offsets_27(), weight, rng)
    return ModifiedCRS.from_scipy(
        _laplacian_from_edges(int(np.prod(dims)), rows, cols, weights, shift=shift)
    )


def hook_like(nx: int = 24, ny: int = 24, nz: int = 24, contrast: float = 1e4, seed: int = 3, shift: float = 1e-1):
    """Steel-hook double of *Hook_1498*.

    A 3-D 27-point Laplacian whose coefficients jump by ``contrast`` between
    two material regions (steel vs. void/filler in the original), producing
    the high condition number that makes Hook_1498 the slowest-converging of
    the four.
    """
    rng = np.random.default_rng(seed)
    n = nx * ny * nz
    # Material field: a hard inclusion occupying a corner octant.
    z, y, x = np.meshgrid(range(nz), range(ny), range(nx), indexing="ij")
    hard = ((x.ravel() < nx // 2) & (y.ravel() < ny // 2)).astype(np.float64)
    coeff = 1.0 + hard * (contrast - 1.0)

    def weight(i, j, off, r):
        # Harmonic mean of the two endpoints' coefficients (standard FV).
        ci, cj = coeff[i], coeff[j]
        return 2.0 * ci * cj / (ci + cj) / (abs(off[0]) + abs(off[1]) + abs(off[2]))

    rows, cols, weights = _grid_edges((nx, ny, nz), _offsets_27(), weight, rng)
    return ModifiedCRS.from_scipy(_laplacian_from_edges(n, rows, cols, weights, shift=shift))


def load_matrix_market(path) -> ModifiedCRS:
    """Load a real SuiteSparse matrix from a Matrix-Market file."""
    from scipy.io import mmread

    return ModifiedCRS.from_scipy(mmread(str(path)).tocsr())


#: Registry used by the benchmark harness: name -> zero-arg generator.
MATRICES = {
    "G3_circuit": g3_circuit_like,
    "af_shell7": af_shell_like,
    "Geo_1438": geo_like,
    "Hook_1498": hook_like,
}

#: Table II of the paper: the original matrices' sizes (for scale factors).
PAPER_STATS = {
    "G3_circuit": {"rows": 1.6e6, "entries": 7.7e6},
    "af_shell7": {"rows": 0.5e6, "entries": 17.6e6},
    "Geo_1438": {"rows": 1.4e6, "entries": 63.1e6},
    "Hook_1498": {"rows": 1.5e6, "entries": 60.9e6},
}
