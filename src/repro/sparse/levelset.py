"""Level-Set Scheduling (Sec. V-A).

Analyzes the data dependencies in the lower triangular part of a (local)
matrix: row *i* depends on row *j < i* iff ``a_ij != 0``.  Clustering the
dependency DAG into levels lets all rows within one level be processed in
parallel by the tile's six worker threads, while preserving the sequential
algorithm's result (and hence its convergence rate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LevelSchedule", "level_schedule"]


@dataclass
class LevelSchedule:
    """Rows grouped into dependency levels (local indices)."""

    levels: list  # list of np.ndarray of row indices
    n: int

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def max_parallelism(self) -> int:
        return max((lv.size for lv in self.levels), default=0)

    @property
    def avg_parallelism(self) -> float:
        return self.n / self.num_levels if self.num_levels else 0.0

    def worker_partition(self, level: int, workers: int) -> list:
        """Split one level's rows into up to ``workers`` chunks."""
        rows = self.levels[level]
        if rows.size == 0:
            return []
        return np.array_split(rows, min(workers, rows.size))

    def validate(self, row_ptr, col_idx) -> bool:
        """Check the defining invariant: every lower-triangular dependency
        points to a strictly earlier level."""
        level_of = np.empty(self.n, dtype=np.int64)
        for k, rows in enumerate(self.levels):
            level_of[rows] = k
        for i in range(self.n):
            for j in col_idx[row_ptr[i] : row_ptr[i + 1]]:
                if j < i and level_of[j] >= level_of[i]:
                    return False
        return True


def level_schedule(row_ptr, col_idx, n: int) -> LevelSchedule:
    """Compute levels for ``n`` rows with off-diagonal pattern (CRS arrays).

    Only lower-triangular entries (``col < row``) induce dependencies —
    exactly the updated-solution-value dependencies of Gauss-Seidel /
    ILU substitution.  Runs in O(nnz).
    """
    row_ptr = np.asarray(row_ptr)
    col_idx = np.asarray(col_idx)
    level_of = np.zeros(n, dtype=np.int64)
    for i in range(n):
        cols = col_idx[row_ptr[i] : row_ptr[i + 1]]
        lower = cols[cols < i]
        if lower.size:
            level_of[i] = level_of[lower].max() + 1
    num_levels = int(level_of.max()) + 1 if n else 0
    order = np.argsort(level_of, kind="stable")
    boundaries = np.searchsorted(level_of[order], np.arange(num_levels + 1))
    levels = [order[boundaries[k] : boundaries[k + 1]] for k in range(num_levels)]
    return LevelSchedule(levels=levels, n=n)
