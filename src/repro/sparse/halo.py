"""Region-based halo-exchange reordering (Sec. IV — contribution 3).

Cells (matrix rows) fall into three classes per tile:

- **interior**: owned and required only by the owner,
- **separator**: owned by this tile but required by neighbors,
- **halo**: owned by neighbors but required by this tile.

A *region* is the largest group of separator cells with an identical set of
*involved tiles* (the neighbors requiring them).  The strategy orders cells
identically in each separator region and all its corresponding halo regions,
so a halo exchange is one blockwise broadcast copy per region — no
per-cell communication instructions and no local reordering.

:func:`build_halo_plan` implements the four steps of Sec. IV;
:func:`build_naive_plan` is the per-cell baseline in the style of
Burchard et al. [12], used by the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.program import RegionCopy
from repro.sparse.crs import ModifiedCRS
from repro.sparse.partition import Partition

__all__ = ["Region", "HaloPlan", "build_halo_plan", "build_naive_plan"]


@dataclass(frozen=True)
class Region:
    """A maximal group of separator cells with one involved-tile set."""

    rid: int
    owner: int
    receivers: tuple  # sorted tile ids requiring these cells
    cells: np.ndarray  # global row ids in the consistent (ascending) order

    @property
    def size(self) -> int:
        return self.cells.size


@dataclass
class HaloPlan:
    """Per-tile memory layouts and the blockwise exchange schedule.

    The local layout of the solution vector on tile ``t`` is
    ``[interior cells | separator regions...]`` for the owned part and
    ``[halo regions...]`` for the halo buffer (Fig. 3b).
    """

    partition: Partition
    regions: list
    owned_order: dict  # tile -> np.ndarray of global ids (local layout)
    halo_order: dict  # tile -> np.ndarray of global ids (halo layout)
    sep_offset: dict  # rid -> offset of the region in the owner's layout
    halo_offset: dict  # (tile, rid) -> offset in the tile's halo buffer
    blockwise: bool = True
    _local_maps: dict = field(default_factory=dict, repr=False)

    # -- sizes ---------------------------------------------------------------------

    def owned_count(self, tile: int) -> int:
        return self.owned_order[tile].size

    def halo_count(self, tile: int) -> int:
        return self.halo_order[tile].size

    def tiles(self):
        return sorted(self.owned_order)

    # -- index mapping ----------------------------------------------------------------

    def global_permutation(self) -> np.ndarray:
        """``perm[new_global] = old_global``: tiles concatenated in order,
        each tile's cells in its local layout order.  Applying this
        permutation to the matrix realizes the reordering strategy."""
        return np.concatenate([self.owned_order[t] for t in self.tiles()])

    def local_index_map(self, tile: int) -> dict:
        """global id -> local vector index on ``tile`` (owned then halo)."""
        if tile not in self._local_maps:
            m = {int(g): i for i, g in enumerate(self.owned_order[tile])}
            base = self.owned_count(tile)
            for i, g in enumerate(self.halo_order[tile]):
                m[int(g)] = base + i
            self._local_maps[tile] = m
        return self._local_maps[tile]

    # -- exchange -----------------------------------------------------------------------

    def copies(self, owned_var, halo_var) -> list:
        """RegionCopies updating every halo buffer from its separator region.

        ``owned_var``'s shard on each tile follows the owned layout;
        ``halo_var``'s shard follows the halo layout.
        """
        out = []
        for r in self.regions:
            if self.blockwise:
                out.append(
                    RegionCopy(
                        owned_var,
                        r.owner,
                        self.sep_offset[r.rid],
                        tuple((halo_var, t, self.halo_offset[(t, r.rid)]) for t in r.receivers),
                        r.size,
                    )
                )
            else:
                # Naive per-cell scheme: one instruction per cell (still
                # broadcast per cell, as the fabric allows).
                for k in range(r.size):
                    out.append(
                        RegionCopy(
                            owned_var,
                            r.owner,
                            self.sep_offset[r.rid] + k,
                            tuple(
                                (halo_var, t, self.halo_offset[(t, r.rid)] + k)
                                for t in r.receivers
                            ),
                            1,
                        )
                    )
        return out

    # -- statistics (what the reordering optimizes) ---------------------------------------

    def num_copy_instructions(self) -> int:
        """Communication-program size: one instruction per copy per
        participant (sender + receivers)."""
        total = 0
        for r in self.regions:
            per_copy = 1 + len(r.receivers)
            total += per_copy if self.blockwise else per_copy * r.size
        return total

    def total_halo_cells(self) -> int:
        return sum(self.halo_count(t) for t in self.tiles())

    def exchanged_bytes(self, element_bytes: int = 4, batch: int = 1) -> int:
        """Fabric payload of one halo exchange: every halo cell is written
        once per exchange, carrying all ``batch`` RHS columns of the cell.

        The exchange *count* is independent of ``batch`` (the schedule is
        identical); only the per-exchange payload scales — which is exactly
        the multi-RHS amortization the batched solvers exploit
        (``benchmarks/bench_multi_rhs.py`` reports bytes-per-RHS from this).
        """
        return self.total_halo_cells() * element_bytes * batch


def _requirements(matrix: ModifiedCRS, partition: Partition):
    """For each cell, the set of foreign tiles requiring its value."""
    owner = partition.owner
    rows = np.repeat(np.arange(matrix.n), matrix.rows_nnz())
    cols = matrix.col_idx
    mask = owner[rows] != owner[cols]
    pairs = np.unique(np.stack([cols[mask], owner[rows][mask]], axis=1), axis=0)
    req: dict[int, list] = {}
    for cell, tile in pairs:
        req.setdefault(int(cell), []).append(int(tile))
    return req


def _build(matrix: ModifiedCRS, partition: Partition, blockwise: bool) -> HaloPlan:
    owner = partition.owner
    req = _requirements(matrix, partition)

    # Steps 1+2: group each tile's separator cells by their involved-tile set.
    groups: dict[tuple, list] = {}
    for cell, tiles in req.items():
        key = (int(owner[cell]), tuple(sorted(tiles)))
        groups.setdefault(key, []).append(cell)

    regions = []
    for (own, receivers), cells in sorted(groups.items()):
        # Step 4: one consistent order (ascending global id) everywhere.
        regions.append(
            Region(
                rid=len(regions),
                owner=own,
                receivers=receivers,
                cells=np.sort(np.asarray(cells, dtype=np.int64)),
            )
        )

    # Per-tile owned layout: interior first, then separator regions.
    sep_cells: dict[int, list] = {t: [] for t in range(partition.num_parts)}
    for r in regions:
        sep_cells[r.owner].append(r)

    owned_order, sep_offset = {}, {}
    for t in range(partition.num_parts):
        owned = partition.rows_of(t)
        sep_set = (
            np.concatenate([r.cells for r in sep_cells[t]])
            if sep_cells[t]
            else np.empty(0, dtype=np.int64)
        )
        interior = np.setdiff1d(owned, sep_set, assume_unique=True)
        layout = [interior]
        offset = interior.size
        for r in sep_cells[t]:
            sep_offset[r.rid] = offset
            layout.append(r.cells)
            offset += r.size
        owned_order[t] = np.concatenate(layout) if layout else np.empty(0, dtype=np.int64)

    # Step 3: halo regions on each receiver, in (owner, rid) order.
    halo_order, halo_offset = {}, {}
    recv_regions: dict[int, list] = {t: [] for t in range(partition.num_parts)}
    for r in regions:
        for t in r.receivers:
            recv_regions[t].append(r)
    for t in range(partition.num_parts):
        offset = 0
        chunks = []
        for r in sorted(recv_regions[t], key=lambda r: (r.owner, r.rid)):
            halo_offset[(t, r.rid)] = offset
            chunks.append(r.cells)
            offset += r.size
        halo_order[t] = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )

    return HaloPlan(
        partition=partition,
        regions=regions,
        owned_order=owned_order,
        halo_order=halo_order,
        sep_offset=sep_offset,
        halo_offset=halo_offset,
        blockwise=blockwise,
    )


def build_halo_plan(matrix: ModifiedCRS, partition: Partition) -> HaloPlan:
    """The paper's region-based blockwise strategy (Sec. IV steps 1–4)."""
    return _build(matrix, partition, blockwise=True)


def build_naive_plan(matrix: ModifiedCRS, partition: Partition) -> HaloPlan:
    """Per-cell exchange baseline: same data, one instruction per cell."""
    return _build(matrix, partition, blockwise=False)
