"""Poplar-like programming layer: dataflow graph, schedule, engine.

The IPU's programming model (Sec. II-A) consists of three artifacts the
programmer normally constructs by hand — a dataflow graph of vertices over
tensors, an execution schedule of program steps, and C++ codelets.  This
package provides those artifacts; the DSLs of :mod:`repro.codedsl` and
:mod:`repro.tensordsl` generate them via symbolic execution.

- :mod:`repro.graph.variable` — tensors with explicit tile mappings,
- :mod:`repro.graph.codelet` — codelets, vertices, compute sets,
- :mod:`repro.graph.program` — the execution-schedule step types,
- :mod:`repro.graph.engine` — control-flow interpreter over a compiled
  program, delegating compute/exchange to a runtime backend,
- :mod:`repro.graph.runtime` — pluggable backends: cycle-accurate ``sim``
  and numerics-only ``fast`` (docs/runtime.md),
- :mod:`repro.graph.compiler` — graph statistics (the compile-time proxy
  used by the ablation benches),
- :mod:`repro.graph.passes` — the pass-based graph compiler: optimization
  pipeline + plan lowering producing a :class:`CompiledProgram`.
"""

from repro.graph.variable import Interval, Variable
from repro.graph.codelet import Codelet, ComputeSet, Vertex
from repro.graph.graph import Graph
from repro.graph.program import (
    Execute,
    Exchange,
    HostCallback,
    If,
    RegionCopy,
    Repeat,
    RepeatWhile,
    Sequence,
)
from repro.graph.engine import Engine
from repro.graph.compiler import GraphStats, collect_stats, describe
from repro.graph.passes import (
    CompiledProgram,
    ExecutionPlans,
    Pass,
    PassManager,
    PassReport,
    build_plans,
    compile_program,
    default_passes,
)
from repro.graph.runtime import (
    Backend,
    FastBackend,
    FusedBackend,
    GlobalCounters,
    SimBackend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "Interval",
    "Variable",
    "Codelet",
    "Vertex",
    "ComputeSet",
    "Graph",
    "Sequence",
    "Execute",
    "Exchange",
    "RegionCopy",
    "Repeat",
    "RepeatWhile",
    "If",
    "HostCallback",
    "Engine",
    "GraphStats",
    "collect_stats",
    "describe",
    "Pass",
    "PassManager",
    "PassReport",
    "CompiledProgram",
    "ExecutionPlans",
    "build_plans",
    "compile_program",
    "default_passes",
    "Backend",
    "SimBackend",
    "FastBackend",
    "FusedBackend",
    "GlobalCounters",
    "register_backend",
    "resolve_backend",
]
