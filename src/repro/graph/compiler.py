"""Graph "compilation" statistics and the compile-time proxy.

The Poplar graph compiler's running time grows with the number of vertices,
compute sets, and program steps — the paper twice engineers around this
(delayed materialization in Sec. III-C, IPUTHREADING in Sec. V-A).  The real
compiler is out of scope; what the ablation benches need is the *size* of
the generated artifacts, which this module measures by walking a schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.program import (
    Execute,
    Exchange,
    HostCallback,
    If,
    Repeat,
    RepeatWhile,
    Sequence,
    Step,
)

__all__ = ["GraphStats", "collect_stats", "describe"]

# Weights of the linear compile-time proxy, in arbitrary "compiler work"
# units per artifact.  Vertices dominate (each becomes codelet instances the
# compiler places and schedules); exchange copies each become communication
# instructions it must route.
_W_VERTEX = 10
_W_COMPUTE_SET = 25
_W_STEP = 1
_W_COPY = 4


@dataclass
class GraphStats:
    steps: int = 0
    compute_sets: int = 0
    vertices: int = 0
    exchanges: int = 0
    region_copies: int = 0
    host_callbacks: int = 0

    @property
    def compile_proxy(self) -> int:
        """Scalar proxy for Poplar graph-compilation effort."""
        return (
            _W_VERTEX * self.vertices
            + _W_COMPUTE_SET * self.compute_sets
            + _W_STEP * self.steps
            + _W_COPY * self.region_copies
        )

    def __add__(self, other: "GraphStats") -> "GraphStats":
        return GraphStats(
            steps=self.steps + other.steps,
            compute_sets=self.compute_sets + other.compute_sets,
            vertices=self.vertices + other.vertices,
            exchanges=self.exchanges + other.exchanges,
            region_copies=self.region_copies + other.region_copies,
            host_callbacks=self.host_callbacks + other.host_callbacks,
        )


def collect_stats(step: Step, _seen=None) -> GraphStats:
    """Walk a schedule and tally the artifacts the graph compiler would see.

    Loop bodies are counted once — the compiler compiles each body a single
    time regardless of the trip count.  Compute sets reached through several
    paths are also counted once.
    """
    seen = _seen if _seen is not None else set()
    stats = GraphStats()
    stats.steps += 1
    if isinstance(step, Sequence):
        for s in step.steps:
            stats += collect_stats(s, seen)
    elif isinstance(step, Execute):
        if id(step.compute_set) not in seen:
            seen.add(id(step.compute_set))
            stats.compute_sets += 1
            stats.vertices += len(step.compute_set)
    elif isinstance(step, Exchange):
        stats.exchanges += 1
        stats.region_copies += len(step.copies)
    elif isinstance(step, (Repeat, RepeatWhile)):
        stats += collect_stats(step.body, seen)
    elif isinstance(step, If):
        stats += collect_stats(step.then_body, seen)
        if step.else_body is not None:
            stats += collect_stats(step.else_body, seen)
    elif isinstance(step, HostCallback):
        stats.host_callbacks += 1
    return stats


def describe(step: Step, max_depth: int = 8) -> str:
    """Human-readable outline of an execution schedule (debugging aid).

    Mirrors what Poplar's report shows for a compiled program: the step
    tree with compute-set sizes and exchange copy counts.
    """
    lines: list[str] = []

    def walk(s: Step, depth: int) -> None:
        pad = "  " * depth
        if depth > max_depth:
            lines.append(pad + "...")
            return
        if isinstance(s, Sequence):
            scope = f" label={s.label!r}" if s.label else ""
            lines.append(f"{pad}Sequence[{len(s.steps)}]{scope}")
            for child in s.steps:
                walk(child, depth + 1)
        elif isinstance(s, Execute):
            cs = s.compute_set
            lines.append(
                f"{pad}Execute({cs.name}, {len(cs)} vertices on "
                f"{len(cs.tiles())} tiles, category={cs.category or 'auto'})"
            )
        elif isinstance(s, Exchange):
            nbytes = sum(rc.size * rc.src_var.unit_bytes() for rc in s.copies)
            lines.append(f"{pad}Exchange({len(s.copies)} region copies, {nbytes} B)")
        elif isinstance(s, Repeat):
            scope = f" label={s.label!r}" if s.label else ""
            lines.append(f"{pad}Repeat(x{s.count}){scope}")
            walk(s.body, depth + 1)
        elif isinstance(s, RepeatWhile):
            scope = f" label={s.label!r}" if s.label else ""
            lines.append(f"{pad}RepeatWhile({s.cond.name}, max={s.max_iterations}){scope}")
            walk(s.body, depth + 1)
        elif isinstance(s, If):
            lines.append(f"{pad}If({s.cond.name})")
            walk(s.then_body, depth + 1)
            if s.else_body is not None:
                lines.append(pad + "Else")
                walk(s.else_body, depth + 1)
        elif isinstance(s, HostCallback):
            lines.append(f"{pad}HostCallback({s.name})")
        else:
            lines.append(f"{pad}{type(s).__name__}")

    walk(step, 0)
    return "\n".join(lines)
