"""Graph variables: tensors with explicit tile mappings.

A variable's data never lives in one place — it is sharded across tile SRAM
according to its mapping, exactly as Poplar tensors are.  Three mapping
shapes cover the framework's needs:

- **linear**: contiguous index ranges across a set of tiles (vectors,
  matrix row blocks),
- **single-tile**: whole tensor on one tile,
- **replicated**: every participating tile holds a full copy (solver
  scalars like alpha/omega, which every tile consumes after a reduction).

Double-word variables shard into *pairs* of float32 arrays (hi, lo).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Interval", "Shard", "Variable", "NUMPY_DTYPES"]

#: dtype-name -> numpy storage dtype of the primary (hi) array.
NUMPY_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "dw": np.float32,
    "int32": np.int32,
}

#: dtypes that carry a second (lo) float32 array per shard.
_PAIRED = {"dw"}


@dataclass(frozen=True)
class Interval:
    """A contiguous chunk ``[start, stop)`` of a variable on one tile."""

    tile_id: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


class Shard:
    """The on-tile storage of one interval (or full copy) of a variable.

    ``size`` is the *logical* element count of the interval — for a batched
    variable the backing array has shape ``(size, batch)``, so callers that
    reason about per-element work (vertex splitting, scalar detection) must
    use ``size``, not ``data.size``.
    """

    __slots__ = ("data", "lo", "interval")

    def __init__(self, data: np.ndarray, lo, interval: Interval):
        self.data = data
        self.lo = lo
        self.interval = interval

    @property
    def size(self) -> int:
        return self.interval.size


class Variable:
    """A tensor distributed over tile SRAM.

    Shards are *views* into one flat per-device buffer (``flat_data`` /
    ``flat_lo``): a distributed variable's buffer is indexed by global
    element (shard ``t`` is ``flat_data[start:stop]``), a replicated
    variable's buffer has one row per replica (``replica_rows`` maps
    ``tile_id`` to its row).  Tile-local codelets and exchange copies go
    through the views exactly as before; the fused runtime backend
    (:mod:`repro.graph.runtime.fused`) operates on the flat buffers
    directly, which is what hoists gather/scatter out of the hot path.

    A variable may carry a trailing *batch* axis of width ``batch`` (multi-RHS
    solves): storage becomes ``(n, batch)`` element-major, so every exchange
    copy — which indexes axis 0 — moves all ``batch`` columns of an element in
    one instruction, and ``batch == 1`` keeps the exact 1-D layout (and
    bit-identical artifacts) of the unbatched code.  Host-facing
    ``gather``/``scatter`` use the conventional batch-*leading* ``(batch, n)``
    orientation and transpose at the boundary.
    """

    def __init__(
        self, name: str, shape, dtype: str, replicated: bool = False, batch: int = 1
    ):
        if dtype not in NUMPY_DTYPES:
            raise ValueError(f"unknown dtype {dtype!r}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.name = name
        self.shape = tuple(shape)
        self.dtype = dtype
        self.replicated = replicated
        self.batch = int(batch)
        self.shards: dict[int, Shard] = {}
        #: Flat per-device storage backing the shard views (see class doc).
        self.flat_data: np.ndarray | None = None
        self.flat_lo: np.ndarray | None = None
        #: Replicated variables: tile_id -> row index into ``flat_data``.
        self.replica_rows: dict[int, int] = {}

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def is_scalar(self) -> bool:
        return self.size == 1

    @property
    def batched(self) -> bool:
        return self.batch > 1

    @property
    def paired(self) -> bool:
        return self.dtype in _PAIRED

    @property
    def tile_ids(self):
        return sorted(self.shards)

    def shard(self, tile_id: int) -> Shard:
        return self.shards[tile_id]

    def element_bytes(self) -> int:
        base = np.dtype(NUMPY_DTYPES[self.dtype]).itemsize
        return base * 2 if self.paired else base

    def unit_bytes(self) -> int:
        """Bytes moved per *logical* element — all batch columns ride along."""
        return self.element_bytes() * self.batch

    # -- host-side whole-tensor access ---------------------------------------------

    def gather(self) -> np.ndarray:
        """Assemble the full tensor on the host (float64 view for dw).

        Batched variables return batch-leading ``(batch,) + shape``.
        """
        if self.replicated:
            first = self.shards[self.tile_ids[0]]
            joined = self._join(first)
            if self.batched:
                return joined.T.reshape((self.batch,) + self.shape)
            return joined.reshape(self.shape)
        out_dtype = np.float64 if self.paired else NUMPY_DTYPES[self.dtype]
        storage = (self.size, self.batch) if self.batched else (self.size,)
        flat = np.empty(storage, dtype=out_dtype)
        for sh in self.shards.values():
            flat[sh.interval.start : sh.interval.stop] = self._join(sh)
        if self.batched:
            return np.ascontiguousarray(flat.T).reshape((self.batch,) + self.shape)
        return flat.reshape(self.shape)

    def scatter(self, values) -> None:
        """Write a full host tensor into the shards.

        Batched variables take batch-leading ``(batch,) + shape`` (or plain
        ``shape``, broadcast to every batch column).
        """
        arr = np.asarray(values)
        if self.batched:
            if arr.size == self.size:  # one tensor broadcast across the batch
                flat = np.broadcast_to(arr.reshape(self.size, 1), (self.size, self.batch))
            elif arr.size == self.size * self.batch:
                flat = np.ascontiguousarray(arr.reshape(self.batch, self.size).T)
            else:
                raise ValueError(
                    f"size mismatch: {arr.size} != {self.batch}x{self.size}"
                )
        else:
            flat = arr.reshape(-1)
            if flat.size != self.size:
                raise ValueError(f"size mismatch: {flat.size} != {self.size}")
        for sh in self.shards.values():
            chunk = flat if self.replicated else flat[sh.interval.start : sh.interval.stop]
            self._write(sh, chunk)

    def _join(self, sh: Shard) -> np.ndarray:
        if self.paired:
            return sh.data.astype(np.float64) + sh.lo.astype(np.float64)
        return sh.data.copy()

    def _write(self, sh: Shard, values) -> None:
        if self.paired:
            v = np.asarray(values, dtype=np.float64)
            hi = v.astype(np.float32)
            sh.data[...] = hi
            sh.lo[...] = (v - hi.astype(np.float64)).astype(np.float32)
        else:
            sh.data[...] = np.asarray(values, dtype=sh.data.dtype)

    def __repr__(self):
        kind = "replicated" if self.replicated else f"{len(self.shards)} shards"
        batch = f", batch={self.batch}" if self.batched else ""
        return f"Variable({self.name!r}, shape={self.shape}, dtype={self.dtype}{batch}, {kind})"
