"""Graph variables: tensors with explicit tile mappings.

A variable's data never lives in one place — it is sharded across tile SRAM
according to its mapping, exactly as Poplar tensors are.  Three mapping
shapes cover the framework's needs:

- **linear**: contiguous index ranges across a set of tiles (vectors,
  matrix row blocks),
- **single-tile**: whole tensor on one tile,
- **replicated**: every participating tile holds a full copy (solver
  scalars like alpha/omega, which every tile consumes after a reduction).

Double-word variables shard into *pairs* of float32 arrays (hi, lo).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Interval", "Shard", "Variable", "NUMPY_DTYPES"]

#: dtype-name -> numpy storage dtype of the primary (hi) array.
NUMPY_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "dw": np.float32,
    "int32": np.int32,
}

#: dtypes that carry a second (lo) float32 array per shard.
_PAIRED = {"dw"}


@dataclass(frozen=True)
class Interval:
    """A contiguous chunk ``[start, stop)`` of a variable on one tile."""

    tile_id: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


class Shard:
    """The on-tile storage of one interval (or full copy) of a variable."""

    __slots__ = ("data", "lo", "interval")

    def __init__(self, data: np.ndarray, lo, interval: Interval):
        self.data = data
        self.lo = lo
        self.interval = interval

    @property
    def size(self) -> int:
        return self.data.size


class Variable:
    """A tensor distributed over tile SRAM.

    Shards are *views* into one flat per-device buffer (``flat_data`` /
    ``flat_lo``): a distributed variable's buffer is indexed by global
    element (shard ``t`` is ``flat_data[start:stop]``), a replicated
    variable's buffer has one row per replica (``replica_rows`` maps
    ``tile_id`` to its row).  Tile-local codelets and exchange copies go
    through the views exactly as before; the fused runtime backend
    (:mod:`repro.graph.runtime.fused`) operates on the flat buffers
    directly, which is what hoists gather/scatter out of the hot path.
    """

    def __init__(self, name: str, shape, dtype: str, replicated: bool = False):
        if dtype not in NUMPY_DTYPES:
            raise ValueError(f"unknown dtype {dtype!r}")
        self.name = name
        self.shape = tuple(shape)
        self.dtype = dtype
        self.replicated = replicated
        self.shards: dict[int, Shard] = {}
        #: Flat per-device storage backing the shard views (see class doc).
        self.flat_data: np.ndarray | None = None
        self.flat_lo: np.ndarray | None = None
        #: Replicated variables: tile_id -> row index into ``flat_data``.
        self.replica_rows: dict[int, int] = {}

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def is_scalar(self) -> bool:
        return self.size == 1

    @property
    def paired(self) -> bool:
        return self.dtype in _PAIRED

    @property
    def tile_ids(self):
        return sorted(self.shards)

    def shard(self, tile_id: int) -> Shard:
        return self.shards[tile_id]

    def element_bytes(self) -> int:
        base = np.dtype(NUMPY_DTYPES[self.dtype]).itemsize
        return base * 2 if self.paired else base

    # -- host-side whole-tensor access ---------------------------------------------

    def gather(self) -> np.ndarray:
        """Assemble the full tensor on the host (float64 view for dw)."""
        if self.replicated:
            first = self.shards[self.tile_ids[0]]
            return self._join(first).reshape(self.shape)
        out_dtype = np.float64 if self.paired else NUMPY_DTYPES[self.dtype]
        flat = np.empty(self.size, dtype=out_dtype)
        for sh in self.shards.values():
            flat[sh.interval.start : sh.interval.stop] = self._join(sh)
        return flat.reshape(self.shape)

    def scatter(self, values) -> None:
        """Write a full host tensor into the shards."""
        flat = np.asarray(values).reshape(-1)
        if flat.size != self.size:
            raise ValueError(f"size mismatch: {flat.size} != {self.size}")
        for sh in self.shards.values():
            chunk = flat if self.replicated else flat[sh.interval.start : sh.interval.stop]
            self._write(sh, chunk)

    def _join(self, sh: Shard) -> np.ndarray:
        if self.paired:
            return sh.data.astype(np.float64) + sh.lo.astype(np.float64)
        return sh.data.copy()

    def _write(self, sh: Shard, values) -> None:
        if self.paired:
            v = np.asarray(values, dtype=np.float64)
            hi = v.astype(np.float32)
            sh.data[...] = hi
            sh.lo[...] = (v - hi.astype(np.float64)).astype(np.float32)
        else:
            sh.data[...] = np.asarray(values, dtype=sh.data.dtype)

    def __repr__(self):
        kind = "replicated" if self.replicated else f"{len(self.shards)} shards"
        return f"Variable({self.name!r}, shape={self.shape}, dtype={self.dtype}, {kind})"
