"""Exchange coalescing: adjacent exchange steps become one fabric phase.

The sparse layer emits one blockwise communication program per sending tile
(Sec. IV), and solver schedules string several logically independent
exchanges together.  Every ``Exchange`` step is a full BSP superstep — a
chip-wide (or fleet-wide) sync plus a fabric phase — so ``k`` adjacent
exchanges pay ``k`` syncs where one would do.  This pass merges runs of
adjacent exchanges into a single phase; tiles then stream all their regions
back-to-back, which also lets per-tile send/receive time overlap across the
merged copies (max-of-sums <= sum-of-maxes).

Safety: the engine applies region copies in list order, so merging is
always bit-identical.  For honest BSP semantics (a phase reads all sources
before any destination is visible) a copy whose *source* region was written
by an earlier copy in the same group ends the group — those exchanges stay
separate phases.  Only exchanges with the same ``name`` merge, keeping the
profiler's category attribution (e.g. Table IV's exchange bucket) intact.
"""

from __future__ import annotations

from repro.graph.passes.base import Pass, rewrite_bottom_up
from repro.graph.program import Exchange, RegionCopy, Sequence, Step

__all__ = ["CoalesceExchanges"]


def _regions_overlap(a_start: int, a_size: int, b_start: int, b_size: int) -> bool:
    return a_start < b_start + b_size and b_start < a_start + a_size


def _reads_written(copy: RegionCopy, written: list) -> bool:
    """True if ``copy``'s source region overlaps a destination already
    written in the current merge group."""
    for var, tile, offset, size in written:
        if (
            var is copy.src_var
            and tile == copy.src_tile
            and _regions_overlap(offset, size, copy.src_offset, copy.size)
        ):
            return True
    return False


class CoalesceExchanges(Pass):
    """Merge runs of adjacent same-name ``Exchange`` steps (fewer supersteps)."""

    name = "coalesce-exchanges"

    def run(self, root: Step) -> Step:
        return rewrite_bottom_up(root, self._local)

    def _local(self, step: Step) -> Step:
        if not isinstance(step, Sequence):
            return step
        out: list = []
        group: list = []  # Exchange steps accumulated for the current phase
        written: list = []  # (var, tile, offset, size) regions the group wrote
        changed = False

        def flush():
            nonlocal changed
            if not group:
                return
            if len(group) == 1:
                out.append(group[0])
            else:
                copies = [rc for ex in group for rc in ex.copies]
                out.append(Exchange(copies, name=group[0].name))
                changed = True
            group.clear()
            written.clear()

        for s in step.steps:
            if isinstance(s, Exchange):
                if group and (
                    s.name != group[0].name
                    or any(_reads_written(rc, written) for rc in s.copies)
                ):
                    flush()
                group.append(s)
                for rc in s.copies:
                    for dst_var, dst_tile, dst_offset in rc.dests:
                        written.append((dst_var, dst_tile, dst_offset, rc.size))
            else:
                flush()
                out.append(s)
        flush()
        if changed:
            return Sequence(out, label=step.label)
        return step
