"""Plan building: lower a schedule into frozen per-step execution plans.

This is the final lowering stage of the graph compiler, run after the
optimization pipeline: every ``Execute`` and ``Exchange`` step in the
optimized schedule is compiled *once* into an immutable plan that any
runtime backend (:mod:`repro.graph.runtime`) can execute without
re-deriving structure on the hot path.

- :class:`ComputePlan` — per-tile vertex groupings with the LPT worker
  packing evaluated ahead of time.  Codelet cycle models are pure over
  their bindings (the :mod:`repro.graph.codelet` contract), so the packed
  makespans are identical to evaluating them during execution.
- :class:`ExchangePlan` — the per-copy Python loop of the old engine
  replaced by vectorized numpy gather/scatter ops (fancy-index arrays, or
  plain slices for single contiguous regions), plus the precomputed
  :class:`~repro.machine.fabric.Transfer` list and on-tile memcpy cost.
  When region copies within one exchange overlap (a later copy reads or
  rewrites what an earlier one wrote), the plan falls back to strictly
  ordered per-copy execution so results stay bit-identical.

Plans hold direct references to shard arrays; the graph allocates shard
storage exactly once, so the references stay valid across host reads and
writes (which mutate the arrays in place).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.graph.codelet import ComputeSet
from repro.graph.program import (
    Execute,
    Exchange,
    HostCallback,
    If,
    Repeat,
    RepeatWhile,
    Sequence,
    Step,
)
from repro.machine.fabric import Transfer

__all__ = [
    "TilePlan",
    "ComputePlan",
    "CopyOp",
    "ExchangePlan",
    "ExecutionPlans",
    "build_plans",
    "compute_set_category",
    "lpt_makespan",
]


def compute_set_category(cs: ComputeSet) -> str:
    """Profiler category of a compute set.

    An explicit ``ComputeSet(category=...)`` wins without scanning any
    vertex; otherwise the category is taken from the first vertex and the
    rest are only *checked* — a compute set mixing vertex categories is an
    error (attribution would silently follow whichever vertex happened to
    come first), fixed by setting the category on the set explicitly.
    """
    if cs.category is not None:
        return cs.category
    category = None
    for v in cs.vertices:
        c = v.codelet.category
        if category is None:
            category = c
        elif c != category:
            raise ValueError(
                f"compute set {cs.name!r} mixes vertex categories "
                f"{category!r} and {c!r}; pass ComputeSet(category=...) "
                "to attribute the phase explicitly"
            )
    return category or "elementwise"


def lpt_makespan(tasks, workers: int) -> int:
    """Makespan of ``tasks`` on a tile's worker threads (LPT packing)."""
    if len(tasks) <= workers:
        return max(tasks, default=0)
    heap = [0] * workers
    for t in sorted(tasks, reverse=True):
        heapq.heappush(heap, heapq.heappop(heap) + t)
    return max(heap)


@dataclass(frozen=True)
class TilePlan:
    """One tile's share of a compute phase: its vertices and makespan."""

    tile_id: int
    runs: tuple  # bound Vertex.run callables, in execution order
    makespan: int  # LPT packing of this tile's worker tasks


@dataclass(frozen=True)
class ComputePlan:
    """Frozen execution plan of one ``Execute`` step."""

    name: str  # compute-set name (telemetry groups hot sets by this)
    category: str
    tiles: tuple  # of TilePlan, in first-seen tile order
    dispatch: tuple  # flat run callables across tiles, in execution order
    worst_tile: int  # max makespan over tiles (the BSP phase cost)


@dataclass(frozen=True)
class CopyOp:
    """One vectorized array-to-array copy: ``dst[dst_index] = src[src_index]``.

    Indices are slices (single contiguous region) or int64 fancy-index
    arrays (several regions between the same shard pair fused into one
    numpy op).  ``dst_lo``/``src_lo`` carry the double-word lo halves when
    both endpoints are paired.
    """

    src: np.ndarray
    dst: np.ndarray
    src_index: object
    dst_index: object
    src_lo: np.ndarray | None = None
    dst_lo: np.ndarray | None = None

    def apply(self) -> None:
        self.dst[self.dst_index] = self.src[self.src_index]
        if self.dst_lo is not None:
            self.dst_lo[self.dst_index] = self.src_lo[self.src_index]


@dataclass(frozen=True)
class ExchangePlan:
    """Frozen execution plan of one ``Exchange`` step."""

    name: str
    ops: tuple  # of CopyOp
    transfers: tuple  # of Transfer, for the fabric cost model
    local_cycles: int  # max over tiles of summed on-tile memcpy cost
    vectorized: bool  # False -> hazard detected, ops follow copy order


class ExecutionPlans:
    """Per-step plan table of one compiled program (keyed by step identity).

    The compiled program keeps the schedule alive, so ``id(step)`` keys are
    stable for the artifact's lifetime.
    """

    __slots__ = ("_plans",)

    def __init__(self, plans: dict):
        self._plans = plans

    def plan_for(self, step: Step):
        return self._plans[id(step)]

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, step: Step) -> bool:
        return id(step) in self._plans


def _plan_compute_set(cs: ComputeSet, workers: int) -> ComputePlan:
    category = compute_set_category(cs)
    per_tile: dict[int, list] = {}
    for v in cs.vertices:
        per_tile.setdefault(v.tile_id, []).append(v)
    tiles = []
    dispatch: list = []
    worst = 0
    for tile_id, vertices in per_tile.items():
        runs = []
        tasks: list = []
        for v in vertices:
            runs.append(v.run)
            tasks.extend(v.worker_cycles())
        makespan = lpt_makespan(tasks, workers)
        worst = max(worst, makespan)
        tiles.append(TilePlan(tile_id, tuple(runs), makespan))
        dispatch.extend(runs)
    return ComputePlan(
        name=cs.name,
        category=category,
        tiles=tuple(tiles),
        dispatch=tuple(dispatch),
        worst_tile=worst,
    )


def _any_write_overlap(reads: dict, writes: dict) -> bool:
    """True when a written range overlaps any other read or written range.

    Ranges touching distinct shard arrays never interact.  Per array the
    copy count is small (one segment per communicating neighbor), so the
    quadratic check stays cheap — and it runs once, at compile time.
    """
    for aid, wivs in writes.items():
        rivs = reads.get(aid, ())
        for i, (a0, a1) in enumerate(wivs):
            for b0, b1 in wivs[i + 1 :]:
                if a0 < b1 and b0 < a1:
                    return True
            for b0, b1 in rivs:
                if a0 < b1 and b0 < a1:
                    return True
    return False


def _plan_exchange(step: Exchange) -> ExchangePlan:
    # Elementary copies: one (src shard, dst shard, ranges) tuple per
    # destination of each RegionCopy, in program order.
    elementary = []
    reads: dict = defaultdict(list)
    writes: dict = defaultdict(list)
    local_per_tile: dict[int, int] = defaultdict(int)
    transfers = []
    for rc in step.copies:
        src_sh = rc.src_var.shard(rc.src_tile)
        s0, s1 = rc.src_offset, rc.src_offset + rc.size
        reads[id(src_sh.data)].append((s0, s1))
        remote_dests = []
        for dst_var, dst_tile, dst_offset in rc.dests:
            dst_sh = dst_var.shard(dst_tile)
            d0, d1 = dst_offset, dst_offset + rc.size
            writes[id(dst_sh.data)].append((d0, d1))
            elementary.append((src_sh, dst_sh, s0, s1, d0, d1))
            if dst_tile != rc.src_tile:
                remote_dests.append(dst_tile)
            else:
                # On-tile memcpy: 8 bytes per cycle through the st64 path;
                # copies landing on one tile serialize (summed per tile).
                # unit_bytes folds in the batch axis: a batched element's
                # RHS columns are contiguous and move together.
                cost = (rc.size * rc.src_var.unit_bytes() + 7) // 8
                local_per_tile[dst_tile] += cost
        if remote_dests:
            nbytes = rc.size * rc.src_var.unit_bytes()
            transfers.append(Transfer(rc.src_tile, tuple(remote_dests), nbytes))

    vectorized = not _any_write_overlap(reads, writes)
    ops = []
    if not vectorized:
        # Overlapping regions: keep strict program order, one op per copy.
        for src_sh, dst_sh, s0, s1, d0, d1 in elementary:
            ops.append(_copy_op(src_sh, dst_sh, [(s0, s1, d0, d1)]))
    else:
        # Fuse all copies between each (src shard, dst shard) pair into one
        # numpy op; with no overlaps the op order cannot be observed.
        groups: dict = {}
        for src_sh, dst_sh, s0, s1, d0, d1 in elementary:
            key = (id(src_sh.data), id(dst_sh.data))
            if key not in groups:
                groups[key] = (src_sh, dst_sh, [])
            groups[key][2].append((s0, s1, d0, d1))
        for src_sh, dst_sh, segments in groups.values():
            ops.append(_copy_op(src_sh, dst_sh, segments))

    return ExchangePlan(
        name=step.name,
        ops=tuple(ops),
        transfers=tuple(transfers),
        local_cycles=max(local_per_tile.values(), default=0),
        vectorized=vectorized,
    )


def _copy_op(src_sh, dst_sh, segments) -> CopyOp:
    paired = src_sh.lo is not None and dst_sh.lo is not None
    if len(segments) == 1:
        s0, s1, d0, d1 = segments[0]
        src_index, dst_index = slice(s0, s1), slice(d0, d1)
    else:
        src_index = np.concatenate([np.arange(s0, s1) for s0, s1, _, _ in segments])
        dst_index = np.concatenate([np.arange(d0, d1) for _, _, d0, d1 in segments])
    return CopyOp(
        src=src_sh.data,
        dst=dst_sh.data,
        src_index=src_index,
        dst_index=dst_index,
        src_lo=src_sh.lo if paired else None,
        dst_lo=dst_sh.lo if paired else None,
    )


def build_plans(root: Step, device) -> ExecutionPlans:
    """Walk the schedule and compile a plan for every leaf step.

    Shared subtrees (loop bodies reused across loops, compute sets behind
    several ``Execute`` steps) are planned once; unknown step types are
    rejected here, at compile time, instead of mid-execution.
    """
    workers = device.spec.workers_per_tile
    plans: dict = {}
    cs_cache: dict = {}
    seen: set = set()

    def walk(step: Step) -> None:
        if id(step) in seen:
            return
        seen.add(id(step))
        if isinstance(step, Sequence):
            for s in step.steps:
                walk(s)
        elif isinstance(step, Execute):
            key = id(step.compute_set)
            if key not in cs_cache:
                cs_cache[key] = _plan_compute_set(step.compute_set, workers)
            plans[id(step)] = cs_cache[key]
        elif isinstance(step, Exchange):
            plans[id(step)] = _plan_exchange(step)
        elif isinstance(step, (Repeat, RepeatWhile)):
            walk(step.body)
        elif isinstance(step, If):
            walk(step.then_body)
            if step.else_body is not None:
                walk(step.else_body)
        elif isinstance(step, HostCallback):
            pass
        else:
            raise TypeError(f"unknown program step: {step!r}")

    walk(root)
    return ExecutionPlans(plans)
