"""Sequence flattening and empty/dead-step elimination.

Symbolic execution produces deeply nested ``Sequence`` trees (one per
control-flow capture) and the sparse layer can emit degenerate steps — an
``Exchange`` with no copies, an ``Execute`` whose compute set has no
vertices, a ``Repeat`` with a zero trip count.  Each such step still costs a
BSP sync or control charge at runtime and inflates the schedule the graph
compiler must process, so this pass splices unlabeled sequences into their
parents and drops steps that provably do nothing.
"""

from __future__ import annotations

from repro.graph.passes.base import Pass, rewrite_bottom_up
from repro.graph.program import Exchange, Execute, If, Repeat, Sequence, Step

__all__ = ["FlattenSequences"]


def _is_empty(step: Step) -> bool:
    """True if ``step`` has no effect on data or host state (dropping it
    can only remove sync/control charges)."""
    if isinstance(step, Sequence):
        return step.label is None and all(_is_empty(s) for s in step.steps)
    if isinstance(step, Exchange):
        return not step.copies
    if isinstance(step, Execute):
        return len(step.compute_set) == 0
    return False


class FlattenSequences(Pass):
    """Splice nested unlabeled sequences; drop steps that do nothing.

    Labeled sequences are profiler-scope boundaries and survive intact.
    Dead steps removed: empty sequences, copy-less exchanges, vertex-less
    compute sets (each would still charge a sync), zero-trip or empty-body
    ``Repeat`` loops, and ``If`` steps whose branches are both empty.
    ``RepeatWhile`` is left alone — its trip count is a runtime value.
    """

    name = "flatten"

    def run(self, root: Step) -> Step:
        out = rewrite_bottom_up(root, self._local)
        # The root must stay a Sequence for the engine's entry point.
        if not isinstance(out, Sequence):
            out = Sequence([out] if not _is_empty(out) else [])
        return out

    def _local(self, step: Step) -> Step:
        if isinstance(step, Sequence):
            steps = []
            changed = False
            for s in step.steps:
                if _is_empty(s):
                    changed = True
                    continue
                if isinstance(s, Sequence) and s.label is None:
                    steps.extend(s.steps)
                    changed = True
                else:
                    steps.append(s)
            if changed:
                return Sequence(steps, label=step.label)
            return step
        if isinstance(step, Repeat) and (step.count <= 0 or _is_empty(step.body)):
            return Sequence([])
        if isinstance(step, If) and _is_empty(step.then_body) and (
            step.else_body is None or _is_empty(step.else_body)
        ):
            return Sequence([])
        if isinstance(step, If) and step.else_body is not None and _is_empty(step.else_body):
            return If(step.cond, step.then_body, None)
        return step
