"""Pass manager, lowering pipeline, and the ``CompiledProgram`` artifact.

This is the missing middle layer between program construction (the DSLs)
and execution (the engine) — the analogue of what the Poplar graph compiler
does between ``poplar::Graph`` and ``poplar::Engine``.  A *pass* is a pure
schedule-to-schedule rewrite; the :class:`PassManager` applies a pipeline of
passes, recording per-pass :class:`~repro.graph.compiler.GraphStats` deltas,
and the result is frozen into an immutable :class:`CompiledProgram` that the
engine executes.

Passes never mutate their input: rewrites build fresh ``Sequence`` / loop /
``Exchange`` / ``Execute`` nodes and share unchanged subtrees, so the source
schedule stays intact inside the artifact for inspection and re-compilation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.compiler import GraphStats, collect_stats, describe
from repro.graph.program import (
    If,
    Repeat,
    RepeatWhile,
    Sequence,
    Step,
)

__all__ = [
    "Pass",
    "PassResult",
    "PassReport",
    "PassManager",
    "CompiledProgram",
    "compile_program",
    "default_passes",
    "rewrite_bottom_up",
    "pass_invocations",
    "compile_invocations",
]

#: Process-wide counters: how many individual pass applications and full
#: ``compile_program`` lowerings have run.  The compile cache's tests (and
#: its acceptance criterion) assert these do NOT move on a cache hit — a hit
#: must reuse the lowered artifact, not re-lower it.
_PASS_INVOCATIONS = 0
_COMPILE_INVOCATIONS = 0


def pass_invocations() -> int:
    """Total individual ``Pass.run`` applications in this process."""
    return _PASS_INVOCATIONS


def compile_invocations() -> int:
    """Total ``compile_program`` lowerings in this process."""
    return _COMPILE_INVOCATIONS


def rewrite_bottom_up(step: Step, fn, memo: dict | None = None) -> Step:
    """Rewrite a schedule bottom-up: children first, then ``fn`` on the node.

    ``fn(step) -> step`` receives a node whose children are already
    rewritten and returns a replacement (possibly the same object).  Subtrees
    reached through several paths — loop bodies shared between loops, branch
    bodies reused across ``If`` steps — are rewritten exactly *once* and the
    result is shared (``memo`` maps ``id(original) -> rewritten``), which is
    the compile-once guarantee the loop-hoisting pass relies on.
    """
    memo = memo if memo is not None else {}
    key = id(step)
    if key in memo:
        return memo[key]

    if isinstance(step, Sequence):
        new_steps = [rewrite_bottom_up(s, fn, memo) for s in step.steps]
        if any(n is not o for n, o in zip(new_steps, step.steps)):
            step = Sequence(new_steps, label=step.label)
    elif isinstance(step, Repeat):
        body = rewrite_bottom_up(step.body, fn, memo)
        if body is not step.body:
            step = Repeat(step.count, body, label=step.label)
    elif isinstance(step, RepeatWhile):
        body = rewrite_bottom_up(step.body, fn, memo)
        if body is not step.body:
            step = RepeatWhile(
                step.cond,
                body,
                max_iterations=step.max_iterations,
                check_before_first=step.check_before_first,
                label=step.label,
            )
    elif isinstance(step, If):
        then_body = rewrite_bottom_up(step.then_body, fn, memo)
        else_body = (
            rewrite_bottom_up(step.else_body, fn, memo)
            if step.else_body is not None
            else None
        )
        if then_body is not step.then_body or else_body is not step.else_body:
            step = If(step.cond, then_body, else_body)

    out = fn(step)
    memo[key] = out
    return out


class Pass:
    """A schedule-to-schedule rewrite with a stable name.

    Subclasses implement :meth:`run`; rewrites must preserve engine numerics
    bit-for-bit and must never increase ``GraphStats.compile_proxy`` (both
    properties are enforced by the test suite's pass-pipeline property test).
    """

    name = "pass"

    def run(self, root: Step) -> Step:
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class PassResult:
    """Before/after graph statistics of one pass application."""

    name: str
    before: GraphStats
    after: GraphStats

    @property
    def proxy_delta(self) -> int:
        return self.after.compile_proxy - self.before.compile_proxy

    def row(self) -> list:
        b, a = self.before, self.after
        return [
            self.name,
            f"{b.steps}->{a.steps}",
            f"{b.compute_sets}->{a.compute_sets}",
            f"{b.exchanges}->{a.exchanges}",
            f"{b.region_copies}->{a.region_copies}",
            f"{self.proxy_delta:+d}",
        ]


@dataclass
class PassReport:
    """Per-pass :class:`GraphStats` deltas of one pipeline run."""

    results: list = field(default_factory=list)

    @property
    def passes_run(self) -> list:
        return [r.name for r in self.results]

    def render(self) -> str:
        """Human-readable compile report (per-pass artifact deltas)."""
        headers = ["pass", "steps", "compute sets", "exchanges", "copies", "proxy delta"]
        rows = [r.row() for r in self.results]
        if not rows:
            return "compile report: no passes run"
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in rows))
            for i, h in enumerate(headers)
        ]
        lines = ["compile report:"]
        lines.append("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
        for r in rows:
            lines.append("  " + "  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            r.name: {
                "before": vars(r.before) | {"compile_proxy": r.before.compile_proxy},
                "after": vars(r.after) | {"compile_proxy": r.after.compile_proxy},
            }
            for r in self.results
        }


class PassManager:
    """Applies an ordered pipeline of passes, collecting stats deltas."""

    def __init__(self, passes=None):
        self.passes = list(passes) if passes is not None else default_passes()

    def run(self, root: Step) -> tuple[Step, PassReport]:
        global _PASS_INVOCATIONS
        report = PassReport()
        for p in self.passes:
            before = collect_stats(root)
            root = p.run(root)
            _PASS_INVOCATIONS += 1
            report.results.append(PassResult(p.name, before, collect_stats(root)))
        return root, report


@dataclass(frozen=True)
class CompiledProgram:
    """The immutable artifact the engine executes.

    Bundles the optimized schedule with the graph it runs against, the
    source schedule it was lowered from, graph statistics for both, the
    pass report, and the frozen per-step execution plans
    (:mod:`repro.graph.passes.plans`) that the runtime backends replay —
    everything the ablation benches and the CLI compile-report view need,
    mirroring Poplar's compiled-executable + report pair.
    """

    root: Step
    graph: object  # repro.graph.Graph (kept untyped to avoid an import cycle)
    stats: GraphStats
    source: Step
    source_stats: GraphStats
    report: PassReport
    plans: object = None  # ExecutionPlans of the optimized schedule
    kernels: object = None  # KernelSchedule (repro.graph.passes.kernels)

    def plan_for(self, step: Step):
        """The frozen execution plan of one leaf step of ``root``."""
        return self.plans.plan_for(step)

    @property
    def compile_proxy(self) -> int:
        return self.stats.compile_proxy

    @property
    def source_compile_proxy(self) -> int:
        return self.source_stats.compile_proxy

    def describe(self, max_depth: int = 8) -> str:
        return describe(self.root, max_depth=max_depth)

    def __repr__(self):
        return (
            f"CompiledProgram(steps={self.stats.steps}, "
            f"compile_proxy={self.stats.compile_proxy}, "
            f"passes={self.report.passes_run})"
        )


def default_passes() -> list:
    """The standard lowering pipeline, in application order."""
    # Imported here: the pass modules subclass Pass from this module.
    from repro.graph.passes.coalesce import CoalesceExchanges
    from repro.graph.passes.flatten import FlattenSequences
    from repro.graph.passes.fuse import FuseComputeSets
    from repro.graph.passes.loops import HoistLoopInvariants

    return [
        FlattenSequences(),
        HoistLoopInvariants(),
        CoalesceExchanges(),
        FuseComputeSets(),
    ]


def compile_program(graph, root: Step, passes=None, optimize: bool = True) -> CompiledProgram:
    """Lower a constructed schedule into a :class:`CompiledProgram`.

    ``passes=None`` uses :func:`default_passes`; ``optimize=False`` (the
    ablation baseline) freezes the schedule as-is with an empty report.
    Either way the final lowering stages build the per-step execution
    plans every runtime backend executes, then the fused-kernel schedule
    (:mod:`repro.graph.passes.kernels`) the ``fused`` backend dispatches.
    """
    from repro.graph.passes.kernels import build_kernels
    from repro.graph.passes.plans import build_plans

    global _COMPILE_INVOCATIONS
    _COMPILE_INVOCATIONS += 1
    source_stats = collect_stats(root)
    manager = PassManager([] if not optimize else passes)
    optimized, report = manager.run(root)
    plans = build_plans(optimized, graph.device)
    return CompiledProgram(
        root=optimized,
        graph=graph,
        stats=collect_stats(optimized),
        source=root,
        source_stats=source_stats,
        report=report,
        plans=plans,
        kernels=build_kernels(optimized, plans),
    )
