"""Compute-set fusion: adjacent compute phases on disjoint tiles share a sync.

Poplar inserts a BSP synchronization before every compute set; two adjacent
``Execute`` steps therefore cost two syncs even when their vertices live on
*different* tiles and could run in the same compute phase.  Codelets only
touch tile-local shards (the tile-centric semantics of Sec. II-A), so
vertices on disjoint tile sets can never observe each other — fusing them
is bit-identical and replaces ``sync + A + sync + B`` with
``sync + max(A, B)``.

Fusion requires the compute sets to resolve to the same profiler category
(so Table IV attribution is unchanged) and skips compute sets that appear
in more than one ``Execute`` step: splitting a shared set into a fused copy
plus the original would *grow* the graph the compiler has to place.
"""

from __future__ import annotations

from collections import Counter

from repro.graph.codelet import ComputeSet
from repro.graph.passes.base import Pass, rewrite_bottom_up
from repro.graph.program import Execute, Sequence, Step

__all__ = ["FuseComputeSets"]


def _effective_category(cs: ComputeSet) -> str | None:
    if cs.category is not None:
        return cs.category
    for v in cs.vertices:
        return v.codelet.category
    return None


def _count_execute_refs(root: Step, counts: Counter, seen: set) -> None:
    if id(root) in seen:
        return
    seen.add(id(root))
    if isinstance(root, Execute):
        counts[id(root.compute_set)] += 1
    for child in _children(root):
        _count_execute_refs(child, counts, seen)


def _children(step: Step):
    from repro.graph.program import If, Repeat, RepeatWhile

    if isinstance(step, Sequence):
        return step.steps
    if isinstance(step, (Repeat, RepeatWhile)):
        return [step.body]
    if isinstance(step, If):
        return [step.then_body] + ([step.else_body] if step.else_body is not None else [])
    return []


class FuseComputeSets(Pass):
    """Fuse adjacent ``Execute`` steps with one category and disjoint tiles."""

    name = "fuse-compute-sets"

    def run(self, root: Step) -> Step:
        self._refs: Counter = Counter()
        _count_execute_refs(root, self._refs, set())
        return rewrite_bottom_up(root, self._local)

    def _fusable(self, step: Step) -> bool:
        return (
            isinstance(step, Execute)
            and len(step.compute_set) > 0
            and self._refs[id(step.compute_set)] == 1
        )

    def _local(self, step: Step) -> Step:
        if not isinstance(step, Sequence):
            return step
        out: list = []
        changed = False
        for s in step.steps:
            if self._fusable(s) and out and self._fusable(out[-1]):
                prev_cs = out[-1].compute_set
                cs = s.compute_set
                cat = _effective_category(prev_cs)
                if (
                    cat is not None
                    and cat == _effective_category(cs)
                    and not set(prev_cs.tiles()) & set(cs.tiles())
                ):
                    fused = ComputeSet(f"{prev_cs.name}+{cs.name}", category=cat)
                    fused.vertices = list(prev_cs.vertices) + list(cs.vertices)
                    out[-1] = Execute(fused)
                    # The fused set is a fresh single-reference object.
                    self._refs[id(fused)] = 1
                    changed = True
                    continue
            out.append(s)
        if changed:
            return Sequence(out, label=step.label)
        return step
