"""Byte / FLOP cost estimation for kernels and dispatch steps.

The wall-clock profiler (:mod:`repro.telemetry.walltrace`) tags every
fused-kernel launch and per-step dispatch with an *estimated* traffic and
arithmetic count, so measured wall time can be read as GB/s and GFLOP/s —
the per-kernel roofline attribution the Citadel IPU microbenchmarking
methodology builds on.  The estimates are derived from the same declarative
metadata the kernel lowerer pattern-matches on:

- ``ElementwiseSpec`` / ``ReduceSpec`` — the expression's per-element
  arithmetic mix (:meth:`~repro.tensordsl.expression.Expr.op_counts`) times
  the participating shard elements; traffic counts each distinct leaf
  variable read once plus the output write (no cache model).
- ``SpmvSpec`` — the textbook 2·nnz FLOPs (plus the diagonal
  multiply-add), with traffic from the CRS arrays, gathered ``x`` and
  written ``y``.
- ``BatchReduceSpec`` — one op per (tile, RHS column) pair.
- Exchange steps — bytes written by the plan's vectorized copy ops (halo
  and reduction traffic, double-word lo halves included).

Estimates are *static*: a step always reports the same numbers regardless
of how often it runs, and a codelet without a spec contributes zero (the
profiler still measures its wall time — only the roofline columns read
blank).  Estimation must never break execution, so every path degrades to
``(0, 0)`` instead of raising.
"""

from __future__ import annotations

import numpy as np

from repro.graph.codelet import BatchReduceSpec, ElementwiseSpec, ReduceSpec, SpmvSpec

__all__ = ["estimate_spec", "estimate_compute_set", "estimate_exchange"]


def _elements(var, tiles) -> int:
    """Logical elements of ``var`` sharded over the given tiles."""
    shards = getattr(var, "shards", None)
    if not shards:
        return 0
    return sum(shards[t].size for t in tiles if t in shards)


def _leaf_read_bytes(expr, tiles) -> int:
    """Bytes read: each distinct leaf variable counted once over ``tiles``."""
    seen: dict = {}
    for leaf in expr.leaves():
        seen.setdefault(id(leaf.var), leaf.var)
    return sum(_elements(var, tiles) * var.unit_bytes() for var in seen.values())


def _expr_flops(expr) -> int:
    return sum(expr.op_counts().values())


def _elementwise_costs(spec: ElementwiseSpec, tiles) -> tuple:
    out = spec.out_var
    n = _elements(out, tiles)
    batch = max(out.batch, spec.expr.batch, 1)
    flops = _expr_flops(spec.expr) * n * batch
    bytes_ = _leaf_read_bytes(spec.expr, tiles) + n * out.unit_bytes()
    return bytes_, flops


def _reduce_costs(spec: ReduceSpec, tiles) -> tuple:
    out = spec.out_var
    batch = max(spec.expr.batch, 1)
    # The reduced value has the footprint of the largest leaf on each tile.
    n = max((_elements(v.var, tiles) for v in spec.expr.leaves()), default=0)
    flops = (_expr_flops(spec.expr) + 1) * n * batch  # eval + one reduce op/elem
    bytes_ = _leaf_read_bytes(spec.expr, tiles) + len(tiles) * out.unit_bytes()
    return bytes_, flops


def _batch_reduce_costs(spec: BatchReduceSpec, tiles) -> tuple:
    batch = max(spec.in_var.batch, 1)
    n = len(tiles)
    flops = n * batch
    bytes_ = n * (spec.in_var.unit_bytes() + spec.out_var.unit_bytes())
    return bytes_, flops


def _spmv_costs(spec: SpmvSpec, tiles) -> tuple:
    m = spec.matrix
    xvar = spec.x.owned.var
    yvar = spec.y.owned.var
    batch = max(xvar.batch, 1)
    nnz = 0
    rows = 0
    for t in tiles:
        local = m.local[t]
        nnz += int(local["row_ptr"][-1])
        rows += int(local["n"])
    # Off-diagonal multiply-add per stored entry, plus the fused diagonal
    # multiply-add per row, for every RHS column.
    flops = batch * 2 * (nnz + rows)
    bytes_ = nnz * (4 + 8 + xvar.unit_bytes()) + rows * (
        4 + xvar.unit_bytes() + yvar.unit_bytes()
    )
    return bytes_, flops


def estimate_spec(spec, vertices) -> tuple:
    """``(est_bytes, est_flops)`` for one spec group; ``(0, 0)`` on failure."""
    tiles = [v.tile_id for v in vertices]
    try:
        if isinstance(spec, ElementwiseSpec):
            return _elementwise_costs(spec, tiles)
        if isinstance(spec, ReduceSpec):
            return _reduce_costs(spec, tiles)
        if isinstance(spec, BatchReduceSpec):
            return _batch_reduce_costs(spec, tiles)
        if isinstance(spec, SpmvSpec):
            return _spmv_costs(spec, tiles)
    except Exception:
        return 0, 0
    return 0, 0


def estimate_compute_set(cs) -> tuple:
    """``(est_bytes, est_flops)`` of one compute set (spec'd vertices only)."""
    groups: dict = {}
    for v in cs.vertices:
        spec = v.codelet.spec
        if spec is None:
            continue
        groups.setdefault(id(spec), (spec, []))[1].append(v)
    total_b = total_f = 0
    for spec, vs in groups.values():
        b, f = estimate_spec(spec, vs)
        total_b += b
        total_f += f
    return total_b, total_f


def _index_len(index, size: int) -> int:
    if isinstance(index, slice):
        return len(range(*index.indices(size)))
    return len(index)


def estimate_exchange(plan) -> int:
    """Bytes written by one exchange plan's copy ops (local + fabric)."""
    total = 0
    try:
        for op in plan.ops:
            n = _index_len(op.dst_index, op.dst.shape[0])
            row = int(np.prod(op.dst.shape[1:], dtype=np.int64)) * op.dst.dtype.itemsize
            total += n * row * (2 if op.dst_lo is not None else 1)
    except Exception:
        return total
    return total
