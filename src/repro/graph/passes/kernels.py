"""Kernel lowering: fuse runs of adjacent steps into whole-device kernels.

This is the second lowering stage of the graph compiler, run after plan
building (:mod:`repro.graph.passes.plans`).  It walks the optimized
schedule and groups every maximal run of adjacent ``Execute`` / ``Exchange``
steps inside a block — flushed only at control-flow boundaries and host
callbacks — into a :class:`FusedKernel`: one host-side dispatch that
executes the whole run as vectorized numpy over *flat per-device arrays*
(the ``Variable.flat_data`` buffers the shard views alias).

The lowering is spec-driven: codelets carry declarative
``Elementwise/Reduce/SpmvSpec`` metadata (:mod:`repro.graph.codelet`), and
each spec group in a compute set becomes a single whole-device numpy
expression — per-tile gather/scatter disappears because the shard views
already alias one flat buffer, so the "gather" is the identity and only
genuinely scalar operands are expanded (``np.repeat`` over the segment
sizes, reproducing per-tile broadcast exactly).  Codelets without a spec —
Gauss-Seidel sweeps, ILU triangular solves, CodeDSL vertices,
extended-precision SpMV — fall back to batched per-vertex dispatch *inside*
the kernel, so fusion never changes what runs, only how it is dispatched.

Every vectorized path reuses the exact numpy/Joldes op sequence of the
per-tile path (``eval_expr`` with a flat leaf resolver, the same pairwise
summation shapes, the same ``np.add.reduceat`` segment boundaries), which
is why ``fused`` results are bit-identical to ``sim`` — enforced by the
property tests in ``tests/graph/test_kernels.py``.

The schedule is stored on the :class:`CompiledProgram` alongside the
per-step plans; ``sim`` and ``fast`` never look at it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.codelet import BatchReduceSpec, ElementwiseSpec, ReduceSpec, SpmvSpec
from repro.graph.program import (
    Execute,
    Exchange,
    HostCallback,
    If,
    Repeat,
    RepeatWhile,
    Sequence,
    Step,
)

__all__ = ["FusedKernel", "KernelSchedule", "build_kernels"]


class _Unvectorizable(Exception):
    """Raised by a group lowerer when a vectorization precondition fails;
    the group falls back to batched per-vertex dispatch."""


class FusedKernel:
    """One whole-device kernel: a fused run of compute/exchange steps.

    ``ops`` is the ordered tuple of zero-argument callables (vectorized
    group evaluators, exchange-plan replays, batched fallbacks) that one
    dispatch executes.  ``n_compute`` / ``n_exchange`` count the absorbed
    steps (the engine keeps its superstep statistics in parity with the
    interpreted backends), ``n_dispatch`` the per-step dispatch calls the
    kernel replaces, and ``n_fallback`` the per-vertex runs that could not
    be vectorized.  ``est_bytes`` / ``est_flops`` carry the static traffic
    and arithmetic estimate (:mod:`repro.graph.passes.costs`) one launch
    represents — the wall-clock profiler divides measured time by these to
    report per-kernel GB/s and GFLOP/s.
    """

    __slots__ = ("name", "ops", "n_compute", "n_exchange", "n_dispatch", "n_fallback",
                 "est_bytes", "est_flops")

    def __init__(self, name: str, ops: tuple, n_compute: int, n_exchange: int,
                 n_dispatch: int, n_fallback: int, est_bytes: int = 0,
                 est_flops: int = 0):
        self.name = name
        self.ops = ops
        self.n_compute = n_compute
        self.n_exchange = n_exchange
        self.n_dispatch = n_dispatch
        self.n_fallback = n_fallback
        self.est_bytes = est_bytes
        self.est_flops = est_flops

    def run(self) -> None:
        for op in self.ops:
            op()

    def __repr__(self):
        return (
            f"FusedKernel({self.name!r}, compute={self.n_compute}, "
            f"exchange={self.n_exchange}, dispatch {self.n_dispatch}->1)"
        )


class KernelSchedule:
    """Per-block kernel item lists of one compiled program.

    A *block* is a step the engine enters as a unit: a ``Sequence``, a loop
    body, or an ``If`` branch.  ``items_for`` maps a block (by identity,
    like the plan table) to its lowered item tuple — ``FusedKernel`` objects
    interleaved with the control-flow / host-callback steps that flushed
    them.  Steps absorbed into a kernel never appear as items.
    """

    __slots__ = ("_items", "kernels")

    def __init__(self, items: dict, kernels: tuple):
        self._items = items
        self.kernels = kernels

    @property
    def n_kernels(self) -> int:
        return len(self.kernels)

    def items_for(self, step: Step):
        """The lowered items of one block, or ``None`` if unknown."""
        return self._items.get(id(step))

    def kernel_count(self, step: Step, recursive: bool = True) -> int:
        """Kernels launched by one pass through ``step``'s block (counting
        each nested block once, regardless of loop trip counts)."""
        items = self._items.get(id(step))
        if items is None:
            return 0
        count = 0
        for item in items:
            if isinstance(item, FusedKernel):
                count += 1
            elif recursive:
                if isinstance(item, Sequence):
                    count += self.kernel_count(item)
                elif isinstance(item, (Repeat, RepeatWhile)):
                    count += self.kernel_count(item.body)
                elif isinstance(item, If):
                    count += self.kernel_count(item.then_body)
                    if item.else_body is not None:
                        count += self.kernel_count(item.else_body)
        return count

    def loop_kernel_count(self, root: Step, label: str) -> int:
        """Kernels per iteration of the loop labeled ``label`` under ``root``
        (the fig5 acceptance metric: kernels per CG inner-loop iteration)."""
        loop = _find_loop(root, label)
        if loop is None:
            raise KeyError(f"no loop labeled {label!r} in schedule")
        return self.kernel_count(loop.body)

    def stats(self) -> dict:
        """Aggregate lowering statistics (surfaced through telemetry)."""
        return {
            "kernels": len(self.kernels),
            "steps_fused": sum(k.n_compute + k.n_exchange for k in self.kernels),
            "dispatches_replaced": sum(k.n_dispatch for k in self.kernels),
            "fallback_vertices": sum(k.n_fallback for k in self.kernels),
            "est_bytes": sum(k.est_bytes for k in self.kernels),
            "est_flops": sum(k.est_flops for k in self.kernels),
        }


def _find_loop(step: Step, label: str):
    if isinstance(step, (Repeat, RepeatWhile)) and step.label == label:
        return step
    children = ()
    if isinstance(step, Sequence):
        children = step.steps
    elif isinstance(step, (Repeat, RepeatWhile)):
        children = (step.body,)
    elif isinstance(step, If):
        children = (step.then_body,) + ((step.else_body,) if step.else_body else ())
    for c in children:
        found = _find_loop(c, label)
        if found is not None:
            return found
    return None


# -- leaf resolution over flat buffers ---------------------------------------------------


def _leaf_vars(expr) -> list:
    seen: dict = {}
    for leaf in expr.leaves():
        seen.setdefault(id(leaf.var), leaf.var)
    return list(seen.values())


def _flat_ndim(var) -> int:
    """Expected flat-buffer rank of a *distributed* variable: the batch axis
    adds one trailing dimension (``(n, batch)`` instead of ``(n,)``)."""
    return 1 if var.batch == 1 else 2


def _build_1d_fetchers(leaf_vars, tiles, ref_intervals, lo, hi, seg_sizes) -> dict:
    """Per-variable flat-value fetchers for element-major (distributed)
    evaluation.

    A leaf whose shard intervals equal the reference mapping resolves to a
    zero-copy view ``flat[lo:hi]``; a per-tile scalar leaf resolves to its
    per-tile values repeated over the segment sizes (exactly the per-tile
    numpy broadcast, materialized).  Batched leaves work identically — all
    indexing is along axis 0, the batch columns ride along.  Anything else
    is unvectorizable.
    """
    fetchers: dict = {}
    for var in leaf_vars:
        if var.flat_data is None:
            raise _Unvectorizable
        aligned = (
            ref_intervals is not None
            and not var.replicated
            and var.flat_data.ndim == _flat_ndim(var)
            and all(
                t in var.shards and var.shards[t].interval == ref_intervals[t]
                for t in tiles
            )
        )
        if aligned:
            data = var.flat_data[lo:hi]
            lo_arr = var.flat_lo[lo:hi] if var.paired else None

            def fetch(data=data, lo_arr=lo_arr):
                return (data, lo_arr) if lo_arr is not None else data

        elif all(t in var.shards and var.shards[t].size == 1 for t in tiles):
            if var.replicated:
                rows = np.array([var.replica_rows[t] for t in tiles], dtype=np.intp)

                def fetch(var=var, rows=rows, seg=seg_sizes):
                    vals = np.repeat(var.flat_data[rows, 0], seg, axis=0)
                    if var.paired:
                        return vals, np.repeat(var.flat_lo[rows, 0], seg, axis=0)
                    return vals

            else:
                if var.flat_data.ndim != _flat_ndim(var):
                    raise _Unvectorizable
                idx = np.array(
                    [var.shards[t].interval.start for t in tiles], dtype=np.intp
                )

                def fetch(var=var, idx=idx, seg=seg_sizes):
                    vals = np.repeat(var.flat_data[idx], seg, axis=0)
                    if var.paired:
                        return vals, np.repeat(var.flat_lo[idx], seg, axis=0)
                    return vals

        else:
            raise _Unvectorizable
        fetchers[id(var)] = fetch
    return fetchers


def _make_resolver(fetchers: dict):
    cache: dict = {}

    def resolve(leaf):
        key = id(leaf.var)
        value = cache.get(key)
        if value is None:
            value = fetchers[key]()
            cache[key] = value
        return value

    return resolve, cache


def _contiguous_order(var, tiles) -> tuple:
    """Group tiles sorted by ``var``'s intervals; requires a gap-free range.

    Returns ``(order, intervals, lo, hi, seg_sizes)``.
    """
    order = sorted(tiles, key=lambda t: var.shards[t].interval.start)
    ivs = [var.shards[t].interval for t in order]
    lo, hi = ivs[0].start, ivs[-1].stop
    pos = lo
    for iv in ivs:
        if iv.start != pos:
            raise _Unvectorizable
        pos = iv.stop
    seg = np.array([iv.size for iv in ivs], dtype=np.intp)
    return order, {t: var.shards[t].interval for t in order}, lo, hi, seg


# -- group lowerers ----------------------------------------------------------------------


def _lower_elementwise_group(spec: ElementwiseSpec, vertices):
    from repro.tensordsl.materialize import _expand_batch, convert_value, eval_expr

    expr, out = spec.expr, spec.out_var
    tiles = [v.tile_id for v in vertices]
    if len(set(tiles)) != len(tiles):
        raise _Unvectorizable
    leaf_vars = _leaf_vars(expr)
    expr_dt, out_dt = expr.dtype, out.dtype
    expand = out.batch > 1 and expr.batch == 1

    if out.replicated:
        # Whole-replica-matrix evaluation: every leaf must be replicated on
        # the same rows, so the stacked (replicas, size) buffers align and
        # the pointwise ops compute each row exactly as its tile would.
        if out.flat_data is None or set(tiles) != set(out.replica_rows):
            raise _Unvectorizable
        for var in leaf_vars:
            if not (
                var.replicated
                and var.flat_data is not None
                and var.replica_rows == out.replica_rows
            ):
                raise _Unvectorizable

        def resolve(leaf):
            v = leaf.var
            return (v.flat_data, v.flat_lo) if v.paired else v.flat_data

        out_hi, out_lo = out.flat_data, out.flat_lo

        def op():
            value = convert_value(eval_expr(expr, resolve), expr_dt, out_dt)
            if expand:
                value = _expand_batch(value, out_dt)
            if out_lo is not None:
                out_hi[...] = np.broadcast_to(value[0], out_hi.shape)
                out_lo[...] = np.broadcast_to(value[1], out_lo.shape)
            else:
                out_hi[...] = np.broadcast_to(value, out_hi.shape)

        return op

    if out.flat_data is None or out.flat_data.ndim != _flat_ndim(out):
        raise _Unvectorizable
    order, ref, lo, hi, seg = _contiguous_order(out, tiles)
    fetchers = _build_1d_fetchers(leaf_vars, order, ref, lo, hi, seg)
    out_hi = out.flat_data[lo:hi]
    out_lo = out.flat_lo[lo:hi] if out.paired else None

    def op():
        resolve, _ = _make_resolver(fetchers)
        value = convert_value(eval_expr(expr, resolve), expr_dt, out_dt)
        if expand:
            value = _expand_batch(value, out_dt)
        if out_lo is not None:
            out_hi[...] = np.broadcast_to(value[0], out_hi.shape)
            out_lo[...] = np.broadcast_to(value[1], out_lo.shape)
        else:
            out_hi[...] = np.broadcast_to(value, out_hi.shape)

    return op


def _dw_tree_sum_rows(hi2d, lo2d):
    """Row-wise double-word pairwise summation, same index pairing as the
    per-tile ``_dw_tree_sum`` (materialize.py) — add_dw_dw is pointwise, so
    each row's result is bit-identical to its 1-D reduction."""
    from repro.dw import joldes

    H, L = hi2d, lo2d
    while H.shape[1] > 1:
        half = H.shape[1] // 2
        h2, l2 = joldes.add_dw_dw(
            H[:, :half], L[:, :half], H[:, half : 2 * half], L[:, half : 2 * half]
        )
        if H.shape[1] % 2:
            h2 = np.concatenate([h2, H[:, -1:]], axis=1)
            l2 = np.concatenate([l2, L[:, -1:]], axis=1)
        H, L = h2, l2
    return H[:, 0], L[:, 0]


def _reduce_segments(value, dt: str, op: str, seg, offsets):
    """Per-segment reduction matching materialize._reduce_value per segment."""
    from repro.dw import joldes  # noqa: F401  (imported for parity with docs)
    from repro.tensordsl.materialize import _dw_tree_sum, _reduce_value
    from repro.tensordsl.types import Type

    T = len(seg)
    equal = T > 0 and seg[0] > 0 and bool((seg == seg[0]).all())
    if dt == Type.DOUBLEWORD:
        hi = np.asarray(value[0], np.float32).ravel()
        lo = np.asarray(value[1], np.float32).ravel()
        if equal:
            n = int(seg[0])
            H, L = hi.reshape(T, n), lo.reshape(T, n)
            if op == "sum":
                return _dw_tree_sum_rows(H, L)
            wide = H.astype(np.float64) + L.astype(np.float64)
            k = np.argmax(wide, axis=1) if op == "max" else np.argmin(wide, axis=1)
            rows = np.arange(T)
            return H[rows, k], L[rows, k]
        res_h = np.empty(T, np.float32)
        res_l = np.empty(T, np.float32)
        for i in range(T):
            a, b = offsets[i], offsets[i + 1]
            if op == "sum":
                res_h[i], res_l[i] = _dw_tree_sum(hi[a:b], lo[a:b])
            else:
                res_h[i], res_l[i] = _reduce_value((hi[a:b], lo[a:b]), dt, op)
        return res_h, res_l
    arr = np.asarray(value).ravel()
    if equal:
        n = int(seg[0])
        m = arr.reshape(T, n)
        if op == "sum":
            return m.sum(axis=1, dtype=arr.dtype)
        return m.max(axis=1) if op == "max" else m.min(axis=1)
    res = np.empty(T, arr.dtype)
    for i in range(T):
        a, b = offsets[i], offsets[i + 1]
        if op == "sum":
            res[i] = arr[a:b].sum(dtype=arr.dtype)
        else:
            res[i] = arr[a:b].max() if op == "max" else arr[a:b].min()
    return res


def _reduce_segments_batched(value, dt: str, op: str, seg, offsets, batch: int):
    """Batched per-segment reduction: each (segment, RHS-column) pair runs
    the same per-column `_reduce_value` as the per-tile batched path — a
    row-slice of the whole-device value is the tile's value, so results are
    bit-identical to the sim backend per RHS."""
    from repro.tensordsl.materialize import _reduce_value_batched

    T = len(seg)
    arr = np.asarray(value)
    res = np.empty((T, batch), arr.dtype)
    for i in range(T):
        a, b = int(offsets[i]), int(offsets[i + 1])
        res[i] = _reduce_value_batched(arr[a:b], dt, op, b - a, batch)
    return res


def _lower_reduce_group(spec: ReduceSpec, vertices):
    from repro.tensordsl.materialize import eval_expr
    from repro.tensordsl.types import Type

    expr, out, rop = spec.expr, spec.out_var, spec.op
    batch = expr.batch
    tiles = [v.tile_id for v in vertices]
    if len(set(tiles)) != len(tiles):
        raise _Unvectorizable
    if out.replicated or out.flat_data is None or out.flat_data.ndim != _flat_ndim(out):
        raise _Unvectorizable
    if out.dtype != expr.dtype or out.batch != batch:
        raise _Unvectorizable
    if batch > 1 and expr.dtype == "dw":
        raise _Unvectorizable
    if not all(t in out.shards and out.shards[t].size == 1 for t in tiles):
        raise _Unvectorizable
    leaf_vars = _leaf_vars(expr)
    # Segment layout comes from the non-scalar leaves (per-tile evaluation
    # reduces a value of the largest leaf shard size on each tile).
    big = [
        v
        for v in leaf_vars
        if not v.replicated
        and v.flat_data is not None
        and v.flat_data.ndim == _flat_ndim(v)
        and any(t in v.shards and v.shards[t].size > 1 for t in tiles)
    ]
    if big:
        ref_var = big[0]
        if not all(t in ref_var.shards for t in tiles):
            raise _Unvectorizable
        order, ref, lo, hi, seg = _contiguous_order(ref_var, tiles)
    else:
        order = sorted(tiles, key=lambda t: out.shards[t].interval.start)
        ref, lo, hi = None, 0, 0
        seg = np.ones(len(order), dtype=np.intp)
    offsets = np.concatenate([[0], np.cumsum(seg)])
    total = int(offsets[-1])
    fetchers = _build_1d_fetchers(leaf_vars, order, ref, lo, hi, seg)
    out_idx = np.array([out.shards[t].interval.start for t in order], dtype=np.intp)
    expr_dt = expr.dtype
    paired = expr_dt == Type.DOUBLEWORD
    out_hi, out_lo = out.flat_data, out.flat_lo

    def op():
        resolve, _ = _make_resolver(fetchers)
        value = eval_expr(expr, resolve)
        if paired:
            vh = np.broadcast_to(np.asarray(value[0]), (total,))
            vl = np.broadcast_to(np.asarray(value[1]), (total,))
            res_h, res_l = _reduce_segments((vh, vl), expr_dt, rop, seg, offsets)
            out_hi[out_idx] = res_h
            out_lo[out_idx] = res_l
        elif batch > 1:
            v = np.broadcast_to(np.asarray(value), (total, batch))
            out_hi[out_idx] = _reduce_segments_batched(v, expr_dt, rop, seg, offsets, batch)
        else:
            v = np.broadcast_to(np.asarray(value), (total,))
            out_hi[out_idx] = _reduce_segments(v, expr_dt, rop, seg, offsets)

    return op


def _lower_spmv_group(spec: SpmvSpec, vertices):
    from repro.sparse.distribute import segment_sums

    m, x, y = spec.matrix, spec.x, spec.y
    tiles = {v.tile_id for v in vertices}
    if tiles != set(m.tiles):
        raise _Unvectorizable
    xvar, yvar, hvar = x.owned.var, y.owned.var, x.halo.var
    batch = xvar.batch
    if yvar.batch != batch:
        raise _Unvectorizable
    for var in (xvar, yvar):
        if var.replicated or var.flat_data is None or var.flat_data.ndim != _flat_ndim(var):
            raise _Unvectorizable
    n = m.n
    if xvar.size != n or yvar.size != n:
        raise _Unvectorizable
    order = list(m.tiles)
    pos = 0
    for t in order:
        ivx, ivy = xvar.shards[t].interval, yvar.shards[t].interval
        if ivx.start != pos or ivy.start != pos or ivx.stop != ivy.stop:
            raise _Unvectorizable
        pos = ivx.stop
    if pos != n:
        raise _Unvectorizable
    use_halo = (
        not hvar.replicated
        and hvar.flat_data is not None
        and hvar.flat_data.ndim == _flat_ndim(hvar)
        and hvar.batch == batch
        and hvar.size > 0
    )

    # Lift every tile's local column space into the global index space of
    # ``[owned | halo]`` — the gather that _spmv_tile performs per call via
    # np.concatenate is precomputed here, once, at compile time.
    cols, vals, diags, ptr_parts = [], [], [], [np.zeros(1, dtype=np.int64)]
    nnz_off = 0
    for t in order:
        local = m.local[t]
        n_loc = local["n"]
        start = xvar.shards[t].interval.start
        col = local["col_idx"].astype(np.int64)
        halo_mask = col >= n_loc
        gcol = col + start
        if halo_mask.any():
            if not use_halo or m.plan.halo_count(t) == 0:
                raise _Unvectorizable
            hstart = hvar.shards[t].interval.start
            gcol = np.where(halo_mask, n + hstart + (col - n_loc), gcol)
        cols.append(gcol)
        vals.append(local["values"])
        diags.append(local["diag"])
        rp = local["row_ptr"].astype(np.int64)
        ptr_parts.append(rp[1:] + nnz_off)
        nnz_off += int(rp[-1])
    colmap = np.concatenate(cols) if cols else np.zeros(0, np.int64)
    values_g = np.concatenate(vals) if vals else np.zeros(0, np.float32)
    diag_g = np.concatenate(diags) if diags else np.zeros(0, np.float32)
    row_ptr_g = np.concatenate(ptr_parts)
    xflat, yflat = xvar.flat_data, yvar.flat_data
    hflat = hvar.flat_data if use_halo else None

    if batch > 1:
        # SpMM: the same precomputed global colmap gathers (nnz, batch)
        # rows; one segmented sum over axis 0 reduces all RHS at once.
        values_b = values_g[:, None]
        diag_b = diag_g[:, None]

        def op():
            xfull = np.concatenate([xflat, hflat]) if hflat is not None else xflat
            contrib = values_b * xfull[colmap]
            sums = segment_sums(contrib, row_ptr_g, n)
            yflat[...] = diag_b * xflat + sums

        return op

    def op():
        xfull = np.concatenate([xflat, hflat]) if hflat is not None else xflat
        contrib = values_g * xfull[colmap]
        sums = segment_sums(contrib, row_ptr_g, n)
        yflat[...] = diag_g * xflat + sums

    return op


def _lower_batch_reduce_group(spec: BatchReduceSpec, vertices):
    """Whole-device batch-axis collapse: ``out[:, 0] = in[:, 0, :].max(axis=1)``
    over the stacked replica buffers.  max/min are order-insensitive, so the
    row-wise numpy reduction is bit-identical to each tile's own ``arr.max()``."""
    src, out, rop = spec.in_var, spec.out_var, spec.op
    tiles = [v.tile_id for v in vertices]
    if len(set(tiles)) != len(tiles):
        raise _Unvectorizable
    if not (src.replicated and out.replicated):
        raise _Unvectorizable
    if src.flat_data is None or out.flat_data is None:
        raise _Unvectorizable
    if src.replica_rows != out.replica_rows or set(tiles) != set(src.replica_rows):
        raise _Unvectorizable
    if src.flat_data.ndim != 3 or out.flat_data.ndim != 2:
        raise _Unvectorizable
    src_flat, out_flat = src.flat_data, out.flat_data

    def op():
        arr = src_flat[:, 0, :]
        out_flat[:, 0] = arr.max(axis=1) if rop == "max" else arr.min(axis=1)

    return op


# -- compute-set and schedule lowering ---------------------------------------------------


def _lower_compute_set(cs) -> tuple:
    """Lower one compute set into kernel ops.

    Returns ``(ops, n_dispatch, n_fallback, est_bytes, est_flops)``.
    Vertices within a compute set are element-disjoint (tile-local access +
    the FuseComputeSets disjointness invariant), so group order cannot be
    observed.
    """
    groups: dict = {}
    fallback: list = []
    for v in cs.vertices:
        spec = v.codelet.spec
        if isinstance(spec, ElementwiseSpec):
            key = ("ew", id(spec.expr), id(spec.out_var))
        elif isinstance(spec, ReduceSpec):
            key = ("red", id(spec.expr), id(spec.out_var), spec.op)
        elif isinstance(spec, SpmvSpec):
            key = ("spmv", id(spec.matrix), id(spec.x), id(spec.y))
        elif isinstance(spec, BatchReduceSpec):
            key = ("bred", id(spec.in_var), id(spec.out_var), spec.op)
        else:
            fallback.append(v)
            continue
        groups.setdefault(key, (spec, []))[1].append(v)

    ops: list = []
    for key, (spec, vs) in groups.items():
        try:
            if key[0] == "ew":
                ops.append(_lower_elementwise_group(spec, vs))
            elif key[0] == "red":
                ops.append(_lower_reduce_group(spec, vs))
            elif key[0] == "bred":
                ops.append(_lower_batch_reduce_group(spec, vs))
            else:
                ops.append(_lower_spmv_group(spec, vs))
        except _Unvectorizable:
            fallback.extend(vs)

    n_fallback = len(fallback)
    if fallback:
        runs = tuple(v.run for v in fallback)

        def batched(runs=runs):
            for r in runs:
                r()

        ops.append(batched)
    from repro.graph.passes.costs import estimate_compute_set

    est_bytes, est_flops = estimate_compute_set(cs)
    return ops, len(cs.vertices), n_fallback, est_bytes, est_flops


def build_kernels(root: Step, plans) -> KernelSchedule:
    """Lower an optimized schedule + its plans into a :class:`KernelSchedule`."""
    items_by_block: dict = {}
    all_kernels: list = []
    cs_cache: dict = {}

    def lower_execute(step: Execute) -> tuple:
        key = id(step.compute_set)
        if key not in cs_cache:
            cs_cache[key] = _lower_compute_set(step.compute_set)
        return cs_cache[key]

    def lower_children(children) -> list:
        from repro.graph.passes.costs import estimate_exchange

        items: list = []
        ops: list = []
        absorbed: list = []
        counts = [0, 0, 0, 0]  # dispatches replaced, fallbacks, est bytes, est flops

        def flush():
            if absorbed:
                n_compute = sum(1 for s in absorbed if isinstance(s, Execute))
                kernel = FusedKernel(
                    f"k{len(all_kernels)}",
                    tuple(ops),
                    n_compute,
                    len(absorbed) - n_compute,
                    counts[0],
                    counts[1],
                    est_bytes=counts[2],
                    est_flops=counts[3],
                )
                all_kernels.append(kernel)
                items.append(kernel)
            ops.clear()
            absorbed.clear()
            counts[0] = counts[1] = counts[2] = counts[3] = 0

        for s in children:
            if isinstance(s, Execute):
                cs_ops, n_dispatch, n_fallback, est_b, est_f = lower_execute(s)
                ops.extend(cs_ops)
                absorbed.append(s)
                counts[0] += n_dispatch
                counts[1] += n_fallback
                counts[2] += est_b
                counts[3] += est_f
            elif isinstance(s, Exchange):
                plan = plans.plan_for(s)
                plan_ops = plan.ops

                def exchange_op(plan_ops=plan_ops):
                    for copy in plan_ops:
                        copy.apply()

                ops.append(exchange_op)
                absorbed.append(s)
                counts[0] += len(plan_ops)
                counts[2] += estimate_exchange(plan)
            else:
                flush()
                if isinstance(s, Sequence):
                    lower_block(s)
                elif isinstance(s, (Repeat, RepeatWhile)):
                    lower_block(s.body)
                elif isinstance(s, If):
                    lower_block(s.then_body)
                    if s.else_body is not None:
                        lower_block(s.else_body)
                elif not isinstance(s, HostCallback):
                    raise TypeError(f"unknown program step: {s!r}")
                items.append(s)
        flush()
        return items

    def lower_block(step: Step) -> None:
        if id(step) in items_by_block:
            return
        if isinstance(step, Sequence):
            items_by_block[id(step)] = ()  # guard against re-entry on shared bodies
            items_by_block[id(step)] = tuple(lower_children(step.steps))
        else:
            items_by_block[id(step)] = ()
            items_by_block[id(step)] = tuple(lower_children([step]))

    lower_block(root)
    return KernelSchedule(items_by_block, tuple(all_kernels))
