"""Loop-invariant hoisting: normalize loop bodies once, simplify trivial loops.

The graph compiler compiles a loop *body* a single time regardless of the
trip count (Sec. III-C) — so all schedule normalization must happen outside
the iteration structure, and bodies shared between several loops must be
lowered once and shared in the output.  The bottom-up rewriter's memo table
provides the compile-once guarantee; this pass adds the loop-structure
simplifications that only become visible once bodies are normalized:

- ``Repeat(0, body)`` and ``Repeat(n, <empty>)`` are dead and removed,
- ``Repeat(1, body)`` unwraps to the body (one fewer control sync),
- ``Repeat(m, Repeat(n, body))`` collapses to ``Repeat(m*n, body)`` when the
  inner loop is the whole body — the ``m`` outer control charges disappear
  and the body is compiled once instead of appearing behind two loop steps.

All rewrites preserve the executed compute/exchange steps and their order
bit-for-bit; only loop-control overhead is removed.
"""

from __future__ import annotations

from repro.graph.passes.base import Pass, rewrite_bottom_up
from repro.graph.passes.flatten import _is_empty
from repro.graph.program import Repeat, Sequence, Step

__all__ = ["HoistLoopInvariants"]


def _sole_step(step: Step) -> Step:
    """Unwrap unlabeled single-step sequences to the step itself."""
    while isinstance(step, Sequence) and step.label is None and len(step.steps) == 1:
        step = step.steps[0]
    return step


class HoistLoopInvariants(Pass):
    """Simplify counted loops; bodies are normalized once and shared."""

    name = "hoist-loop-invariants"

    def run(self, root: Step) -> Step:
        # One shared memo: a body reached from several loops is rewritten
        # exactly once and the normalized object is shared in the output.
        return rewrite_bottom_up(root, self._local, memo={})

    def _local(self, step: Step) -> Step:
        if not isinstance(step, Repeat):
            return step
        if step.count <= 0 or _is_empty(step.body):
            return Sequence([])
        if step.count == 1 and step.label is None:
            return step.body
        inner = _sole_step(step.body)
        if isinstance(inner, Repeat) and inner.label is None and not _is_empty(inner.body):
            return Repeat(step.count * inner.count, inner.body, label=step.label)
        return step
