"""The pass-based graph compiler: lowering pipeline between DSLs and Engine.

- :mod:`repro.graph.passes.base` — ``Pass`` protocol, ``PassManager`` with
  per-pass :class:`~repro.graph.compiler.GraphStats` deltas, and the
  immutable :class:`CompiledProgram` artifact,
- :mod:`repro.graph.passes.flatten` — sequence flattening + dead-step
  elimination,
- :mod:`repro.graph.passes.coalesce` — adjacent exchanges merge into one
  fabric phase (fewer BSP supersteps),
- :mod:`repro.graph.passes.fuse` — adjacent compute sets on disjoint tiles
  share one sync,
- :mod:`repro.graph.passes.loops` — loop-invariant normalization hoisting
  (bodies compiled once, trivial loops simplified),
- :mod:`repro.graph.passes.plans` — every leaf step of the optimized
  schedule is frozen into an execution plan (precomputed worker packing,
  vectorized exchange index arrays) that the runtime backends replay,
- :mod:`repro.graph.passes.kernels` — the last lowering stage: runs of
  adjacent compute/exchange steps between control-flow boundaries fuse
  into whole-device :class:`FusedKernel` nodes the ``fused`` backend
  dispatches (docs/runtime.md).
"""

from repro.graph.passes.base import (
    CompiledProgram,
    Pass,
    PassManager,
    PassReport,
    PassResult,
    compile_invocations,
    compile_program,
    default_passes,
    pass_invocations,
    rewrite_bottom_up,
)
from repro.graph.passes.coalesce import CoalesceExchanges
from repro.graph.passes.flatten import FlattenSequences
from repro.graph.passes.fuse import FuseComputeSets
from repro.graph.passes.kernels import FusedKernel, KernelSchedule, build_kernels
from repro.graph.passes.loops import HoistLoopInvariants
from repro.graph.passes.plans import (
    ComputePlan,
    CopyOp,
    ExchangePlan,
    ExecutionPlans,
    TilePlan,
    build_plans,
    compute_set_category,
    lpt_makespan,
)

__all__ = [
    "Pass",
    "PassManager",
    "PassReport",
    "PassResult",
    "CompiledProgram",
    "compile_program",
    "compile_invocations",
    "default_passes",
    "pass_invocations",
    "rewrite_bottom_up",
    "FlattenSequences",
    "HoistLoopInvariants",
    "CoalesceExchanges",
    "FuseComputeSets",
    "ComputePlan",
    "CopyOp",
    "ExchangePlan",
    "ExecutionPlans",
    "TilePlan",
    "build_plans",
    "compute_set_category",
    "lpt_makespan",
    "FusedKernel",
    "KernelSchedule",
    "build_kernels",
]
