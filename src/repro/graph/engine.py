"""The engine: a control-flow interpreter over a compiled program.

This is the analogue of ``poplar::Engine`` loading a compiled executable.
The engine owns *only* control flow — ``Sequence`` / ``Repeat`` /
``RepeatWhile`` / ``If`` / ``HostCallback`` — plus the host data interface;
compute and exchange phases are delegated to a pluggable runtime backend
(:mod:`repro.graph.runtime`).  With the default ``backend="sim"`` execution
is deterministic: the same program on the same inputs always produces the
same results *and the same cycle counts*, mirroring the measurement
methodology of Sec. VI-A.  ``backend="fast"`` produces bit-identical
results without any cycle accounting.
"""

from __future__ import annotations

import numpy as np

from repro.graph.passes.base import CompiledProgram
from repro.graph.passes.kernels import FusedKernel
from repro.graph.program import (
    Execute,
    Exchange,
    HostCallback,
    If,
    Repeat,
    RepeatWhile,
    Sequence,
    Step,
)
from repro.graph.runtime import CONTROL_CYCLES, resolve_backend
from repro.graph.variable import Variable

__all__ = ["Engine", "CONTROL_CYCLES"]


class Engine:
    """Executes a :class:`CompiledProgram` on a runtime backend.

    The only supported construction is ``Engine(compiled_program)`` followed
    by ``engine.run()`` — the engine only ever sees schedules the pass
    pipeline has lowered into plans, like ``poplar::Engine`` only ever loads
    compiled executables.  ``backend`` selects the runtime: ``"sim"``
    (cycle-accurate, the default), ``"fast"`` (numerics only), or any
    :class:`~repro.graph.runtime.Backend` instance/class.
    """

    def __init__(self, program: CompiledProgram, backend="sim", tracer=None,
                 injector=None, wall_tracer=None):
        if not isinstance(program, CompiledProgram):
            raise TypeError(
                "Engine expects a CompiledProgram; lower raw schedules with "
                "compile_program(graph, root) (or optimize=False to freeze "
                "them as-is) before constructing an engine"
            )
        self.compiled = program
        self.graph = program.graph
        self.device = self.graph.device
        self.profiler = self.device.profiler
        self.backend = resolve_backend(backend)
        self.backend.bind(program, self.device)
        self.tracer = tracer
        if tracer is not None:
            self.backend.set_tracer(tracer)
        self.injector = injector
        if injector is not None:
            self.backend.set_fault_injector(injector)
        self.wall_tracer = wall_tracer
        if wall_tracer is not None:
            self.backend.set_wall_tracer(wall_tracer)
        # Kernel-dispatch backends route whole blocks through the compiled
        # kernel schedule instead of stepping compute sets one at a time.
        self._kernel_schedule = (
            program.kernels if getattr(self.backend, "uses_kernels", False) else None
        )
        # Execution statistics (compile-proxy counters live in compiler.py).
        self.supersteps = 0
        self.exchanges = 0
        self.host_callbacks = 0
        self.loop_iterations = 0

    # -- host data interface ---------------------------------------------------------

    def read(self, var: Variable) -> np.ndarray:
        return var.gather()

    def write(self, var: Variable, values) -> None:
        var.scatter(values)

    def read_scalar(self, var: Variable) -> float:
        if not var.is_scalar:
            raise ValueError(f"{var.name!r} is not a scalar")
        if var.batch > 1:
            raise ValueError(
                f"{var.name!r} carries {var.batch} RHS values; use read_batch"
            )
        sh = var.shards[min(var.shards)]
        val = float(sh.data[0])
        if sh.lo is not None:
            val += float(sh.lo[0])
        return val

    def read_batch(self, var: Variable) -> np.ndarray:
        """Per-RHS values of a (possibly batched) scalar, shape ``(batch,)``."""
        if not var.is_scalar:
            raise ValueError(f"{var.name!r} is not a scalar")
        sh = var.shards[min(var.shards)]
        row = np.asarray(sh.data[0], dtype=np.float64)
        if sh.lo is not None:
            row = row + np.asarray(sh.lo[0], dtype=np.float64)
        return np.atleast_1d(row)

    # -- execution ---------------------------------------------------------------------

    def run(self) -> None:
        """Execute the compiled program's root step."""
        self._run_step(self.compiled.root)
        if self.tracer is not None:
            self.tracer.finalize()
        wt = getattr(self.backend, "wall_tracer", None)
        if wt is not None:
            wt.finalize()

    def _run_kernel_items(self, step: Step) -> bool:
        """Replay a block's fused-kernel item list, if one applies.

        Under a kernel-dispatch backend a block (``Sequence``, loop body,
        branch body) executes as its lowered items — fused kernels launch as
        single dispatches, with engine superstep/exchange statistics kept in
        parity via the kernels' absorbed-step counts.  Returns False when
        the block must be interpreted step by step instead.
        """
        if self._kernel_schedule is None:
            return False
        items = self._kernel_schedule.items_for(step)
        if items is None:
            return False
        for item in items:
            if isinstance(item, FusedKernel):
                self.supersteps += item.n_compute
                self.exchanges += item.n_exchange
                self.backend.run_kernel(item)
            else:
                self._run_step(item)
        return True

    def _run_block(self, step: Step) -> None:
        """Run a loop/branch body: fused items when available, else interpret."""
        if not self._run_kernel_items(step):
            self._run_step(step)

    def _run_step(self, step: Step) -> None:
        if isinstance(step, Sequence):
            if step.label is not None:
                with self.backend.scope(step.label):
                    if not self._run_kernel_items(step):
                        for s in step.steps:
                            self._run_step(s)
            elif not self._run_kernel_items(step):
                for s in step.steps:
                    self._run_step(s)
        elif isinstance(step, Execute):
            self.supersteps += 1
            self.backend.run_compute_set(step)
        elif isinstance(step, Exchange):
            self.exchanges += 1
            self.backend.run_exchange(step)
        elif isinstance(step, Repeat):
            if step.label is not None:
                with self.backend.scope(step.label):
                    self._run_repeat(step)
            else:
                self._run_repeat(step)
        elif isinstance(step, RepeatWhile):
            if step.label is not None:
                with self.backend.scope(step.label):
                    self._run_repeat_while(step)
            else:
                self._run_repeat_while(step)
        elif isinstance(step, If):
            self.backend.control()
            if self.read_scalar(step.cond) != 0.0:
                self._run_block(step.then_body)
            elif step.else_body is not None:
                self._run_block(step.else_body)
        elif isinstance(step, HostCallback):
            self.host_callbacks += 1
            step.fn(self)
        else:
            raise TypeError(f"unknown program step: {step!r}")

    # -- loops -------------------------------------------------------------------------

    def _run_repeat(self, step: Repeat) -> None:
        for _ in range(step.count):
            self.loop_iterations += 1
            self.backend.control()
            self._run_block(step.body)

    def _run_repeat_while(self, step: RepeatWhile) -> None:
        iters = 0
        while True:
            if step.check_before_first or iters > 0:
                self.backend.control()
                if self.read_scalar(step.cond) == 0.0:
                    break
            if iters >= step.max_iterations:
                break
            iters += 1
            self.loop_iterations += 1
            self._run_block(step.body)
