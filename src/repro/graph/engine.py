"""The engine: executes an execution schedule on the machine model.

This is the analogue of ``poplar::Engine`` running a compiled graph program
on hardware (or on Poplar's simulator — which is precisely what we are).
Execution is deterministic: the same program on the same inputs always
produces the same results *and the same cycle counts*, mirroring the
measurement methodology of Sec. VI-A.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.passes.base import CompiledProgram
from repro.graph.program import (
    Execute,
    Exchange,
    HostCallback,
    If,
    Repeat,
    RepeatWhile,
    Sequence,
    Step,
)
from repro.graph.variable import Variable
from repro.machine.fabric import Transfer

__all__ = ["Engine"]

#: Control-flow overhead charged per loop-iteration / branch decision
#: (the IPU evaluates branch predicates with single-cycle latency, but the
#: sync to agree on the branch across tiles is not free).
CONTROL_CYCLES = 8


class Engine:
    """Executes a :class:`CompiledProgram` (or raw steps) on the machine model.

    The supported construction is ``Engine(compiled_program)`` followed by
    ``engine.run()`` — the engine only ever sees schedules the pass pipeline
    has lowered, like ``poplar::Engine`` only ever loads compiled
    executables.  ``Engine(graph)`` + ``engine.run(step)`` is kept as a thin
    deprecated path for callers that still hand-build raw step trees.
    """

    def __init__(self, program):
        if isinstance(program, CompiledProgram):
            self.compiled = program
            graph = program.graph
        else:  # deprecated raw-graph path
            self.compiled = None
            graph = program
        self.graph = graph
        self.device = graph.device
        self.profiler = graph.device.profiler
        # Execution statistics (compile-proxy counters live in compiler.py).
        self.supersteps = 0
        self.exchanges = 0
        self.host_callbacks = 0
        self.loop_iterations = 0

    # -- host data interface ---------------------------------------------------------

    def read(self, var: Variable) -> np.ndarray:
        return var.gather()

    def write(self, var: Variable, values) -> None:
        var.scatter(values)

    def read_scalar(self, var: Variable) -> float:
        if not var.is_scalar:
            raise ValueError(f"{var.name!r} is not a scalar")
        sh = var.shards[min(var.shards)]
        val = float(sh.data[0])
        if sh.lo is not None:
            val += float(sh.lo[0])
        return val

    # -- execution ---------------------------------------------------------------------

    def run(self, step: Step | None = None) -> None:
        """Execute one step; with no argument, the compiled program's root."""
        if step is None:
            if self.compiled is None:
                raise ValueError("Engine(graph) has no compiled program; pass a step")
            step = self.compiled.root
        if isinstance(step, Sequence):
            if step.label is not None:
                with self.profiler.step(step.label):
                    for s in step.steps:
                        self.run(s)
            else:
                for s in step.steps:
                    self.run(s)
        elif isinstance(step, Execute):
            self._run_compute_set(step)
        elif isinstance(step, Exchange):
            self._run_exchange(step)
        elif isinstance(step, Repeat):
            if step.label is not None:
                with self.profiler.step(step.label):
                    self._run_repeat(step)
            else:
                self._run_repeat(step)
        elif isinstance(step, RepeatWhile):
            if step.label is not None:
                with self.profiler.step(step.label):
                    self._run_repeat_while(step)
            else:
                self._run_repeat_while(step)
        elif isinstance(step, If):
            self.profiler.record("control", CONTROL_CYCLES)
            if self.read_scalar(step.cond) != 0.0:
                self.run(step.then_body)
            elif step.else_body is not None:
                self.run(step.else_body)
        elif isinstance(step, HostCallback):
            self.host_callbacks += 1
            step.fn(self)
        else:
            raise TypeError(f"unknown program step: {step!r}")

    def _run_repeat(self, step: Repeat) -> None:
        for _ in range(step.count):
            self.loop_iterations += 1
            self.profiler.record("control", CONTROL_CYCLES)
            self.run(step.body)

    # -- compute phases -----------------------------------------------------------------

    def _run_compute_set(self, step: Execute) -> None:
        cs = step.compute_set
        self.supersteps += 1
        worst_tile = 0
        per_tile: dict[int, list] = {}
        category = cs.category
        for v in cs.vertices:
            per_tile.setdefault(v.tile_id, []).append(v)
            if category is None:
                category = v.codelet.category
        for tile_id, vertices in per_tile.items():
            tasks = []
            for v in vertices:
                v.run()
                tasks.extend(v.worker_cycles())
            worst_tile = max(worst_tile, self._pack_workers(tasks))
        cycles = self.device.model.sync() + worst_tile
        self.profiler.record(category or "elementwise", cycles)

    def _pack_workers(self, tasks) -> int:
        """Makespan of ``tasks`` on the tile's 6 workers (LPT packing)."""
        w = self.device.spec.workers_per_tile
        if len(tasks) <= w:
            return max(tasks, default=0)
        heap = [0] * w
        for t in sorted(tasks, reverse=True):
            heapq.heappush(heap, heapq.heappop(heap) + t)
        return max(heap)

    # -- exchange phases -----------------------------------------------------------------

    def _run_exchange(self, step: Exchange) -> None:
        self.exchanges += 1
        transfers = []
        # On-tile memcpys serialize on their tile's st64 path: costs are
        # summed per tile, then max-reduced across tiles (BSP semantics).
        local_per_tile: dict[int, int] = {}
        for rc in step.copies:
            src_sh = rc.src_var.shard(rc.src_tile)
            src_hi = src_sh.data[rc.src_offset : rc.src_offset + rc.size]
            src_lo = (
                src_sh.lo[rc.src_offset : rc.src_offset + rc.size]
                if src_sh.lo is not None
                else None
            )
            remote_dests = []
            for dst_var, dst_tile, dst_offset in rc.dests:
                dst_sh = dst_var.shard(dst_tile)
                dst_sh.data[dst_offset : dst_offset + rc.size] = src_hi
                if src_lo is not None and dst_sh.lo is not None:
                    dst_sh.lo[dst_offset : dst_offset + rc.size] = src_lo
                if dst_tile != rc.src_tile:
                    remote_dests.append(dst_tile)
                else:
                    # On-tile memcpy: 8 bytes per cycle through the st64 path.
                    cost = (rc.size * rc.src_var.element_bytes() + 7) // 8
                    local_per_tile[dst_tile] = local_per_tile.get(dst_tile, 0) + cost
            if remote_dests:
                nbytes = rc.size * rc.src_var.element_bytes()
                transfers.append(Transfer(rc.src_tile, tuple(remote_dests), nbytes))
        phase = self.device.fabric.run(transfers)
        local_cycles = max(local_per_tile.values(), default=0)
        self.profiler.record(step.name, phase.cycles + local_cycles)

    # -- loops -------------------------------------------------------------------------

    def _run_repeat_while(self, step: RepeatWhile) -> None:
        iters = 0
        while True:
            if step.check_before_first or iters > 0:
                self.profiler.record("control", CONTROL_CYCLES)
                if self.read_scalar(step.cond) == 0.0:
                    break
            if iters >= step.max_iterations:
                break
            iters += 1
            self.loop_iterations += 1
            self.run(step.body)
