"""``FusedBackend``: whole-device kernel execution over flat arrays.

Executes the :class:`~repro.graph.passes.kernels.KernelSchedule` built at
compile time: each :class:`~repro.graph.passes.kernels.FusedKernel` is one
host-side dispatch that runs a whole run of compute/exchange steps as
vectorized numpy over the flat per-device buffers — the dozens of per-step
dispatches the ``fast`` backend makes per solver iteration collapse into a
handful of kernel launches, which is where the host wall-clock goes.

Results are bit-identical to ``sim`` and ``fast``: the vectorized paths
replay the exact same floating-point operations (see
:mod:`repro.graph.passes.kernels`), and any codelet the lowerer could not
vectorize runs unchanged inside the kernel.  Steps outside any kernel
(uncovered blocks) fall back to the inherited ``fast`` per-step dispatch.

Like ``fast``, the backend is untimed: cycle tracers and fault injectors
are rejected with :class:`~repro.errors.BackendCapabilityError` (the guard
is inherited from :class:`~repro.graph.runtime.fast.FastBackend`), but a
:class:`~repro.telemetry.WallTracer` is accepted — each launch then gets a
measured ``perf_counter_ns`` span tagged with the kernel's fused step
counts and byte/FLOP estimates.  Every launch is also tallied in
:class:`~repro.graph.runtime.counters.GlobalCounters` so telemetry and
tests can prove fusion happened.
"""

from __future__ import annotations

from repro.graph.runtime.base import register_backend
from repro.graph.runtime.counters import GlobalCounters
from repro.graph.runtime.fast import FastBackend

__all__ = ["FusedBackend"]


@register_backend
class FusedBackend(FastBackend):
    """Kernel-dispatch backend: bit-identical results, fused execution."""

    name = "fused"

    #: Tells the engine to dispatch blocks through the kernel schedule.
    uses_kernels = True

    def run_kernel(self, kernel) -> None:
        """Launch one fused kernel (one host dispatch)."""
        GlobalCounters.kernels += 1
        GlobalCounters.dispatches += 1
        GlobalCounters.fused_compute_sets += kernel.n_compute
        GlobalCounters.fused_exchanges += kernel.n_exchange
        GlobalCounters.fallback_vertices += kernel.n_fallback
        wt = self.wall_tracer
        if wt is None:
            kernel.run()
            return
        start = wt.now()
        kernel.run()
        wt.kernel(kernel, start)

    def run_compute_set(self, step) -> None:
        GlobalCounters.dispatches += 1
        super().run_compute_set(step)

    def run_exchange(self, step) -> None:
        GlobalCounters.dispatches += 1
        super().run_exchange(step)
