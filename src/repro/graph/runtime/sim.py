"""``SimBackend``: cycle-accurate, bit-identical simulation (the default).

Reproduces exactly what the monolithic engine did before the runtime split:
every compute phase is priced as a BSP sync plus the slowest tile's worker
makespan, every exchange phase goes through the fabric cost model, control
decisions charge :data:`~repro.graph.runtime.base.CONTROL_CYCLES`, and
labeled steps open hierarchical profiler scopes.  The only difference is
that the structure — vertex groupings, LPT packing, transfer lists,
vectorized copy ops — comes precomputed from the execution plans, so the
hot path does no per-step re-derivation.
"""

from __future__ import annotations

from repro.graph.runtime.base import Backend, CONTROL_CYCLES, register_backend

__all__ = ["SimBackend"]


@register_backend
class SimBackend(Backend):
    """Cycle-accurate backend: real numerics *and* deterministic cycles."""

    name = "sim"

    def bind(self, compiled, device) -> None:
        super().bind(compiled, device)
        self.profiler = device.profiler
        self.model = device.model
        self.fabric = device.fabric

    def run_compute_set(self, step) -> None:
        plan = self.plan_for(step)
        for run in plan.dispatch:
            run()
        self.profiler.record(plan.category, self.model.sync() + plan.worst_tile)

    def run_exchange(self, step) -> None:
        plan = self.plan_for(step)
        for op in plan.ops:
            op.apply()
        phase = self.fabric.run(plan.transfers)
        self.profiler.record(plan.name, phase.cycles + plan.local_cycles)

    def control(self) -> None:
        self.profiler.record("control", CONTROL_CYCLES)

    def scope(self, label: str):
        return self.profiler.step(label)
