"""``SimBackend``: cycle-accurate, bit-identical simulation (the default).

Reproduces exactly what the monolithic engine did before the runtime split:
every compute phase is priced as a BSP sync plus the slowest tile's worker
makespan, every exchange phase goes through the fabric cost model, control
decisions charge :data:`~repro.graph.runtime.base.CONTROL_CYCLES`, and
labeled steps open hierarchical profiler scopes.  The only difference is
that the structure — vertex groupings, LPT packing, transfer lists,
vectorized copy ops — comes precomputed from the execution plans, so the
hot path does no per-step re-derivation.

This is also the backend that feeds the telemetry layer: with a tracer
attached (:meth:`Backend.set_tracer`) every superstep emits a structured
event *after* its cycles are recorded, so tracing observes the run without
perturbing it — traced and untraced executions are bit-identical in both
tensors and cycle counts (``docs/observability.md``).
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager

from repro.graph.runtime.base import Backend, CONTROL_CYCLES, register_backend

__all__ = ["SimBackend"]


@register_backend
class SimBackend(Backend):
    """Cycle-accurate backend: real numerics *and* deterministic cycles."""

    name = "sim"

    def bind(self, compiled, device) -> None:
        super().bind(compiled, device)
        self.profiler = device.profiler
        self.model = device.model
        self.fabric = device.fabric

    def run_compute_set(self, step) -> None:
        wt = self.wall_tracer
        wall_start = wt.now() if wt is not None else 0
        plan = self.plan_for(step)
        for run in plan.dispatch:
            run()
        sync = self.model.sync()
        cost = sync + plan.worst_tile
        self.profiler.record(plan.category, cost)
        if self.tracer is not None:
            self.tracer.compute_phase(
                plan, self.profiler.total_cycles - cost, cost, sync
            )
        if self.injector is not None:
            self.injector.compute_superstep(plan)
        if wt is not None:
            name, est_bytes, est_flops = self._wall_cost(step, "compute")
            wt.dispatch(name, "compute", wall_start, est_bytes, est_flops)

    def run_exchange(self, step) -> None:
        wt = self.wall_tracer
        wall_start = wt.now() if wt is not None else 0
        plan = self.plan_for(step)
        for op in plan.ops:
            op.apply()
        phase = self.fabric.run(plan.transfers)
        cost = phase.cycles + plan.local_cycles
        if self.injector is not None:
            # Injection happens after the copies land (corrupting *received*
            # data) but before the cycles are recorded, so link stalls are
            # priced into this phase's span.
            cost += self.injector.exchange_superstep(plan, phase)
        self.profiler.record(plan.name, cost)
        if self.tracer is not None:
            self.tracer.exchange_phase(
                plan, phase, self.profiler.total_cycles - cost, cost
            )
        if wt is not None:
            name, est_bytes, est_flops = self._wall_cost(step, "exchange")
            wt.dispatch(name, "exchange", wall_start, est_bytes, est_flops)

    def control(self) -> None:
        self.profiler.record("control", CONTROL_CYCLES)
        if self.tracer is not None:
            self.tracer.control(
                self.profiler.total_cycles - CONTROL_CYCLES, CONTROL_CYCLES
            )

    def scope(self, label: str):
        if self.tracer is None and self.wall_tracer is None:
            return self.profiler.step(label)
        return self._traced_scope(label)

    @contextmanager
    def _traced_scope(self, label: str):
        with ExitStack() as stack:
            stack.enter_context(self.profiler.step(label))
            if self.tracer is not None:
                stack.enter_context(self.tracer.scope(label))
            if self.wall_tracer is not None:
                stack.enter_context(self.wall_tracer.scope(label))
            yield
