"""The ``Backend`` protocol: pluggable execution of compute and exchange.

The engine (:mod:`repro.graph.engine`) is a thin control-flow interpreter;
everything that actually *runs* — compute phases, exchange phases, control
overhead accounting, profiler scopes — is delegated to a backend bound to
the compiled program.  Two implementations ship with the framework
(:mod:`repro.graph.runtime.sim`, :mod:`repro.graph.runtime.fast`); see
``docs/runtime.md`` for when to use which and what each guarantees.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import nullcontext

__all__ = ["Backend", "BACKENDS", "register_backend", "resolve_backend", "CONTROL_CYCLES"]

#: Control-flow overhead charged per loop-iteration / branch decision
#: (the IPU evaluates branch predicates with single-cycle latency, but the
#: sync to agree on the branch across tiles is not free).
CONTROL_CYCLES = 8

#: Name -> backend class registry (populated by ``register_backend``).
BACKENDS: dict = {}


def register_backend(cls):
    """Class decorator adding a backend to the ``BACKENDS`` registry."""
    BACKENDS[cls.name] = cls
    return cls


def resolve_backend(spec) -> "Backend":
    """Resolve a backend selector: a name, a class, or an instance."""
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, type) and issubclass(spec, Backend):
        return spec()
    if isinstance(spec, str):
        try:
            return BACKENDS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r} (available: {sorted(BACKENDS)})"
            ) from None
    raise TypeError(f"backend must be a name, Backend class, or instance, not {spec!r}")


class Backend(ABC):
    """Executes the leaf steps of a compiled program.

    A backend is bound to exactly one compiled program + device pair via
    :meth:`bind` before the first step runs; it reads per-step execution
    plans from the program's plan table instead of re-deriving structure on
    the hot path.
    """

    name = "backend"

    #: True for backends that dispatch fused whole-device kernels; the
    #: engine then routes blocks through the compiled program's
    #: :class:`~repro.graph.passes.kernels.KernelSchedule` and calls
    #: :meth:`run_kernel` instead of stepping compute sets one by one.
    uses_kernels = False

    #: Telemetry hook (:mod:`repro.telemetry`).  ``None`` means disabled —
    #: backends guard every emission behind one ``is None`` check, so a run
    #: without a tracer executes exactly the pre-telemetry code path.
    tracer = None

    #: Fault-injection hook (:mod:`repro.faults`), same seam and same
    #: zero-overhead-off contract as the tracer: ``None`` means the backend
    #: executes the exact fault-free code path.
    injector = None

    #: Wall-clock profiling hook (:class:`~repro.telemetry.WallTracer`).
    #: Unlike the cycle-domain tracer, *every* backend accepts one — the
    #: host clock exists everywhere — and the same ``is None`` contract
    #: keeps an unprofiled run on the exact pre-telemetry code path.
    wall_tracer = None

    def bind(self, compiled, device) -> None:
        self.compiled = compiled
        self.plans = compiled.plans
        self.device = device
        # Per-step (name, est_bytes, est_flops) cache for wall-span tagging.
        self._wall_costs: dict = {}

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`~repro.telemetry.Tracer` (after :meth:`bind`).

        Backends that cannot produce a meaningful timeline override this to
        reject the tracer instead of recording an empty trace.
        """
        self.tracer = tracer
        if tracer is not None:
            tracer.bind(self.device)
        if self.injector is not None:
            self.injector.tracer = tracer

    def set_fault_injector(self, injector) -> None:
        """Attach a :class:`~repro.faults.FaultInjector` (after :meth:`bind`).

        Backends without a superstep cost model override this to reject the
        injector (fault timing would be meaningless without cycles).
        """
        self.injector = injector
        if injector is not None:
            injector.bind(self.device, tracer=self.tracer)

    def set_wall_tracer(self, wall_tracer) -> None:
        """Attach a :class:`~repro.telemetry.WallTracer` (after :meth:`bind`).

        Never rejected: wall time is measured on the host clock, which every
        backend has — contrast :meth:`set_tracer`, which untimed backends
        refuse because it needs the modeled cycle clock.
        """
        self.wall_tracer = wall_tracer
        if wall_tracer is not None:
            wall_tracer.bind(self.device)

    def plan_for(self, step):
        return self.plans.plan_for(step)

    def _wall_cost(self, step, kind: str) -> tuple:
        """``(name, est_bytes, est_flops)`` of one step, cached by identity."""
        cached = self._wall_costs.get(id(step))
        if cached is None:
            from repro.graph.passes.costs import estimate_compute_set, estimate_exchange

            if kind == "compute":
                cs = step.compute_set
                est_bytes, est_flops = estimate_compute_set(cs)
                cached = (cs.name, est_bytes, est_flops)
            else:
                plan = self.plan_for(step)
                cached = (plan.name, estimate_exchange(plan), 0)
            self._wall_costs[id(step)] = cached
        return cached

    @abstractmethod
    def run_compute_set(self, step) -> None:
        """Execute one ``Execute`` step (one BSP compute phase)."""

    @abstractmethod
    def run_exchange(self, step) -> None:
        """Execute one ``Exchange`` step (one BSP exchange phase)."""

    def control(self) -> None:
        """Account one loop-iteration / branch decision (no-op by default)."""

    def scope(self, label: str):
        """Context manager for a labeled program scope (no-op by default)."""
        return nullcontext()

    def __repr__(self):
        return f"{type(self).__name__}()"
