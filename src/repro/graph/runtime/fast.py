"""``FastBackend``: numerics only, as fast as the host allows.

Executes exactly the same floating-point operations in exactly the same
order as :class:`~repro.graph.runtime.sim.SimBackend` — results are
bit-identical — but skips everything that only exists to produce cycle
counts: no profiler records, no worker packing, no fabric or sync model,
no control-overhead accounting.  Compute phases replay the plan's cached
dispatch list; exchange phases are the plan's vectorized numpy copy ops
and nothing else.

Use it for large-matrix runs where only the solution matters (convergence
studies, correctness sweeps); cycle counts and modeled seconds read as
zero afterwards.
"""

from __future__ import annotations

from repro.errors import BackendCapabilityError
from repro.graph.runtime.base import Backend, register_backend

__all__ = ["FastBackend"]


@register_backend
class FastBackend(Backend):
    """Functional backend: bit-identical results, no cycle accounting.

    Both observability hooks are rejected with the same typed error — the
    guard is shared (by inheritance) with every untimed backend, e.g.
    :class:`~repro.graph.runtime.fused.FusedBackend`.
    """

    name = "fast"

    def set_tracer(self, tracer) -> None:
        """An untimed backend has no cycle clock, so a trace would be a flat
        line of zero-timestamp events; reject it instead of recording one."""
        if tracer is not None:
            raise BackendCapabilityError(
                f"the {self.name!r} backend has no cycle clock, so it cannot "
                "record a cycle-domain trace; use --backend sim for cycle "
                "traces, or --wall-trace for measured host timing on this "
                "backend (docs/observability.md)",
                backend=self.name,
                capability="tracer",
            )

    def set_fault_injector(self, injector) -> None:
        """Fault injection is defined on the BSP superstep timeline (stall
        cycles, superstep-indexed OOM); without a cycle model the plan would
        replay wrongly, so reject it exactly like a tracer."""
        if injector is not None:
            raise BackendCapabilityError(
                f"the {self.name!r} backend has no superstep cost model, so "
                "fault timing would be meaningless; use --backend sim for "
                "fault injection (docs/resilience.md)",
                backend=self.name,
                capability="fault_injector",
            )

    def bind(self, compiled, device) -> None:
        super().bind(compiled, device)
        # Per-step dispatch cache: id(step) -> the work to replay.  Plans
        # are resolved once, outside the interpreter loop.
        self._compute: dict = {}
        self._exchange: dict = {}

    def run_compute_set(self, step) -> None:
        dispatch = self._compute.get(id(step))
        if dispatch is None:
            dispatch = self._compute.setdefault(id(step), self.plan_for(step).dispatch)
        wt = self.wall_tracer
        if wt is None:
            for run in dispatch:
                run()
            return
        start = wt.now()
        for run in dispatch:
            run()
        name, est_bytes, est_flops = self._wall_cost(step, "compute")
        wt.dispatch(name, "compute", start, est_bytes, est_flops)

    def run_exchange(self, step) -> None:
        ops = self._exchange.get(id(step))
        if ops is None:
            ops = self._exchange.setdefault(id(step), self.plan_for(step).ops)
        wt = self.wall_tracer
        if wt is None:
            for op in ops:
                op.apply()
            return
        start = wt.now()
        for op in ops:
            op.apply()
        name, est_bytes, est_flops = self._wall_cost(step, "exchange")
        wt.dispatch(name, "exchange", start, est_bytes, est_flops)

    def scope(self, label: str):
        if self.wall_tracer is None:
            return super().scope(label)
        return self.wall_tracer.scope(label)
