"""Pluggable runtime backends executing compiled programs.

- :mod:`repro.graph.runtime.base` — the :class:`Backend` protocol, the
  backend registry, and :func:`resolve_backend`,
- :mod:`repro.graph.runtime.sim` — cycle-accurate, bit-identical
  simulation (the default),
- :mod:`repro.graph.runtime.fast` — numerics-only execution for
  large-matrix runs where cycle counts are not needed,
- :mod:`repro.graph.runtime.fused` — numerics-only execution through
  fused whole-device kernels (the fastest host path),
- :mod:`repro.graph.runtime.counters` — tinygrad-style global
  kernel/dispatch counters.

See ``docs/runtime.md`` for the protocol, determinism guarantees, and
guidance on choosing a backend.
"""

from repro.graph.runtime.base import (
    BACKENDS,
    Backend,
    CONTROL_CYCLES,
    register_backend,
    resolve_backend,
)
from repro.graph.runtime.counters import GlobalCounters
from repro.graph.runtime.fast import FastBackend
from repro.graph.runtime.fused import FusedBackend
from repro.graph.runtime.sim import SimBackend

__all__ = [
    "Backend",
    "BACKENDS",
    "register_backend",
    "resolve_backend",
    "CONTROL_CYCLES",
    "SimBackend",
    "FastBackend",
    "FusedBackend",
    "GlobalCounters",
]
