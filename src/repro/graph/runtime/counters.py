"""Process-wide kernel/dispatch counters for the untimed runtime backends.

Modeled on tinygrad's ``GlobalCounters``: a handful of class-level integers
that hot paths bump with plain attribute adds — no locks, no objects, zero
overhead when nobody reads them.  The counters let telemetry (and tests)
*prove* that kernel lowering happened: a CG iteration that interprets ~20
steps under ``fast`` shows up as a single fused-kernel launch under
``fused``.

Semantics:

- ``kernels`` — fused-kernel launches (one per :class:`FusedKernel` run),
- ``dispatches`` — host-side dispatch calls actually made: one per kernel
  launch plus one per step executed outside a kernel,
- ``fused_compute_sets`` / ``fused_exchanges`` — Execute / Exchange steps
  whose work ran *inside* a kernel (what the launches replaced),
- ``fallback_vertices`` — per-vertex ``run()`` calls inside kernels for
  compute sets the lowerer could not vectorize (unspec'd codelets).

Counters accumulate for the process; callers wrap a run in
:meth:`GlobalCounters.track` (or snapshot before/after and diff by hand)
to get the per-run movement, which is how ``SolveResult.kernel_counters``
is produced.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["GlobalCounters"]


class GlobalCounters:
    """Global kernel/dispatch tallies (class-level, tinygrad-style)."""

    kernels: int = 0
    dispatches: int = 0
    fused_compute_sets: int = 0
    fused_exchanges: int = 0
    fallback_vertices: int = 0

    _FIELDS = (
        "kernels",
        "dispatches",
        "fused_compute_sets",
        "fused_exchanges",
        "fallback_vertices",
    )

    @classmethod
    def reset(cls) -> None:
        for f in cls._FIELDS:
            setattr(cls, f, 0)

    @classmethod
    def snapshot(cls) -> dict:
        return {f: getattr(cls, f) for f in cls._FIELDS}

    @classmethod
    def delta(cls, since: dict) -> dict:
        """Counter movement since a prior :meth:`snapshot`."""
        return {f: getattr(cls, f) - since.get(f, 0) for f in cls._FIELDS}

    @classmethod
    @contextmanager
    def track(cls):
        """Scope that captures the counter movement it encloses.

        Yields a dict that is empty while the block runs and holds the
        per-run delta (same keys as :meth:`snapshot`) once the block exits —
        the with-statement replacement for hand-rolled snapshot/delta pairs.
        The delta is filled in even if the block raises, so error paths can
        still report how far the run got.
        """
        before = cls.snapshot()
        out: dict = {}
        try:
            yield out
        finally:
            out.update(cls.delta(before))
