"""Execution-schedule step types (Poplar program steps).

The schedule is a DAG of steps; our step set covers what the framework
needs: compute-set execution, tensor copies/exchanges, counted and
conditional loops, branches, and host callbacks (used for data transfer and
progress reporting, Sec. III-A step 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.codelet import ComputeSet
from repro.graph.variable import Variable

__all__ = [
    "Step",
    "Sequence",
    "Execute",
    "RegionCopy",
    "Exchange",
    "Repeat",
    "RepeatWhile",
    "If",
    "HostCallback",
]


class Step:
    """Base class for schedule steps (marker only)."""


@dataclass
class Sequence(Step):
    """Run ``steps`` in order.

    A ``label`` turns the sequence into a named profiler scope: the engine
    attributes the cycles of everything inside it to the ``a/b/c`` step path
    (the Table IV hierarchical breakdown).  Labeled sequences are scope
    boundaries — the compiler never flattens them away.
    """

    steps: list = field(default_factory=list)
    label: str | None = None

    def add(self, step: Step) -> Step:
        self.steps.append(step)
        return step


@dataclass
class Execute(Step):
    """Run one compute set (one BSP compute phase)."""

    compute_set: ComputeSet


@dataclass(frozen=True)
class RegionCopy:
    """One blockwise copy of ``size`` contiguous elements.

    ``src`` / each destination is ``(variable, tile_id, local_offset)``; the
    copy broadcasts the source region to every destination, which is exactly
    the primitive the Sec. IV reordering strategy reduces halo exchange to.
    """

    src_var: Variable
    src_tile: int
    src_offset: int
    dests: tuple  # of (dst_var, dst_tile, dst_offset)
    size: int


@dataclass
class Exchange(Step):
    """A BSP exchange phase: a set of region copies executed simultaneously."""

    copies: list
    name: str = "exchange"


@dataclass
class Repeat(Step):
    """Run ``body`` a fixed ``count`` times.

    A ``label`` opens a profiler scope around the whole loop (all
    iterations), so loop cycles show up as one path component.
    """

    count: int
    body: Step
    label: str | None = None


@dataclass
class RepeatWhile(Step):
    """Run ``body`` while the scalar ``cond`` variable is nonzero.

    The condition tensor is produced on-device by the body (e.g. the
    ``terminate`` flag of Fig. 4); ``max_iterations`` is a safety net so a
    non-converging solver cannot hang the engine.
    """

    cond: Variable
    body: Step
    max_iterations: int = 100_000
    check_before_first: bool = True
    label: str | None = None


@dataclass
class If(Step):
    """Branch on a scalar condition variable."""

    cond: Variable
    then_body: Step
    else_body: Step | None = None


@dataclass
class HostCallback(Step):
    """Call back into host code mid-program (progress output, host I/O).

    The callable receives the running engine; it may read/write variables
    through the host interface but must not mutate the schedule.
    """

    fn: object
    name: str = "host_callback"
