"""The dataflow graph: owns variables and allocates their shards in tile SRAM."""

from __future__ import annotations

import numpy as np

from repro.graph.variable import Interval, NUMPY_DTYPES, Shard, Variable
from repro.machine.device import IPUDevice

__all__ = ["Graph"]


class Graph:
    """Container for variables mapped onto an :class:`~repro.machine.IPUDevice`.

    Mirrors ``poplar::Graph``: variables are declared with an explicit tile
    mapping and their storage is allocated immediately in tile SRAM (there
    is no lazy placement on a cacheless machine).
    """

    def __init__(self, device: IPUDevice):
        self.device = device
        self.variables: dict[str, Variable] = {}
        self._uid = 0

    # -- naming ---------------------------------------------------------------------

    def unique_name(self, prefix: str) -> str:
        self._uid += 1
        return f"{prefix}#{self._uid}"

    # -- variable creation ------------------------------------------------------------

    def add_variable(
        self, name: str, shape, dtype: str = "float32", mapping=None, batch: int = 1
    ) -> Variable:
        """Create a variable sharded by ``mapping`` (list of Intervals).

        Without a mapping, the elements are spread linearly and evenly over
        all tiles (Poplar's ``mapLinearly``); scalars land on tile 0.
        ``batch > 1`` adds a trailing multi-RHS axis: storage per shard is
        ``(n_local, batch)`` and the mapping still covers logical elements.
        """
        var = Variable(name, shape, dtype, batch=batch)
        if mapping is None:
            mapping = self.linear_mapping(var.size)
        self._check_mapping(var, mapping)
        self._allocate(var, mapping)
        return self._register(var)

    def add_replicated(
        self, name: str, shape, dtype: str = "float32", tile_ids=None, batch: int = 1
    ) -> Variable:
        """Create a variable with a full copy on every tile in ``tile_ids``
        (default: all tiles).  Used for solver scalars."""
        var = Variable(name, shape, dtype, replicated=True, batch=batch)
        tiles = list(tile_ids) if tile_ids is not None else list(range(self.device.num_tiles))
        np_dtype = NUMPY_DTYPES[var.dtype]
        store = (len(tiles), var.size) if batch == 1 else (len(tiles), var.size, batch)
        var.flat_data = np.zeros(store, dtype=np_dtype)
        if var.paired:
            var.flat_lo = np.zeros(store, dtype=np.float32)
        for row, t in enumerate(tiles):
            var.replica_rows[t] = row
            self._alloc_shard(var, Interval(t, 0, var.size), row=row)
        return self._register(var)

    def add_single_tile(
        self, name: str, shape, dtype: str = "float32", tile_id: int = 0, batch: int = 1
    ) -> Variable:
        """Create a variable living entirely on one tile."""
        var = Variable(name, shape, dtype, batch=batch)
        self._allocate(var, [Interval(tile_id, 0, var.size)])
        return self._register(var)

    def _register(self, var: Variable) -> Variable:
        if var.name in self.variables:
            raise KeyError(f"variable {var.name!r} already exists")
        self.variables[var.name] = var
        return var

    # -- mapping helpers ------------------------------------------------------------

    def linear_mapping(self, size: int, tile_ids=None) -> list:
        """Evenly split ``size`` elements across tiles, remainder spread first."""
        tiles = list(tile_ids) if tile_ids is not None else list(range(self.device.num_tiles))
        if size == 0:
            return []
        if size <= len(tiles):
            return [Interval(tiles[i], i, i + 1) for i in range(size)]
        base, extra = divmod(size, len(tiles))
        mapping, start = [], 0
        for i, t in enumerate(tiles):
            n = base + (1 if i < extra else 0)
            mapping.append(Interval(t, start, start + n))
            start += n
        return mapping

    @staticmethod
    def _check_mapping(var: Variable, mapping) -> None:
        pos = 0
        for iv in sorted(mapping, key=lambda iv: iv.start):
            if iv.start != pos or iv.stop <= iv.start:
                raise ValueError(f"mapping of {var.name!r} has gaps/overlaps at {iv}")
            pos = iv.stop
        if pos != var.size:
            raise ValueError(
                f"mapping of {var.name!r} covers {pos} of {var.size} elements"
            )

    # -- storage ---------------------------------------------------------------------

    def _allocate(self, var: Variable, mapping) -> None:
        # One flat per-device buffer, indexed by global element; every shard
        # is a view (contiguity of the mapping is checked in _check_mapping).
        np_dtype = NUMPY_DTYPES[var.dtype]
        store = (var.size,) if var.batch == 1 else (var.size, var.batch)
        var.flat_data = np.zeros(store, dtype=np_dtype)
        if var.paired:
            var.flat_lo = np.zeros(store, dtype=np.float32)
        for iv in mapping:
            self._alloc_shard(var, iv)

    def _alloc_shard(self, var: Variable, iv: Interval, row: int | None = None) -> None:
        tile = self.device.tile(iv.tile_id)
        if row is None:
            data = var.flat_data[iv.start : iv.stop]
            lo = var.flat_lo[iv.start : iv.stop] if var.paired else None
        else:
            data = var.flat_data[row]
            lo = var.flat_lo[row] if var.paired else None
        tile.alloc(f"{var.name}@{iv.tile_id}", data)
        if var.paired:
            tile.alloc(f"{var.name}@{iv.tile_id}!lo", lo)
        var.shards[iv.tile_id] = Shard(data, lo, iv)

    def free(self, var: Variable) -> None:
        """Release a variable's SRAM (e.g. solver temporaries)."""
        for t, sh in var.shards.items():
            tile = self.device.tile(t)
            tile.free(f"{var.name}@{t}")
            if sh.lo is not None:
                tile.free(f"{var.name}@{t}!lo")
        del self.variables[var.name]
        var.shards.clear()
