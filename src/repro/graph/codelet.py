"""Codelets, vertices, and compute sets.

A codelet is the unit of computation scheduled on a tile (the analogue of a
Poplar C++ codelet).  It bundles

- ``run(ctx)``: the computation over tile-local shard arrays, and
- ``cycles(ctx)``: the deterministic cycle cost, either an ``int`` (runs on
  one worker) or a list of per-worker costs (≤ 6 entries).

The context ``ctx`` maps parameter names to the bound shard arrays; a
double-word parameter ``p`` binds both ``p`` (hi) and ``p.lo``.  Codelets
must be pure over their bindings so the engine stays deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Codelet",
    "Vertex",
    "ComputeSet",
    "ElementwiseSpec",
    "ReduceSpec",
    "BatchReduceSpec",
    "SpmvSpec",
]


@dataclass(frozen=True)
class ElementwiseSpec:
    """``out_var[tile] = expr`` — a fused elementwise assignment on one tile."""

    expr: object  # repro.tensordsl Expr
    out_var: object  # repro.graph Variable


@dataclass(frozen=True)
class ReduceSpec:
    """``out_var[tile] = reduce(expr)`` — a per-tile partial reduction."""

    expr: object
    out_var: object
    op: str  # "sum" | "max" | "min"


@dataclass(frozen=True)
class BatchReduceSpec:
    """``out_var[tile] = reduce(in_var, axis=batch)`` — collapse the trailing
    multi-RHS axis of a replicated batched scalar into an unbatched scalar
    (tile-local: every replica reduces its own copy, no exchange)."""

    in_var: object
    out_var: object
    op: str  # "max" | "min"


@dataclass(frozen=True)
class SpmvSpec:
    """``y[tile] = diag*x + A_offdiag @ [x | halo]`` — one tile of a CRS SpMV."""

    matrix: object  # repro.sparse DistributedMatrix
    x: object  # DistributedVector
    y: object  # DistributedVector


class Codelet:
    """A named tile-local computation with a cycle cost model.

    ``spec`` optionally carries declarative metadata (Elementwise/Reduce/
    SpmvSpec) describing *what* the codelet computes; the kernel-lowering
    pass (:mod:`repro.graph.passes.kernels`) pattern-matches on it to build
    whole-device vectorized kernels.  Codelets without a spec still run
    everywhere — lowering falls back to batched per-vertex dispatch."""

    def __init__(self, name: str, run, cycles, category: str = "elementwise", spec=None):
        self.name = name
        self._run = run
        self._cycles = cycles
        #: Profiler bucket (Table IV buckets: spmv / ilu_solve / reduce /
        #: elementwise / extended_precision / ...).
        self.category = category
        self.spec = spec

    def run(self, ctx: dict) -> None:
        self._run(ctx)

    def cycles(self, ctx: dict):
        c = self._cycles(ctx) if callable(self._cycles) else self._cycles
        return c

    def __repr__(self):
        return f"Codelet({self.name!r})"


class Vertex:
    """A codelet instance placed on a tile with its shard bindings resolved."""

    __slots__ = ("codelet", "tile_id", "ctx")

    def __init__(self, codelet: Codelet, tile_id: int, ctx: dict):
        self.codelet = codelet
        self.tile_id = tile_id
        self.ctx = ctx

    def run(self) -> None:
        self.codelet.run(self.ctx)

    def worker_cycles(self) -> list:
        """Cycle cost as a per-worker list."""
        c = self.codelet.cycles(self.ctx)
        if isinstance(c, (int, float)):
            return [int(c)]
        return [int(x) for x in c]

    def __repr__(self):
        return f"Vertex({self.codelet.name!r}@tile{self.tile_id})"


class ComputeSet:
    """A group of vertices that execute in one BSP compute phase.

    Poplar inserts a synchronization before every compute set; the engine
    charges that sync and prices the phase as the slowest tile's worker
    makespan.
    """

    def __init__(self, name: str, category: str | None = None):
        self.name = name
        self.vertices: list[Vertex] = []
        self.category = category

    def add(self, vertex: Vertex) -> Vertex:
        self.vertices.append(vertex)
        return vertex

    def add_vertex(self, codelet: Codelet, tile_id: int, ctx: dict) -> Vertex:
        return self.add(Vertex(codelet, tile_id, ctx))

    def tiles(self):
        return sorted({v.tile_id for v in self.vertices})

    def __len__(self):
        return len(self.vertices)

    def __repr__(self):
        return f"ComputeSet({self.name!r}, {len(self.vertices)} vertices)"
