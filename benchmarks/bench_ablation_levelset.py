"""Ablation A3 (Sec. V-A): IPUTHREADING vs. one-compute-set-per-level.

Level-Set Scheduling needs a worker barrier after every level.  The naive
implementation adds one compute set per level to the dataflow graph, which
made Poplar's graph compilation "unacceptably long"; the IPUTHREADING
library replaces it with a single compute set that spawns and syncs workers
per level (run/runall/sync).  We measure both on the level structures of
real ILU substitutions.
"""

import pytest

from repro.bench import print_table, save_result
from repro.machine import CycleModel, MK2
from repro.machine import threading as thr
from repro.solvers.sweeps import build_sweep
from repro.sparse import poisson2d, poisson3d


def sweep_levels(crs, workers=6):
    import numpy as np

    plan = build_sweep(
        crs.n, crs.row_ptr, crs.col_idx, crs.values.astype(np.float32),
        include=lambda r, c: c < r,
    )
    model = CycleModel()
    return plan.worker_cycles(model, workers), plan.schedule.num_levels


CASES = {
    "Poisson 32^2 forward sweep": lambda: poisson2d(32)[0],
    "Poisson 12^3 forward sweep": lambda: poisson3d(12)[0],
}


def test_ablation_levelset(benchmark):
    def run_all():
        out = {}
        for name, gen in CASES.items():
            levels, num_levels = sweep_levels(gen())
            out[name] = {
                "num_levels": num_levels,
                "old": thr.per_level_compute_sets(levels, MK2),
                "new": thr.iputhreading(levels, MK2),
            }
        return out

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, d in data.items():
        for label, cost in (("per-level compute sets", d["old"]), ("IPUTHREADING", d["new"])):
            rows.append([name, label, d["num_levels"], cost.compute_sets,
                         cost.vertices, cost.cycles])
    text = print_table(
        "Ablation A3: worker-synchronization strategies for Level-Set Scheduling",
        ["Case", "Strategy", "levels", "compute sets", "graph vertices", "cycles"],
        rows,
    )
    save_result("ablation_levelset", text)

    for name, d in data.items():
        # The library's raison d'être: constant graph size...
        assert d["new"].compute_sets == 1
        assert d["old"].compute_sets == d["num_levels"]
        assert d["new"].vertices < d["old"].vertices / 10
        # ...and cheaper barriers (tile sync << chip-wide sync).
        assert d["new"].cycles < d["old"].cycles
