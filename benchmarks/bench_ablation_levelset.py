"""Ablation A3 (Sec. V-A): IPUTHREADING vs. one-compute-set-per-level.

Level-Set Scheduling needs a worker barrier after every level.  The naive
implementation adds one compute set per level to the dataflow graph, which
made Poplar's graph compilation "unacceptably long"; the IPUTHREADING
library replaces it with a single compute set that spawns and syncs workers
per level (run/runall/sync).  We measure both on the level structures of
real ILU substitutions.
"""

from repro.bench import print_table, save_result
from repro.graph import Codelet, ComputeSet, Execute, Graph, Sequence, compile_program
from repro.machine import CycleModel, MK2, IPUDevice
from repro.machine import threading as thr
from repro.solvers.sweeps import build_sweep
from repro.sparse import poisson2d, poisson3d


def sweep_levels(crs, workers=6):
    import numpy as np

    plan = build_sweep(
        crs.n, crs.row_ptr, crs.col_idx, crs.values.astype(np.float32),
        include=lambda r, c: c < r,
    )
    model = CycleModel()
    return plan.worker_cycles(model, workers), plan.schedule.num_levels


CASES = {
    "Poisson 32^2 forward sweep": lambda: poisson2d(32)[0],
    "Poisson 12^3 forward sweep": lambda: poisson3d(12)[0],
}


def proxy_through_compiler(cost) -> dict:
    """Lower the strategy's schedule shape through the pass pipeline and
    report the pre-/post-pass compile proxy.

    Each compute set keeps its vertices on the one sweeping tile — exactly
    the dependency structure of a substitution, where every level must see
    the previous one's results — so the fusion pass must leave the
    per-level schedule alone: only IPUTHREADING, not graph optimization,
    fixes this graph-size blowup.
    """
    g = Graph(IPUDevice(tiles_per_ipu=1))
    nop = Codelet("level", run=lambda ctx: None, cycles=0, category="ilu_solve")
    per_set = max(1, cost.vertices // max(cost.compute_sets, 1))
    root = Sequence()
    for i in range(cost.compute_sets):
        cs = ComputeSet(f"level{i}", category="ilu_solve")
        for _ in range(per_set):
            cs.add_vertex(nop, 0, {})
        root.add(Execute(cs))
    compiled = compile_program(g, root)
    return {
        "pre": compiled.source_stats.compile_proxy,
        "post": compiled.stats.compile_proxy,
    }


def test_ablation_levelset(benchmark):
    def run_all():
        out = {}
        for name, gen in CASES.items():
            levels, num_levels = sweep_levels(gen())
            out[name] = {
                "num_levels": num_levels,
                "old": thr.per_level_compute_sets(levels, MK2),
                "new": thr.iputhreading(levels, MK2),
            }
        return out

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows, proxies = [], {}
    for name, d in data.items():
        proxies[name] = {}
        for label, cost in (("per-level compute sets", d["old"]), ("IPUTHREADING", d["new"])):
            px = proxy_through_compiler(cost)
            proxies[name][label] = px
            rows.append([name, label, d["num_levels"], cost.compute_sets,
                         cost.vertices, px["pre"], px["post"], cost.cycles])
    text = print_table(
        "Ablation A3: worker-synchronization strategies for Level-Set Scheduling",
        ["Case", "Strategy", "levels", "compute sets", "graph vertices",
         "proxy (pre-pass)", "proxy (post-pass)", "cycles"],
        rows,
    )
    save_result(
        "ablation_levelset",
        text,
        data={
            name: {
                "num_levels": d["num_levels"],
                "per_level": {"compute_sets": d["old"].compute_sets,
                              "vertices": d["old"].vertices,
                              "cycles": d["old"].cycles,
                              **proxies[name]["per-level compute sets"]},
                "iputhreading": {"compute_sets": d["new"].compute_sets,
                                 "vertices": d["new"].vertices,
                                 "cycles": d["new"].cycles,
                                 **proxies[name]["IPUTHREADING"]},
            }
            for name, d in data.items()
        },
    )

    for name, d in data.items():
        # The library's raison d'être: constant graph size...
        assert d["new"].compute_sets == 1
        assert d["old"].compute_sets == d["num_levels"]
        assert d["new"].vertices < d["old"].vertices / 10
        # ...and cheaper barriers (tile sync << chip-wide sync).
        assert d["new"].cycles < d["old"].cycles
        # The pass pipeline cannot substitute for IPUTHREADING: levels are
        # serially dependent, so the per-level schedule survives lowering
        # with its proxy intact while the library's stays tiny either way.
        old_px = proxies[name]["per-level compute sets"]
        new_px = proxies[name]["IPUTHREADING"]
        assert old_px["post"] == old_px["pre"]
        assert new_px["post"] <= new_px["pre"]
        assert new_px["post"] < old_px["post"] / 10
