"""Ablation A6 (Sec. VI-D future work): Schur interface correction.

The paper attributes the IPU's modest solver advantage over the CPU to the
block-local ILU disregarding halo values, and proposes a Schur-complement
interface solve as the remedy.  We implemented it
(:class:`repro.solvers.SchurInterface`) and measure what it buys: iteration
counts of PBiCGStab with plain block-ILU vs. Schur-corrected block-ILU as
the tile count grows — the regime where block-ILU degrades.
"""

import numpy as np
import pytest

from repro.bench import print_table, save_result
from repro.solvers import solve
from repro.sparse import poisson2d

TILE_COUNTS = [4, 16, 36]
TOL = 1e-5


def run_all():
    crs, dims = poisson2d(18)
    b = np.random.default_rng(13).standard_normal(crs.n)
    out = {}
    for tiles in TILE_COUNTS:
        base = solve(
            crs, b,
            {"solver": "bicgstab", "tol": TOL, "preconditioner": {"solver": "ilu0"}},
            grid_dims=dims, tiles_per_ipu=tiles,
        )
        schur = solve(
            crs, b,
            {"solver": "bicgstab", "tol": TOL,
             "preconditioner": {"solver": "schur", "inner": {"solver": "ilu0"}}},
            grid_dims=dims, tiles_per_ipu=tiles,
        )
        out[tiles] = {
            "base_iters": base.iterations,
            "schur_iters": schur.iterations,
            "base_ms": base.seconds * 1e3,
            "schur_ms": schur.seconds * 1e3,
        }
    return out


def test_ablation_schur(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [tiles, d["base_iters"], d["schur_iters"],
         f"{d['base_ms']:.2f}", f"{d['schur_ms']:.2f}"]
        for tiles, d in data.items()
    ]
    text = print_table(
        "Ablation A6: block-ILU(0) vs Schur-corrected ILU(0) (Poisson 18^2, BiCGStab iterations)",
        ["tiles", "block-ILU iters", "Schur iters", "block-ILU ms", "Schur ms"],
        rows,
    )
    save_result("ablation_schur", text)

    for tiles, d in data.items():
        # The correction must never hurt the iteration count...
        assert d["schur_iters"] <= d["base_iters"], tiles
    # ...and must help where block-ILU is weakest (many tiles).
    most = data[TILE_COUNTS[-1]]
    assert most["schur_iters"] < most["base_iters"]
    # Block-ILU degrades with tile count (the Sec. VI-D effect itself).
    assert data[TILE_COUNTS[-1]]["base_iters"] >= data[TILE_COUNTS[0]]["base_iters"]
