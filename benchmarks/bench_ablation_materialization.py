"""Ablation A2 (Sec. III-C): delayed vs. eager expression materialization.

The paper delays materialization so whole expression trees fuse into single
codelets, which (1) lets the host compiler optimize across operations and
(2) shrinks the dataflow graph / schedule — important for Poplar graph
compile times.  We measure graph size (compile-time proxy) and executed
cycles for a representative solver expression in both modes.
"""

import numpy as np

from repro.bench import print_table, save_result
from repro.machine import IPUDevice
from repro.tensordsl import TensorContext

N = 4096
TILES = 16


def build_and_run(eager: bool):
    ctx = TensorContext(IPUDevice(tiles_per_ipu=TILES), eager=eager)
    r = ctx.tensor((N,), data=np.random.default_rng(0).standard_normal(N))
    p = ctx.tensor((N,), data=np.random.default_rng(1).standard_normal(N))
    v = ctx.tensor((N,), data=np.random.default_rng(2).standard_normal(N))
    beta = ctx.scalar(0.3)
    omega = ctx.scalar(0.7)
    # The Fig. 4 update  p = r + beta * (p - omega * v)  — four operators.
    p.assign(r + beta * (p - omega * v))
    engine = ctx.run()
    compiled = engine.compiled
    stats = compiled.source_stats  # pre-pass: what the DSL emitted
    return {
        "compute_sets": stats.compute_sets,
        "vertices": stats.vertices,
        "steps": stats.steps,
        "compile_proxy": stats.compile_proxy,
        "compile_proxy_optimized": compiled.stats.compile_proxy,
        "cycles": ctx.device.profiler.total_cycles,
        "result": p.value(),
    }


def test_ablation_materialization(benchmark):
    def run_both():
        return build_and_run(eager=False), build_and_run(eager=True)

    lazy, eager = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        ["delayed (paper)", lazy["compute_sets"], lazy["vertices"], lazy["steps"],
         lazy["compile_proxy"], lazy["compile_proxy_optimized"], lazy["cycles"]],
        ["eager (ablation)", eager["compute_sets"], eager["vertices"], eager["steps"],
         eager["compile_proxy"], eager["compile_proxy_optimized"], eager["cycles"]],
    ]
    text = print_table(
        "Ablation A2: delayed vs eager materialization of  p = r + beta*(p - omega*v)",
        ["Mode", "compute sets", "vertices", "steps", "proxy (pre-pass)",
         "proxy (post-pass)", "cycles"],
        rows,
    )
    save_result(
        "ablation_materialization",
        text,
        data={k: {f: m[f] for f in m if f != "result"}
              for k, m in (("delayed", lazy), ("eager", eager))},
    )

    # Same numerics either way...
    np.testing.assert_allclose(lazy["result"], eager["result"], rtol=1e-6)
    # ...but delayed materialization fuses 4 operators into 1 compute set,
    assert lazy["compute_sets"] == 1
    assert eager["compute_sets"] >= 4
    # shrinking the graph (compile-time proxy) and the executed cycles
    # (fewer vertex dispatches + syncs, no intermediate tensors).
    assert lazy["compile_proxy"] < eager["compile_proxy"] / 2
    assert lazy["cycles"] < eager["cycles"]
    # The optimization passes cannot recover eager's graph bloat: the eager
    # compute sets occupy the same tiles with a serial dependency, so even
    # the post-pass eager proxy stays far above the delayed one.
    for m in (lazy, eager):
        assert m["compile_proxy_optimized"] <= m["compile_proxy"]
    assert lazy["compile_proxy_optimized"] < eager["compile_proxy_optimized"] / 2
