"""Multi-RHS batching: throughput and exchange amortization vs batch size.

The batched Krylov path (docs/solvers.md, "Batched Krylov solves") solves
``B`` right-hand sides in one program with one halo exchange per iteration.
This bench sweeps B over the Fig. 5 Poisson family and reports the two
quantities the batch axis is for:

- **RHS-solves/sec** under the fast and fused runtime backends — one
  program amortizes per-iteration dispatch over all columns, so
  throughput grows nearly linearly with B;
- **exchange phases per RHS** — the exchange *count* is independent of B
  (asserted below at a pinned iteration count), so phases/RHS fall as
  1/B while the *payload bytes per RHS* stay flat: batching amortizes
  exchange latency and synchronization, not bandwidth
  (:meth:`~repro.sparse.halo.HaloPlan.exchanged_bytes`).
"""

import time

import numpy as np

from repro.bench import print_series, save_result
from repro.solvers import solve
from repro.sparse import poisson3d

GRID = 16  # Fig. 5 Poisson family at bench-smoke scale (4096 rows)
NUM_IPUS = 2
TILES_PER_IPU = 16
BATCHES = [1, 4, 16, 64]
CFG = {"solver": "cg", "tol": 1e-6, "max_iterations": 60}
KW = dict(num_ipus=NUM_IPUS, tiles_per_ipu=TILES_PER_IPU)


def _rhs(n, batch):
    return np.random.default_rng(0).standard_normal((batch, n))


def _solve_batch(crs, dims, batch, config=CFG, backend="fast"):
    bs = _rhs(crs.n, batch)
    b = bs if batch > 1 else bs[0]
    t0 = time.perf_counter()
    result = solve(crs, b, config, grid_dims=dims, backend=backend, **KW)
    return result, time.perf_counter() - t0


def test_multi_rhs_throughput():
    crs, dims = poisson3d(GRID)
    rows = []
    data = {}
    for backend in ("fast", "fused"):
        per_backend = []
        for batch in BATCHES:
            r, seconds = _solve_batch(crs, dims, batch, backend=backend)
            plan = r.solver.A.plan
            iters = r.stats.total_iterations
            exchanges = r.engine.exchanges
            # Every exchange phase carries the whole batch; the per-RHS
            # payload is therefore flat while phases/RHS fall as 1/B.
            bytes_per_rhs = exchanges * plan.exchanged_bytes(element_bytes=4)
            point = {
                "batch": batch,
                "iterations": iters,
                "exchanges": exchanges,
                "exchange_phases_per_rhs": exchanges / batch,
                "bytes_per_rhs": bytes_per_rhs,
                "seconds": seconds,
                "rhs_solves_per_sec": batch / max(seconds, 1e-12),
                "max_relative_residual": r.relative_residual,
            }
            per_backend.append(point)
            rows.append([
                backend, batch, iters, exchanges,
                f"{exchanges / batch:.1f}",
                bytes_per_rhs,
                f"{batch / max(seconds, 1e-12):.1f}",
            ])
        data[backend] = per_backend

        # The whole point of the batch axis: exchange phases per RHS drop
        # by ~B (count is B-independent), and one batched program turns
        # more RHS/sec than the single-RHS program.  The throughput bar is
        # deliberately loose — per-column numpy work still scales with B,
        # so only the per-iteration dispatch and exchange overhead
        # amortizes on the host.
        base = per_backend[0]
        for point in per_backend[1:]:
            assert point["exchanges"] <= base["exchanges"] * 2, (
                "batched exchange count must not scale with B", point)
            assert point["exchange_phases_per_rhs"] < base["exchanges"] / 2
            assert point["max_relative_residual"] < CFG["tol"] * 10
        assert (per_backend[-1]["rhs_solves_per_sec"]
                > 2 * base["rhs_solves_per_sec"]), per_backend

    text = print_series(
        f"Multi-RHS batched CG throughput (poisson3d:{GRID}, {NUM_IPUS} IPUs, "
        f"{TILES_PER_IPU} tiles/IPU)",
        "backend",
        ["B", "iterations", "exchanges", "exch/RHS", "bytes/RHS", "RHS-solves/s"],
        rows,
    )
    # Wall-clock columns are host measurements and churn run to run; the
    # artifact exists to track the amortization curve (see fig5 precedent).
    save_result(
        "multi_rhs_throughput",
        text,
        data={"grid": GRID, **KW, "batches": BATCHES, "backends": data},
    )


def test_exchange_count_independent_of_batch():
    """The tentpole acceptance bar, measured rather than assumed: at a
    pinned iteration count (unreachable tol + iteration cap) the batched
    program executes *exactly* the same number of exchange phases as the
    single-RHS program, for every batch size and under both the step
    interpreter and the fused kernel backend."""
    crs, dims = poisson3d(GRID)
    pinned = {"solver": "cg", "tol": 1e-30, "max_iterations": 12}
    for backend in ("fast", "fused"):
        counts = {}
        for batch in BATCHES:
            r, _ = _solve_batch(crs, dims, batch, config=pinned, backend=backend)
            assert r.stats.total_iterations == pinned["max_iterations"]
            counts[batch] = r.engine.exchanges
        assert len(set(counts.values())) == 1, (backend, counts)


def test_batched_columns_bit_identical_to_singles():
    """Cross-check on the bench configuration itself: every column of the
    B=4 batched solve is bit-for-bit the single-RHS solve of that column."""
    crs, dims = poisson3d(GRID)
    bs = _rhs(crs.n, 4)
    batched = solve(crs, bs, CFG, grid_dims=dims, backend="fast", **KW)
    for j, b in enumerate(bs):
        single = solve(crs, b, CFG, grid_dims=dims, backend="fast", **KW)
        assert np.array_equal(batched.x[j], single.x)
        assert (batched.batch_stats[j].total_iterations
                == single.stats.total_iterations)
