"""Ablation A7 (extension): geometric multigrid vs Krylov on Poisson problems.

The paper motivates Gauss-Seidel by its role as a multigrid smoother
(Sec. V-D) but evaluates no multigrid solver; we built one
(:class:`repro.solvers.Multigrid`) and measure the textbook claims on the
simulated device:

1. per-V-cycle contraction is (roughly) grid-size independent,
2. one V-cycle is a far stronger preconditioner than block-ILU(0).
"""

import numpy as np
import pytest

from repro.bench import print_table, save_result
from repro.solvers import solve
from repro.sparse import poisson2d

GRIDS = [16, 32, 48]


def run_all():
    out = {}
    for g in GRIDS:
        crs, dims = poisson2d(g)
        b = np.random.default_rng(17).standard_normal(crs.n)
        mg = solve(
            crs, b,
            {"solver": "multigrid", "grid_dims": dims, "cycles": 8,
             "pre_smooth": 2, "post_smooth": 2},
            grid_dims=dims, tiles_per_ipu=16,
        )
        h = mg.stats.residuals
        rate = (h[-1] / h[0]) ** (1.0 / (len(h) - 1))
        pmg = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-6,
             "preconditioner": {"solver": "multigrid", "grid_dims": dims,
                                 "cycles": 1, "pre_smooth": 1, "post_smooth": 1}},
            grid_dims=dims, tiles_per_ipu=16,
        )
        pilu = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-6, "preconditioner": {"solver": "ilu0"}},
            grid_dims=dims, tiles_per_ipu=16,
        )
        out[g] = {
            "rate": rate,
            "mg_resid": mg.relative_residual,
            "pmg_iters": pmg.iterations,
            "pilu_iters": pilu.iterations,
        }
    return out


def test_ablation_multigrid(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [f"{g}x{g}", f"{d['rate']:.3f}", f"{d['mg_resid']:.1e}",
         d["pmg_iters"], d["pilu_iters"]]
        for g, d in data.items()
    ]
    text = print_table(
        "Ablation A7: multigrid V-cycle rate and preconditioning strength (Poisson 2-D)",
        ["grid", "V-cycle rate", "MG residual (8 cycles)",
         "BiCGStab+MG iters", "BiCGStab+blockILU iters"],
        rows,
    )
    save_result("ablation_multigrid", text)

    rates = [d["rate"] for d in data.values()]
    # Mesh-independence: the contraction factor stays bounded as the grid
    # grows (block-ILU iteration counts, by contrast, grow with the grid).
    assert max(rates) < 0.65
    assert max(rates) - min(rates) < 0.25
    for g, d in data.items():
        assert d["pmg_iters"] <= d["pilu_iters"], g
    # ILU-preconditioned iterations grow with grid size; MG's stay flat-ish.
    assert data[GRIDS[-1]]["pilu_iters"] > data[GRIDS[0]]["pilu_iters"]
    assert data[GRIDS[-1]]["pmg_iters"] <= data[GRIDS[0]]["pmg_iters"] + 3
