"""Table II: benchmark matrices.

Regenerates the matrix spec sheet with our synthetic doubles next to the
originals' published sizes, checking that each double preserves the
original's structural character (nnz/row, SPD-ness).
"""

import numpy as np

from repro.bench import print_table, save_result
from repro.sparse.suitesparse import MATRICES, PAPER_STATS


def build_table():
    rows = []
    stats = {}
    for name, gen in MATRICES.items():
        m = gen()
        paper = PAPER_STATS[name]
        stats[name] = {
            "n": m.n,
            "nnz": m.nnz,
            "nnz_per_row": m.nnz / m.n,
            "paper_nnz_per_row": paper["entries"] / paper["rows"],
        }
        rows.append(
            [
                name,
                f"{paper['rows']:.1e}",
                f"{paper['entries']:.1e}",
                m.n,
                m.nnz,
                f"{m.nnz / m.n:.1f}",
                f"{paper['entries'] / paper['rows']:.1f}",
            ]
        )
    return rows, stats


def test_table2(benchmark):
    rows, stats = benchmark.pedantic(build_table, rounds=1, iterations=1)
    text = print_table(
        "Table II: benchmark matrices (paper originals vs. synthetic doubles)",
        ["Matrix", "paper rows", "paper nnz", "double rows", "double nnz",
         "double nnz/row", "paper nnz/row"],
        rows,
    )
    save_result("table2_matrices", text)

    for name, s in stats.items():
        # Structural character: nnz/row of the double within ~2x of the original.
        ratio = s["nnz_per_row"] / s["paper_nnz_per_row"]
        assert 0.5 < ratio < 2.5, f"{name}: nnz/row ratio {ratio}"
        # All doubles are laptop-simulable but nontrivial.
        assert 400 <= s["n"] <= 200_000


def test_all_doubles_spd(benchmark):
    def smallest_eigs():
        import scipy.sparse.linalg as spla

        out = {}
        for name, gen in MATRICES.items():
            m = gen()
            w = spla.eigsh(m.to_scipy(), k=1, sigma=0, which="LM",
                           return_eigenvectors=False)
            out[name] = float(w[0])
        return out

    eigs = benchmark.pedantic(smallest_eigs, rounds=1, iterations=1)
    for name, w in eigs.items():
        assert w > 0, f"{name} double is not positive definite"
