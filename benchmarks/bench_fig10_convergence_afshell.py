"""Figure 10: convergence of the four solver configurations on af_shell7.

Same experiment as Figure 9 (see ``bench_fig9_convergence_geo``) on the
af_shell7 double — the paper shows the identical stall/convergence pattern
on both matrices.
"""

import pytest

from bench_fig9_convergence_geo import check_fig9_shape, run_all, series_text
from repro.bench import save_result
from repro.sparse.suitesparse import af_shell_like


def test_fig10_convergence_afshell(benchmark):
    results = benchmark.pedantic(
        lambda: run_all(matrix_fn=lambda: af_shell_like(nx=26, ny=26, layers=4), seed=22),
        rounds=1,
        iterations=1,
    )
    text = series_text("Figure 10: solver configurations on af_shell7 (double)", results)
    save_result("fig10_convergence_afshell", text)
    check_fig9_shape(results)
