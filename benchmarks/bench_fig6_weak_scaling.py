"""Figure 6: weak scaling of SpMV on Poisson matrices.

The paper grows the problem (58 M → 890 M entries) with the IPU count so
every tile processes the same number of rows, and observes flat execution
time — the all-to-all fabric exchanges all separator regions simultaneously
regardless of system size.  Same sweep here at reduced scale: the grid's z
extent grows with the IPU count, so rows/tile stays constant.
"""

from repro.bench import ipu_spmv_run, print_series, save_result
from repro.sparse import poisson3d

BASE = 24  # 24x24x24 on one IPU; z extent scales with the IPU count
IPUS = [1, 2, 4, 8]
TILES_PER_IPU = 16


def sweep():
    runs = {}
    for ipus in IPUS:
        crs, dims = poisson3d(BASE, BASE, BASE * ipus)
        runs[ipus] = ipu_spmv_run(crs, grid_dims=dims, num_ipus=ipus,
                                  tiles_per_ipu=TILES_PER_IPU)
    return runs


def test_fig6_weak_scaling(benchmark):
    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = runs[IPUS[0]]
    points = []
    for ipus in IPUS:
        r = runs[ipus]
        points.append([
            ipus,
            BASE * BASE * BASE * ipus,
            r.total_cycles,
            f"{base.total_cycles / r.total_cycles:.2f}",
            r.exchange_cycles,
        ])
    text = print_series(
        f"Figure 6: weak scaling of SpMV (constant {BASE}^3 rows per IPU)",
        "IPUs",
        ["rows", "cycles", "efficiency", "exchange cycles"],
        points,
    )
    save_result(
        "fig6_weak_scaling",
        text,
        data={
            "base_grid": BASE,
            "tiles_per_ipu": TILES_PER_IPU,
            "runs": {str(k): runs[k].to_dict() for k in IPUS},
        },
    )

    # Paper shape: ideal weak scaling — time stays (nearly) flat.
    for ipus in IPUS[1:]:
        eff = base.total_cycles / runs[ipus].total_cycles
        assert eff > 0.8, f"weak-scaling efficiency {eff:.2f} at {ipus} IPUs"


def test_fig6_halo_exchange_time_constant(benchmark):
    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # "the time required for halo exchange remains constant" (Sec. VI-B):
    # total exchanged volume grows linearly, but tiles stream in parallel.
    # (The single-chip point is cheaper — on-chip sync, different block
    # aspect — so constancy is asserted across the multi-chip regime.)
    exch = [runs[k].exchange_cycles for k in IPUS[1:]]
    assert max(exch) < 1.5 * min(exch)
