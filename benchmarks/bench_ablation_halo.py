"""Ablation A1 (Sec. IV): region-reordered blockwise halo exchange vs. the
naive per-cell scheme of Burchard et al. [12].

The reordering's two claimed benefits are measured directly:

1. communication-program size — one instruction per *region* instead of one
   per cell (smaller compiler-generated exchange programs),
2. exchange cycles — blockwise transfers amortize the per-instruction issue
   overhead over whole regions.
"""

import numpy as np

from repro.bench import print_table, save_result
from repro.machine import IPUDevice
from repro.sparse import build_halo_plan, build_naive_plan, partition_rows, poisson3d
from repro.sparse.distribute import DistributedMatrix
from repro.sparse.suitesparse import g3_circuit_like
from repro.tensordsl import TensorContext

CASES = {
    "Poisson 24^3 / 64 tiles": lambda: poisson3d(24),
    "G3_circuit-like / 64 tiles": lambda: (g3_circuit_like(grid=100), None),
}


def run_case(gen):
    crs, dims = gen()
    out = {}
    for label, blockwise in (("blockwise", True), ("naive", False)):
        ctx = TensorContext(IPUDevice(num_ipus=4, tiles_per_ipu=16))
        A = DistributedMatrix(ctx, crs, grid_dims=dims, blockwise=blockwise)
        x = A.vector(data=np.zeros(crs.n))
        A.exchange(x)
        engine = ctx.run()
        compiled = engine.compiled
        out[label] = {
            "instructions": A.plan.num_copy_instructions(),
            "copies": compiled.source_stats.region_copies,
            "compile_proxy": compiled.source_stats.compile_proxy,
            "compile_proxy_optimized": compiled.stats.compile_proxy,
            "cycles": ctx.device.profiler.category("exchange"),
        }
    return out


def test_ablation_halo(benchmark):
    def run_all():
        return {name: run_case(gen) for name, gen in CASES.items()}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, d in data.items():
        for label in ("blockwise", "naive"):
            s = d[label]
            rows.append([name, label, s["instructions"], s["copies"],
                         s["compile_proxy"], s["compile_proxy_optimized"], s["cycles"]])
    text = print_table(
        "Ablation A1: blockwise (Sec. IV) vs naive per-cell halo exchange",
        ["Case", "Scheme", "comm instructions", "region copies",
         "proxy (pre-pass)", "proxy (post-pass)", "exchange cycles"],
        rows,
    )
    save_result("ablation_halo", text, data=data)

    for name, d in data.items():
        blk, nv = d["blockwise"], d["naive"]
        # Benefit 1: much smaller communication programs — before AND after
        # the pass pipeline (coalescing merges phases, never copies, so the
        # reordering's instruction-count advantage survives lowering).
        assert blk["instructions"] < nv["instructions"] / 3, name
        assert blk["compile_proxy"] < nv["compile_proxy"], name
        assert blk["compile_proxy_optimized"] < nv["compile_proxy_optimized"], name
        assert blk["compile_proxy_optimized"] <= blk["compile_proxy"], name
        # Benefit 2: cheaper exchange phases.
        assert blk["cycles"] < nv["cycles"], name


def test_halo_data_identical_between_schemes(benchmark):
    """The reordering changes layout and instruction count, never semantics."""

    def run():
        crs, dims = poisson3d(12)
        values = np.arange(crs.n, dtype=np.float64)
        halos = {}
        for blockwise in (True, False):
            ctx = TensorContext(IPUDevice(tiles_per_ipu=8))
            A = DistributedMatrix(ctx, crs, grid_dims=dims, blockwise=blockwise)
            x = A.vector(data=values)
            A.exchange(x)
            ctx.run()
            snapshot = {}
            for t in A.tiles:
                if A.plan.halo_count(t):
                    # Map halo buffer back to (global id -> value).
                    ids = A.plan.halo_order[t]
                    snapshot[t] = dict(zip(ids.tolist(), x.halo.var.shard(t).data.tolist()))
            halos[blockwise] = snapshot
        return halos

    halos = benchmark.pedantic(run, rounds=1, iterations=1)
    assert halos[True] == halos[False]
