"""Shared pytest plumbing for the benchmark targets.

``--backend`` selects which runtime backends the wall-clock benches
measure: ``all`` (the default) sweeps sim/fast/fused; a single name
narrows the sweep to sim plus that backend (sim stays in as the
bit-identity reference).  The cycle-count benches always run under sim —
the fast and fused backends carry no cycle model (docs/runtime.md).
"""

import pytest

BACKEND_CHOICES = ("all", "sim", "fast", "fused")


def pytest_addoption(parser):
    parser.addoption(
        "--backend", choices=list(BACKEND_CHOICES), default="all",
        help="runtime backend(s) for the wall-clock benches: 'all' sweeps "
             "sim/fast/fused; a single name measures sim plus that backend")


@pytest.fixture
def bench_backends(request):
    """Backends tuple for the wall-clock benches; sim is always first."""
    sel = request.config.getoption("--backend")
    if sel == "all":
        return ("sim", "fast", "fused")
    if sel == "sim":
        return ("sim",)
    return ("sim", sel)
