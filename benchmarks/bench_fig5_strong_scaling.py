"""Figure 5: strong scaling of SpMV on a Poisson matrix.

The paper holds a 200³ Poisson problem (~58 M entries) fixed and sweeps
1–16 IPUs, reporting speedup with halo exchange (blue) and compute-only
(orange).  We run the same sweep at reduced size with the same
tiles-per-IPU proportionality and report both speedup curves.
"""

import pytest

from repro.bench import ipu_spmv_run, print_series, save_result
from repro.sparse import poisson3d

GRID = 40  # 64,000 rows / 438,400 entries — laptop-scale stand-in for 200³
IPUS = [1, 2, 4, 8, 16]
TILES_PER_IPU = 16


def sweep():
    crs, dims = poisson3d(GRID)
    runs = {}
    for ipus in IPUS:
        runs[ipus] = ipu_spmv_run(crs, grid_dims=dims, num_ipus=ipus,
                                  tiles_per_ipu=TILES_PER_IPU)
    return runs


def test_fig5_strong_scaling(benchmark):
    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = runs[IPUS[0]]
    points = []
    for ipus in IPUS:
        r = runs[ipus]
        points.append([
            ipus,
            f"{base.total_cycles / r.total_cycles:.2f}",
            f"{base.compute_cycles / r.compute_cycles:.2f}",
            r.total_cycles,
            r.exchange_cycles,
        ])
    text = print_series(
        f"Figure 5: strong scaling of SpMV (Poisson {GRID}^3, "
        f"{TILES_PER_IPU} tiles/IPU)",
        "IPUs",
        ["speedup (with halo)", "speedup (compute only)", "cycles", "exchange cycles"],
        points,
    )
    save_result("fig5_strong_scaling", text)

    total_speedup = base.total_cycles / runs[16].total_cycles
    compute_speedup = base.compute_cycles / runs[16].compute_cycles
    # Paper shape: compute-only scaling is near-ideal; total scaling trails
    # it because the surface-to-volume ratio grows with the partition count.
    assert compute_speedup > 0.85 * 16
    assert 0.5 * 16 < total_speedup <= compute_speedup
    # Speedups must be monotone in the IPU count.
    totals = [runs[k].total_cycles for k in IPUS]
    assert all(a > b for a, b in zip(totals, totals[1:]))


def test_fig5_exchange_grows_relative_to_compute(benchmark):
    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # The communication share rises as the fixed problem is cut finer —
    # the "fundamental property of domain decomposition" (Sec. VI-B).
    frac = {k: runs[k].exchange_cycles / runs[k].total_cycles for k in IPUS}
    assert frac[16] > frac[1]
