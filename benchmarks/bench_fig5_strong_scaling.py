"""Figure 5: strong scaling of SpMV on a Poisson matrix.

The paper holds a 200³ Poisson problem (~58 M entries) fixed and sweeps
1–16 IPUs, reporting speedup with halo exchange (blue) and compute-only
(orange).  We run the same sweep at reduced size with the same
tiles-per-IPU proportionality and report both speedup curves.

Also the home of the graph-compiler acceptance check: with all passes
enabled the same SpMV must execute strictly fewer exchange phases and
total cycles than the no-pass baseline, with bit-identical results.
"""

import numpy as np

from repro.bench import (
    backend_wallclock,
    ipu_spmv_run,
    print_series,
    save_result,
    save_trace,
    solver_backend_wallclock,
)
from repro.solvers import solve
from repro.sparse import poisson3d
from repro.telemetry import Tracer, validate_chrome_trace

GRID = 40  # 64,000 rows / 438,400 entries — laptop-scale stand-in for 200³
IPUS = [1, 2, 4, 8, 16]
TILES_PER_IPU = 16


def sweep():
    crs, dims = poisson3d(GRID)
    runs = {}
    for ipus in IPUS:
        runs[ipus] = ipu_spmv_run(crs, grid_dims=dims, num_ipus=ipus,
                                  tiles_per_ipu=TILES_PER_IPU)
    return runs


def test_fig5_strong_scaling(benchmark):
    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = runs[IPUS[0]]
    points = []
    for ipus in IPUS:
        r = runs[ipus]
        points.append([
            ipus,
            f"{base.total_cycles / r.total_cycles:.2f}",
            f"{base.compute_cycles / r.compute_cycles:.2f}",
            r.total_cycles,
            r.exchange_cycles,
        ])
    text = print_series(
        f"Figure 5: strong scaling of SpMV (Poisson {GRID}^3, "
        f"{TILES_PER_IPU} tiles/IPU)",
        "IPUs",
        ["speedup (with halo)", "speedup (compute only)", "cycles", "exchange cycles"],
        points,
    )
    save_result(
        "fig5_strong_scaling",
        text,
        data={
            "grid": GRID,
            "tiles_per_ipu": TILES_PER_IPU,
            "runs": {str(k): runs[k].to_dict() for k in IPUS},
        },
    )

    total_speedup = base.total_cycles / runs[16].total_cycles
    compute_speedup = base.compute_cycles / runs[16].compute_cycles
    # Paper shape: compute-only scaling is near-ideal; total scaling trails
    # it because the surface-to-volume ratio grows with the partition count.
    assert compute_speedup > 0.85 * 16
    assert 0.5 * 16 < total_speedup <= compute_speedup
    # Speedups must be monotone in the IPU count.
    totals = [runs[k].total_cycles for k in IPUS]
    assert all(a > b for a, b in zip(totals, totals[1:]))


def test_fig5_exchange_grows_relative_to_compute(benchmark):
    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # The communication share rises as the fixed problem is cut finer —
    # the "fundamental property of domain decomposition" (Sec. VI-B).
    frac = {k: runs[k].exchange_cycles / runs[k].total_cycles for k in IPUS}
    assert frac[16] > frac[1]


def test_fig5_passes_beat_no_pass_baseline():
    """Graph-compiler acceptance: the optimized SpMV schedule executes
    strictly fewer exchange phases and total cycles than the raw one."""
    crs, dims = poisson3d(16)
    opt = ipu_spmv_run(crs, grid_dims=dims, num_ipus=2, tiles_per_ipu=TILES_PER_IPU)
    raw = ipu_spmv_run(crs, grid_dims=dims, num_ipus=2, tiles_per_ipu=TILES_PER_IPU,
                       optimize=False)
    assert opt.exchange_phases < raw.exchange_phases
    assert opt.total_cycles < raw.total_cycles
    assert opt.compile_proxy < opt.source_compile_proxy
    save_result(
        "fig5_compile_ablation",
        f"Fig. 5 SpMV, optimized vs no-pass (poisson3d:16, 2 IPUs):\n"
        f"  exchange phases: {opt.exchange_phases} vs {raw.exchange_phases}\n"
        f"  total cycles:    {opt.total_cycles} vs {raw.total_cycles}\n"
        f"  compile proxy:   {opt.compile_proxy} (source {opt.source_compile_proxy})",
        data={"optimized": opt.to_dict(), "no_pass": raw.to_dict()},
    )


def test_fig5_fast_backend_matches_sim():
    """Runtime-backend smoke (the CI bench job): one Fig. 5 configuration
    solved under every backend must agree bit for bit, and the fused
    backend must actually fuse — a bounded number of kernel launches per
    CG iteration instead of per-tile step dispatch."""
    crs, dims = poisson3d(12)
    b = np.ones(crs.n)
    cfg = '{"solver": "cg", "tol": 1e-8, "max_iterations": 60}'
    sim = solve(crs, b, cfg, num_ipus=2, tiles_per_ipu=TILES_PER_IPU,
                grid_dims=dims, backend="sim")
    fast = solve(crs, b, cfg, num_ipus=2, tiles_per_ipu=TILES_PER_IPU,
                 grid_dims=dims, backend="fast")
    fused = solve(crs, b, cfg, num_ipus=2, tiles_per_ipu=TILES_PER_IPU,
                  grid_dims=dims, backend="fused")
    for other in (fast, fused):
        np.testing.assert_array_equal(sim.x, other.x)
        assert sim.relative_residual == other.relative_residual
        assert sim.stats.total_iterations == other.stats.total_iterations
        assert other.cycles == 0  # neither fast path carries a cycle model
    assert sim.cycles > 0
    assert fast.kernel_counters is None
    kc = fused.kernel_counters
    assert kc is not None and kc["kernels"] > 0
    # Kernel-count threshold: the whole CG inner loop must lower to a
    # handful of launches per iteration, not one dispatch per step.
    assert kc["kernels"] <= 5 * fused.iterations + 10
    assert kc["fused_compute_sets"] + kc["fused_exchanges"] > kc["kernels"]


def test_fig5_backend_wallclock(bench_backends):
    """Host wall-clock of the runtime backends on the largest Fig. 5
    configuration: a bare SpMV program (numpy-bound under every backend)
    and a full CG solve, where per-tile step dispatch dominates the fast
    backend and the fused backend's whole-device kernels must land a
    >=5x host speedup over it.
    """
    crs, dims = poisson3d(GRID)
    spmv = backend_wallclock(crs, grid_dims=dims, num_ipus=16,
                             tiles_per_ipu=TILES_PER_IPU, repeats=4,
                             backends=bench_backends)
    cg = solver_backend_wallclock(
        crs, '{"solver": "cg", "tol": 1e-8, "max_iterations": 60}',
        np.ones(crs.n), grid_dims=dims, num_ipus=16,
        tiles_per_ipu=TILES_PER_IPU, backends=bench_backends,
        wall_profiles=True)
    assert spmv["bit_identical"] and cg["bit_identical"]
    # Wall tracing rode along on every backend; it is observational (the
    # bit-identity assert above covers the traced runs) and must actually
    # have seen the work.
    for b in bench_backends:
        prof = cg[f"{b}_wall_profile"]
        assert prof["clock"] == "wall_ns" and prof["kernels"]
        assert prof["total_wall_ns"] > 0
    if "fast" in bench_backends:
        assert spmv["fast_seconds"] < spmv["sim_seconds"]
        assert cg["fast_seconds"] < cg["sim_seconds"]
    if "fused" in bench_backends:
        assert cg["fused_counters"]["kernels"] > 0
        assert cg["fused_seconds"] < cg["sim_seconds"]
    if "fast" in bench_backends and "fused" in bench_backends:
        # The kernel-lowering acceptance bar: fused must beat the
        # per-tile-dispatch fast backend by >=5x on the Fig. 5 solve.
        assert cg["fused_over_fast"] >= 5.0

    def fmt(cmp):
        return " | ".join(
            f"{b} {cmp[f'{b}_seconds'] * 1e3:.1f} ms" for b in bench_backends
        )

    lines = [
        f"Fig. 5 runtime backends (poisson3d:{GRID}, 16 IPUs, "
        f"{TILES_PER_IPU} tiles/IPU):",
        f"  spmv x4:  {fmt(spmv)}",
        f"  cg solve: {fmt(cg)} "
        f"({cg['iterations'][bench_backends[0]]} iterations)",
    ]
    if "fused" in bench_backends:
        kc = cg["fused_counters"]
        lines.append(
            f"  fused kernels: {kc['kernels']} launches "
            f"({kc['fused_compute_sets']} compute sets + "
            f"{kc['fused_exchanges']} exchanges fused, "
            f"{kc['fallback_vertices']} fallback vertices)")
        for row in cg["fused_wall_profile"]["kernels"][:3]:
            lines.append(
                f"    {row['name']}: {row['launches']} launches, "
                f"{row['wall_ns'] / 1e6:.2f} ms wall, "
                f"{row['gb_per_s']:.2f} GB/s, {row['gflop_per_s']:.2f} GFLOP/s")
    if "fused_over_fast" in cg:
        lines.append(
            f"  fused over fast: {cg['fused_over_fast']:.1f}x on the solve "
            f"(bit-identical: {cg['bit_identical']})")
    text = "\n".join(lines)
    print("\n" + text)
    # Wall-clock numbers are host measurements and churn run to run; this
    # artifact exists to track the backend speedups, so they go in anyway.
    save_result(
        "fig5_backend_wallclock",
        text,
        data={
            "grid": GRID,
            "num_ipus": 16,
            "tiles_per_ipu": TILES_PER_IPU,
            "backends": list(bench_backends),
            "bit_identical": spmv["bit_identical"] and cg["bit_identical"],
            "sim_cycles": spmv["sim_cycles"],
            "spmv_seconds": {b: spmv[f"{b}_seconds"] for b in bench_backends},
            "cg_solve_seconds": {b: cg[f"{b}_seconds"] for b in bench_backends},
            "fused_over_fast": cg.get("fused_over_fast"),
            "fused_counters": cg.get("fused_counters"),
            # Per-kernel measured wall profiles (host ns — nondeterministic
            # like the other wall-clock numbers in this artifact).
            "wall_profiles": {
                b: cg[f"{b}_wall_profile"] for b in bench_backends
            },
        },
    )


def test_fig5_trace_artifact():
    """Telemetry acceptance on a Fig. 5 configuration: tracing must observe
    without perturbing (bit-identical cycles), the Chrome export must pass
    the schema check, and the trace + report land under
    ``benchmarks/results/`` for the CI artifact."""
    crs, dims = poisson3d(16)
    tracer = Tracer()
    traced = ipu_spmv_run(crs, grid_dims=dims, num_ipus=2,
                          tiles_per_ipu=TILES_PER_IPU, repeats=4, tracer=tracer)
    plain = ipu_spmv_run(crs, grid_dims=dims, num_ipus=2,
                         tiles_per_ipu=TILES_PER_IPU, repeats=4)
    assert traced.total_cycles == plain.total_cycles
    assert traced.exchange_cycles == plain.exchange_cycles

    assert validate_chrome_trace(tracer.to_chrome()) == []
    report = tracer.report()
    assert report.compute_phases == 4  # coalesced: one SpMV superstep per repeat
    assert report.exchange_phases == traced.exchange_phases
    assert report.compute_cycles + report.exchange_cycles <= report.wall_cycles
    assert report.hottest and report.hottest[0][1] == "spmv"
    assert report.sram["max_bytes"] > 0

    save_trace("fig5_spmv", tracer)
    save_result(
        "fig5_spmv_trace_report",
        report.render(),
        data={
            "wall_cycles": report.wall_cycles,
            "compute_cycles": report.compute_cycles,
            "exchange_cycles": report.exchange_cycles,
            "compute_phases": report.compute_phases,
            "exchange_phases": report.exchange_phases,
            "mean_imbalance": report.mean_imbalance,
            "max_imbalance": report.max_imbalance,
            "exchange": report.exchange,
        },
    )


def test_fig5_passes_are_bit_identical_end_to_end():
    """Same CG solve with and without the pass pipeline: fewer cycles,
    identical bits in the solution and the residual."""
    crs, dims = poisson3d(12)
    b = np.ones(crs.n)
    cfg = '{"solver": "cg", "tol": 1e-8, "max_iterations": 60}'
    opt = solve(crs, b, cfg, tiles_per_ipu=8, grid_dims=dims, optimize=True)
    raw = solve(crs, b, cfg, tiles_per_ipu=8, grid_dims=dims, optimize=False)
    assert opt.engine.exchanges < raw.engine.exchanges
    assert opt.cycles < raw.cycles
    np.testing.assert_array_equal(opt.x, raw.x)
    assert opt.relative_residual == raw.relative_residual
