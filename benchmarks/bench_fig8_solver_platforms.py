"""Figure 8: time for (MPIR-)PBiCGStab+ILU(0) to reach 1e-9 on each platform.

Paper result: the IPU outperforms the GPU by 5–36x but the CPU by only
3–7x — the CPU does *relatively much better* than in the SpMV bench
(Fig. 7), because (a) the global ILU(0) of HYPRE/cuSPARSE converges in
fewer iterations than the IPU's halo-disregarding block-local ILU
(Sec. VI-D), and (b) cuSPARSE's level-scheduled triangular solves pay a
kernel launch per dependency level.

Method (consistent-scale comparison, see EXPERIMENTS.md):
- IPU: full simulation of MPIR(dw)+PBiCGStab+ILU(0) to 1e-9 on 16 tiles,
  sized so rows-per-tile matches the paper's M2000 configuration (≈250
  rows/tile on 5,888 tiles) — per-tile work AND preconditioner block size
  are at parity, so per-iteration time and iteration counts are
  representative.  Time = simulated cycles at the tile clock.
- CPU/GPU: iteration counts from the reference float64 BiCGStab with global
  ILU(0) on the same double; per-iteration time from the roofline models at
  the paper-scale sizes of Table II with the double's measured level count
  (conservative for the GPU — deeper level structures at full scale would
  only slow it further).
"""

import numpy as np
from repro.baselines import (
    H100_SXM,
    XEON_8470Q,
    reference_solve_info,
    solver_iteration_time,
)
from repro.bench import print_table, save_result
from repro.solvers import solve
from repro.sparse.suitesparse import (
    PAPER_STATS,
    af_shell_like,
    g3_circuit_like,
    geo_like,
    hook_like,
)

TOL = 1e-9

# Doubles sized so rows / 16 tiles ≈ paper rows / 5888 tiles (~250/tile),
# with conditioning inside MPIR's convergence regime.
MATS = {
    "G3_circuit": lambda: g3_circuit_like(grid=64),
    "af_shell7": lambda: af_shell_like(nx=32, ny=32, layers=4),
    "Geo_1438": lambda: geo_like(nx=16, ny=16, nz=16),
    "Hook_1498": lambda: hook_like(nx=16, ny=16, nz=16, contrast=1e3),
}

IPU_CONFIG = {
    "solver": "mpir",
    "precision": "dw",
    "tol": TOL,
    "max_outer": 12,
    "inner": {
        "solver": "bicgstab",
        "fixed_iterations": 50,
        "tol": 2e-7,
        "record_history": False,
        "preconditioner": {"solver": "ilu0"},
    },
}


def run_all():
    out = {}
    for name, gen in MATS.items():
        crs = gen()
        rng = np.random.default_rng(11)
        b = rng.standard_normal(crs.n)

        ipu = solve(crs, b, IPU_CONFIG, num_ipus=1, tiles_per_ipu=16)
        ref = reference_solve_info(crs, b, tol=TOL)
        paper = PAPER_STATS[name]
        pn, pnnz = int(paper["rows"]), int(paper["entries"])
        # Level counts of the global ILU grow with the graph diameter.  For
        # mesh matrices that is the linear mesh size (2-D: sqrt of the row
        # ratio; 3-D: cbrt); the circuit graph is small-world — its random
        # long-range wires keep the diameter (and hence the level depth)
        # nearly flat, so its measured count is used unscaled.
        if name == "G3_circuit":
            levels = ref["num_levels"]
        else:
            dim = 2 if name == "af_shell7" else 3
            levels = int(ref["num_levels"] * (pn / crs.n) ** (1.0 / dim))
        t_cpu = ref["iterations"] * solver_iteration_time(XEON_8470Q, pn, pnnz, levels)
        t_gpu = ref["iterations"] * solver_iteration_time(H100_SXM, pn, pnnz, levels)
        stats = ipu.compile_stats
        out[name] = {
            "ipu_s": ipu.seconds,
            "ipu_resid": ipu.relative_residual,
            "ipu_cycles": ipu.cycles,
            "ipu_iterations": ipu.iterations,
            "compile_proxy": stats.compile_proxy if stats else None,
            "cpu_s": t_cpu,
            "gpu_s": t_gpu,
            "ref_iters": ref["iterations"],
            "levels": ref["num_levels"],
        }
    return out


def test_fig8_solver_platforms(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, d in data.items():
        rows.append([
            name,
            f"{d['ipu_s'] * 1e3:.2f}",
            f"{d['gpu_s'] * 1e3:.2f}",
            f"{d['cpu_s'] * 1e3:.2f}",
            f"{d['gpu_s'] / d['ipu_s']:.1f}x",
            f"{d['cpu_s'] / d['ipu_s']:.1f}x",
            f"{d['ipu_resid']:.1e}",
        ])
    text = print_table(
        f"Figure 8: IR-PBiCGStab+ILU(0) time to rel. residual {TOL} (ms)",
        ["Matrix", "IPU", "GPU", "CPU", "IPU vs GPU", "IPU vs CPU", "IPU resid"],
        rows,
    )
    save_result("fig8_solver_platforms", text, data=data)

    for name, d in data.items():
        assert d["ipu_resid"] < 10 * TOL, f"{name}: IPU did not converge"
        # Shape: the IPU wins on every matrix.
        assert d["ipu_s"] < d["cpu_s"], name
        assert d["ipu_s"] < d["gpu_s"], name
        cpu_ratio = d["cpu_s"] / d["ipu_s"]
        gpu_ratio = d["gpu_s"] / d["ipu_s"]
        # Paper: 3-7x over CPU, 5-36x over GPU; generous envelopes (the
        # paper's own per-matrix ranges overlap, so CPU-vs-GPU order may
        # flip on individual matrices).
        assert 1.5 < cpu_ratio < 60, f"{name}: cpu ratio {cpu_ratio:.1f}"
        assert 3 < gpu_ratio < 200, f"{name}: gpu ratio {gpu_ratio:.1f}"
        # The crossover vs Fig. 7: the CPU's solver deficit is far below its
        # ~150x SpMV deficit.
        assert cpu_ratio < 60
    # The GPU's level-launch-bound ILU drops it behind the CPU in aggregate
    # (Sec. VI-D's "the CPU performs significantly better in this test");
    # on individual matrices the two can tie.
    cpu_wins = sum(d["cpu_s"] < d["gpu_s"] for d in data.values())
    assert cpu_wins >= 2
    assert sum(d["cpu_s"] for d in data.values()) < sum(d["gpu_s"] for d in data.values())


def test_fig8_block_ilu_needs_more_iterations(benchmark):
    """Sec. VI-D: the tile decomposition weakens ILU — the IPU needs at
    least as many iterations as the baselines' global factorization."""

    def run_one():
        crs = geo_like(nx=16, ny=16, nz=16)
        b = np.random.default_rng(11).standard_normal(crs.n)
        ref = reference_solve_info(crs, b, tol=1e-6)
        ipu = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-6,
             "preconditioner": {"solver": "ilu0"}},
            num_ipus=1, tiles_per_ipu=16,
        )
        return ref["iterations"], ipu.iterations

    ref_iters, ipu_iters = benchmark.pedantic(run_one, rounds=1, iterations=1)
    assert ipu_iters >= ref_iters
