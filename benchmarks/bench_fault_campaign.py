"""Fault campaign: CG under exchange bit flips (docs/resilience.md).

Runs the Fig. 5 CG configuration (Poisson 12³, 2 IPUs x 16 tiles) under a
sweep of seeded exchange-bitflip rates with the resilient solve driver
enabled, and reports the cost of resilience: iterations and cycles paid per
fault rate, rollbacks taken, and the recovery outcome.  The campaign's
acceptance properties:

- every faulty run converges to the same tolerance as the clean run
  (checkpoint/rollback absorbs the corruption),
- the modeled cost is monotone in the fault rate (faults are never free),
- the whole campaign is deterministic — same seed, same plan, bit-identical
  replay — and the clean member is bit-identical to the fault-free solver,
- an injected tile OOM degrades to fewer tiles and still completes.
"""

import numpy as np
import pytest

from repro.bench import print_series, save_result
from repro.solvers import solve
from repro.sparse import poisson3d

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")

GRID = 12
NUM_IPUS = 2
TILES_PER_IPU = 16
CONFIG = '{"solver": "cg", "tol": 1e-6}'
SEED = 7
RATES = [0.0, 0.01, 0.02, 0.03, 0.05]
#: The device-tracked f32 recurrence residual converges below tol while the
#: host f64 true residual sits a small factor above it; the driver (and this
#: campaign) accept one order of magnitude of slack.
TRUE_RESIDUAL_BOUND = 1e-5


def _solve(rate: float | None):
    crs, dims = poisson3d(GRID)
    b = np.ones(crs.n)
    kwargs = dict(num_ipus=NUM_IPUS, tiles_per_ipu=TILES_PER_IPU, grid_dims=dims)
    if rate:
        kwargs["inject_faults"] = f"seed={SEED};bitflip:p={rate},where=exchange"
    if rate is not None:
        kwargs["resilience"] = True
    return solve(crs, b, CONFIG, **kwargs)


def campaign():
    return {rate: _solve(rate) for rate in RATES}


def test_fault_campaign_artifact(benchmark):
    runs = benchmark.pedantic(campaign, rounds=1, iterations=1)
    points = []
    for rate in RATES:
        r = runs[rate]
        rep = r.resilience.to_dict()
        points.append([
            rate,
            rep["faults_injected"],
            rep["rollbacks"],
            r.iterations,
            rep["extra_iterations"],
            r.cycles,
            rep["outcome"],
        ])
    text = print_series(
        f"Fault campaign: CG + exchange bit flips "
        f"(Poisson {GRID}^3, {NUM_IPUS} IPUs x {TILES_PER_IPU} tiles, seed {SEED})",
        "bitflip p/superstep",
        ["faults", "rollbacks", "iterations", "extra iters", "cycles", "outcome"],
        points,
    )
    save_result(
        "fault_campaign",
        text,
        data={
            "grid": GRID,
            "num_ipus": NUM_IPUS,
            "tiles_per_ipu": TILES_PER_IPU,
            "seed": SEED,
            "runs": {
                str(rate): {
                    "iterations": runs[rate].iterations,
                    "cycles": runs[rate].cycles,
                    "relative_residual": runs[rate].relative_residual,
                    **runs[rate].resilience.to_dict(),
                }
                for rate in RATES
            },
        },
    )

    # Recovery: every member converges; no run ends failed.
    for rate in RATES:
        assert runs[rate].failure is None, f"rate {rate} failed"
        assert runs[rate].relative_residual <= TRUE_RESIDUAL_BOUND
        assert runs[rate].resilience.outcome in ("clean", "recovered")
    # Faults are never free: modeled cost is monotone in the fault rate.
    cycles = [runs[rate].cycles for rate in RATES]
    assert all(a <= b for a, b in zip(cycles, cycles[1:]))
    assert runs[RATES[-1]].resilience.rollbacks > 0  # the top rate forced recovery


def test_campaign_replays_bit_identically():
    """Same seed + spec => identical injections, tensors, cycles, report."""
    rate = RATES[-1]
    a, b = _solve(rate), _solve(rate)
    assert np.array_equal(a.x, b.x)
    assert a.cycles == b.cycles
    assert a.resilience.to_dict() == b.resilience.to_dict()


def test_campaign_clean_member_matches_unprotected_run():
    """resilience on + zero faults must cost nothing: bit-identical solution
    and cycles against a run without the subsystem touched at all."""
    protected = _solve(0.0)
    bare = _solve(None)
    assert np.array_equal(protected.x, bare.x)
    assert protected.cycles == bare.cycles
    assert protected.resilience.outcome == "clean"
    assert bare.resilience is None


def test_campaign_tile_oom_degrades_and_completes():
    crs, dims = poisson3d(GRID)
    b = np.ones(crs.n)
    r = solve(crs, b, CONFIG, num_ipus=NUM_IPUS, tiles_per_ipu=TILES_PER_IPU,
              grid_dims=dims, inject_faults="seed=1;tile_oom:tile=5,at=60",
              resilience=True)
    rep = r.resilience
    assert rep.restarts == 1
    assert rep.outcome == "degraded"
    assert rep.final_num_tiles == NUM_IPUS * TILES_PER_IPU // 2
    assert r.failure is None
    assert r.relative_residual <= TRUE_RESIDUAL_BOUND
