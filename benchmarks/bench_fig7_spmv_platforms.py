"""Figure 7: SpMV execution time on IPU / CPU / GPU across the four matrices.

Paper result: the IPU (one M2000, 5,888 tiles) outperforms the H100 by
13–19x and the Xeon by 55–150x.

Method here: the IPU side is *simulated* on 64 tiles (4 IPUs × 16) with the
matrix double sized for **nonzeros-per-tile parity** with the paper's full
configuration — per-tile work equals the real machine's, and the all-to-all
exchange model prices the halo traffic — so per-SpMV time is representative.
CPU/GPU times come from the roofline models at the *paper-scale* sizes of
Table II (SpMV is bandwidth-bound; the model carries the published STREAM
bandwidths plus launch overheads).
"""

from repro.baselines import H100_SXM, IPU_M2000, XEON_8470Q, energy_j, spmv_time
from repro.bench import backend_wallclock, ipu_spmv_run, print_table, save_result
from repro.sparse.suitesparse import (
    PAPER_STATS,
    af_shell_like,
    g3_circuit_like,
    geo_like,
    hook_like,
)

#: 5,888 tiles in the paper's M2000 box; we simulate 64 with per-tile parity.
PAPER_TILES = 5888
SIM_TILES = 64

#: Doubles sized so nnz / SIM_TILES ≈ paper nnz / PAPER_TILES.
SIZED = {
    "G3_circuit": lambda: g3_circuit_like(grid=127),
    "af_shell7": lambda: af_shell_like(nx=49, ny=49, layers=4),
    "Geo_1438": lambda: geo_like(nx=30, ny=30, nz=30),
    "Hook_1498": lambda: hook_like(nx=30, ny=30, nz=30),
}


def run_all():
    out = {}
    for name, gen in SIZED.items():
        crs = gen()
        run = ipu_spmv_run(crs, num_ipus=4, tiles_per_ipu=16)
        paper = PAPER_STATS[name]
        t_cpu = spmv_time(XEON_8470Q, int(paper["rows"]), int(paper["entries"]))
        t_gpu = spmv_time(H100_SXM, int(paper["rows"]), int(paper["entries"]))
        out[name] = {
            "nnz_per_tile_sim": crs.nnz / SIM_TILES,
            "nnz_per_tile_paper": paper["entries"] / PAPER_TILES,
            "ipu_s": run.seconds,
            "cpu_s": t_cpu,
            "gpu_s": t_gpu,
            "ipu_run": run.to_dict(),
        }
    return out


def test_fig7_spmv_platforms(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, d in data.items():
        rows.append([
            name,
            f"{d['ipu_s'] * 1e6:.1f}",
            f"{d['gpu_s'] * 1e6:.1f}",
            f"{d['cpu_s'] * 1e6:.1f}",
            f"{d['gpu_s'] / d['ipu_s']:.1f}x",
            f"{d['cpu_s'] / d['ipu_s']:.1f}x",
        ])
    text = print_table(
        "Figure 7: SpMV execution times (µs) and IPU speedups",
        ["Matrix", "IPU", "GPU", "CPU", "IPU vs GPU", "IPU vs CPU"],
        rows,
    )
    save_result("fig7_spmv_platforms", text, data=data)

    for name, d in data.items():
        # Per-tile parity must actually hold (within 40%).
        parity = d["nnz_per_tile_sim"] / d["nnz_per_tile_paper"]
        assert 0.6 < parity < 1.6, f"{name}: parity {parity:.2f}"
        # Shape: IPU wins on every matrix, GPU beats CPU (bandwidth order).
        assert d["ipu_s"] < d["gpu_s"] < d["cpu_s"], name
        # Factors in (a generous envelope of) the paper's 13-19x / 55-150x.
        assert 3 < d["gpu_s"] / d["ipu_s"] < 60, name
        assert 15 < d["cpu_s"] / d["ipu_s"] < 400, name


def test_fig7_backend_wallclock(bench_backends):
    """Per-backend host wall-clock of the Fig. 7 SpMV programs.

    Every backend must reproduce the sim result bit for bit on all four
    sized matrices; the recorded per-backend seconds track how much host
    time the fast/fused runtimes save on the unstructured workloads
    (``--backend`` narrows the sweep — see ``conftest.py``).
    """
    data = {}
    for name, gen in SIZED.items():
        cmp = backend_wallclock(gen(), num_ipus=4, tiles_per_ipu=16,
                                repeats=4, backends=bench_backends)
        assert cmp["bit_identical"], name
        data[name] = {f"{b}_seconds": cmp[f"{b}_seconds"] for b in bench_backends}
        if "fused" in bench_backends:
            data[name]["fused_counters"] = cmp["fused_counters"]
    rows = [
        [name, *(f"{d[f'{b}_seconds'] * 1e3:.1f}" for b in bench_backends)]
        for name, d in data.items()
    ]
    text = print_table(
        "Figure 7 matrices: SpMV x4 host wall-clock by runtime backend (ms)",
        ["Matrix", *bench_backends],
        rows,
    )
    save_result(
        "fig7_backend_wallclock",
        text,
        data={"backends": list(bench_backends), "matrices": data},
    )


def test_fig7_energy_comparable(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # Sec. VI: speedups come "at a comparable energy consumption level" —
    # the IPU's higher power is far outweighed by its shorter runtime.
    for name, d in data.items():
        e_ipu = energy_j(IPU_M2000, d["ipu_s"])
        e_gpu = energy_j(H100_SXM, d["gpu_s"])
        e_cpu = energy_j(XEON_8470Q, d["cpu_s"])
        assert e_ipu < e_gpu and e_ipu < e_cpu, name
