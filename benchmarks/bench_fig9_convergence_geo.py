"""Figure 9: convergence of four solver configurations on Geo_1438.

The paper compares PBiCGStab+ILU(0) (100 iterations per restart/IR step):

- **no IR** and **IR** (non-mixed-precision): both stall at ~1e-6,
- **MPIR + double-word**: converges to ~1e-13,
- **MPIR + soft double**: converges to ~1e-15.

We rerun all four configurations on the Geo_1438 double and check the
stall/convergence pattern.  Residual curves (relative residual after each
outer step) are saved as the figure's data series.
"""

import numpy as np
import pytest

from repro.bench import print_series, save_result
from repro.solvers import solve
from repro.sparse.suitesparse import geo_like

INNER_ITERS = 100  # the paper's per-restart burst

MATRIX = lambda: geo_like(nx=14, ny=14, nz=14)
SEED = 21
TILES = dict(num_ipus=1, tiles_per_ipu=16)


def configs():
    inner = {
        "solver": "bicgstab",
        "fixed_iterations": INNER_ITERS,
        "tol": 2e-7,
        "record_history": False,
        "preconditioner": {"solver": "ilu0"},
    }
    return {
        "no IR": {
            "solver": "bicgstab",
            "tol": 1e-15,
            "max_iterations": 4 * INNER_ITERS,
            "preconditioner": {"solver": "ilu0"},
        },
        "IR": {"solver": "mpir", "precision": "float32", "tol": 1e-15,
                "max_outer": 5, "inner": inner},
        "MPIR (double-word)": {"solver": "mpir", "precision": "dw", "tol": 1e-13,
                                "max_outer": 6, "inner": inner},
        "MPIR (double-precision)": {"solver": "mpir", "precision": "float64",
                                     "tol": 1e-15, "max_outer": 6, "inner": inner},
    }


def run_all(matrix_fn=MATRIX, seed=SEED):
    crs = matrix_fn()
    b = np.random.default_rng(seed).standard_normal(crs.n)
    out = {}
    for name, cfg in configs().items():
        res = solve(crs, b, cfg, **TILES)
        out[name] = res
    return out


def check_fig9_shape(results):
    final = {k: r.relative_residual for k, r in results.items()}
    # Non-MPIR configurations stall at the f32 barrier (paper: ~1e-6; the
    # barrier sits higher here because the doubles' solutions have larger
    # magnitude, raising the f32 representation floor proportionally).
    assert 1e-9 < final["no IR"] < 1e-2
    assert 1e-9 < final["IR"] < 1e-2
    # IR alone does not (substantially) improve convergence.
    assert final["IR"] > final["no IR"] / 50
    # MPIR breaks the barrier by many orders of magnitude: dw to ~1e-12,
    # soft double at least as far.
    assert final["MPIR (double-word)"] < 1e-10
    assert final["MPIR (double-precision)"] < 1e-10
    assert final["MPIR (double-precision)"] < final["MPIR (double-word)"]
    assert final["MPIR (double-word)"] < final["no IR"] / 1e6
    return final


def series_text(title, results):
    rows = []
    for name, res in results.items():
        hist = res.stats.residuals
        for it, r in zip(res.stats.iterations, hist):
            rows.append([name, it, f"{r:.3e}"])
        rows.append([name, "final(host f64)", f"{res.relative_residual:.3e}"])
    return print_series(title, "config", ["outer step", "relative residual"], rows)


def test_fig9_convergence_geo(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = series_text("Figure 9: solver configurations on Geo_1438 (double)", results)
    save_result("fig9_convergence_geo", text)
    check_fig9_shape(results)
