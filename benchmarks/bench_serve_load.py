"""Load-test the serving runtime: overload shedding, latency, bit-identity.

The acceptance gate for ``repro.serve`` (docs/serving.md):

- **Graceful degradation** — under a burst of 4x the service's capacity
  (queue depth + workers), the service sheds the excess with *typed*
  rejections (``ServiceOverloadError``/``QuotaExceededError``), finishes
  everything it accepted, and suffers zero worker crashes; the job ledger
  balances exactly.
- **Bounded served latency** — overload must not slow down the work the
  service *does* accept: the p50 solver-execution latency of served jobs
  stays within 2x of an unloaded direct solve through a warm cache.
  (Queue wait is reported separately — under overload it is the queue
  doing its job, not the solver degrading.)
- **Serving is observational** — every served job, including jobs that
  went through the retry ladder (escalated config) and jobs that rode the
  resilience rollback path under injected faults, is bit-identical in
  solution and residual history to one direct :func:`repro.solvers.solve`
  call with the recorded effective config.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.bench import print_table, save_result
from repro.serve import LoadGenerator, RetryPolicy, ServicePolicy, SolverService
from repro.solvers import ProgramCache, solve
from repro.sparse import poisson2d, poisson3d

GRID = 10              # 100 rows: small enough for a fast CI load run
OVERLOAD_FACTOR = 4    # burst = factor x (queue depth + workers)
QUEUE_DEPTH = 6
CONFIG = {"solver": "cg", "tol": 1e-8, "max_iterations": 400}
#: Starved budget: fails with "max_iterations", engaging the retry ladder.
WEAK = {"solver": "cg", "tol": 1e-8, "max_iterations": 2}
FAULTS = "seed=7;bitflip:p=0.03,where=exchange"


def _system(seed=0):
    crs, dims = poisson2d(GRID)
    b = np.random.default_rng(seed).standard_normal(crs.n)
    return crs, dims, b


def _unloaded_p50(crs, dims, b, runs=5) -> float:
    """Median direct-solve wall time through a warm compile cache — the
    latency an unloaded tenant would see."""
    cache = ProgramCache()
    solve(crs, b, CONFIG, grid_dims=dims, backend="fast", cache=cache)  # warm
    times = []
    for _ in range(runs):
        t0 = time.perf_counter()
        solve(crs, b, CONFIG, grid_dims=dims, backend="fast", cache=cache)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def test_overload_sheds_gracefully_with_bounded_served_latency():
    """4x-capacity burst: typed rejections, zero crashes, p50 within 2x."""
    crs, dims, b = _system()
    baseline = _unloaded_p50(crs, dims, b)

    workers = 1  # one executor lane: served exec latency is pure solve time
    capacity = QUEUE_DEPTH + workers
    burst = OVERLOAD_FACTOR * capacity
    policy = ServicePolicy(max_queue_depth=QUEUE_DEPTH)

    async def go():
        service = SolverService(policy=policy, workers=workers)
        gen = LoadGenerator(service)
        async with service:
            # Warm the service's cache so the burst measures serving, not
            # the one-time compile (same warm-start as the baseline).
            await service.solve(crs, b, CONFIG, grid_dims=dims, backend="fast")
            specs = [
                {"matrix": crs, "b": b, "config": CONFIG, "grid_dims": dims,
                 "backend": "fast", "tenant": f"tenant-{i % 3}"}
                for i in range(burst)
            ]
            report = await gen.run(specs)
        return report, service.accounting()

    report, acc = asyncio.run(go())
    summary = report.summary()
    served = report.served
    p50 = summary["exec_latency"]["p50"]

    rows = [
        ["burst jobs", burst, f"{OVERLOAD_FACTOR}x capacity ({capacity})"],
        ["served", len(served), f"p50 exec {p50 * 1e3:.1f} ms"],
        ["rejected (typed)", report.rejected, str(report.rejection_reasons())],
        ["unloaded p50", f"{baseline * 1e3:.1f} ms", "warm-cache direct solve"],
        ["worker crashes", acc["worker_faults"], "must be 0"],
        ["ledger balanced", acc["balanced"], "accepted == finished"],
    ]
    text = print_table("serve under 4x overload", ["metric", "value", "note"], rows)
    save_result("serve_load", text, data={
        "burst": burst, "capacity": capacity, "factor": OVERLOAD_FACTOR,
        "outcomes": summary["outcomes"],
        "rejection_reasons": summary["rejection_reasons"],
        "served": len(served),
        "unloaded_p50_ms": baseline * 1e3,
        "served_exec_p50_ms": p50 * 1e3,
        "served_total_p50_ms": summary["total_latency"]["p50"] * 1e3,
        "worker_faults": acc["worker_faults"],
        "balanced": acc["balanced"],
    })

    # Shedding: the burst exceeds capacity, so typed rejections must show
    # up, everything accepted must finish, and nobody may crash.
    assert report.total == burst
    assert report.rejected > 0
    assert set(report.rejection_reasons()) <= {"queue_full", "quota"}
    assert len(served) + report.rejected + summary["outcomes"].get("timed_out", 0) \
        + summary["outcomes"].get("failed", 0) == burst
    assert summary["outcomes"].get("failed", 0) == 0
    assert acc["worker_faults"] == 0
    assert acc["balanced"], acc
    # Overload must not degrade the solves the service accepts.
    assert p50 <= 2.0 * baseline, (
        f"served p50 {p50 * 1e3:.1f} ms > 2x unloaded {baseline * 1e3:.1f} ms")


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_served_results_are_bit_identical_including_retry_and_rollback():
    """Mixed tenants — clean, retry-ladder, fault-injected — every served
    job must be reproduced exactly by one direct solve call."""
    crs, dims, b = _system(seed=1)
    f_crs, f_dims = poisson3d(8)
    f_b = np.random.default_rng(3).standard_normal(f_crs.n)
    # The rollback path recovers to the resilience suite's tolerance; the
    # tighter CONFIG budget would legitimately stagnate under these faults.
    fault_config = {"solver": "cg", "tol": 1e-6}
    fault_kw = {"grid_dims": f_dims, "num_ipus": 2, "tiles_per_ipu": 16,
                "inject_faults": FAULTS, "resilience": True}

    retry = RetryPolicy(max_attempts=2, base_delay=0.001,
                        escalate_iterations=200.0, fallback_after=5)
    policy = ServicePolicy(max_queue_depth=16, retry=retry)

    specs = []
    for i in range(4):
        specs.append({"matrix": crs, "b": b, "config": CONFIG,
                      "grid_dims": dims, "backend": "fast", "tenant": "clean"})
    for i in range(3):
        specs.append({"matrix": crs, "b": b, "config": WEAK, "seed": 100 + i,
                      "grid_dims": dims, "backend": "fast", "tenant": "flaky"})
    for i in range(2):
        specs.append({"matrix": f_crs, "b": f_b, "config": fault_config,
                      "tenant": "faulty", **fault_kw})

    async def go():
        service = SolverService(policy=policy, workers=2)
        async with service:
            report = await LoadGenerator(service).run(specs)
        return report, service.accounting()

    report, acc = asyncio.run(go())
    served = report.served
    assert len(served) == len(specs), report.summary()
    assert acc["balanced"] and acc["worker_faults"] == 0
    # The retry ladder actually engaged for the starved configs...
    assert any(r["result"].attempts > 1 for r in served
               if r["tenant"] == "flaky")
    # ...and the fault tenant recovered through checkpoint/rollback.
    for rec in served:
        if rec["tenant"] == "faulty":
            rep = rec["result"].result.resilience
            assert rep.outcome == "recovered" and rep.rollbacks > 0

    checked = 0
    for rec in served:
        res = rec["result"]
        spec = rec["spec"]
        ref = solve(
            spec["matrix"], spec["b"], res.effective_config,
            grid_dims=spec.get("grid_dims"),
            num_ipus=spec.get("num_ipus", 1),
            tiles_per_ipu=spec.get("tiles_per_ipu", 16),
            backend=spec.get("backend", "sim"),
            inject_faults=spec.get("inject_faults"),
            resilience=spec.get("resilience"),
        )
        np.testing.assert_array_equal(res.result.x, ref.x)
        assert res.result.stats.residuals == ref.stats.residuals
        assert res.result.cycles == ref.cycles
        checked += 1
    assert checked == len(specs)

    save_result("serve_bit_identity", print_table(
        "served vs direct solve (bit-identity)",
        ["tenant", "jobs", "note"],
        [["clean", 4, "no retries"],
         ["flaky", 3, "retry ladder, escalated budget"],
         ["faulty", 2, "seeded bitflips + checkpoint/rollback"],
         ["all", checked, "x, residual history, cycles identical"]]),
        data={"jobs": checked, "bit_identical": True,
              "retry_jobs": 3, "fault_jobs": 2})
