"""Compile-cache amortization on repeated Fig. 5 solves.

The motivating workload for the structure-keyed compile cache
(``docs/performance.md``): a time-stepping code solves the *same* Poisson
system shape every step with a slowly drifting right-hand side, warm-started
from the previous step's solution.  A :class:`~repro.solvers.SolverSession`
pays for graph construction + pass pipeline + plan lowering once and rebinds
``b``/``x0`` into the cached :class:`~repro.graph.CompiledProgram` for every
later step.

This bench is the cache's acceptance gate:

- cache hits must reuse the lowered artifact without re-running a single
  compiler pass (asserted via the process-wide pass-invocation counters),
- hit solutions and modeled cycle counts must be bit-identical to cold
  compiles of the same step,
- the amortized host wall-clock over 10 solves must beat the
  rebuild-every-step path by at least 1.5x.
"""

import time

import numpy as np

from repro.bench import cached_solve_wallclock, print_table, save_result
from repro.graph.passes import compile_invocations, pass_invocations
from repro.solvers import SolverSession, solve
from repro.sparse import poisson3d

GRID = 16  # 4,096 rows — the Fig. 5 matrix family at laptop scale
STEPS = 10
TILES_PER_IPU = 16
CONFIG = {"solver": "cg", "tol": 1e-6}
DRIFT = 1e-5  # per-step rhs perturbation (small-time-step scale)


def _rhs_stream(n: int, steps: int = STEPS, seed: int = 0) -> list:
    """A drifting right-hand-side stream, one vector per time step."""
    rng = np.random.default_rng(seed)
    bs = [rng.standard_normal(n)]
    for _ in range(steps - 1):
        bs.append(bs[-1] + DRIFT * rng.standard_normal(n))
    return bs


def test_compile_cache_amortizes_time_stepping():
    """10 warm-started solves through one session vs. 10 cold compiles."""
    crs, dims = poisson3d(GRID)
    bs = _rhs_stream(crs.n)

    session = SolverSession(crs, CONFIG, grid_dims=dims, tiles_per_ipu=TILES_PER_IPU)
    cached_results, cached_times = [], []
    passes_at_hit_start = compiles_at_hit_start = None
    x_prev = None
    for i, b in enumerate(bs):
        if i == 1:  # everything after step 0 must be served from the cache
            passes_at_hit_start = pass_invocations()
            compiles_at_hit_start = compile_invocations()
        t0 = time.perf_counter()
        result = session.solve(b, x0=x_prev)
        cached_times.append(time.perf_counter() - t0)
        cached_results.append(result)
        x_prev = result.x
    assert pass_invocations() == passes_at_hit_start
    assert compile_invocations() == compiles_at_hit_start

    cold_results, cold_times = [], []
    x_prev = None
    for b in bs:
        t0 = time.perf_counter()
        result = solve(crs, b, CONFIG, grid_dims=dims,
                       tiles_per_ipu=TILES_PER_IPU, x0=x_prev)
        cold_times.append(time.perf_counter() - t0)
        cold_results.append(result)
        x_prev = result.x

    # A hit must be indistinguishable from a cold compile — in the solution
    # bytes and in the modeled cycle count.
    for hit, cold in zip(cached_results, cold_results):
        np.testing.assert_array_equal(hit.x, cold.x)
        assert hit.cycles == cold.cycles
        assert hit.stats.residuals == cold.stats.residuals

    stats = session.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == STEPS - 1
    assert stats["evictions"] == 0

    speedup = sum(cold_times) / sum(cached_times)
    hit_mean = sum(cached_times[1:]) / (STEPS - 1)
    cold_mean = sum(cold_times) / STEPS
    rows = [
        [i, r.iterations, r.cycles, f"{tc * 1e3:.1f}", f"{tk * 1e3:.1f}"]
        for i, (r, tc, tk) in enumerate(zip(cached_results, cached_times, cold_times))
    ]
    text = print_table(
        f"Compile cache: {STEPS} time steps of CG on poisson3d:{GRID} "
        f"({TILES_PER_IPU} tiles, warm-started)",
        ["step", "iterations", "cycles", "cached ms", "cold ms"],
        rows,
    )
    text += (
        f"\n\n  amortized speedup: {speedup:.2f}x over {STEPS} solves"
        f"\n  hit mean:          {hit_mean * 1e3:.1f} ms"
        f" (cold mean {cold_mean * 1e3:.1f} ms)"
        f"\n  cache:             {stats}"
    )
    # Wall-clock is a host measurement and varies run to run; the JSON twin
    # keeps the stable fields only (cycles, iteration counts, identities).
    save_result(
        "compile_cache",
        text,
        data={
            "grid": GRID,
            "steps": STEPS,
            "tiles_per_ipu": TILES_PER_IPU,
            "config": CONFIG,
            "cycles": [r.cycles for r in cached_results],
            "iterations": [r.iterations for r in cached_results],
            "cache": stats,
            "bit_identical_to_cold": True,
            "passes_rerun_on_hit": 0,
        },
    )

    assert hit_mean < cold_mean  # a hit skips build + lowering
    assert speedup >= 1.5, f"amortized speedup {speedup:.2f}x < 1.5x"


def test_compile_cache_batch_bit_identity():
    """``solve_many``-style batch through the harness helper: cached and
    cold paths must agree bit for bit in solutions *and* modeled cycles."""
    crs, dims = poisson3d(12)
    rng = np.random.default_rng(7)
    bs = [rng.standard_normal(crs.n) for _ in range(4)]
    out = cached_solve_wallclock(crs, CONFIG, bs, grid_dims=dims,
                                 tiles_per_ipu=TILES_PER_IPU)
    assert out["bit_identical_solutions"]
    assert out["identical_cycles"]
    assert out["cache"] == {"hits": 3, "misses": 1, "evictions": 0,
                            "size": 1, "capacity": 8}
    # The hit path skips graph build + pass pipeline + plan lowering; its
    # per-solve host time must come in under the rebuild-every-time mean.
    assert out["hit_mean_seconds"] < out["cold_mean_seconds"]
