"""Queue-level dynamic batching: served throughput and latency under load.

The acceptance gate for the :class:`~repro.serve.BatchAssembler`
(docs/serving.md, "Dynamic batching"):

- **Throughput** — at 4x batch-capacity load (32 compatible jobs against
  one worker), coalescing into multi-RHS dispatches serves at least 2x
  the jobs/second of the same service with batching off.  The win is the
  paper's batch amortization: one halo-exchange phase per iteration
  carries the whole batch, so a width-B dispatch runs max(col iters)
  exchange phases instead of sum(col iters).
- **Latency** — the served p50 *total* latency (queue wait + solve) is no
  worse than unbatched; batching drains the queue faster, it never holds
  a job hostage beyond the assembly window.
- **Observational** — batching is invisible in the results: a sample of
  batched-served jobs is re-solved directly and must be bit-identical in
  solution and residual history; the job ledger balances in both runs.
"""

import asyncio
import time

import numpy as np

from repro.bench import print_table, save_result
from repro.serve import BatchPolicy, ServicePolicy, SolverService
from repro.solvers import solve
from repro.sparse import poisson2d
from repro.telemetry import MetricsRegistry

GRID = 10                  # 100 rows: small enough for a fast CI run
CONFIG = {"solver": "cg", "tol": 1e-8, "max_iterations": 400}
MAX_BATCH = 8
JOBS = 4 * MAX_BATCH       # 4x batch capacity, all structure-compatible
QUEUE_DEPTH = JOBS         # no shedding: both runs serve every job


def _system():
    crs, dims = poisson2d(GRID)
    rng = np.random.default_rng(11)
    bs = [rng.standard_normal(crs.n) for _ in range(JOBS)]
    return crs, dims, bs


def _run(crs, dims, bs, batch: BatchPolicy | None):
    """Serve all of ``bs`` through one service; return (results, ledger,
    registry, wall seconds of the timed burst)."""
    policy = ServicePolicy(max_queue_depth=QUEUE_DEPTH, batch=batch)
    mreg = MetricsRegistry()

    async def go():
        async with SolverService(policy=policy, workers=1,
                                 metrics=mreg) as svc:
            # Warm the compile cache outside the timed window so the burst
            # measures serving, not one-time compiles: the single-RHS
            # program, and (batched run) the bucket-MAX_BATCH program.
            await svc.solve(crs, bs[0], CONFIG, grid_dims=dims,
                            backend="fast")
            if batch is not None:
                warm = [svc.submit(crs, b, CONFIG, grid_dims=dims,
                                   backend="fast")
                        for b in bs[:MAX_BATCH]]
                await asyncio.gather(*(j.future for j in warm))
            t0 = time.perf_counter()
            jobs = [svc.submit(crs, b, CONFIG, grid_dims=dims,
                               backend="fast", tenant=f"tenant-{i % 3}")
                    for i, b in enumerate(bs)]
            results = await asyncio.gather(*(j.future for j in jobs))
            wall = time.perf_counter() - t0
            return results, svc.accounting(), wall

    results, acc, wall = asyncio.run(go())
    return results, acc, mreg, wall


def test_batching_doubles_served_throughput_at_4x_load():
    crs, dims, bs = _system()

    un_res, un_acc, _, un_wall = _run(crs, dims, bs, None)
    policy = BatchPolicy(max_batch=MAX_BATCH, max_wait_ms=2.0)
    ba_res, ba_acc, ba_reg, ba_wall = _run(crs, dims, bs, policy)

    un_tput = len(un_res) / un_wall
    ba_tput = len(ba_res) / ba_wall
    un_p50 = float(np.median([r.total_seconds for r in un_res]))
    ba_p50 = float(np.median([r.total_seconds for r in ba_res]))
    saved = ba_reg.counter("repro_serve_exchange_phases_saved_total").value()
    widths = sorted({r.batch_size for r in ba_res})

    rows = [
        ["jobs", JOBS, f"4x batch capacity ({MAX_BATCH}), 1 worker"],
        ["unbatched", f"{un_tput:.1f} jobs/s",
         f"total p50 {un_p50 * 1e3:.1f} ms"],
        ["batched", f"{ba_tput:.1f} jobs/s",
         f"total p50 {ba_p50 * 1e3:.1f} ms"],
        ["speedup", f"{ba_tput / un_tput:.2f}x", "gate: >= 2x"],
        ["dispatch widths", widths, f"{ba_acc['batches']} batched "
                                    f"dispatch(es)"],
        ["exchange phases saved", int(saved), "sum(col iters) - max"],
    ]
    text = print_table("dynamic batching at 4x load",
                       ["metric", "value", "note"], rows)
    save_result("serve_batching", text, data={
        "jobs": JOBS, "max_batch": MAX_BATCH,
        "unbatched_jobs_per_s": un_tput, "batched_jobs_per_s": ba_tput,
        "speedup": ba_tput / un_tput,
        "unbatched_total_p50_ms": un_p50 * 1e3,
        "batched_total_p50_ms": ba_p50 * 1e3,
        "batches": ba_acc["batches"], "coalesced": ba_acc["coalesced"],
        "exchange_phases_saved": int(saved),
        "balanced": un_acc["balanced"] and ba_acc["balanced"],
    })

    assert un_acc["balanced"] and ba_acc["balanced"]
    assert un_acc["worker_faults"] == 0 and ba_acc["worker_faults"] == 0
    assert all(r.result.failure is None for r in un_res + ba_res)
    # The assembler actually coalesced (widths beyond 1 dispatched)...
    assert ba_acc["batches"] > 0 and max(widths) > 1
    assert saved > 0
    # ...and the wins hold: >= 2x throughput, p50 no worse.
    assert ba_tput >= 2.0 * un_tput, (
        f"batched {ba_tput:.1f} jobs/s < 2x unbatched {un_tput:.1f}")
    assert ba_p50 <= un_p50, (
        f"batched total p50 {ba_p50 * 1e3:.1f} ms worse than "
        f"unbatched {un_p50 * 1e3:.1f} ms")

    # Batching is observational: a sample of batched-served jobs is
    # reproduced exactly by one direct solve of that column alone.
    sample = [r for r in ba_res if r.batch_size > 1][:4]
    assert sample, "no batched-served job to check"
    for res in sample:
        j = ba_res.index(res)
        ref = solve(crs, bs[j], CONFIG, grid_dims=dims, backend="fast")
        np.testing.assert_array_equal(res.result.x, ref.x)
        assert res.result.stats.residuals == ref.stats.residuals
