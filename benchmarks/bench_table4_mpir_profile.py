"""Table IV: relative component times of MPIR+PBiCGStab+ILU(0) on G3_circuit.

The paper profiles the solver with 10 inner iterations per IR step and
buckets cycles into ILU(0) solve / SpMV / reduce / elementwise /
extended-precision ops, for both extended-precision methods:

    Operation             Double-Word   Double-Precision
    ILU(0) Solve          75%           66%
    SpMV                  7%            6%
    Reduce                12%           11%
    Elementwise Ops       4%            3%
    Extended-Precision    2%            14%

The headline: double-word arithmetic keeps MPIR's overhead at ~2% where
emulated double costs 14%.  We regenerate the table from the machine
model's cycle profiler.
"""

import numpy as np
import pytest

from repro.bench import print_table, save_result
from repro.solvers import solve
from repro.sparse.suitesparse import g3_circuit_like

BUCKETS = ["ilu_solve", "spmv", "reduce", "elementwise", "extended_precision"]
LABELS = {
    "ilu_solve": "ILU(0) Solve",
    "spmv": "SpMV",
    "reduce": "Reduce",
    "elementwise": "Elementwise Ops",
    "extended_precision": "Extended-Precision Ops",
}


def profile(precision: str) -> dict:
    crs = g3_circuit_like(grid=72)
    b = np.random.default_rng(5).standard_normal(crs.n)
    res = solve(
        crs, b,
        {
            "solver": "mpir",
            "precision": precision,
            "tol": 1e-11,
            "max_outer": 8,
            "record_history": False,
            "inner": {
                "solver": "bicgstab",
                "fixed_iterations": 10,  # the paper's Table IV setting
                "tol": 2e-7,
                "record_history": False,
                "preconditioner": {"solver": "ilu0"},
            },
        },
        num_ipus=1, tiles_per_ipu=32,
    )
    raw = {k: res.profile.get(k, 0.0) for k in BUCKETS}
    # The one-time factorization belongs to the ILU(0) line item.
    raw["ilu_solve"] += res.profile.get("ilu_factor", 0.0)
    total = sum(raw.values()) or 1.0
    return {k: v / total for k, v in raw.items()}


def test_table4_mpir_profile(benchmark):
    def run_both():
        return profile("dw"), profile("float64")

    dw, dp = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [[LABELS[k], f"{dw[k]:.0%}", f"{dp[k]:.0%}"] for k in BUCKETS]
    text = print_table(
        "Table IV: relative computation times of MPIR+PBiCGStab+ILU(0) on G3_circuit",
        ["Operation", "Double-Word", "Double-Precision"],
        rows,
    )
    save_result("table4_mpir_profile", text)

    # Shape assertions against the paper's Table IV.
    # ILU(0) solve is the dominant compute bucket (75% in the paper).
    assert dw["ilu_solve"] == max(dw.values())
    assert dw["ilu_solve"] > 0.3
    # Double-word overhead is small (2% in the paper).
    assert dw["extended_precision"] < 0.12
    # Emulated double costs several times more (14% in the paper).
    assert dp["extended_precision"] > 2 * dw["extended_precision"]
    # Shares in each column sum to one.
    assert sum(dw.values()) == pytest.approx(1.0)
    assert sum(dp.values()) == pytest.approx(1.0)
