"""Ablation A5 (Sec. II-C future work): SELL-C-σ vs. modified CRS for SpMV.

The paper predicts: "we anticipate that the performance gains typically
associated with ELLPACK and SELL formats would be small on IPUs" — the
gathered ``x[col]`` operands defeat the 2-wide SIMD pairing and the
cacheless SRAM neutralizes the layout's locality advantage, leaving only
amortized per-row overhead against the padding cost.  This bench tests that
prediction on regular and irregular matrices.
"""

import numpy as np
import pytest

from repro.bench import print_table, save_result
from repro.machine import CycleModel
from repro.sparse import poisson3d
from repro.sparse.sell import SellBlock, crs_spmv_cycles, sell_spmv_cycles
from repro.sparse.suitesparse import af_shell_like, g3_circuit_like

CASES = {
    "Poisson 12^3 (regular rows)": lambda: poisson3d(12)[0],
    "af_shell-like (wide stencil)": lambda: af_shell_like(nx=16, ny=16, layers=4),
    "G3_circuit-like (irregular)": lambda: g3_circuit_like(grid=40),
}


def run_all():
    model = CycleModel()
    out = {}
    for name, gen in CASES.items():
        crs = gen()
        sell = SellBlock.from_crs(crs, chunk=4)
        c_crs = crs_spmv_cycles(model, crs)
        c_sell = sell_spmv_cycles(model, sell)
        out[name] = {
            "crs": c_crs,
            "sell": c_sell,
            "gain": c_crs / c_sell,
            "padding": sell.padding_ratio,
        }
        # Correctness of the format, always.
        x = np.random.default_rng(1).standard_normal(crs.n)
        np.testing.assert_allclose(sell.spmv(x), crs.spmv(x), rtol=1e-10)
    return out


def test_ablation_sell(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, d["crs"], d["sell"], f"{d['gain']:.3f}x", f"{d['padding']:.3f}"]
        for name, d in data.items()
    ]
    text = print_table(
        "Ablation A5: SELL-C-σ vs modified CRS SpMV cycles (one tile, 6 workers)",
        ["Matrix", "CRS cycles", "SELL cycles", "SELL gain", "padding ratio"],
        rows,
    )
    save_result("ablation_sell", text)

    for name, d in data.items():
        # The paper's prediction: no ELLPACK-class win on the IPU — every
        # case lands within ±20% of CRS.
        assert 0.8 < d["gain"] < 1.2, f"{name}: gain {d['gain']:.2f}"
    # Irregular rows pad more than regular ones.
    assert (
        data["G3_circuit-like (irregular)"]["padding"]
        > data["Poisson 12^3 (regular rows)"]["padding"]
    )
