"""Table I: floating-point types supported by the DSL.

Regenerates the paper's comparison of single precision, double-word, and
emulated double precision: measured decimal digits, representable range,
and IPU cycle counts for the basic arithmetic operations.
"""

import numpy as np
import pytest

from repro.bench import print_table, save_result
from repro.dw import DWScalar, joldes, softfloat
from repro.machine.cycles import OP_CYCLES


def measured_digits_dw(op, samples=20_000, seed=0):
    """Empirical decimal digits of one double-word operation vs. float64."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.5, 2.0, samples) * 10.0 ** rng.integers(-3, 3, samples)
    b = rng.uniform(0.5, 2.0, samples) * 10.0 ** rng.integers(-3, 3, samples)
    worst = 0.0
    ah = a.astype(np.float32)
    al = (a - ah.astype(np.float64)).astype(np.float32)
    bh = b.astype(np.float32)
    bl = (b - bh.astype(np.float64)).astype(np.float32)
    fn = {"add": joldes.add_dw_dw, "mul": joldes.mul_dw_dw, "div": joldes.div_dw_dw}[op]
    rh, rl = fn(ah, al, bh, bl)
    got = rh.astype(np.float64) + rl.astype(np.float64)
    exact = {"add": a + b, "mul": a * b, "div": a / b}[op]
    rel = np.abs((got - exact) / exact)
    worst = rel.max()
    return -np.log10(max(worst, 1e-300))


def measured_digits_f32(samples=20_000, seed=1):
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.5, 2.0, samples)
    b = rng.uniform(0.5, 2.0, samples)
    got = (a.astype(np.float32) * b.astype(np.float32)).astype(np.float64)
    exact = a.astype(np.float32).astype(np.float64) * b.astype(np.float32).astype(np.float64)
    rel = np.abs((got - exact) / exact).max()
    return -np.log10(max(rel, 1e-300))


def build_table():
    dw_digits = {op: measured_digits_dw(op) for op in ("add", "mul", "div")}
    f32 = np.finfo(np.float32)
    f64 = np.finfo(np.float64)
    rows = [
        ["Algorithm", "native", "Joldes et al.", "compiler-rt (soft-float)"],
        ["Decimal digits",
         f"{measured_digits_f32():.1f}",
         f"{min(dw_digits.values()):.1f} to {max(dw_digits.values()):.1f}",
         "16.0"],
        ["Range", f"1e{int(np.log10(f32.tiny))} to 1e{int(np.log10(f32.max))}",
         f"1e{int(np.log10(f32.tiny))} to 1e{int(np.log10(f32.max))}",
         f"1e{int(np.log10(f64.tiny))} to 1e{int(np.log10(f64.max))}"],
        ["Addition (cycles)", OP_CYCLES["float32"]["add"], OP_CYCLES["dw"]["add"],
         f"ca. {OP_CYCLES['float64']['add']}"],
        ["Multiplication (cycles)", OP_CYCLES["float32"]["mul"], OP_CYCLES["dw"]["mul"],
         f"ca. {OP_CYCLES['float64']['mul']}"],
        ["Division (cycles)", OP_CYCLES["float32"]["div"], OP_CYCLES["dw"]["div"],
         f"ca. {OP_CYCLES['float64']['div']}"],
    ]
    return rows, dw_digits


def test_table1(benchmark):
    rows, dw_digits = benchmark.pedantic(build_table, rounds=1, iterations=1)
    text = print_table(
        "Table I: floating-point types (Single-Precision / Double-Word / Double-Precision)",
        ["Operation", "Single-Precision", "Double-Word", "Double-Precision"],
        rows,
    )
    save_result("table1_fp_types", text)

    # Shape assertions against the paper's Table I.
    # Paper: dw gives 13.3 to 14.0 decimal digits.
    assert 12.5 <= min(dw_digits.values()) <= 14.5
    assert 13.0 <= max(dw_digits.values()) <= 15.0
    # Paper: dw add/mul/div = 132/162/240 cycles; f32 = 6; soft f64 ≈ 8x dw.
    assert OP_CYCLES["dw"]["add"] == 132
    assert OP_CYCLES["dw"]["mul"] == 162
    assert OP_CYCLES["dw"]["div"] == 240
    assert OP_CYCLES["float64"]["add"] / OP_CYCLES["dw"]["add"] > 5


def test_dw_range_equals_f32_range(benchmark):
    # Double-word extends precision, NOT range (Sec. III-D).
    def check():
        big = DWScalar.from_float(1e38)
        assert np.isfinite(big.hi)
        with np.errstate(over="ignore", invalid="ignore"):
            overflow = big * 10.0
        return overflow

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert not np.isfinite(result.hi)  # beyond float32 range -> inf
