"""Ablation A4 (Sec. III-D): Joldes et al. vs. Lange & Rump double-word
arithmetic.

The paper chose the slower, tightly-bounded Joldes algorithms over Lange &
Rump's faster ones because "the precision decreases with consecutive
operations, which is a concern for the Iterative Refinement method".  We
measure (1) per-operation cost and (2) precision decay over chained
operations, for both families.
"""

import numpy as np
import pytest

from repro.bench import print_table, save_result
from repro.dw import joldes, lange_rump


def chained_error(arith, n_terms=50_000, seed=4):
    """Accumulate an alternating series; return |error| vs float64."""
    rng = np.random.default_rng(seed)
    terms = rng.uniform(-1.0, 1.0, n_terms)
    hi = np.float32(0)
    lo = np.float32(0)
    for t in terms:
        th = np.float32(t)
        tl = np.float32(np.float64(t) - np.float64(th))
        hi, lo = arith.add_dw_dw(hi, lo, th, tl)
    return abs(float(np.float64(hi) + np.float64(lo)) - terms.sum())


def single_op_error(arith, samples=50_000, seed=5):
    """Worst relative error of one dw multiply vs float64."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.5, 2.0, samples)
    b = rng.uniform(0.5, 2.0, samples)
    ah = a.astype(np.float32)
    al = (a - ah.astype(np.float64)).astype(np.float32)
    bh = b.astype(np.float32)
    bl = (b - bh.astype(np.float64)).astype(np.float32)
    rh, rl = arith.mul_dw_dw(ah, al, bh, bl)
    got = rh.astype(np.float64) + rl.astype(np.float64)
    return float(np.abs((got - a * b) / (a * b)).max())


def test_ablation_dw_variants(benchmark):
    def run():
        return {
            "joldes": {
                "flops": dict(joldes.FLOPS),
                "cycles": dict(joldes.CYCLES),
                "single_op_relerr": single_op_error(joldes),
                "chained_abs_err": chained_error(joldes),
            },
            "lange_rump": {
                "flops": dict(lange_rump.FLOPS),
                "cycles": dict(lange_rump.CYCLES),
                "single_op_relerr": single_op_error(lange_rump),
                "chained_abs_err": chained_error(lange_rump),
            },
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, d in data.items():
        rows.append([
            name,
            "/".join(str(d["flops"][k]) for k in ("add", "mul", "div")),
            "/".join(str(d["cycles"][k]) for k in ("add", "mul", "div")),
            f"{d['single_op_relerr']:.2e}",
            f"{d['chained_abs_err']:.2e}",
        ])
    text = print_table(
        "Ablation A4: Joldes et al. (accurate) vs Lange & Rump (fast) dw arithmetic",
        ["Family", "flops add/mul/div", "cycles add/mul/div",
         "1-op max rel err", "50k-op chained abs err"],
        rows,
    )
    save_result("ablation_dw_variants", text)

    j, lr = data["joldes"], data["lange_rump"]
    # Lange-Rump is cheaper per op (paper: 7-25 vs 20-34 flops)...
    assert all(lr["flops"][k] < j["flops"][k] for k in ("add", "mul", "div"))
    assert all(lr["cycles"][k] < j["cycles"][k] for k in ("add", "mul", "div"))
    # ...both are accurate for a single op (O(u^2))...
    assert j["single_op_relerr"] < 1e-12
    assert lr["single_op_relerr"] < 1e-11
    # ...but only the accurate family keeps chained error at dw level — the
    # property MPIR needs ("numerical stability crucial", Sec. III-D).
    assert j["chained_abs_err"] <= lr["chained_abs_err"]
    assert j["chained_abs_err"] < 1e-8
