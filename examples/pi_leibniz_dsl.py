"""The paper's Fig. 1: computing π with CodeDSL + TensorDSL.

CodeDSL fills a tensor with the Leibniz series from a tile-centric
perspective (each tile writes only its own shard); TensorDSL reduces the
series and multiplies by four with a global view.  The whole program is
*symbolically executed* once to build the dataflow graph and schedule, then
runs on the machine model.

Run:  python examples/pi_leibniz_dsl.py
"""

import numpy as np

from repro.codedsl import For, Select
from repro.machine import IPUDevice
from repro.tensordsl import TensorContext, Type

NUM_TILES = 8
N = 100_000

ctx = TensorContext(IPUDevice(tiles_per_ipu=NUM_TILES))

# Create a TensorDSL tensor.
x = ctx.tensor((N,), Type.FLOAT32)

# Each tile needs its shard's global offset to evaluate the series.
offsets = ctx.tensor(
    (NUM_TILES,),
    data=np.array(
        [s.interval.start for s in sorted(x.var.shards.values(), key=lambda s: s.interval.start)],
        dtype=np.float32,
    ),
    tile_ids=list(range(NUM_TILES)),
)

# Fill the tensor with the Leibniz sequence using CodeDSL.
ctx.Execute(
    [x, offsets],
    lambda xs, off: For(
        0,
        xs.size,
        1,
        lambda i: xs.set(
            i, Select((i + off[0]) % 2 == 0, 1.0, -1.0) / (2 * (i + off[0]) + 1)
        ),
    ),
)

# Calculate pi from the Leibniz sequence using TensorDSL.
pi = (x.reduce() * 4).materialize()

# Fig. 1's conditional host print.
ctx.If(abs(pi - 3.141) < 0.001, lambda: ctx.print("We found pi!"))

engine = ctx.run()

value = float(pi.value())
cycles = ctx.device.profiler.total_cycles
print(f"pi ≈ {value:.6f}  (error {abs(value - np.pi):.2e})")
print(f"modeled IPU cycles: {cycles}  ({ctx.device.seconds() * 1e6:.1f} µs)")
assert abs(value - np.pi) < 1e-3
