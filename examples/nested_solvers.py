"""Nested solver configurations: any solver can precondition any other.

The framework's key design feature (Sec. V) is its modular solver
hierarchy, configured through JSON.  This example solves one geomechanics
system with six different hierarchies — from unpreconditioned BiCGStab to a
BiCGStab-inside-BiCGStab nesting — and compares iteration counts and
modeled IPU time.

Run:  python examples/nested_solvers.py
"""

import numpy as np

from repro.solvers import solve
from repro.sparse.suitesparse import geo_like

matrix = geo_like(nx=12, ny=12, nz=12, anisotropy=5.0)
b = np.random.default_rng(3).standard_normal(matrix.n)
TOL = 1e-4  # comfortably above the float32 floor for this conditioning

CONFIGS = {
    "BiCGStab (no preconditioner)": {
        "solver": "bicgstab", "tol": TOL, "max_iterations": 600,
    },
    "BiCGStab + Jacobi": {
        "solver": "bicgstab", "tol": TOL, "max_iterations": 600,
        "preconditioner": {"solver": "jacobi", "sweeps": 2, "omega": 0.8},
    },
    "BiCGStab + Gauss-Seidel": {
        "solver": "bicgstab", "tol": TOL, "max_iterations": 600,
        "preconditioner": {"solver": "gauss_seidel", "sweeps": 2},
    },
    "BiCGStab + DILU": {
        "solver": "bicgstab", "tol": TOL, "max_iterations": 600,
        "preconditioner": {"solver": "dilu"},
    },
    "BiCGStab + ILU(0)": {
        "solver": "bicgstab", "tol": TOL, "max_iterations": 600,
        "preconditioner": {"solver": "ilu0"},
    },
    "BiCGStab + inner BiCGStab+ILU(0)": {
        "solver": "bicgstab", "tol": TOL, "max_iterations": 600,
        "preconditioner": {
            "solver": "bicgstab", "fixed_iterations": 3, "record_history": False,
            "preconditioner": {"solver": "ilu0"},
        },
    },
}

print(f"system: geo_like, n={matrix.n}, nnz={matrix.nnz}, tol={TOL}\n")
print(f"{'configuration':<36s} {'iters':>5s} {'residual':>10s} {'IPU ms':>8s}")
rows = []
for name, cfg in CONFIGS.items():
    res = solve(matrix, b, cfg, num_ipus=1, tiles_per_ipu=16)
    rows.append((name, res))
    print(
        f"{name:<36s} {res.iterations:>5d} {res.relative_residual:>10.2e} "
        f"{res.seconds * 1e3:>8.2f}"
    )

plain = dict(rows)["BiCGStab (no preconditioner)"]
# Stationary preconditioners (Jacobi/GS/DILU/ILU) must reduce iterations.
# The BiCGStab-in-BiCGStab nesting is a *variable* preconditioner — standard
# BiCGStab is not guaranteed to benefit (a flexible Krylov method would be
# needed); it is included to demonstrate that arbitrary nesting works.
for name, res in rows:
    if "inner" in name or name == "BiCGStab (no preconditioner)":
        continue
    assert res.iterations <= plain.iterations, f"{name} should not need more iterations"
print("\nOK — every hierarchy ran; stationary preconditioners reduce iterations.")
