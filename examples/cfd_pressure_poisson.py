"""CFD workload: a pressure-projection Poisson solve with MPIR.

Incompressible-flow solvers (the paper's motivating application domain)
spend most of their time in the pressure Poisson equation of the projection
step:  ∆p = ∇·u*.  The divergence source makes the right-hand side rough,
and tight residuals are needed so the corrected velocity field stays
divergence-free over thousands of time steps — exactly where single
precision is insufficient and the paper's MPIR + double-word combination
earns its keep (Sec. V-B).

This example builds the pressure system for a lid-driven-cavity-like
velocity field, then solves it three ways:

1. plain float32 PBiCGStab+ILU(0)      -> stalls near 1e-6,
2. MPIR with double-word arithmetic    -> reaches ~1e-12,
3. MPIR with emulated double precision -> reaches ~1e-14 at ~8x the
   extended-precision cost (Table I).

Run:  python examples/cfd_pressure_poisson.py
"""

import numpy as np

from repro.solvers import solve
from repro.sparse import poisson3d

N = 20  # 20^3 = 8,000 pressure unknowns
matrix, dims = poisson3d(N)

# Divergence of a synthetic lid-driven velocity field u*(x,y,z).
x, y, z = np.meshgrid(*(np.linspace(0, 1, N),) * 3, indexing="ij")
div_u = (
    np.sin(np.pi * x) * np.cos(np.pi * y) * (1 - z)
    + 0.3 * np.cos(2 * np.pi * y) * z
).reshape(-1)
div_u -= div_u.mean()  # compatibility: the singular Neumann mode
b = div_u + 1e-3 * np.random.default_rng(1).standard_normal(matrix.n)

INNER = {
    "solver": "bicgstab",
    "fixed_iterations": 60,
    "tol": 2e-7,
    "record_history": False,
    "preconditioner": {"solver": "ilu0"},
}

CONFIGS = {
    "float32 PBiCGStab+ILU(0)": {
        "solver": "bicgstab",
        "tol": 1e-14,
        "max_iterations": 240,
        "preconditioner": {"solver": "ilu0"},
    },
    "MPIR (double-word)": {
        "solver": "mpir", "precision": "dw", "tol": 1e-12, "max_outer": 8,
        "inner": INNER,
    },
    "MPIR (emulated double)": {
        "solver": "mpir", "precision": "float64", "tol": 1e-14, "max_outer": 8,
        "inner": INNER,
    },
}

print(f"pressure system: n={matrix.n}, nnz={matrix.nnz}\n")
results = {}
for name, cfg in CONFIGS.items():
    res = solve(matrix, b, cfg, num_ipus=1, tiles_per_ipu=16, grid_dims=dims)
    results[name] = res
    ext = res.profile.get("extended_precision", 0.0)
    print(
        f"{name:<28s} residual {res.relative_residual:9.2e}   "
        f"modeled time {res.seconds * 1e3:7.2f} ms   "
        f"extended-precision share {ext:5.1%}"
    )

f32 = results["float32 PBiCGStab+ILU(0)"].relative_residual
dw = results["MPIR (double-word)"].relative_residual
dp = results["MPIR (emulated double)"].relative_residual
assert dw < f32 / 1e4, "MPIR-DW must break the float32 barrier"
assert dp < dw, "emulated double refines further than double-word"
print("\nOK — the MPIR precision ladder holds (Figs. 9/10 of the paper).")
