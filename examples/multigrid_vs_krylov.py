"""Multigrid vs. Krylov: two roads to a Poisson solution.

The paper motivates Gauss-Seidel partly by its role "as a smoother in
multigrid algorithms" (Sec. V-D); this example exercises the geometric
multigrid solver built on the framework and compares three strategies on
one 3-D Poisson problem:

1. BiCGStab + block-local ILU(0) — the paper's workhorse configuration,
2. standalone multigrid V-cycles (GS-smoothed, Galerkin-coarsened),
3. CG preconditioned with one V-cycle — the textbook heavy hitter.

Run:  python examples/multigrid_vs_krylov.py
"""

import numpy as np

from repro.solvers import solve
from repro.sparse import poisson3d

matrix, dims = poisson3d(16)  # 4,096 unknowns
b = np.random.default_rng(2).standard_normal(matrix.n)
TOL = 1e-6

CONFIGS = {
    "BiCGStab + block ILU(0)": {
        "solver": "bicgstab", "tol": TOL, "max_iterations": 500,
        "preconditioner": {"solver": "ilu0"},
    },
    "Multigrid V-cycles (GS smoothing)": {
        "solver": "multigrid", "grid_dims": dims, "cycles": 12,
        "pre_smooth": 2, "post_smooth": 2,
    },
    # CG needs an SPD preconditioner: symmetric (forward+backward) GS
    # smoothing keeps the V-cycle symmetric.
    "CG + 1 V-cycle preconditioner": {
        "solver": "cg", "tol": TOL, "max_iterations": 100,
        "preconditioner": {
            "solver": "multigrid", "grid_dims": dims, "cycles": 1,
            "record_history": False,
            "smoother": {"solver": "gauss_seidel", "sweeps": 1,
                          "direction": "symmetric"},
        },
    },
}

print(f"Poisson {dims}: n={matrix.n}, nnz={matrix.nnz}\n")
print(f"{'strategy':<36s} {'iters':>5s} {'residual':>10s} {'IPU ms':>8s} {'mJ':>7s}")
results = {}
for name, cfg in CONFIGS.items():
    res = solve(matrix, b, cfg, num_ipus=1, tiles_per_ipu=16, grid_dims=dims)
    results[name] = res
    energy_mj = res.engine.device.energy_j() * 1e3
    print(f"{name:<36s} {res.iterations:>5d} {res.relative_residual:>10.2e} "
          f"{res.seconds * 1e3:>8.2f} {energy_mj:>7.2f}")

mgcg = results["CG + 1 V-cycle preconditioner"]
ilu = results["BiCGStab + block ILU(0)"]
assert mgcg.relative_residual < 1e-5
assert mgcg.iterations < ilu.iterations, "MG preconditioning should dominate"
print("\nOK — the V-cycle preconditioner needs the fewest iterations.")
