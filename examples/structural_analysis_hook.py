"""Structural analysis with material jumps: the Hook_1498 workload class.

Elasticity problems with strong material contrast (steel part + soft
filler) produce the worst-conditioned systems of the paper's benchmark set.
This example sweeps the material contrast and shows where plain float32
solving breaks down and how MPIR + double-word arithmetic extends the
usable range — plus the device-level diagnostics a practitioner would
check: partition balance, halo-region statistics, and SRAM usage.

Run:  python examples/structural_analysis_hook.py
"""

import numpy as np

from repro.machine import IPUDevice
from repro.solvers import build_solver, solve
from repro.sparse.distribute import DistributedMatrix
from repro.sparse.suitesparse import hook_like
from repro.tensordsl import TensorContext

MPIR_DW = {
    "solver": "mpir", "precision": "dw", "tol": 1e-10, "max_outer": 10,
    "inner": {
        "solver": "bicgstab", "fixed_iterations": 60, "tol": 2e-7,
        "record_history": False, "preconditioner": {"solver": "ilu0"},
    },
}
PLAIN_F32 = {
    "solver": "bicgstab", "tol": 1e-14, "max_iterations": 400,
    "preconditioner": {"solver": "ilu0"},
}

print("contrast sweep (12^3 hook, 16 tiles):")
print(f"{'contrast':>9s} {'f32 residual':>13s} {'MPIR-DW residual':>17s}")
for contrast in (1e1, 1e2, 1e3):
    matrix = hook_like(nx=12, ny=12, nz=12, contrast=contrast)
    b = np.random.default_rng(8).standard_normal(matrix.n)
    f32 = solve(matrix, b, PLAIN_F32, num_ipus=1, tiles_per_ipu=16)
    dw = solve(matrix, b, MPIR_DW, num_ipus=1, tiles_per_ipu=16)
    print(f"{contrast:>9.0e} {f32.relative_residual:>13.2e} {dw.relative_residual:>17.2e}")
    assert dw.relative_residual < f32.relative_residual

# Device-level diagnostics for the practitioner.
matrix = hook_like(nx=12, ny=12, nz=12, contrast=1e2)
ctx = TensorContext(IPUDevice(tiles_per_ipu=16))
A = DistributedMatrix(ctx, matrix)
solver = build_solver(A, MPIR_DW)
x, bvec = A.vector(), A.vector(data=np.ones(matrix.n))
solver.solve_into(x, bvec)

counts = A.partition.counts()
halo = [A.plan.halo_count(t) for t in A.tiles]
print("\ndevice diagnostics:")
print(f"  rows per tile:        min={counts.min()} max={counts.max()}")
print(f"  halo cells per tile:  min={min(halo)} max={max(halo)}")
print(f"  halo regions:         {len(A.plan.regions)} "
      f"({A.plan.num_copy_instructions()} comm instructions)")
sram = ctx.device.sram_report()
print(f"  peak SRAM per tile:   {sram['max_tile_bytes'] / 1024:.1f} kB "
      f"of {sram['capacity_per_tile'] / 1024:.0f} kB")
assert sram["max_tile_bytes"] < sram["capacity_per_tile"]
print("\nOK.")
