"""Tests for the modified CRS format and workload generators."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import ModifiedCRS, poisson2d, poisson3d
from repro.sparse.suitesparse import (
    MATRICES,
    af_shell_like,
    g3_circuit_like,
    geo_like,
    hook_like,
)


def random_spd(n, density=0.1, seed=0):
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=density, random_state=rng, format="csr")
    a = a + a.T + sp.diags(np.full(n, n * 1.0))
    return a.tocsr()


class TestModifiedCRS:
    def test_roundtrip_scipy(self):
        a = random_spd(50)
        m = ModifiedCRS.from_scipy(a)
        assert m.n == 50
        np.testing.assert_allclose(m.to_scipy().toarray(), a.toarray(), rtol=1e-14)

    def test_diagonal_stored_separately(self):
        a = sp.csr_matrix(np.array([[2.0, 1.0], [0.0, 3.0]]))
        m = ModifiedCRS.from_scipy(a)
        np.testing.assert_array_equal(m.diag, [2.0, 3.0])
        assert m.nnz_offdiag == 1  # only the (0,1) entry
        assert m.nnz == 3

    def test_zero_diagonal_rejected(self):
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            ModifiedCRS.from_scipy(a)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            ModifiedCRS.from_scipy(sp.random(3, 4, density=0.9))

    def test_inconsistent_arrays_rejected(self):
        with pytest.raises(ValueError):
            ModifiedCRS([1.0, 1.0], [1.0], [0], [0, 1])  # row_ptr too short

    def test_spmv_matches_scipy(self):
        a = random_spd(64, density=0.2)
        m = ModifiedCRS.from_scipy(a)
        x = np.random.default_rng(1).standard_normal(64)
        np.testing.assert_allclose(m.spmv(x), a @ x, rtol=1e-12)

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_spmv_property(self, n, seed):
        a = random_spd(n, density=0.3, seed=seed)
        m = ModifiedCRS.from_scipy(a)
        x = np.random.default_rng(seed).standard_normal(n)
        np.testing.assert_allclose(m.spmv(x), a @ x, rtol=1e-10, atol=1e-12)

    def test_permute_is_symmetric_permutation(self):
        a = random_spd(20, density=0.3)
        m = ModifiedCRS.from_scipy(a)
        rng = np.random.default_rng(3)
        perm = rng.permutation(20)
        pm = m.permute(perm)
        # (PAPᵀ)x = P A Pᵀ x.
        p = sp.csr_matrix((np.ones(20), (np.arange(20), perm)), shape=(20, 20))
        np.testing.assert_allclose(
            pm.to_scipy().toarray(), (p @ a @ p.T).toarray(), rtol=1e-12
        )

    def test_permute_rejects_non_permutation(self):
        m = ModifiedCRS.from_scipy(random_spd(4))
        with pytest.raises(ValueError):
            m.permute([0, 0, 1, 2])

    def test_row_access(self):
        a = sp.csr_matrix(np.array([[2.0, 5.0, 0.0], [0.0, 3.0, 7.0], [1.0, 0.0, 4.0]]))
        m = ModifiedCRS.from_scipy(a)
        cols, vals = m.row(1)
        np.testing.assert_array_equal(cols, [2])
        np.testing.assert_array_equal(vals, [7.0])


class TestPoisson:
    def test_poisson3d_structure(self):
        m, dims = poisson3d(4)
        assert dims == (4, 4, 4)
        assert m.n == 64
        np.testing.assert_array_equal(m.diag, np.full(64, 6.0))
        # Interior cell has 6 off-diagonal neighbors.
        assert m.rows_nnz().max() == 6
        # 7-point: nnz = 7n - boundary corrections.
        assert m.nnz == 64 + 2 * 3 * (4 * 4 * 3)

    def test_poisson3d_spd(self):
        m, _ = poisson3d(4)
        w = np.linalg.eigvalsh(m.to_scipy().toarray())
        assert w.min() > 0

    def test_poisson3d_anisotropic_dims(self):
        m, dims = poisson3d(3, 4, 5)
        assert m.n == 60 and dims == (3, 4, 5)

    def test_poisson2d(self):
        m, dims = poisson2d(5)
        assert m.n == 25
        np.testing.assert_array_equal(m.diag, np.full(25, 4.0))

    def test_poisson_matches_paper_scale(self):
        # Paper: 200^3 grid -> ~58 M entries.  Check the formula at our scale
        # and extrapolate: nnz(n³ grid) = 7n³ - 6n².
        m, _ = poisson3d(10)
        assert m.nnz == 7 * 1000 - 6 * 100
        nnz_200 = 7 * 200**3 - 6 * 200**2
        assert nnz_200 == pytest.approx(58e6, rel=0.05)


class TestSuiteSparseDoubles:
    @pytest.mark.parametrize("name,gen", list(MATRICES.items()))
    def test_spd_and_symmetric(self, name, gen):
        m = gen() if name not in ("Geo_1438", "Hook_1498") else gen(nx=8, ny=8, nz=8)
        a = m.to_scipy()
        assert (a != a.T).nnz == 0, f"{name} double is not symmetric"
        # SPD check via Cholesky-like shift: smallest eigenvalue positive.
        if m.n <= 4000:
            w = np.linalg.eigvalsh(a.toarray())
            assert w.min() > 0, f"{name} double is not positive definite"

    def test_g3_has_long_range_edges(self):
        m = g3_circuit_like(grid=30, extra_edge_frac=0.05, seed=0)
        # A pure grid has |i-j| ∈ {1, 30}; long-range edges break that.
        rows = np.repeat(np.arange(m.n), m.rows_nnz())
        dist = np.abs(rows - m.col_idx)
        assert (dist > 30).any()

    def test_afshell_is_thin_slab_with_wide_stencil(self):
        m = af_shell_like(nx=12, ny=12, layers=4)
        assert m.n == 12 * 12 * 4
        # 27-point stencil: interior rows have 26 off-diagonal entries.
        assert m.rows_nnz().max() == 26

    def test_geo_anisotropy_raises_conditioning(self):
        iso = geo_like(nx=6, ny=6, nz=6, anisotropy=1.0)
        aniso = geo_like(nx=6, ny=6, nz=6, anisotropy=25.0)
        cond = lambda m: np.linalg.cond(m.to_scipy().toarray())
        assert cond(aniso) > cond(iso)

    def test_hook_contrast_raises_conditioning(self):
        lo = hook_like(nx=6, ny=6, nz=6, contrast=1.0)
        hi = hook_like(nx=6, ny=6, nz=6, contrast=1e4)
        cond = lambda m: np.linalg.cond(m.to_scipy().toarray())
        assert cond(hi) > 100 * cond(lo)

    def test_deterministic(self):
        a = g3_circuit_like(grid=20, seed=5)
        b = g3_circuit_like(grid=20, seed=5)
        np.testing.assert_array_equal(a.values, b.values)
