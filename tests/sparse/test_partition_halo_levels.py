"""Tests for partitioning, the Sec. IV halo-region strategy, and level sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    ModifiedCRS,
    build_halo_plan,
    build_naive_plan,
    level_schedule,
    partition_rows,
    poisson2d,
    poisson3d,
)
from repro.sparse.partition import grid_factors
from repro.sparse.suitesparse import g3_circuit_like


class TestGridFactors:
    def test_exact_products(self):
        for parts in (1, 2, 4, 6, 8, 12, 16, 64):
            for nd in (1, 2, 3):
                f = grid_factors(parts, nd)
                assert len(f) == nd and int(np.prod(f)) == parts

    def test_near_cubic(self):
        assert sorted(grid_factors(64, 3)) == [4, 4, 4]
        assert sorted(grid_factors(16, 2)) == [4, 4]


class TestPartition:
    def test_grid_partition_balanced_and_connected(self):
        m, dims = poisson2d(8)
        part = partition_rows(m, 4, grid_dims=dims)
        counts = part.counts()
        assert counts.sum() == 64
        assert counts.max() - counts.min() == 0  # 8x8 into 2x2 blocks
        # Tile 0's block is the lower-left 4x4 quadrant.
        rows = part.rows_of(0)
        assert set(rows) == {x + 8 * y for x in range(4) for y in range(4)}

    def test_graph_partition_balanced(self):
        m = g3_circuit_like(grid=20)
        part = partition_rows(m, 8)
        counts = part.counts()
        assert counts.sum() == m.n
        assert counts.max() - counts.min() <= 1

    def test_single_part(self):
        m, _ = poisson2d(4)
        part = partition_rows(m, 1)
        assert (part.owner == 0).all()

    def test_grid_dims_mismatch_rejected(self):
        m, _ = poisson2d(4)
        with pytest.raises(ValueError):
            partition_rows(m, 4, grid_dims=(5, 5))

    def test_zero_parts_rejected(self):
        m, _ = poisson2d(4)
        with pytest.raises(ValueError):
            partition_rows(m, 0)


class TestHaloPlanPoisson8x8x4:
    """The paper's Fig. 3 setting: an 8x8 mesh across four tiles."""

    @pytest.fixture
    def setting(self):
        m, dims = poisson2d(8)
        part = partition_rows(m, 4, grid_dims=dims)
        return m, part, build_halo_plan(m, part)

    def test_cell_classification(self, setting):
        m, part, plan = setting
        # Each 4x4 quadrant of a 5-point stencil mesh: 7 separator cells
        # (the two boundary edges of the quadrant), 9 interior.
        for t in range(4):
            sep = sum(r.size for r in plan.regions if r.owner == t)
            assert sep == 7
            assert plan.owned_count(t) == 16
            # Halo: 4 cells from each of the two edge neighbors (the corner
            # cell of each neighbor's shared region included) = 8.
            assert plan.halo_count(t) == 8

    def test_regions_match_fig3(self, setting):
        m, part, plan = setting
        # Per tile: one region per single neighbor (3 cells each edge, minus
        # the corner) — for a 5-point stencil the corner cell is required by
        # BOTH neighbors?  No: 5-point has no diagonal coupling, so the
        # corner cell of the quadrant is required by both edge neighbors.
        t0 = [r for r in plan.regions if r.owner == 0]
        keysets = sorted(tuple(r.receivers) for r in t0)
        assert keysets == [(1,), (1, 2), (2,)]
        sizes = {tuple(r.receivers): r.size for r in t0}
        assert sizes[(1,)] == 3 and sizes[(2,)] == 3 and sizes[(1, 2)] == 1

    def test_consistent_ordering_and_offsets(self, setting):
        m, part, plan = setting
        for r in plan.regions:
            # Region cells appear contiguously at sep_offset in the owner's
            # layout, in the same order as in every receiver's halo buffer.
            off = plan.sep_offset[r.rid]
            np.testing.assert_array_equal(
                plan.owned_order[r.owner][off : off + r.size], r.cells
            )
            for t in r.receivers:
                hoff = plan.halo_offset[(t, r.rid)]
                np.testing.assert_array_equal(
                    plan.halo_order[t][hoff : hoff + r.size], r.cells
                )

    def test_owned_layout_is_partition(self, setting):
        m, part, plan = setting
        for t in range(4):
            np.testing.assert_array_equal(
                np.sort(plan.owned_order[t]), part.rows_of(t)
            )

    def test_halo_cells_are_exactly_required_foreign_cells(self, setting):
        m, part, plan = setting
        for t in range(4):
            required = set()
            for i in part.rows_of(t):
                cols, _ = m.row(i)
                required.update(int(c) for c in cols if part.owner[c] != t)
            assert set(plan.halo_order[t].tolist()) == required

    def test_global_permutation_valid(self, setting):
        m, part, plan = setting
        perm = plan.global_permutation()
        assert np.sort(perm).tolist() == list(range(m.n))

    def test_local_index_map(self, setting):
        m, part, plan = setting
        lm = plan.local_index_map(0)
        assert len(lm) == plan.owned_count(0) + plan.halo_count(0)
        assert lm[int(plan.owned_order[0][0])] == 0
        assert lm[int(plan.halo_order[0][0])] == 16


class TestBlockwiseVsNaive:
    def test_instruction_count_reduction(self):
        m, dims = poisson3d(12)
        part = partition_rows(m, 8, grid_dims=dims)
        block = build_halo_plan(m, part)
        naive = build_naive_plan(m, part)
        # Same data volume, far fewer communication instructions (one per
        # 6x6-cell face region instead of one per cell).
        assert block.total_halo_cells() == naive.total_halo_cells()
        assert block.num_copy_instructions() < naive.num_copy_instructions() / 5

    def test_same_copies_semantics(self):
        # Both plans must transport identical values (checked via engine
        # elsewhere); structurally: identical (cell -> receivers) multiset.
        m, dims = poisson2d(6)
        part = partition_rows(m, 4, grid_dims=dims)
        block = build_halo_plan(m, part)
        naive = build_naive_plan(m, part)

        def flows(plan):
            out = set()
            for r in plan.regions:
                for c in r.cells:
                    for t in r.receivers:
                        out.add((int(c), t))
            return out

        assert flows(block) == flows(naive)


class TestHaloGeneralMatrix:
    def test_irregular_matrix_plan_consistency(self):
        m = g3_circuit_like(grid=16, seed=4)
        part = partition_rows(m, 6)
        plan = build_halo_plan(m, part)
        # Every separator region's receivers actually reference its cells.
        rows = np.repeat(np.arange(m.n), m.rows_nnz())
        ref_by = {}
        for i, j in zip(rows, m.col_idx):
            ref_by.setdefault(int(j), set()).add(int(part.owner[i]))
        for r in plan.regions:
            for c in r.cells:
                assert set(r.receivers) == ref_by[int(c)] - {r.owner}


class TestLevelSchedule:
    def test_diagonal_matrix_single_level(self):
        sched = level_schedule(np.zeros(6, dtype=int).cumsum(), np.array([]), 5)
        # No off-diagonal entries: every row is level 0.
        assert sched.num_levels == 1
        assert sched.levels[0].size == 5

    def test_bidiagonal_fully_sequential(self):
        # Row i depends on i-1: n levels of one row each.
        n = 6
        row_ptr = np.arange(n + 1)
        row_ptr = np.concatenate([[0], np.arange(1, n + 1)]) - 0  # 1 dep per row except row 0
        row_ptr = np.array([0, 0, 1, 2, 3, 4, 5])
        col_idx = np.array([0, 1, 2, 3, 4])
        sched = level_schedule(row_ptr, col_idx, n)
        assert sched.num_levels == n
        assert sched.max_parallelism == 1
        assert sched.validate(row_ptr, col_idx)

    def test_poisson_levels_are_antidiagonals(self):
        # 2-D Poisson in natural order: level(i) = x + y (anti-diagonals).
        m, (nx, ny) = poisson2d(4)
        sched = level_schedule(m.row_ptr, m.col_idx, m.n)
        assert sched.num_levels == nx + ny - 1
        for lvl, rows in enumerate(sched.levels):
            for r in rows:
                assert r % nx + r // nx == lvl
        assert sched.validate(m.row_ptr, m.col_idx)

    def test_worker_partition(self):
        m, _ = poisson2d(8)
        sched = level_schedule(m.row_ptr, m.col_idx, m.n)
        # The longest anti-diagonal has 8 rows -> 6 chunks for 6 workers.
        big = max(range(sched.num_levels), key=lambda k: sched.levels[k].size)
        chunks = sched.worker_partition(big, 6)
        assert len(chunks) == 6
        assert sum(c.size for c in chunks) == sched.levels[big].size

    def test_upper_triangular_entries_ignored(self):
        # Dependencies only through the lower triangle.
        row_ptr = np.array([0, 1, 2])
        col_idx = np.array([1, 0])  # row0 -> col1 (upper), row1 -> col0 (lower)
        sched = level_schedule(row_ptr, col_idx, 2)
        assert sched.num_levels == 2
        assert sched.levels[0].tolist() == [0]

    @given(st.integers(min_value=2, max_value=12), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_validate_property(self, n, seed):
        import scipy.sparse as sp

        rng = np.random.default_rng(seed)
        a = sp.random(n, n, density=0.4, random_state=rng, format="csr")
        a = a + sp.diags(np.ones(n))
        m = ModifiedCRS.from_scipy(a)
        sched = level_schedule(m.row_ptr, m.col_idx, n)
        assert sched.validate(m.row_ptr, m.col_idx)
        assert sum(lv.size for lv in sched.levels) == n
