"""Tests for the SELL-C-σ format (the paper's Sec. II-C future work)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CycleModel
from repro.sparse import poisson2d, poisson3d
from repro.sparse.sell import SellBlock, crs_spmv_cycles, sell_spmv_cycles
from repro.sparse.suitesparse import g3_circuit_like


class TestSellConstruction:
    def test_spmv_matches_crs(self):
        crs, _ = poisson2d(8)
        sell = SellBlock.from_crs(crs, chunk=4)
        x = np.random.default_rng(0).standard_normal(crs.n)
        np.testing.assert_allclose(sell.spmv(x), crs.spmv(x), rtol=1e-12)

    @given(st.integers(2, 8), st.integers(1, 6), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_spmv_matches_crs_property(self, grid, chunk, seed):
        crs, _ = poisson2d(grid)
        sell = SellBlock.from_crs(crs, chunk=chunk)
        x = np.random.default_rng(seed).standard_normal(crs.n)
        np.testing.assert_allclose(sell.spmv(x), crs.spmv(x), rtol=1e-10, atol=1e-12)

    def test_sigma_windows_limit_sorting(self):
        crs = g3_circuit_like(grid=12)
        full_sort = SellBlock.from_crs(crs, chunk=4, sigma=crs.n)
        no_sort = SellBlock.from_crs(crs, chunk=4, sigma=1)
        # σ=1 keeps the original order (sorting window of one row).
        np.testing.assert_array_equal(no_sort.perm, np.arange(crs.n))
        # Full-σ sorting reduces padding on irregular matrices.
        assert full_sort.padding_ratio <= no_sort.padding_ratio

    def test_padding_ratio_regular_vs_irregular(self):
        regular, _ = poisson3d(8)
        irregular = g3_circuit_like(grid=16)
        pr_reg = SellBlock.from_crs(regular, chunk=4, sigma=1).padding_ratio
        pr_irr = SellBlock.from_crs(irregular, chunk=4, sigma=1).padding_ratio
        assert pr_irr > pr_reg

    def test_nnz_preserved(self):
        crs, _ = poisson2d(6)
        sell = SellBlock.from_crs(crs, chunk=4)
        # Padding entries carry value 0; true nonzeros preserved.
        assert sell.nnz == crs.nnz_offdiag
        assert sell.padded_nnz >= sell.nnz


class TestSellCycles:
    def test_paper_prediction_small_gains(self):
        """Sec. II-C: 'we anticipate that the performance gains typically
        associated with ELLPACK and SELL formats would be small on IPUs'."""
        model = CycleModel()
        crs, _ = poisson3d(10)
        sell = SellBlock.from_crs(crs, chunk=4)
        c_crs = crs_spmv_cycles(model, crs)
        c_sell = sell_spmv_cycles(model, sell)
        # Within ±15% of each other — no ELLPACK win like on CPUs/GPUs.
        assert 0.85 < c_sell / c_crs < 1.15

    def test_irregular_padding_can_lose(self):
        model = CycleModel()
        crs = g3_circuit_like(grid=20)
        sell_unsorted = SellBlock.from_crs(crs, chunk=8, sigma=1)
        sell_sorted = SellBlock.from_crs(crs, chunk=8)
        c_unsorted = sell_spmv_cycles(model, sell_unsorted)
        c_sorted = sell_spmv_cycles(model, sell_sorted)
        # Length sorting (the σ in SELL-C-σ) recovers part of the padding loss.
        assert c_sorted <= c_unsorted
