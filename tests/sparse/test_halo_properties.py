"""Property-based tests of the Sec. IV halo-plan invariants.

The reordering strategy's correctness rests on structural invariants that
must hold for *any* matrix and partition — ideal hypothesis territory.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import ModifiedCRS, build_halo_plan, partition_rows


def random_system(n, density, seed):
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=density, random_state=rng, format="csr")
    a = a + a.T + sp.diags(np.full(n, float(n)))
    return ModifiedCRS.from_scipy(a)


matrix_params = st.tuples(
    st.integers(min_value=4, max_value=48),  # n
    st.floats(min_value=0.05, max_value=0.4, allow_subnormal=False),  # density
    st.integers(min_value=0, max_value=10**6),  # seed
    st.integers(min_value=1, max_value=8),  # parts
)


class TestHaloPlanInvariants:
    @given(matrix_params)
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, params):
        n, density, seed, parts = params
        parts = min(parts, n)
        m = random_system(n, density, seed)
        part = partition_rows(m, parts)
        plan = build_halo_plan(m, part)

        # 1. The owned layouts partition 0..n-1 exactly.
        perm = plan.global_permutation()
        assert np.sort(perm).tolist() == list(range(n))

        # 2. Each tile's owned layout is a permutation of its partition rows.
        for t in plan.tiles():
            assert np.array_equal(np.sort(plan.owned_order[t]), part.rows_of(t))

        # 3. Regions are disjoint and their union is the separator set.
        all_cells = [c for r in plan.regions for c in r.cells.tolist()]
        assert len(all_cells) == len(set(all_cells))

        # 4. Consistent ordering: every region appears contiguously and in
        #    identical order in the owner layout and every receiver halo.
        for r in plan.regions:
            off = plan.sep_offset[r.rid]
            np.testing.assert_array_equal(
                plan.owned_order[r.owner][off : off + r.size], r.cells
            )
            for t in r.receivers:
                hoff = plan.halo_offset[(t, r.rid)]
                np.testing.assert_array_equal(
                    plan.halo_order[t][hoff : hoff + r.size], r.cells
                )

        # 5. Halo coverage: every foreign column referenced by a tile's rows
        #    appears in that tile's halo, and nothing else does.
        owner = part.owner
        for t in plan.tiles():
            required = set()
            for i in part.rows_of(t):
                cols, _ = m.row(int(i))
                required.update(int(c) for c in cols if owner[c] != t)
            assert set(plan.halo_order[t].tolist()) == required

        # 6. Receivers are exactly the tiles whose rows reference the cells.
        rows_of_entries = np.repeat(np.arange(n), m.rows_nnz())
        ref_by = {}
        for i, j in zip(rows_of_entries, m.col_idx):
            ref_by.setdefault(int(j), set()).add(int(owner[i]))
        for r in plan.regions:
            for c in r.cells:
                assert set(r.receivers) == ref_by[int(c)] - {r.owner}

    @given(matrix_params)
    @settings(max_examples=20, deadline=None)
    def test_exchange_copies_consistent(self, params):
        n, density, seed, parts = params
        parts = min(parts, n)
        m = random_system(n, density, seed)
        part = partition_rows(m, parts)
        plan = build_halo_plan(m, part)

        # The copy schedule's (offset, size) windows must tile each halo
        # buffer without gaps or overlaps.
        class FakeVar:  # structural stand-in: copies() only records metadata
            def __init__(self):
                pass

        copies = plan.copies(FakeVar(), FakeVar())
        windows = {}
        for rc in copies:
            for _, t, off in rc.dests:
                windows.setdefault(t, []).append((off, rc.size))
        for t, ws in windows.items():
            ws.sort()
            pos = 0
            for off, size in ws:
                assert off == pos, f"gap/overlap in tile {t}'s halo layout"
                pos += size
            assert pos == plan.halo_count(t)
