"""Tests for DistributedMatrix / DistVector: layouts, exchanges, SpMV."""

import numpy as np
import pytest

from repro.machine import IPUDevice
from repro.sparse import poisson2d, poisson3d
from repro.sparse.distribute import DistributedMatrix, segment_sums
from repro.sparse.suitesparse import g3_circuit_like
from repro.tensordsl import TensorContext, Type


def make(crs, dims=None, tiles=4, blockwise=True):
    ctx = TensorContext(IPUDevice(tiles_per_ipu=tiles))
    A = DistributedMatrix(ctx, crs, grid_dims=dims, blockwise=blockwise)
    return ctx, A


class TestSegmentSums:
    def test_basic(self):
        contrib = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        row_ptr = np.array([0, 2, 2, 4])
        out = segment_sums(contrib, row_ptr, 3)
        np.testing.assert_array_equal(out, [3.0, 0.0, 7.0])

    def test_empty_matrix(self):
        out = segment_sums(np.array([], dtype=np.float32), np.array([0, 0, 0]), 2)
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_trailing_empty_rows(self):
        contrib = np.array([5.0], dtype=np.float32)
        out = segment_sums(contrib, np.array([0, 1, 1, 1]), 3)
        np.testing.assert_array_equal(out, [5.0, 0.0, 0.0])


class TestDistVector:
    def test_write_read_roundtrip(self):
        crs, dims = poisson2d(8)
        ctx, A = make(crs, dims)
        v = A.vector()
        data = np.arange(64, dtype=np.float64)
        v.write_global(data)
        np.testing.assert_array_equal(v.read_global(), data)

    def test_reordered_layout_on_tiles(self):
        crs, dims = poisson2d(8)
        ctx, A = make(crs, dims)
        v = A.vector(data=np.arange(64, dtype=np.float64))
        # Tile 0's shard holds its owned cells in the halo-reordered order.
        shard = v.owned.var.shard(0).data
        np.testing.assert_array_equal(shard, A.plan.owned_order[0].astype(np.float32))

    def test_dw_vector(self):
        crs, dims = poisson2d(4)
        ctx, A = make(crs, dims)
        v = A.vector(dtype=Type.DOUBLEWORD)
        data = np.arange(16) + 1e-9
        v.write_global(data)
        np.testing.assert_allclose(v.read_global(), data, rtol=2**-45)


class TestHaloExchange:
    def test_exchange_fills_halo_buffers(self):
        crs, dims = poisson2d(8)
        ctx, A = make(crs, dims)
        v = A.vector(data=np.arange(64, dtype=np.float64))
        A.exchange(v)
        ctx.run()
        for t in A.tiles:
            if A.plan.halo_count(t):
                np.testing.assert_array_equal(
                    v.halo.var.shard(t).data,
                    A.plan.halo_order[t].astype(np.float32),
                )

    def test_exchange_is_blockwise(self):
        crs, dims = poisson3d(8)
        ctx, A = make(crs, dims, tiles=8)
        v = A.vector(data=np.zeros(512))
        A.exchange(v)
        from repro.graph import collect_stats

        stats = collect_stats(ctx.root)
        # One copy per region, not per cell.
        assert stats.region_copies == len(A.plan.regions)
        assert stats.region_copies < A.plan.total_halo_cells() / 4

    def test_naive_plan_many_copies(self):
        crs, dims = poisson3d(8)
        ctx, A = make(crs, dims, tiles=8, blockwise=False)
        v = A.vector(data=np.zeros(512))
        A.exchange(v)
        from repro.graph import collect_stats

        stats = collect_stats(ctx.root)
        assert stats.region_copies == sum(r.size for r in A.plan.regions)

    def test_blockwise_exchange_cheaper(self):
        def cycles(blockwise):
            crs, dims = poisson3d(8)
            ctx, A = make(crs, dims, tiles=8, blockwise=blockwise)
            v = A.vector(data=np.zeros(512))
            A.exchange(v)
            ctx.run()
            return ctx.device.profiler.category("exchange")

        assert cycles(True) < cycles(False)


class TestSpMV:
    @pytest.mark.parametrize("tiles", [1, 2, 4, 8])
    def test_matches_reference_poisson(self, tiles):
        crs, dims = poisson3d(6)
        ctx, A = make(crs, dims, tiles=tiles)
        rng = np.random.default_rng(0)
        xdata = rng.standard_normal(crs.n)
        x = A.vector(data=xdata)
        y = A.vector()
        A.spmv(x, y)
        ctx.run()
        np.testing.assert_allclose(
            y.read_global(), crs.spmv(xdata), rtol=1e-5, atol=1e-5
        )

    def test_matches_reference_irregular(self):
        crs = g3_circuit_like(grid=12, seed=7)
        ctx, A = make(crs, None, tiles=6)
        rng = np.random.default_rng(1)
        xdata = rng.standard_normal(crs.n)
        x, y = A.vector(data=xdata), A.vector()
        A.spmv(x, y)
        ctx.run()
        np.testing.assert_allclose(y.read_global(), crs.spmv(xdata), rtol=1e-4, atol=1e-4)

    def test_spmv_inside_loop_reuses_exchange(self):
        # y = A(A(x)) iterated: halo values must refresh between SpMVs.
        crs, dims = poisson2d(8)
        ctx, A = make(crs, dims)
        xdata = np.random.default_rng(3).standard_normal(64)
        x, y = A.vector(data=xdata), A.vector()
        A.spmv(x, y)
        # copy back and multiply again
        x.owned.assign(y.owned)
        A.spmv(x, y)
        ctx.run()
        expected = crs.spmv(crs.spmv(xdata).astype(np.float32).astype(np.float64))
        np.testing.assert_allclose(y.read_global(), expected, rtol=1e-4, atol=1e-4)

    def test_extended_precision_spmv_dw(self):
        crs, dims = poisson2d(8)
        ctx, A = make(crs, dims)
        rng = np.random.default_rng(5)
        xdata = rng.standard_normal(64) * (1 + 1e-10)
        x = A.vector(dtype=Type.DOUBLEWORD, data=xdata)
        y = A.vector(dtype=Type.DOUBLEWORD)
        A.spmv(x, y)
        ctx.run()
        # dw result: ~1e-14 relative accuracy, far beyond f32's 1e-7.
        np.testing.assert_allclose(y.read_global(), crs.spmv(xdata), rtol=1e-12, atol=1e-12)
        # Extended SpMVs bucket under "spmv" (Table IV taxonomy) but cost
        # extended cycles.
        assert ctx.device.profiler.category("spmv") > 0

    def test_extended_precision_spmv_f64(self):
        crs, dims = poisson2d(8)
        ctx, A = make(crs, dims)
        xdata = np.random.default_rng(6).standard_normal(64)
        x = A.vector(dtype=Type.FLOAT64, data=xdata)
        y = A.vector(dtype=Type.FLOAT64)
        A.spmv(x, y)
        ctx.run()
        np.testing.assert_allclose(y.read_global(), crs.spmv(xdata), rtol=1e-14)

    def test_spmv_charges_spmv_category(self):
        crs, dims = poisson2d(8)
        ctx, A = make(crs, dims)
        x, y = A.vector(data=np.ones(64)), A.vector()
        A.spmv(x, y)
        ctx.run()
        prof = ctx.device.profiler
        assert prof.category("spmv") > 0
        assert prof.category("exchange") > 0

    def test_extended_costs_more_cycles(self):
        def total(dtype):
            crs, dims = poisson2d(12)
            ctx, A = make(crs, dims)
            x = A.vector(dtype=dtype, data=np.ones(144))
            y = A.vector(dtype=dtype)
            A.spmv(x, y)
            ctx.run()
            return ctx.device.profiler.total_cycles

        f32 = total(Type.FLOAT32)
        dw = total(Type.DOUBLEWORD)
        f64 = total(Type.FLOAT64)
        assert f32 < dw < f64

    def test_algebra_on_owned_tensors(self):
        crs, dims = poisson2d(6)
        ctx, A = make(crs, dims)
        x = A.vector(data=np.ones(36))
        y = A.vector(data=np.full(36, 2.0))
        z = (x.t + y.t * 3.0).materialize()
        dot = x.t.dot(y.t)
        ctx.run()
        np.testing.assert_allclose(z.value(), np.full(36, 7.0))
        assert dot.value() == pytest.approx(72.0)


class TestWorkerChunks:
    def test_chunks_cover_all_rows(self):
        crs, dims = poisson3d(6)
        ctx, A = make(crs, dims, tiles=4)
        for t in A.tiles:
            chunks = A._worker_row_chunks(t, 6)
            covered = []
            for s, e in chunks:
                covered.extend(range(s, e))
            assert covered == list(range(A.local[t]["n"]))

    def test_single_row_tile(self):
        crs, dims = poisson2d(2)
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        A = DistributedMatrix(ctx, crs)
        for t in A.tiles:
            chunks = A._worker_row_chunks(t, 6)
            assert sum(e - s for s, e in chunks) == A.local[t]["n"]
