"""The framework error hierarchy (repro.errors) and its CLI exit codes."""

import numpy as np
import pytest

from repro.cli import main
from repro.errors import (
    BackendCapabilityError,
    DivergenceError,
    FaultSpecError,
    JobTimeoutError,
    QuotaExceededError,
    ReproError,
    ServiceOverloadError,
    SolverBreakdownError,
    SRAMOverflowError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (SRAMOverflowError, SolverBreakdownError, DivergenceError,
                    FaultSpecError, ServiceOverloadError, JobTimeoutError,
                    QuotaExceededError):
            assert issubclass(exc, ReproError)

    def test_dual_inheritance_keeps_old_except_clauses_working(self):
        # SRAMOverflowError was a MemoryError before the hierarchy existed;
        # breakdown/divergence are arithmetic failures; bad specs are
        # ValueErrors.  Old call sites catch the stdlib bases.
        assert issubclass(SRAMOverflowError, MemoryError)
        assert issubclass(SolverBreakdownError, ArithmeticError)
        assert issubclass(DivergenceError, ArithmeticError)
        assert issubclass(FaultSpecError, ValueError)
        assert issubclass(JobTimeoutError, TimeoutError)

    def test_exit_codes_distinct_and_nonzero(self):
        codes = [exc.exit_code for exc in (
            ReproError, SRAMOverflowError, SolverBreakdownError,
            DivergenceError, FaultSpecError, BackendCapabilityError,
            ServiceOverloadError, JobTimeoutError, QuotaExceededError,
        )]
        assert len(set(codes)) == len(codes)
        assert all(c not in (0, 1, 2) for c in codes)


class TestServingErrors:
    def test_overload_message_carries_reason_and_depth(self):
        err = ServiceOverloadError(reason="queue_full", depth=8, capacity=8)
        assert err.reason == "queue_full"
        assert "queue 8/8" in str(err)

    def test_timeout_carries_partial_progress(self):
        err = JobTimeoutError(solver="cg", iteration=42, wall_seconds=1.5,
                              budget_seconds=1.0)
        assert err.iteration == 42
        assert "iteration 42" in str(err)
        assert err.stats is None  # no partial record attached here

    def test_quota_carries_backoff_hint(self):
        err = QuotaExceededError(tenant="acme", retry_after=0.25)
        assert err.tenant == "acme"
        assert "retry after 0.250s" in str(err)


class TestSRAMOverflowMessage:
    def test_structured_message(self):
        err = SRAMOverflowError(
            "allocating shard 'x@3' exceeds SRAM capacity",
            tile_id=3, requested=700_000, free=10_000, capacity=624_000,
        )
        msg = str(err)
        assert "tile 3" in msg
        assert "700000 B" in msg and "10000 B free" in msg
        assert "sram_report" in msg  # points at the diagnosis tool
        assert err.tile_id == 3 and err.requested == 700_000

    def test_real_overflow_carries_tile_detail(self):
        from repro.machine import IPUDevice

        device = IPUDevice(num_ipus=1, tiles_per_ipu=4)
        tile = device.tile(2)
        huge = np.zeros(tile.spec.sram_per_tile, dtype=np.float32)
        with pytest.raises(SRAMOverflowError) as exc_info:
            tile.alloc("huge", huge)
        err = exc_info.value
        assert err.tile_id == 2
        assert err.requested == huge.nbytes
        assert "tile 2" in str(err)


class TestCliExitCodes:
    def test_bad_fault_spec_maps_to_fault_spec_exit_code(self, capsys):
        rc = main(["faults", "seed=7;warp_core_breach:p=1"])
        assert rc == FaultSpecError.exit_code
        assert "error:" in capsys.readouterr().err

    def test_injected_oom_without_resilience_maps_to_sram_exit_code(self, capsys):
        rc = main([
            "solve", "--matrix", "poisson2d:8", "--config", "cg", "--tiles", "4",
            "--inject-faults", "seed=1;tile_oom:tile=0,at=5",
        ])
        assert rc == SRAMOverflowError.exit_code
        assert "tile 0" in capsys.readouterr().err
