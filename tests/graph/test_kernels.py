"""Tests for the kernel-lowering stage and the fused runtime backend.

Covers the lowering contract end to end: random expression graphs are
bit-identical between sim and fused (hypothesis), every solver family is
bit-identical, the CG inner loop lowers to a bounded number of kernel
launches (statically via :class:`KernelSchedule` and dynamically via
:class:`GlobalCounters`), the session cache keys fast and fused apart and
replays fused hits bit-identically, and both untimed backends reject the
observability hooks with the same typed error.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BackendCapabilityError
from repro.graph import Engine, FastBackend, FusedBackend, GlobalCounters
from repro.graph.passes import FusedKernel
from repro.machine import IPUDevice
from repro.solvers import SolverSession, compile_solve, solve
from repro.solvers.session import fingerprint_solve
from repro.sparse import poisson2d, poisson3d
from repro.sparse.distribute import DistributedMatrix
from repro.tensordsl import TensorContext, Type
from repro.tensordsl.tensor import Tensor

N = 24

CG = {"solver": "cg", "tol": 1e-8, "max_iterations": 60}

# -- hypothesis: random expression graphs ----------------------------------------------

leaf = st.sampled_from(
    [
        ("vector", Type.FLOAT32),
        ("vector", Type.DOUBLEWORD),
        ("vector", Type.FLOAT64),
        ("scalar", Type.FLOAT32),
        ("const", None),
    ]
)

binop = st.sampled_from(["+", "-", "*", "/"])
unop = st.sampled_from(["neg", "abs", "sqrt", None])


@st.composite
def expr_tree(draw, depth=0):
    if depth >= 3 or draw(st.booleans()) and depth > 0:
        return draw(leaf)
    return (
        "node",
        draw(binop),
        draw(expr_tree(depth=depth + 1)),
        draw(expr_tree(depth=depth + 1)),
        draw(unop),
    )


def build(tree, ctx, rng):
    """Materialize one random tree into a TensorDSL expression."""
    if tree[0] == "vector":
        data = rng.uniform(0.5, 2.0, N)  # positive: safe for / and sqrt
        return ctx.tensor((N,), dtype=tree[1], data=data)
    if tree[0] == "scalar":
        return ctx.scalar(float(rng.uniform(0.5, 2.0)))
    if tree[0] == "const":
        return float(rng.uniform(0.5, 2.0))
    _, op, lt, rt, u = tree
    le = build(lt, ctx, rng)
    re_ = build(rt, ctx, rng)
    if isinstance(le, float) and isinstance(re_, float):
        le = ctx.scalar(le)
    apply = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
             "*": lambda a, b: a * b, "/": lambda a, b: a / b}[op]
    e = apply(le, re_)
    if u == "neg":
        e = -e
    elif u == "abs":
        e = abs(e)
    elif u == "sqrt":
        e = (e * e).sqrt() if not isinstance(e, float) else e
    return e


@given(tree=expr_tree(), seed=st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_random_expressions_fused_matches_sim(tree, seed):
    """Property: any random expression graph — mixed dtypes, broadcasts,
    dw kernels, plus a trailing reduction — evaluates bit-identically
    under the fused backend (same leaves, same schedule, two backends)."""
    if tree[0] != "node":
        return
    results = {}
    for backend in ("sim", "fused"):
        rng = np.random.default_rng(seed)
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        e = build(tree, ctx, rng)
        if not isinstance(e, Tensor):
            return
        out = e.materialize()
        total = out.reduce("sum").materialize()
        hi = out.norm_inf().materialize()
        ctx.run(backend=backend)
        results[backend] = (
            np.asarray(out.value()).copy(),
            np.asarray(total.value()).copy(),
            np.asarray(hi.value()).copy(),
        )
    for got, want in zip(results["fused"], results["sim"]):
        np.testing.assert_array_equal(got, want)


# -- solver bit-identity ---------------------------------------------------------------

@pytest.mark.parametrize(
    "config",
    [
        CG,
        {"solver": "bicgstab", "tol": 1e-8, "max_iterations": 60},
        {"solver": "mpir", "tol": 1e-10, "max_iterations": 8,
         "inner": {"solver": "cg", "tol": 1e-4, "max_iterations": 30}},
        {"solver": "cg", "tol": 1e-8, "max_iterations": 60,
         "preconditioner": {"solver": "ilu0"}},
    ],
    ids=["cg", "bicgstab", "mpir", "cg+ilu0"],
)
def test_solver_fused_bit_identical_to_sim(config):
    crs, dims = poisson3d(8)
    b = np.ones(crs.n)
    sim = solve(crs, b, config, grid_dims=dims, num_ipus=2, tiles_per_ipu=4,
                backend="sim")
    fused = solve(crs, b, config, grid_dims=dims, num_ipus=2, tiles_per_ipu=4,
                  backend="fused")
    np.testing.assert_array_equal(sim.x, fused.x)
    assert sim.relative_residual == fused.relative_residual
    assert sim.stats.total_iterations == fused.stats.total_iterations
    assert fused.kernel_counters is not None
    assert fused.kernel_counters["kernels"] > 0
    assert sim.kernel_counters is None


def test_spmv_with_halo_fused_matches_sim():
    """SpMV across IPU boundaries: the fused kernel's global column remap
    must reproduce the per-tile gather/compute path exactly."""
    crs, dims = poisson2d(12)
    results = {}
    for backend in ("sim", "fused"):
        device = IPUDevice(num_ipus=2, tiles_per_ipu=4)
        ctx = TensorContext(device)
        A = DistributedMatrix(ctx, crs, grid_dims=dims)
        rng = np.random.default_rng(3)
        x = A.vector(data=rng.standard_normal(crs.n))
        y = A.vector()
        A.spmv(x, y)
        ctx.run(backend=backend)
        results[backend] = y.read_global()
    np.testing.assert_array_equal(results["fused"], results["sim"])


def test_uneven_shards_reduce_fused_matches_sim():
    """Reductions over unequal per-tile segments take the per-slice path;
    it must agree with the tile-by-tile sim reduction bit for bit."""
    n = 13  # 13 rows over 4 tiles: unequal shard sizes
    results = {}
    for backend in ("sim", "fused"):
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        data = np.linspace(-2.0, 2.0, n)
        t = ctx.tensor((n,), data=data)
        s = t.dot(t).materialize()
        m = t.max().materialize()
        lo = t.min().materialize()
        ctx.run(backend=backend)
        results[backend] = (
            np.asarray(s.value()).copy(),
            np.asarray(m.value()).copy(),
            np.asarray(lo.value()).copy(),
        )
    for got, want in zip(results["fused"], results["sim"]):
        np.testing.assert_array_equal(got, want)


# -- kernel counts: static schedule + dynamic counters ---------------------------------

def test_cg_loop_lowers_to_bounded_kernel_count():
    """Static acceptance metric: the whole CG inner loop must lower to at
    most a handful of fused kernels per iteration — not one dispatch per
    compute set."""
    crs, dims = poisson3d(8)
    compiled = compile_solve(crs, np.ones(crs.n), CG, grid_dims=dims,
                             num_ipus=2, tiles_per_ipu=4)
    schedule = compiled.kernels
    per_iter = schedule.loop_kernel_count(compiled.root, "cg.iterate")
    assert 1 <= per_iter <= 5
    stats = schedule.stats()
    assert stats["kernels"] == schedule.n_kernels > 0
    assert stats["steps_fused"] > stats["kernels"]
    assert all(isinstance(k, FusedKernel) for k in schedule.kernels)


def test_cg_runtime_kernel_counters_bounded():
    """Dynamic twin of the static bound: GlobalCounters must report at most
    5 launches per executed CG iteration (plus setup), and every launch
    exactly once."""
    crs, dims = poisson3d(8)
    with GlobalCounters.track() as delta:
        res = solve(crs, np.ones(crs.n), CG, grid_dims=dims, num_ipus=2,
                    tiles_per_ipu=4, backend="fused")
    assert res.kernel_counters == delta
    assert delta["kernels"] <= 5 * res.iterations + 10
    assert delta["dispatches"] >= delta["kernels"]
    assert delta["fused_compute_sets"] + delta["fused_exchanges"] > delta["kernels"]


def test_engine_statistics_parity_between_sim_and_fused():
    """The engine's superstep/exchange statistics must not change when
    blocks execute as fused kernels — the kernels' absorbed-step counts
    keep them in parity."""
    crs, dims = poisson3d(6)
    stats = {}
    for backend in ("sim", "fused"):
        engines = solve(crs, np.ones(crs.n), CG, grid_dims=dims,
                        tiles_per_ipu=4, backend=backend).engine
        stats[backend] = (engines.supersteps, engines.exchanges,
                         engines.host_callbacks, engines.loop_iterations)
    assert stats["fused"] == stats["sim"]


# -- typed capability guards -----------------------------------------------------------

@pytest.mark.parametrize("backend_cls", [FastBackend, FusedBackend],
                         ids=["fast", "fused"])
def test_untimed_backends_reject_observability_hooks(backend_cls):
    backend = backend_cls()
    with pytest.raises(BackendCapabilityError) as tr:
        backend.set_tracer(object())
    with pytest.raises(BackendCapabilityError) as inj:
        backend.set_fault_injector(object())
    for err in (tr.value, inj.value):
        assert isinstance(err, ValueError)  # legacy except-clauses keep working
        assert err.exit_code == 15
        assert err.backend == backend.name
    assert tr.value.capability == "tracer"
    assert inj.value.capability == "fault_injector"
    # The messages must name the rejecting backend and point at the
    # alternatives: sim for cycle-domain work, --wall-trace for timing.
    assert repr(backend.name) in str(tr.value)
    assert "sim" in str(tr.value) and "--wall-trace" in str(tr.value)
    assert repr(backend.name) in str(inj.value)
    assert "sim" in str(inj.value)
    # Detaching (None) stays a no-op for both hooks.
    backend.set_tracer(None)
    backend.set_fault_injector(None)
    # Wall tracing is the untimed backends' timing story: never rejected.
    assert hasattr(backend, "set_wall_tracer")


@pytest.mark.parametrize("backend", ["fast", "fused"])
def test_solve_rejects_trace_and_faults_on_untimed_backends(backend):
    crs, dims = poisson3d(6)
    with pytest.raises(BackendCapabilityError):
        solve(crs, np.ones(crs.n), CG, grid_dims=dims, tiles_per_ipu=4,
              backend=backend, trace=True)
    with pytest.raises(BackendCapabilityError):
        solve(crs, np.ones(crs.n), CG, grid_dims=dims, tiles_per_ipu=4,
              backend=backend, inject_faults="seed=1;bitflip:p=0.5")


# -- session cache ---------------------------------------------------------------------

def test_fingerprint_distinguishes_fast_from_fused():
    crs, _ = poisson3d(6)
    keys = {
        backend: fingerprint_solve(crs, CG, backend=backend)
        for backend in ("sim", "fast", "fused")
    }
    assert len(set(keys.values())) == 3


def test_fused_session_cache_hit_replays_bit_identically():
    crs, dims = poisson3d(6)
    rng = np.random.default_rng(11)
    b = rng.standard_normal(crs.n)
    session = SolverSession(crs, CG, grid_dims=dims, tiles_per_ipu=4,
                            backend="fused")
    first = session.solve(b)
    hit = session.solve(b)
    assert session.stats()["hits"] == 1 and session.stats()["misses"] == 1
    np.testing.assert_array_equal(hit.x, first.x)
    assert hit.kernel_counters == first.kernel_counters
    # The cached fused replay also matches a cold sim solve bit for bit.
    sim = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, backend="sim")
    np.testing.assert_array_equal(hit.x, sim.x)
    assert hit.relative_residual == sim.relative_residual


# -- schedule plumbing -----------------------------------------------------------------

def test_compiled_program_carries_kernel_schedule():
    crs, dims = poisson3d(6)
    compiled = compile_solve(crs, np.ones(crs.n), CG, grid_dims=dims,
                             tiles_per_ipu=4)
    assert compiled.kernels is not None
    assert compiled.kernels.n_kernels > 0
    # Only kernel-dispatch backends consume the schedule.
    engine = Engine(compiled, backend="fused")
    assert engine._kernel_schedule is compiled.kernels
    device_bound = Engine(compiled, backend="fast")
    assert device_bound._kernel_schedule is None
