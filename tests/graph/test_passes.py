"""Tests for the pass-based graph compiler (repro.graph.passes).

Covers: golden describe() snapshots around each pass, per-pass unit
behavior, the property that any pass preserves engine numerics bit-for-bit
and never increases the compile proxy, and the exchange-coalescing
regression on a communication-heavy program.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Codelet,
    CompiledProgram,
    ComputeSet,
    Engine,
    Exchange,
    Execute,
    Graph,
    HostCallback,
    If,
    RegionCopy,
    Repeat,
    Sequence,
    collect_stats,
    compile_program,
    default_passes,
    describe,
)
from repro.graph.passes import (
    CoalesceExchanges,
    FlattenSequences,
    FuseComputeSets,
    HoistLoopInvariants,
)
from repro.machine import IPUDevice

ALL_PASSES = [FlattenSequences, HoistLoopInvariants, CoalesceExchanges, FuseComputeSets]


def make_graph(tiles=4):
    return Graph(IPUDevice(tiles_per_ipu=tiles))


def inc_cs(var, amount=1.0, tiles=None, name="inc", category="elementwise"):
    cl = Codelet(
        name,
        run=lambda ctx: ctx["x"].__iadd__(np.float32(amount)),
        cycles=lambda ctx: 6 * len(ctx["x"]),
        category=category,
    )
    cs = ComputeSet(f"{name}_cs", category=category)
    for t in tiles if tiles is not None else var.tile_ids:
        cs.add_vertex(cl, t, {"x": var.shard(t).data})
    return cs


def copy_step(src, dst, src_tile=0, dst_tile=1, size=2, name="exchange"):
    return Exchange([RegionCopy(src, src_tile, 0, ((dst, dst_tile, 0),), size)], name=name)


def run_raw(g, root):
    """Freeze a step tree as-is (no passes) and execute it; returns the engine."""
    eng = Engine(compile_program(g, root, optimize=False))
    eng.run()
    return eng


# -- golden describe() snapshots -------------------------------------------------------


class TestGoldenSnapshots:
    def test_flatten_snapshot(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        root = Sequence([
            Sequence([Execute(inc_cs(v))]),
            Sequence([]),
            Exchange([]),
            Execute(ComputeSet("empty")),
            Sequence([Sequence([HostCallback(lambda e: None)])]),
        ])
        assert describe(root) == "\n".join([
            "Sequence[5]",
            "  Sequence[1]",
            "    Execute(inc_cs, 4 vertices on 4 tiles, category=elementwise)",
            "  Sequence[0]",
            "  Exchange(0 region copies, 0 B)",
            "  Execute(empty, 0 vertices on 0 tiles, category=auto)",
            "  Sequence[1]",
            "    Sequence[1]",
            "      HostCallback(host_callback)",
        ])
        assert describe(FlattenSequences().run(root)) == "\n".join([
            "Sequence[2]",
            "  Execute(inc_cs, 4 vertices on 4 tiles, category=elementwise)",
            "  HostCallback(host_callback)",
        ])

    def test_hoist_snapshot(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        root = Sequence([
            Repeat(1, Execute(inc_cs(v))),
            Repeat(2, Sequence([Repeat(3, Execute(inc_cs(v, 2.0)))])),
            Repeat(0, Execute(inc_cs(v))),
        ])
        assert describe(root) == "\n".join([
            "Sequence[3]",
            "  Repeat(x1)",
            "    Execute(inc_cs, 4 vertices on 4 tiles, category=elementwise)",
            "  Repeat(x2)",
            "    Sequence[1]",
            "      Repeat(x3)",
            "        Execute(inc_cs, 4 vertices on 4 tiles, category=elementwise)",
            "  Repeat(x0)",
            "    Execute(inc_cs, 4 vertices on 4 tiles, category=elementwise)",
        ])
        out = HoistLoopInvariants().run(root)
        assert describe(FlattenSequences().run(out)) == "\n".join([
            "Sequence[2]",
            "  Execute(inc_cs, 4 vertices on 4 tiles, category=elementwise)",
            "  Repeat(x6)",
            "    Execute(inc_cs, 4 vertices on 4 tiles, category=elementwise)",
        ])

    def test_coalesce_snapshot(self):
        g = make_graph()
        a = g.add_variable("a", (8,))
        b = g.add_variable("b", (8,))
        root = Sequence([
            copy_step(a, b, 0, 1),
            copy_step(a, b, 2, 3),
            Execute(inc_cs(a)),
            copy_step(a, b, 1, 2),
        ])
        assert describe(CoalesceExchanges().run(root)) == "\n".join([
            "Sequence[3]",
            "  Exchange(2 region copies, 16 B)",
            "  Execute(inc_cs, 4 vertices on 4 tiles, category=elementwise)",
            "  Exchange(1 region copies, 8 B)",
        ])

    def test_fuse_snapshot(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        root = Sequence([
            Execute(inc_cs(v, tiles=[0, 1], name="lo")),
            Execute(inc_cs(v, tiles=[2, 3], name="hi")),
        ])
        assert describe(FuseComputeSets().run(root)) == "\n".join([
            "Sequence[1]",
            "  Execute(lo_cs+hi_cs, 4 vertices on 4 tiles, category=elementwise)",
        ])


# -- per-pass unit behavior ------------------------------------------------------------


class TestFlatten:
    def test_labeled_sequence_is_a_scope_boundary(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        root = Sequence([Sequence([Execute(inc_cs(v))], label="phase")])
        out = FlattenSequences().run(root)
        assert isinstance(out.steps[0], Sequence)
        assert out.steps[0].label == "phase"

    def test_empty_if_and_repeat_dropped(self):
        g = make_graph()
        cond = g.add_single_tile("c", ())
        root = Sequence([
            If(cond, Sequence([]), Sequence([])),
            Repeat(5, Sequence([])),
        ])
        assert FlattenSequences().run(root).steps == []

    def test_dead_else_branch_pruned(self):
        g = make_graph()
        cond = g.add_single_tile("c", ())
        v = g.add_variable("x", (8,))
        root = Sequence([If(cond, Execute(inc_cs(v)), Sequence([]))])
        out = FlattenSequences().run(root)
        assert isinstance(out.steps[0], If)
        assert out.steps[0].else_body is None


class TestHoist:
    def test_shared_body_normalized_once(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        body = Sequence([Sequence([Repeat(1, Execute(inc_cs(v)))])])
        root = Sequence([Repeat(2, body), Repeat(3, body)])
        out = HoistLoopInvariants().run(root)
        # Both loops share the one normalized body object (compiled once).
        assert out.steps[0].body is out.steps[1].body

    def test_labeled_repeat_not_unwrapped(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        root = Sequence([Repeat(1, Execute(inc_cs(v)), label="sweeps")])
        out = HoistLoopInvariants().run(root)
        assert isinstance(out.steps[0], Repeat)
        assert out.steps[0].label == "sweeps"


class TestCoalesce:
    def test_name_change_breaks_group(self):
        g = make_graph()
        a = g.add_variable("a", (8,))
        b = g.add_variable("b", (8,))
        root = Sequence([
            copy_step(a, b, 0, 1, name="exchange"),
            copy_step(a, b, 2, 3, name="halo"),
        ])
        out = CoalesceExchanges().run(root)
        assert len(out.steps) == 2

    def test_raw_hazard_breaks_group(self):
        g = make_graph()
        a = g.add_variable("a", (8,))
        b = g.add_variable("b", (8,))
        # Second copy reads b@tile1, which the first copy wrote.
        root = Sequence([
            copy_step(a, b, 0, 1),
            copy_step(b, a, 1, 2),
        ])
        out = CoalesceExchanges().run(root)
        assert len(out.steps) == 2
        # Independent regions still merge.
        root2 = Sequence([copy_step(a, b, 0, 1), copy_step(a, b, 2, 3)])
        assert len(CoalesceExchanges().run(root2).steps) == 1

    def test_merged_phase_costs_fewer_cycles(self):
        def run(coalesce):
            g = make_graph()
            a = g.add_variable("a", (8,))
            b = g.add_variable("b", (8,))
            a.scatter(np.arange(8))
            root = Sequence([copy_step(a, b, 0, 1), copy_step(a, b, 2, 3)])
            if coalesce:
                root = CoalesceExchanges().run(root)
            eng = run_raw(g, root)
            return g.device.profiler.total_cycles, eng.exchanges, eng.read(b)

        c_raw, x_raw, b_raw = run(False)
        c_opt, x_opt, b_opt = run(True)
        assert x_opt == 1 < x_raw == 2
        assert c_opt < c_raw  # one sync instead of two
        np.testing.assert_array_equal(b_raw, b_opt)


class TestFuse:
    def test_overlapping_tiles_not_fused(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        root = Sequence([
            Execute(inc_cs(v, tiles=[0, 1])),
            Execute(inc_cs(v, tiles=[1, 2])),
        ])
        assert len(FuseComputeSets().run(root).steps) == 2

    def test_category_mismatch_not_fused(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        root = Sequence([
            Execute(inc_cs(v, tiles=[0], category="spmv")),
            Execute(inc_cs(v, tiles=[1], category="reduce")),
        ])
        assert len(FuseComputeSets().run(root).steps) == 2

    def test_shared_compute_set_not_fused(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        shared = inc_cs(v, tiles=[0])
        other = inc_cs(v, tiles=[1])
        root = Sequence([Execute(shared), Execute(other), Execute(shared)])
        out = FuseComputeSets().run(root)
        assert len(out.steps) == 3

    def test_fusion_saves_a_sync_bit_identically(self):
        def run(fuse):
            g = make_graph()
            v = g.add_variable("x", (8,))
            root = Sequence([
                Execute(inc_cs(v, 1.0, tiles=[0, 1], name="lo")),
                Execute(inc_cs(v, 1.0, tiles=[2, 3], name="hi")),
            ])
            if fuse:
                root = FuseComputeSets().run(root)
            eng = run_raw(g, root)
            return g.device.profiler.total_cycles, eng.supersteps, eng.read(v)

        c_raw, s_raw, v_raw = run(False)
        c_opt, s_opt, v_opt = run(True)
        assert s_opt == 1 < s_raw == 2
        assert c_opt < c_raw  # one sync + one shared compute phase
        np.testing.assert_array_equal(v_raw, v_opt)


# -- compiled program artifact ---------------------------------------------------------


class TestCompiledProgram:
    def test_compile_program_is_immutable_and_reports(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        root = Sequence([Sequence([Execute(inc_cs(v))]), Exchange([])])
        compiled = compile_program(g, root)
        assert isinstance(compiled, CompiledProgram)
        assert compiled.source is root
        assert len(root.steps) == 2  # source untouched
        assert compiled.stats.compile_proxy <= compiled.source_stats.compile_proxy
        assert compiled.report.passes_run == [p.name for p in default_passes()]
        text = compiled.report.render()
        for name in compiled.report.passes_run:
            assert name in text
        with pytest.raises(Exception):
            compiled.root = None  # frozen dataclass

    def test_engine_executes_compiled_program(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        compiled = compile_program(g, Sequence([Execute(inc_cs(v))]))
        eng = Engine(compiled)
        eng.run()
        np.testing.assert_array_equal(eng.read(v), np.ones(8))

    def test_engine_rejects_uncompiled_graph(self):
        g = make_graph()
        with pytest.raises(TypeError, match="CompiledProgram"):
            Engine(g)

    def test_optimize_false_freezes_raw_schedule(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        root = Sequence([Sequence([Execute(inc_cs(v))])])
        compiled = compile_program(g, root, optimize=False)
        assert compiled.root is root
        assert compiled.report.results == []


# -- property: passes preserve numerics, never grow the graph --------------------------


def _apply(recipe, g, x, y, conds):
    """Build the schedule described by ``recipe`` against fresh variables."""
    seq = Sequence()
    for op in recipe:
        kind = op[0]
        if kind == "inc":
            seq.add(Execute(inc_cs(x, op[1])))
        elif kind == "inc_tile":
            seq.add(Execute(inc_cs(x, op[2], tiles=[op[1]])))
        elif kind == "copy":
            seq.add(copy_step(x, y, op[1], op[2]))
        elif kind == "empty_seq":
            seq.add(Sequence([]))
        elif kind == "empty_exchange":
            seq.add(Exchange([]))
        elif kind == "repeat":
            seq.add(Repeat(op[1], _apply(op[2], g, x, y, conds)))
        elif kind == "if":
            cond = g.add_single_tile(f"c{len(conds)}", ())
            cond.scatter(float(op[1]))
            conds.append(cond)
            seq.add(If(cond, _apply(op[2], g, x, y, conds)))
        elif kind == "seq":
            seq.add(_apply(op[1], g, x, y, conds))
    return seq


def _build(recipe):
    g = make_graph()
    x = g.add_variable("x", (8,))
    y = g.add_variable("y", (8,))
    x.scatter(np.arange(8, dtype=np.float32))
    y.scatter(np.zeros(8, dtype=np.float32))
    root = _apply(recipe, g, x, y, [])
    return g, x, y, root


_leaf = st.one_of(
    st.tuples(st.just("inc"), st.sampled_from([1.0, 0.5, 2.0])),
    st.tuples(st.just("inc_tile"), st.integers(0, 3), st.sampled_from([1.0, 3.0])),
    st.tuples(st.just("copy"), st.integers(0, 3), st.integers(0, 3)),
    st.tuples(st.just("empty_seq")),
    st.tuples(st.just("empty_exchange")),
)

_recipe = st.recursive(
    st.lists(_leaf, max_size=4),
    lambda inner: st.lists(
        st.one_of(
            _leaf,
            st.tuples(st.just("repeat"), st.integers(0, 3), inner),
            st.tuples(st.just("if"), st.integers(0, 1), inner),
            st.tuples(st.just("seq"), inner),
        ),
        max_size=4,
    ),
    max_leaves=12,
)


class TestPassProperties:
    @given(_recipe, st.integers(0, len(ALL_PASSES)))
    @settings(max_examples=60, deadline=None)
    def test_passes_preserve_results_and_never_grow_graph(self, recipe, which):
        passes = (
            [ALL_PASSES[which]()] if which < len(ALL_PASSES) else default_passes()
        )
        g1, x1, y1, root1 = _build(recipe)
        run_raw(g1, root1)
        base_cycles = g1.device.profiler.total_cycles

        g2, x2, y2, root2 = _build(recipe)
        before = collect_stats(root2).compile_proxy
        compiled = compile_program(g2, root2, passes=passes)
        assert compiled.stats.compile_proxy <= before
        eng2 = Engine(compiled)
        eng2.run()
        np.testing.assert_array_equal(x1.gather(), x2.gather())
        np.testing.assert_array_equal(y1.gather(), y2.gather())
        assert g2.device.profiler.total_cycles <= base_cycles


# -- regression: coalescing on a communication-heavy program ---------------------------


class TestCoalesceRegression:
    def test_spmv_halo_exchanges_coalesce_to_one_phase(self):
        from repro.sparse import poisson3d
        from repro.sparse.distribute import DistributedMatrix
        from repro.tensordsl import TensorContext

        def run(optimize):
            crs, dims = poisson3d(8)
            ctx = TensorContext(IPUDevice(tiles_per_ipu=8))
            A = DistributedMatrix(ctx, crs, grid_dims=dims)
            xv = A.vector(data=np.arange(crs.n, dtype=np.float64))
            yv = A.vector()
            A.spmv(xv, yv)
            eng = ctx.run(optimize=optimize)
            return eng, yv.read_global(), ctx.device.profiler.total_cycles

        eng_raw, y_raw, c_raw = run(False)
        eng_opt, y_opt, c_opt = run(True)
        # One blockwise program per sending tile collapses into one phase.
        assert eng_opt.exchanges == 1
        assert eng_opt.exchanges < eng_raw.exchanges
        assert c_opt < c_raw
        np.testing.assert_array_equal(y_raw, y_opt)

    def test_solve_optimized_is_cheaper_and_bit_identical(self):
        from repro.solvers import solve
        from repro.sparse import poisson2d

        crs, dims = poisson2d(8)
        b = np.ones(64)
        cfg = '{"solver": "cg", "tol": 1e-8, "max_iterations": 40}'
        raw = solve(crs, b, cfg, tiles_per_ipu=4, grid_dims=dims, optimize=False)
        opt = solve(crs, b, cfg, tiles_per_ipu=4, grid_dims=dims, optimize=True)
        assert opt.engine.exchanges < raw.engine.exchanges
        assert opt.cycles < raw.cycles
        np.testing.assert_array_equal(opt.x, raw.x)
        assert opt.relative_residual == raw.relative_residual


# -- satellite: per-tile serialization of on-tile memcpys ------------------------------


class TestOnTileMemcpyAccounting:
    def test_same_tile_copies_serialize(self):
        g = make_graph()
        a = g.add_variable("a", (8,))
        b = g.add_variable("b", (8,))
        c = g.add_variable("c", (8,))
        p = g.device.profiler

        # One on-tile copy of 2 f32 elements: ceil(8 B / 8) = 1 cycle.
        run_raw(g, Exchange([RegionCopy(a, 0, 0, ((b, 0, 0),), 2)]))
        one = p.total_cycles
        p.reset()
        # Two copies landing on the SAME tile serialize: 2 cycles, not max=1.
        run_raw(
            g,
            Exchange([
                RegionCopy(a, 0, 0, ((b, 0, 0),), 2),
                RegionCopy(a, 0, 0, ((c, 0, 0),), 2),
            ]),
        )
        same_tile = p.total_cycles
        p.reset()
        # Two copies on DIFFERENT tiles stay parallel: max across tiles.
        run_raw(
            g,
            Exchange([
                RegionCopy(a, 0, 0, ((b, 0, 0),), 2),
                RegionCopy(a, 1, 0, ((c, 1, 0),), 2),
            ]),
        )
        two_tiles = p.total_cycles
        assert same_tile == 2 * one
        assert two_tiles == one


# -- satellite: hierarchical profiler paths --------------------------------------------


class TestProfilerScopes:
    def test_labeled_steps_open_scopes(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        root = Sequence(
            [Sequence([Repeat(2, Execute(inc_cs(v)), label="loop")], label="phase")]
        )
        run_raw(g, root)
        paths = g.device.profiler.by_path()
        assert "phase/loop" in paths
        assert "<toplevel>" not in paths

    def test_solve_reports_hierarchical_paths(self):
        from repro.solvers import solve
        from repro.sparse import poisson2d

        crs, dims = poisson2d(8)
        result = solve(crs, np.ones(64), '{"solver": "cg", "tol": 1e-6}',
                       tiles_per_ipu=4, grid_dims=dims)
        paths = result.engine.profiler.by_path()
        assert len(paths) > 1
        assert any(p.startswith("solve:cg") for p in paths)
        assert any("cg.iterate" in p for p in paths)
