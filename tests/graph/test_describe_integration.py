"""Tests for the program describe() utility and multi-IPU solver integration."""

import numpy as np

from repro.graph import describe
from repro.machine import IPUDevice
from repro.solvers import solve
from repro.sparse import poisson3d
from repro.tensordsl import TensorContext


class TestDescribe:
    def test_outline_structure(self):
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        x = ctx.tensor((8,), data=np.ones(8))
        flag = ctx.scalar(1.0)
        ctx.Repeat(3, lambda: x.assign(x + 1.0))
        ctx.If(flag, lambda: x.assign(x * 2.0))
        x.reduce()
        text = describe(ctx.root)
        assert "Repeat(x3)" in text
        assert "Execute(" in text and "vertices" in text
        assert "Exchange(" in text
        assert "If(" in text

    def test_depth_limit(self):
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        x = ctx.tensor((4,), data=np.zeros(4))

        def nest(depth):
            if depth == 0:
                x.assign(x + 1.0)
            else:
                ctx.Repeat(1, lambda: nest(depth - 1))

        nest(10)
        text = describe(ctx.root, max_depth=4)
        assert "..." in text

    def test_solver_program_outline(self):
        # The whole PBiCGStab program renders without error and shows the
        # conditional loop.
        from repro.sparse.distribute import DistributedMatrix
        from repro.solvers import PBiCGStab

        crs, dims = poisson3d(4)
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        A = DistributedMatrix(ctx, crs, grid_dims=dims)
        solver = PBiCGStab(A, tol=1e-5)
        solver.solve_into(A.vector(), A.vector(data=np.ones(crs.n)))
        text = describe(ctx.root)
        assert "RepeatWhile(" in text
        assert "category=spmv" in text


class TestMultiIPUIntegration:
    """Solvers spanning IPU-Links: identical numerics, extra sync cost."""

    def test_solver_across_four_ipus(self):
        crs, dims = poisson3d(8)
        b = np.random.default_rng(12).standard_normal(crs.n)
        cfg = {"solver": "bicgstab", "tol": 1e-5, "preconditioner": {"solver": "ilu0"}}
        one = solve(crs, b, cfg, grid_dims=dims, num_ipus=1, tiles_per_ipu=16)
        four = solve(crs, b, cfg, grid_dims=dims, num_ipus=4, tiles_per_ipu=4)
        # Same total tile count -> same partition -> identical numerics.
        np.testing.assert_array_equal(one.x, four.x)
        assert one.iterations == four.iterations
        # Crossing chips costs extra synchronization time.
        assert four.cycles > one.cycles

    def test_mpir_across_ipus(self):
        crs, dims = poisson3d(6)
        b = np.random.default_rng(13).standard_normal(crs.n)
        res = solve(
            crs, b,
            {"solver": "mpir", "precision": "dw", "tol": 1e-11, "max_outer": 8,
             "inner": {"solver": "bicgstab", "fixed_iterations": 40,
                        "record_history": False, "tol": 5e-7,
                        "preconditioner": {"solver": "ilu0"}}},
            grid_dims=dims, num_ipus=2, tiles_per_ipu=8,
        )
        assert res.relative_residual < 1e-10
