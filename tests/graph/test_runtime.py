"""Tests for the pluggable runtime: backend registry, plan lowering, and
the sim/fast backend pair.

The contract under test is the one ``docs/runtime.md`` documents: both
backends execute the same frozen plans, ``sim`` adds the cycle model, and
``fast`` is bit-identical on numerics while leaving the profiler untouched.
"""

import numpy as np
import pytest

from repro.graph import (
    Codelet,
    ComputeSet,
    Engine,
    Exchange,
    Execute,
    Graph,
    RegionCopy,
    Repeat,
    Sequence,
    compile_program,
)
from repro.graph.engine import CONTROL_CYCLES as ENGINE_CONTROL_CYCLES
from repro.graph.runtime import (
    BACKENDS,
    Backend,
    CONTROL_CYCLES,
    FastBackend,
    SimBackend,
    register_backend,
    resolve_backend,
)
from repro.machine import IPUDevice


def make_graph(tiles=4):
    return Graph(IPUDevice(tiles_per_ipu=tiles))


def inc_cs(var, amount=1.0):
    cl = Codelet(
        "inc",
        run=lambda ctx: ctx["x"].__iadd__(np.float32(amount)),
        cycles=lambda ctx: 6 * len(ctx["x"]),
    )
    cs = ComputeSet("inc_cs")
    for t in var.tile_ids:
        cs.add_vertex(cl, t, {"x": var.shard(t).data})
    return cs


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert BACKENDS["sim"] is SimBackend
        assert BACKENDS["fast"] is FastBackend

    def test_resolve_by_name(self):
        assert isinstance(resolve_backend("sim"), SimBackend)
        assert isinstance(resolve_backend("fast"), FastBackend)

    def test_resolve_class_and_instance(self):
        assert isinstance(resolve_backend(SimBackend), SimBackend)
        inst = FastBackend()
        assert resolve_backend(inst) is inst

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="fast.*sim|sim.*fast"):
            resolve_backend("turbo")

    def test_bad_spec_type(self):
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_custom_backend_registration(self):
        @register_backend
        class NullBackend(Backend):
            name = "null-test"

            def run_compute_set(self, step):
                pass

            def run_exchange(self, step):
                pass

        try:
            assert isinstance(resolve_backend("null-test"), NullBackend)
        finally:
            del BACKENDS["null-test"]

    def test_control_cycles_reexported(self):
        assert ENGINE_CONTROL_CYCLES == CONTROL_CYCLES


class TestPlanLowering:
    def test_compiled_program_carries_plans(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        ex = Execute(inc_cs(v))
        compiled = compile_program(g, Sequence([ex]), optimize=False)
        assert ex in compiled.plans
        plan = compiled.plan_for(ex)
        assert plan.worst_tile == 12  # 2 elements/tile * 6 cycles
        assert len(plan.dispatch) == 4

    def test_shared_compute_set_planned_once(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        cs = inc_cs(v)
        e1, e2 = Execute(cs), Execute(cs)
        compiled = compile_program(g, Sequence([e1, e2]), optimize=False)
        assert compiled.plan_for(e1) is compiled.plan_for(e2)

    def test_loop_body_planned_once(self):
        g = make_graph()
        v = g.add_variable("x", (8,))
        ex = Execute(inc_cs(v))
        compiled = compile_program(g, Repeat(3, ex), optimize=False)
        assert len(compiled.plans) == 1
        assert compiled.plan_for(ex).worst_tile == 12

    def test_single_region_copy_lowers_to_slices(self):
        g = make_graph()
        a = g.add_variable("a", (8,))
        b = g.add_variable("b", (8,))
        ex = Exchange([RegionCopy(a, 0, 0, ((b, 1, 0),), 2)])
        compiled = compile_program(g, ex, optimize=False)
        plan = compiled.plan_for(ex)
        assert plan.vectorized
        assert len(plan.ops) == 1
        assert plan.ops[0].src_index == slice(0, 2)
        assert plan.ops[0].dst_index == slice(0, 2)

    def test_multi_segment_copies_fuse_to_fancy_index(self):
        g = make_graph(tiles=2)
        a = g.add_variable("a", (8,))  # tile0: 0..4, tile1: 4..8
        b = g.add_variable("b", (8,))
        a.scatter(np.arange(8))
        # Two disjoint segments between the same shard pair fuse into one op.
        ex = Exchange([
            RegionCopy(a, 0, 0, ((b, 1, 0),), 1),
            RegionCopy(a, 0, 2, ((b, 1, 2),), 2),
        ])
        compiled = compile_program(g, ex, optimize=False)
        plan = compiled.plan_for(ex)
        assert plan.vectorized
        assert len(plan.ops) == 1
        np.testing.assert_array_equal(plan.ops[0].src_index, [0, 2, 3])
        eng = Engine(compiled)
        eng.run()
        out = eng.read(b)
        np.testing.assert_array_equal(out[4:8], [0.0, 0.0, 2.0, 3.0])

    def test_overlap_hazard_falls_back_to_ordered_copies(self):
        g = make_graph()
        a = g.add_variable("a", (8,))
        b = g.add_variable("b", (8,))
        c = g.add_variable("c", (8,))
        a.scatter(np.arange(8))
        # The second copy reads b@tile1, which the first copy writes: the
        # plan must keep strict program order so c sees a's data.
        ex = Exchange([
            RegionCopy(a, 0, 0, ((b, 1, 0),), 2),
            RegionCopy(b, 1, 0, ((c, 2, 0),), 2),
        ])
        compiled = compile_program(g, ex, optimize=False)
        plan = compiled.plan_for(ex)
        assert not plan.vectorized
        assert len(plan.ops) == 2
        eng = Engine(compiled)
        eng.run()
        np.testing.assert_array_equal(eng.read(c)[4:6], [0.0, 1.0])

    def test_broadcast_keeps_per_destination_ops(self):
        g = make_graph()
        a = g.add_variable("a", (4,))
        r = g.add_replicated("r", (1,))
        a.scatter([7.0, 0, 0, 0])
        ex = Exchange([RegionCopy(a, 0, 0, tuple((r, t, 0) for t in range(4)), 1)])
        compiled = compile_program(g, ex, optimize=False)
        plan = compiled.plan_for(ex)
        assert plan.vectorized
        assert len(plan.ops) == 4  # one per destination shard array
        eng = Engine(compiled)
        eng.run()
        for t in range(4):
            assert r.shard(t).data[0] == 7.0

    def test_transfers_precomputed_for_fabric(self):
        g = make_graph()
        a = g.add_variable("a", (8,))
        b = g.add_variable("b", (8,))
        ex = Exchange([RegionCopy(a, 0, 0, ((b, 0, 0), (b, 3, 0)), 2)])
        compiled = compile_program(g, ex, optimize=False)
        plan = compiled.plan_for(ex)
        # The on-tile destination stays out of the fabric transfer.
        assert len(plan.transfers) == 1
        assert plan.transfers[0].dst_tiles == (3,)
        assert plan.transfers[0].nbytes == 8
        assert plan.local_cycles == 1  # ceil(8 B / 8 B-per-cycle)


class TestFastBackend:
    def _program(self, backend):
        g = make_graph()
        v = g.add_variable("x", (8,))
        a = g.add_variable("a", (8,))
        v.scatter(np.arange(8))
        root = Sequence([
            Repeat(3, Execute(inc_cs(v, 0.5))),
            Exchange([RegionCopy(v, 0, 0, ((a, 3, 0),), 2)]),
        ])
        eng = Engine(compile_program(g, root, optimize=False), backend=backend)
        eng.run()
        return g, eng

    def test_numerics_bit_identical_to_sim(self):
        g_sim, eng_sim = self._program("sim")
        g_fast, eng_fast = self._program("fast")
        np.testing.assert_array_equal(
            eng_sim.read(g_sim.variables["x"]), eng_fast.read(g_fast.variables["x"])
        )
        np.testing.assert_array_equal(
            eng_sim.read(g_sim.variables["a"]), eng_fast.read(g_fast.variables["a"])
        )

    def test_no_cycle_accounting(self):
        g, eng = self._program("fast")
        assert g.device.profiler.total_cycles == 0
        assert eng.backend.name == "fast"
        # Engine-level counters still track control flow.
        assert eng.supersteps == 3
        assert eng.exchanges == 1
        assert eng.loop_iterations == 3

    def test_sim_accounts_cycles(self):
        g, eng = self._program("sim")
        prof = g.device.profiler
        sync = g.device.model.sync()
        assert prof.category("control") == 3 * CONTROL_CYCLES
        assert prof.category("elementwise") == 3 * (sync + 12)
        assert prof.category("exchange") > 0

    def test_solve_fast_matches_sim_bit_for_bit(self):
        from repro.solvers import solve
        from repro.sparse import poisson2d

        crs, dims = poisson2d(8)
        b = np.ones(64)
        cfg = '{"solver": "cg", "tol": 1e-8, "max_iterations": 40}'
        sim = solve(crs, b, cfg, tiles_per_ipu=4, grid_dims=dims, backend="sim")
        fast = solve(crs, b, cfg, tiles_per_ipu=4, grid_dims=dims, backend="fast")
        np.testing.assert_array_equal(sim.x, fast.x)
        assert sim.stats.total_iterations == fast.stats.total_iterations
        assert sim.backend == "sim" and fast.backend == "fast"
        assert sim.cycles > 0
        assert fast.cycles == 0
