"""Tests for graph variables, mappings, and SRAM allocation."""

import numpy as np
import pytest

from repro.graph import Graph, Interval
from repro.machine import IPUDevice


@pytest.fixture
def graph():
    return Graph(IPUDevice(tiles_per_ipu=4))


class TestLinearMapping:
    def test_even_split(self, graph):
        m = graph.linear_mapping(8)
        assert [iv.size for iv in m] == [2, 2, 2, 2]
        assert m[0] == Interval(0, 0, 2)
        assert m[-1] == Interval(3, 6, 8)

    def test_remainder_spread_first(self, graph):
        m = graph.linear_mapping(10)
        assert [iv.size for iv in m] == [3, 3, 2, 2]

    def test_fewer_elements_than_tiles(self, graph):
        m = graph.linear_mapping(2)
        assert len(m) == 2
        assert all(iv.size == 1 for iv in m)

    def test_subset_of_tiles(self, graph):
        m = graph.linear_mapping(4, tile_ids=[1, 3])
        assert {iv.tile_id for iv in m} == {1, 3}


class TestVariables:
    def test_scatter_gather_roundtrip(self, graph):
        v = graph.add_variable("x", (10,))
        data = np.arange(10, dtype=np.float32)
        v.scatter(data)
        np.testing.assert_array_equal(v.gather(), data)
        # Shards physically live in tile SRAM.
        assert graph.device.tile(0).get("x@0")[0] == 0.0

    def test_dw_variable_keeps_float64_precision(self, graph):
        v = graph.add_variable("x", (4,), dtype="dw")
        data = np.array([np.pi, 1 + 1e-9, -3.0, 0.0])
        v.scatter(data)
        np.testing.assert_allclose(v.gather(), data, rtol=2**-45)
        # Paired storage: both hi and lo shards are allocated.
        assert "x@0!lo" in graph.device.tile(0)

    def test_replicated_scalar(self, graph):
        v = graph.add_replicated("alpha", ())
        v.scatter(2.5)
        assert v.gather() == 2.5
        for t in range(4):
            assert graph.device.tile(t).get("alpha@" + str(t))[0] == 2.5

    def test_single_tile(self, graph):
        v = graph.add_single_tile("s", (3,), tile_id=2)
        assert v.tile_ids == [2]
        v.scatter([1, 2, 3])
        np.testing.assert_array_equal(v.gather(), [1, 2, 3])

    def test_duplicate_name_rejected(self, graph):
        graph.add_variable("x", (4,))
        with pytest.raises(KeyError):
            graph.add_variable("x", (4,))

    def test_bad_mapping_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_variable("x", (4,), mapping=[Interval(0, 0, 2), Interval(1, 3, 4)])
        with pytest.raises(ValueError):
            graph.add_variable("y", (4,), mapping=[Interval(0, 0, 2)])

    def test_unknown_dtype_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_variable("x", (4,), dtype="bfloat16")

    def test_scatter_size_mismatch(self, graph):
        v = graph.add_variable("x", (4,))
        with pytest.raises(ValueError):
            v.scatter(np.zeros(5))

    def test_free_releases_sram(self, graph):
        before = graph.device.tile(0).bytes_used
        v = graph.add_variable("tmp", (100,), dtype="dw")
        assert graph.device.tile(0).bytes_used > before
        graph.free(v)
        assert graph.device.tile(0).bytes_used == before
        assert "tmp" not in graph.variables

    def test_element_bytes(self, graph):
        assert graph.add_variable("a", (2,), dtype="float32").element_bytes() == 4
        assert graph.add_variable("b", (2,), dtype="dw").element_bytes() == 8
        assert graph.add_variable("c", (2,), dtype="float64").element_bytes() == 8

    def test_unique_name(self, graph):
        assert graph.unique_name("t") != graph.unique_name("t")
