"""Tests for the engine: compute sets, exchanges, control flow, determinism.

The engine only executes :class:`CompiledProgram` artifacts; raw step trees
are frozen through ``compile_program(..., optimize=False)`` first, which is
exactly what the deprecated ``Engine(graph)`` path used to paper over.
"""

import numpy as np
import pytest

from repro.graph import (
    Codelet,
    ComputeSet,
    Engine,
    Exchange,
    Execute,
    Graph,
    HostCallback,
    If,
    RegionCopy,
    Repeat,
    RepeatWhile,
    Sequence,
    collect_stats,
    compile_program,
)
from repro.machine import IPUDevice


@pytest.fixture
def graph():
    return Graph(IPUDevice(tiles_per_ipu=4))


def run_program(graph, step, backend="sim"):
    """Freeze a raw step tree and execute it; returns the engine."""
    eng = Engine(compile_program(graph, step, optimize=False), backend=backend)
    eng.run()
    return eng


def make_inc_cs(var, amount=1.0):
    """Compute set incrementing every shard of ``var`` in place."""
    cl = Codelet(
        "inc",
        run=lambda ctx: ctx["x"].__iadd__(np.float32(amount)),
        cycles=lambda ctx: 6 * len(ctx["x"]),
    )
    cs = ComputeSet("inc_cs")
    for t in var.tile_ids:
        cs.add_vertex(cl, t, {"x": var.shard(t).data})
    return cs


class TestExecute:
    def test_compute_set_runs_and_charges(self, graph):
        v = graph.add_variable("x", (8,))
        v.scatter(np.zeros(8))
        eng = run_program(graph, Execute(make_inc_cs(v)))
        np.testing.assert_array_equal(eng.read(v), np.ones(8))
        # 2 elements/tile * 6 cycles + sync.
        assert graph.device.profiler.total_cycles == graph.device.model.sync() + 12
        assert eng.supersteps == 1

    def test_superstep_cost_is_slowest_tile(self, graph):
        cl = Codelet("noop", run=lambda ctx: None, cycles=lambda ctx: ctx["c"])
        cs = ComputeSet("uneven")
        cs.add_vertex(cl, 0, {"c": 100})
        cs.add_vertex(cl, 1, {"c": 700})
        run_program(graph, Execute(cs))
        assert graph.device.profiler.total_cycles == graph.device.model.sync() + 700

    def test_worker_packing(self, graph):
        # 12 equal tasks on one 6-worker tile -> two rounds.
        cl = Codelet("t", run=lambda ctx: None, cycles=lambda ctx: 10)
        cs = ComputeSet("pack")
        for _ in range(12):
            cs.add_vertex(cl, 0, {})
        run_program(graph, Execute(cs))
        assert graph.device.profiler.total_cycles == graph.device.model.sync() + 20

    def test_per_worker_cycle_lists(self, graph):
        cl = Codelet("multi", run=lambda ctx: None, cycles=lambda ctx: [5, 9, 7])
        cs = ComputeSet("w")
        cs.add_vertex(cl, 0, {})
        run_program(graph, Execute(cs))
        assert graph.device.profiler.total_cycles == graph.device.model.sync() + 9

    def test_category_attribution(self, graph):
        cl = Codelet("k", run=lambda ctx: None, cycles=lambda ctx: 10, category="spmv")
        cs = ComputeSet("c")
        cs.add_vertex(cl, 0, {})
        run_program(graph, Execute(cs))
        assert graph.device.profiler.category("spmv") > 0

    def test_mixed_vertex_categories_rejected_at_compile(self, graph):
        # Category inference must not silently follow the first vertex.
        a = Codelet("a", run=lambda ctx: None, cycles=lambda ctx: 1, category="spmv")
        b = Codelet("b", run=lambda ctx: None, cycles=lambda ctx: 1, category="reduce")
        cs = ComputeSet("mixed")
        cs.add_vertex(a, 0, {})
        cs.add_vertex(b, 1, {})
        with pytest.raises(ValueError, match="mixes vertex categories"):
            compile_program(graph, Execute(cs), optimize=False)

    def test_explicit_category_wins_over_mixed_vertices(self, graph):
        a = Codelet("a", run=lambda ctx: None, cycles=lambda ctx: 1, category="spmv")
        b = Codelet("b", run=lambda ctx: None, cycles=lambda ctx: 1, category="reduce")
        cs = ComputeSet("mixed", category="transfer")
        cs.add_vertex(a, 0, {})
        cs.add_vertex(b, 1, {})
        run_program(graph, Execute(cs))
        assert graph.device.profiler.category("transfer") > 0


class TestExchange:
    def test_region_copy_moves_data(self, graph):
        a = graph.add_variable("a", (8,))
        b = graph.add_variable("b", (8,))
        a.scatter(np.arange(8))
        # Copy tile 0's shard of a (elements 0..2) into tile 3's shard of b
        # (global elements 6..8 live at local offset 0 on tile 3).
        eng = run_program(graph, Exchange([RegionCopy(a, 0, 0, ((b, 3, 0),), 2)]))
        out = eng.read(b)
        np.testing.assert_array_equal(out[6:8], [0.0, 1.0])
        assert eng.exchanges == 1
        assert graph.device.profiler.category("exchange") > 0

    def test_broadcast_copy(self, graph):
        a = graph.add_variable("a", (4,))
        r = graph.add_replicated("r", (1,))
        a.scatter([5.0, 0, 0, 0])
        copies = [RegionCopy(a, 0, 0, tuple((r, t, 0) for t in range(4)), 1)]
        run_program(graph, Exchange(copies))
        for t in range(4):
            assert r.shard(t).data[0] == 5.0

    def test_dw_copy_moves_both_words(self, graph):
        a = graph.add_variable("a", (4,), dtype="dw")
        b = graph.add_variable("b", (4,), dtype="dw")
        a.scatter(np.array([1 + 1e-9] * 4))
        copies = [RegionCopy(a, t, 0, ((b, t, 0),), 1) for t in range(4)]
        eng = run_program(graph, Exchange(copies))
        np.testing.assert_allclose(eng.read(b), 1 + 1e-9, rtol=2**-45)

    def test_local_copy_cheaper_than_remote(self, graph):
        a = graph.add_variable("a", (8,))
        b = graph.add_variable("b", (8,))
        p = graph.device.profiler

        run_program(graph, Exchange([RegionCopy(a, 0, 0, ((b, 0, 0),), 2)]))
        local = p.total_cycles
        p.reset()
        run_program(graph, Exchange([RegionCopy(a, 0, 0, ((b, 3, 0),), 2)]))
        remote = p.total_cycles
        assert local < remote


class TestControlFlow:
    def test_repeat(self, graph):
        v = graph.add_variable("x", (4,))
        eng = run_program(graph, Repeat(5, Execute(make_inc_cs(v))))
        np.testing.assert_array_equal(eng.read(v), np.full(4, 5.0))
        assert eng.loop_iterations == 5

    def test_repeat_while_counts_down(self, graph):
        # cond = x[0] stays nonzero until decremented to 0.
        cond = graph.add_single_tile("cond", ())
        cond.scatter(3.0)
        dec = Codelet("dec", run=lambda ctx: ctx["c"].__isub__(1.0), cycles=lambda ctx: 6)
        cs = ComputeSet("dec_cs")
        cs.add_vertex(dec, 0, {"c": cond.shard(0).data})
        eng = run_program(graph, RepeatWhile(cond, Execute(cs)))
        assert eng.read_scalar(cond) == 0.0
        assert eng.loop_iterations == 3

    def test_repeat_while_max_iterations(self, graph):
        cond = graph.add_single_tile("cond", ())
        cond.scatter(1.0)  # never changes -> must hit the safety net
        eng = run_program(graph, RepeatWhile(cond, Sequence([]), max_iterations=7))
        assert eng.loop_iterations == 7

    def test_repeat_while_cap_without_first_check(self, graph):
        # check_before_first=False: the cap must still hold even though the
        # condition is only consulted from the second iteration on.
        cond = graph.add_single_tile("cond", ())
        cond.scatter(1.0)
        eng = run_program(
            graph,
            RepeatWhile(cond, Sequence([]), max_iterations=5, check_before_first=False),
        )
        assert eng.loop_iterations == 5

    def test_repeat_while_no_first_check_runs_body_once(self, graph):
        # With a zero condition and check_before_first=False the body still
        # executes exactly once (do-while semantics).
        cond = graph.add_single_tile("cond", ())
        cond.scatter(0.0)
        v = graph.add_variable("x", (4,))
        eng = run_program(
            graph,
            RepeatWhile(cond, Execute(make_inc_cs(v)), max_iterations=9,
                        check_before_first=False),
        )
        assert eng.loop_iterations == 1
        np.testing.assert_array_equal(eng.read(v), np.ones(4))

    def test_if_branches(self, graph):
        cond = graph.add_single_tile("cond", ())
        v = graph.add_variable("x", (4,))
        cond.scatter(1.0)
        run_program(graph, If(cond, Execute(make_inc_cs(v)), None))
        assert v.gather()[0] == 1.0
        cond.scatter(0.0)
        run_program(graph, If(cond, Execute(make_inc_cs(v)), Execute(make_inc_cs(v, 10.0))))
        assert v.gather()[0] == 11.0

    def test_host_callback(self, graph):
        seen = []
        eng = run_program(graph, HostCallback(lambda e: seen.append(e)))
        assert seen == [eng]
        assert eng.host_callbacks == 1

    def test_unknown_step_rejected_at_compile(self, graph):
        with pytest.raises(TypeError):
            compile_program(graph, object(), optimize=False)

    def test_raw_graph_construction_rejected(self, graph):
        # The deprecated Engine(graph) + engine.run(step) path is gone.
        with pytest.raises(TypeError, match="CompiledProgram"):
            Engine(graph)

    def test_read_scalar_requires_scalar(self, graph):
        v = graph.add_variable("x", (4,))
        eng = Engine(compile_program(graph, Sequence([]), optimize=False))
        with pytest.raises(ValueError):
            eng.read_scalar(v)


class TestReadScalar:
    def test_read_scalar_sums_double_word_shards(self, graph):
        # A dw scalar shards into (hi, lo) float32 pairs; read_scalar must
        # return hi + lo, not just the hi word.
        value = 1.0 + 2.0**-30  # exactly representable as two f32 words
        s = graph.add_replicated("s", (), dtype="dw")
        s.scatter(value)
        eng = Engine(compile_program(graph, Sequence([]), optimize=False))
        got = eng.read_scalar(s)
        assert got == value
        assert got != float(np.float32(value))  # the lo word actually contributed

    def test_read_scalar_single_word(self, graph):
        s = graph.add_single_tile("s", ())
        s.scatter(2.5)
        eng = Engine(compile_program(graph, Sequence([]), optimize=False))
        assert eng.read_scalar(s) == 2.5


class TestDeterminism:
    def test_same_program_same_cycles(self):
        def run_once():
            g = Graph(IPUDevice(tiles_per_ipu=4))
            v = g.add_variable("x", (16,))
            v.scatter(np.arange(16))
            eng = run_program(g, Repeat(10, Execute(make_inc_cs(v))))
            return g.device.profiler.total_cycles, eng.read(v)

        c1, v1 = run_once()
        c2, v2 = run_once()
        assert c1 == c2
        np.testing.assert_array_equal(v1, v2)

    def test_fast_backend_matches_sim_numerics(self):
        def run_once(backend):
            g = Graph(IPUDevice(tiles_per_ipu=4))
            v = g.add_variable("x", (16,))
            v.scatter(np.arange(16))
            eng = run_program(g, Repeat(10, Execute(make_inc_cs(v))), backend=backend)
            return g.device.profiler.total_cycles, eng.read(v)

        sim_cycles, sim_v = run_once("sim")
        fast_cycles, fast_v = run_once("fast")
        np.testing.assert_array_equal(sim_v, fast_v)
        assert sim_cycles > 0
        assert fast_cycles == 0  # the fast backend never touches the profiler


class TestCompilerStats:
    def test_collect_stats(self, graph):
        v = graph.add_variable("x", (8,))
        cs = make_inc_cs(v)
        body = Sequence([Execute(cs), Exchange([])])
        prog = Sequence([Repeat(3, body), HostCallback(lambda e: None)])
        stats = collect_stats(prog)
        assert stats.compute_sets == 1
        assert stats.vertices == 4
        assert stats.exchanges == 1
        assert stats.host_callbacks == 1
        assert stats.compile_proxy > 0

    def test_shared_compute_set_counted_once(self, graph):
        v = graph.add_variable("x", (8,))
        cs = make_inc_cs(v)
        prog = Sequence([Execute(cs), Execute(cs)])
        stats = collect_stats(prog)
        assert stats.compute_sets == 1
        assert stats.vertices == 4
