"""Tests for the engine: compute sets, exchanges, control flow, determinism."""

import numpy as np
import pytest

from repro.graph import (
    Codelet,
    ComputeSet,
    Engine,
    Exchange,
    Execute,
    Graph,
    HostCallback,
    If,
    RegionCopy,
    Repeat,
    RepeatWhile,
    Sequence,
    collect_stats,
)
from repro.machine import IPUDevice


@pytest.fixture
def graph():
    return Graph(IPUDevice(tiles_per_ipu=4))


def add_one_codelet():
    return Codelet(
        "add_one",
        run=lambda ctx: ctx.__setitem__("x", None) or None,  # replaced below
        cycles=lambda ctx: 6 * len(ctx["x"]),
    )


def make_inc_cs(var, amount=1.0):
    """Compute set incrementing every shard of ``var`` in place."""
    cl = Codelet(
        "inc",
        run=lambda ctx: ctx["x"].__iadd__(np.float32(amount)),
        cycles=lambda ctx: 6 * len(ctx["x"]),
    )
    cs = ComputeSet("inc_cs")
    for t in var.tile_ids:
        cs.add_vertex(cl, t, {"x": var.shard(t).data})
    return cs


class TestExecute:
    def test_compute_set_runs_and_charges(self, graph):
        v = graph.add_variable("x", (8,))
        v.scatter(np.zeros(8))
        eng = Engine(graph)
        eng.run(Execute(make_inc_cs(v)))
        np.testing.assert_array_equal(eng.read(v), np.ones(8))
        # 2 elements/tile * 6 cycles + sync.
        assert graph.device.profiler.total_cycles == graph.device.model.sync() + 12
        assert eng.supersteps == 1

    def test_superstep_cost_is_slowest_tile(self, graph):
        cl = Codelet("noop", run=lambda ctx: None, cycles=lambda ctx: ctx["c"])
        cs = ComputeSet("uneven")
        cs.add_vertex(cl, 0, {"c": 100})
        cs.add_vertex(cl, 1, {"c": 700})
        eng = Engine(graph)
        eng.run(Execute(cs))
        assert graph.device.profiler.total_cycles == graph.device.model.sync() + 700

    def test_worker_packing(self, graph):
        # 12 equal tasks on one 6-worker tile -> two rounds.
        cl = Codelet("t", run=lambda ctx: None, cycles=lambda ctx: 10)
        cs = ComputeSet("pack")
        for _ in range(12):
            cs.add_vertex(cl, 0, {})
        eng = Engine(graph)
        eng.run(Execute(cs))
        assert graph.device.profiler.total_cycles == graph.device.model.sync() + 20

    def test_per_worker_cycle_lists(self, graph):
        cl = Codelet("multi", run=lambda ctx: None, cycles=lambda ctx: [5, 9, 7])
        cs = ComputeSet("w")
        cs.add_vertex(cl, 0, {})
        eng = Engine(graph)
        eng.run(Execute(cs))
        assert graph.device.profiler.total_cycles == graph.device.model.sync() + 9

    def test_category_attribution(self, graph):
        cl = Codelet("k", run=lambda ctx: None, cycles=lambda ctx: 10, category="spmv")
        cs = ComputeSet("c")
        cs.add_vertex(cl, 0, {})
        Engine(graph).run(Execute(cs))
        assert graph.device.profiler.category("spmv") > 0


class TestExchange:
    def test_region_copy_moves_data(self, graph):
        a = graph.add_variable("a", (8,))
        b = graph.add_variable("b", (8,))
        a.scatter(np.arange(8))
        eng = Engine(graph)
        # Copy tile 0's shard of a (elements 0..2) into tile 3's shard of b
        # (global elements 6..8 live at local offset 0 on tile 3).
        eng.run(
            Exchange(
                [RegionCopy(a, 0, 0, ((b, 3, 0),), 2)],
            )
        )
        out = eng.read(b)
        np.testing.assert_array_equal(out[6:8], [0.0, 1.0])
        assert eng.exchanges == 1
        assert graph.device.profiler.category("exchange") > 0

    def test_broadcast_copy(self, graph):
        a = graph.add_variable("a", (4,))
        r = graph.add_replicated("r", (1,))
        a.scatter([5.0, 0, 0, 0])
        eng = Engine(graph)
        copies = [RegionCopy(a, 0, 0, tuple((r, t, 0) for t in range(4)), 1)]
        eng.run(Exchange(copies))
        for t in range(4):
            assert r.shard(t).data[0] == 5.0

    def test_dw_copy_moves_both_words(self, graph):
        a = graph.add_variable("a", (4,), dtype="dw")
        b = graph.add_variable("b", (4,), dtype="dw")
        a.scatter(np.array([1 + 1e-9] * 4))
        eng = Engine(graph)
        copies = [RegionCopy(a, t, 0, ((b, t, 0),), 1) for t in range(4)]
        eng.run(Exchange(copies))
        np.testing.assert_allclose(eng.read(b), 1 + 1e-9, rtol=2**-45)

    def test_local_copy_cheaper_than_remote(self, graph):
        a = graph.add_variable("a", (8,))
        b = graph.add_variable("b", (8,))
        p = graph.device.profiler

        eng = Engine(graph)
        eng.run(Exchange([RegionCopy(a, 0, 0, ((b, 0, 0),), 2)]))
        local = p.total_cycles
        p.reset()
        eng.run(Exchange([RegionCopy(a, 0, 0, ((b, 3, 0),), 2)]))
        remote = p.total_cycles
        assert local < remote


class TestControlFlow:
    def test_repeat(self, graph):
        v = graph.add_variable("x", (4,))
        eng = Engine(graph)
        eng.run(Repeat(5, Execute(make_inc_cs(v))))
        np.testing.assert_array_equal(eng.read(v), np.full(4, 5.0))
        assert eng.loop_iterations == 5

    def test_repeat_while_counts_down(self, graph):
        # cond = x[0] stays nonzero until decremented to 0.
        cond = graph.add_single_tile("cond", ())
        cond.scatter(3.0)
        dec = Codelet("dec", run=lambda ctx: ctx["c"].__isub__(1.0), cycles=lambda ctx: 6)
        cs = ComputeSet("dec_cs")
        cs.add_vertex(dec, 0, {"c": cond.shard(0).data})
        eng = Engine(graph)
        eng.run(RepeatWhile(cond, Execute(cs)))
        assert eng.read_scalar(cond) == 0.0
        assert eng.loop_iterations == 3

    def test_repeat_while_max_iterations(self, graph):
        cond = graph.add_single_tile("cond", ())
        cond.scatter(1.0)  # never changes -> must hit the safety net
        eng = Engine(graph)
        eng.run(RepeatWhile(cond, Sequence([]), max_iterations=7))
        assert eng.loop_iterations == 7

    def test_if_branches(self, graph):
        cond = graph.add_single_tile("cond", ())
        v = graph.add_variable("x", (4,))
        eng = Engine(graph)
        cond.scatter(1.0)
        eng.run(If(cond, Execute(make_inc_cs(v)), None))
        assert eng.read(v)[0] == 1.0
        cond.scatter(0.0)
        eng.run(If(cond, Execute(make_inc_cs(v)), Execute(make_inc_cs(v, 10.0))))
        assert eng.read(v)[0] == 11.0

    def test_host_callback(self, graph):
        seen = []
        eng = Engine(graph)
        eng.run(HostCallback(lambda e: seen.append(e)))
        assert seen == [eng]
        assert eng.host_callbacks == 1

    def test_unknown_step_rejected(self, graph):
        with pytest.raises(TypeError):
            Engine(graph).run(object())

    def test_read_scalar_requires_scalar(self, graph):
        v = graph.add_variable("x", (4,))
        with pytest.raises(ValueError):
            Engine(graph).read_scalar(v)


class TestDeterminism:
    def test_same_program_same_cycles(self):
        def run_once():
            g = Graph(IPUDevice(tiles_per_ipu=4))
            v = g.add_variable("x", (16,))
            v.scatter(np.arange(16))
            eng = Engine(g)
            eng.run(Repeat(10, Execute(make_inc_cs(v))))
            return g.device.profiler.total_cycles, eng.read(v)

        c1, v1 = run_once()
        c2, v2 = run_once()
        assert c1 == c2
        np.testing.assert_array_equal(v1, v2)


class TestCompilerStats:
    def test_collect_stats(self, graph):
        v = graph.add_variable("x", (8,))
        cs = make_inc_cs(v)
        body = Sequence([Execute(cs), Exchange([])])
        prog = Sequence([Repeat(3, body), HostCallback(lambda e: None)])
        stats = collect_stats(prog)
        assert stats.compute_sets == 1
        assert stats.vertices == 4
        assert stats.exchanges == 1
        assert stats.host_callbacks == 1
        assert stats.compile_proxy > 0

    def test_shared_compute_set_counted_once(self, graph):
        v = graph.add_variable("x", (8,))
        cs = make_inc_cs(v)
        prog = Sequence([Execute(cs), Execute(cs)])
        stats = collect_stats(prog)
        assert stats.compute_sets == 1
        assert stats.vertices == 4
