"""Tests for the exchange fabric, profiler, and IPUTHREADING models."""

import pytest

from repro.machine import IPUDevice, Profiler, Transfer
from repro.machine.spec import MK2
from repro.machine import threading as thr


def make_fabric(num_ipus=1, tiles_per_ipu=8):
    dev = IPUDevice(num_ipus=num_ipus, tiles_per_ipu=tiles_per_ipu)
    return dev.fabric


class TestTransfer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Transfer(0, (), 10)
        with pytest.raises(ValueError):
            Transfer(0, (1,), -1)


class TestFabric:
    def test_empty_phase_is_free(self):
        phase = make_fabric().run([])
        assert phase.cycles == 0

    def test_single_transfer_cost(self):
        fabric = make_fabric()
        phase = fabric.run([Transfer(0, (1,), 400)])
        assert phase.sync_cycles == MK2.sync_cycles
        assert phase.stream_cycles == 100  # 400 B / 4 B-per-cycle
        assert phase.instr_cycles == MK2.exchange_instr_cycles  # 1 instr per tile
        assert phase.cycles == phase.sync_cycles + phase.stream_cycles + phase.instr_cycles

    def test_broadcast_streams_once(self):
        fabric = make_fabric()
        uni = fabric.run([Transfer(0, (1,), 400)])
        multi = fabric.run([Transfer(0, (1, 2, 3), 400)])
        # Sender streams once regardless of receiver count...
        assert multi.stream_cycles == uni.stream_cycles
        # ...but total moved bytes count every copy.
        assert multi.total_bytes == 3 * uni.total_bytes

    def test_parallel_transfers_overlap(self):
        # Disjoint tile pairs exchange simultaneously: cost = one transfer.
        fabric = make_fabric()
        one = fabric.run([Transfer(0, (1,), 400)])
        four = fabric.run(
            [Transfer(0, (1,), 400), Transfer(2, (3,), 400),
             Transfer(4, (5,), 400), Transfer(6, (7,), 400)]
        )
        assert four.stream_cycles == one.stream_cycles
        assert four.cycles == one.cycles

    def test_hotspot_serializes(self):
        # Same sender for two regions: send bytes accumulate.
        fabric = make_fabric()
        phase = fabric.run([Transfer(0, (1,), 400), Transfer(0, (2,), 400)])
        assert phase.stream_cycles == 200

    def test_inter_ipu_pays_link_sync(self):
        fabric = make_fabric(num_ipus=2, tiles_per_ipu=4)
        on_chip = fabric.run([Transfer(0, (1,), 4000)])
        cross = fabric.run([Transfer(0, (4,), 4000)])
        assert cross.inter_ipu and not on_chip.inter_ipu
        assert cross.sync_cycles == MK2.link_sync_cycles
        assert cross.cycles > on_chip.cycles

    def test_links_are_shared_per_chip(self):
        # Many tiles crossing chips at once saturate the shared links: the
        # phase is slower than the same traffic between on-chip pairs.
        fabric = make_fabric(num_ipus=2, tiles_per_ipu=1024)
        nbytes = 4000
        cross = fabric.run([Transfer(t, (1024 + t,), nbytes) for t in range(1024)])
        on_chip = fabric.run([Transfer(2 * t, (2 * t + 1,), nbytes) for t in range(512)])
        assert cross.stream_cycles > on_chip.stream_cycles

    def test_instruction_overhead_scales_with_region_count(self):
        # The quantity Sec. IV's reordering minimizes: many small regions
        # cost more instruction cycles than one big one, same bytes.
        fabric = make_fabric()
        blockwise = fabric.run([Transfer(0, (1,), 400)])
        per_cell = fabric.run([Transfer(0, (1,), 4) for _ in range(100)])
        assert per_cell.instr_cycles == 100 * blockwise.instr_cycles
        assert per_cell.stream_cycles == blockwise.stream_cycles
        assert per_cell.cycles > blockwise.cycles


class TestProfiler:
    def test_totals_and_categories(self):
        p = Profiler()
        p.record("spmv", 100)
        p.record("reduce", 50)
        p.record("spmv", 25)
        assert p.total_cycles == 175
        assert p.category("spmv") == 125
        assert p.fractions()["reduce"] == pytest.approx(50 / 175)

    def test_step_paths_roll_up_to_ancestors(self):
        p = Profiler()
        with p.step("solver"):
            with p.step("iteration"):
                p.record("spmv", 10)
            p.record("setup", 5)
        p.record("other", 1)
        paths = p.by_path()
        assert paths["solver/iteration"] == 10
        # Inclusive by default: the parent sees its own 5 plus the nested 10.
        assert paths["solver"] == 15
        assert paths["<toplevel>"] == 1
        exclusive = p.by_path(inclusive=False)
        assert exclusive["solver"] == 5
        assert exclusive["solver/iteration"] == 10

    def test_deep_rollup_spans_missing_intermediate(self):
        # A record three levels down must surface at every ancestor, even
        # when no cycles were recorded directly at the intermediate levels.
        p = Profiler()
        with p.step("a"), p.step("b"), p.step("c"):
            p.record("spmv", 7)
        paths = p.by_path()
        assert paths["a"] == paths["a/b"] == paths["a/b/c"] == 7
        assert "a/b" not in p.by_path(inclusive=False)

    def test_fractions_empty_when_nothing_recorded(self):
        assert Profiler().fractions() == {}

    def test_nested_scope_stack_unwinds_on_error(self):
        p = Profiler()
        with pytest.raises(RuntimeError):
            with p.step("outer"):
                with p.step("inner"):
                    raise RuntimeError("boom")
        p.record("x", 3)
        assert p.by_path() == {"<toplevel>": 3}

    def test_reset_mid_run_clears_everything(self):
        p = Profiler()
        with p.step("solver"):
            p.record("x", 10)
            p.reset()
            # The scope stack survives a reset; only counters clear.
            p.record("y", 2)
        assert p.total_cycles == 2
        assert p.by_category() == {"y": 2}
        assert p.by_path() == {"solver": 2}

    def test_reset(self):
        p = Profiler()
        p.record("x", 10)
        p.reset()
        assert p.total_cycles == 0 and p.by_category() == {}
        assert p.fractions() == {}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Profiler().record("x", -1)

    def test_report_contains_categories(self):
        p = Profiler()
        p.record("spmv", 10)
        assert "spmv" in p.report()


class TestThreading:
    LEVELS = [[100, 90, 80, 70, 60, 50], [40, 40], [10]]

    def test_per_level_compute_sets(self):
        cost = thr.per_level_compute_sets(self.LEVELS, MK2)
        assert cost.compute_sets == 3
        assert cost.vertices == 9
        expected = sum(
            MK2.sync_cycles + thr.VERTEX_DISPATCH_CYCLES + max(lv) for lv in self.LEVELS
        )
        assert cost.cycles == expected

    def test_iputhreading_single_compute_set(self):
        cost = thr.iputhreading(self.LEVELS, MK2)
        assert cost.compute_sets == 1
        assert cost.vertices == 1
        expected = thr.SUPERVISOR_PROLOGUE_CYCLES + sum(
            thr.WORKER_SPAWN_CYCLES + max(lv) + thr.TILE_BARRIER_CYCLES for lv in self.LEVELS
        )
        assert cost.cycles == expected

    def test_iputhreading_faster_and_smaller(self):
        # The library's raison d'être: fewer graph vertices AND fewer cycles
        # (a tile barrier is much cheaper than a chip-wide sync).
        many_levels = [[50] * 6 for _ in range(200)]
        old = thr.per_level_compute_sets(many_levels, MK2)
        new = thr.iputhreading(many_levels, MK2)
        assert new.vertices < old.vertices
        assert new.cycles < old.cycles

    def test_empty_levels(self):
        for fn in (thr.per_level_compute_sets, thr.iputhreading):
            cost = fn([], MK2)
            assert cost.cycles == 0 and cost.vertices == 0
