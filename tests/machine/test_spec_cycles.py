"""Tests for the IPU spec and cycle model."""

import math

import pytest

from repro.machine import MK2, CycleModel, IPUSpec
from repro.machine.cycles import OP_CYCLES


class TestSpec:
    def test_mk2_constants_match_paper(self):
        # Sec. II-A: 1,472 tiles, 6 workers, ~612 kB/tile (~900 MB/chip).
        assert MK2.tiles_per_ipu == 1472
        assert MK2.workers_per_tile == 6
        assert MK2.sram_per_tile == 612 * 1024
        assert MK2.sram_per_ipu == pytest.approx(900e6, rel=0.03)

    def test_with_override(self):
        small = MK2.with_(tiles_per_ipu=8)
        assert small.tiles_per_ipu == 8
        assert MK2.tiles_per_ipu == 1472  # original untouched (frozen)

    def test_seconds(self):
        assert MK2.seconds(MK2.clock_hz) == pytest.approx(1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            MK2.tiles_per_ipu = 3


class TestOpCycles:
    def test_table1_values(self):
        # Table I: f32 6 cycles; dw 132/162/240; emulated f64 ~1080/1260/2520.
        assert OP_CYCLES["float32"]["add"] == 6
        assert OP_CYCLES["dw"] == dict(OP_CYCLES["dw"], add=132, mul=162, div=240)
        assert OP_CYCLES["float64"]["add"] == 1080
        assert OP_CYCLES["float64"]["mul"] == 1260
        assert OP_CYCLES["float64"]["div"] == 2520

    def test_dw_cheaper_than_emulated_double(self):
        for op in ("add", "mul", "div"):
            assert OP_CYCLES["dw"][op] < OP_CYCLES["float64"][op]
            assert OP_CYCLES["dw_fast"][op] <= OP_CYCLES["dw"][op]


class TestCycleModel:
    def setup_method(self):
        self.m = CycleModel()

    def test_elementwise_f32_uses_simd(self):
        # 2-wide f32 SIMD: n elements cost ~n/2 op slots.
        narrow = self.m.elementwise("float32", 1, 100)
        wide = self.m.elementwise("dw", 1, 100)
        assert narrow - self.m.vertex_overhead == math.ceil(100 / 2) * 6
        assert wide - self.m.vertex_overhead == 100 * 132

    def test_elementwise_mixed(self):
        c = self.m.elementwise_mixed("dw", {"mul": 1, "add": 1}, 10)
        assert c == self.m.vertex_overhead + 10 * (162 + 132)

    def test_spmv_monotone_in_nnz_and_rows(self):
        base = self.m.spmv_rows("float32", nnz=100, rows=10)
        assert self.m.spmv_rows("float32", nnz=200, rows=10) > base
        assert self.m.spmv_rows("float32", nnz=100, rows=20) > base

    def test_triangular_charges_divides_and_stalls(self):
        only_rows = self.m.triangular_rows("float32", nnz=0, rows=10)
        assert only_rows == 10 * (6 + self.m.triangular_row_overhead)
        # Dependency stalls make triangular rows dearer than SpMV rows.
        assert self.m.triangular_row_overhead > self.m.row_overhead

    def test_reduce(self):
        assert self.m.reduce("float32", 1) == self.m.vertex_overhead
        assert self.m.reduce("float32", 5) == self.m.vertex_overhead + 4 * 6

    def test_exchange_bandwidths(self):
        on_chip = self.m.exchange_bytes(4000)
        assert on_chip == math.ceil(4000 / MK2.exchange_bytes_per_cycle)
        # IPU-Links: a per-chip shared resource — far below the aggregate
        # on-chip fabric (every tile streams 4 B/cycle simultaneously).
        link = self.m.link_bytes(4000 * MK2.tiles_per_ipu)
        all_tiles_on_chip = self.m.exchange_bytes(4000)  # tiles in parallel
        assert link > all_tiles_on_chip

    def test_sync_costs(self):
        assert self.m.sync() == MK2.sync_cycles
        assert self.m.sync(inter_ipu=True) == MK2.link_sync_cycles

    def test_custom_spec_propagates(self):
        m = CycleModel(spec=IPUSpec(exchange_bytes_per_cycle=8.0))
        assert m.exchange_bytes(64) == 8
