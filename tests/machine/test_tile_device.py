"""Tests for Tile memory accounting and IPUDevice assembly."""

import numpy as np
import pytest

from repro.machine import IPUDevice, MK2, Tile
from repro.machine.tile import SRAMOverflowError


class TestTile:
    def setup_method(self):
        self.tile = Tile(tile_id=0, ipu_id=0, spec=MK2)

    def test_alloc_tracks_bytes(self):
        a = self.tile.alloc("x", np.zeros(100, dtype=np.float32))
        assert self.tile.bytes_used == 400
        assert "x" in self.tile
        assert self.tile.get("x") is a

    def test_duplicate_name_rejected(self):
        self.tile.alloc("x", np.zeros(1, dtype=np.float32))
        with pytest.raises(KeyError):
            self.tile.alloc("x", np.zeros(1, dtype=np.float32))

    def test_sram_capacity_enforced(self):
        # 612 kB / 4 B = 156,672 f32 elements fit; one element more must not.
        cap = MK2.sram_per_tile // 4
        self.tile.alloc("big", np.zeros(cap, dtype=np.float32))
        with pytest.raises(SRAMOverflowError):
            self.tile.alloc("more", np.zeros(1, dtype=np.float32))

    def test_free_returns_capacity(self):
        self.tile.alloc("x", np.zeros(100, dtype=np.float32))
        self.tile.free("x")
        assert self.tile.bytes_used == 0
        assert "x" not in self.tile

    def test_run_workers_is_max(self):
        assert self.tile.run_workers([10, 50, 30]) == 50
        assert self.tile.run_workers([]) == 0

    def test_run_workers_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            self.tile.run_workers([1] * 7)


class TestDevice:
    def test_pod_shape(self):
        dev = IPUDevice.pod(4, tiles_per_ipu=8)
        assert dev.num_ipus == 4
        assert dev.num_tiles == 32
        assert dev.ipu_of(0) == 0
        assert dev.ipu_of(8) == 1
        assert dev.ipu_of(31) == 3
        assert dev.same_ipu(0, 7) and not dev.same_ipu(7, 8)

    def test_default_is_full_mk2(self):
        dev = IPUDevice()
        assert dev.num_tiles == 1472

    def test_rejects_zero_ipus(self):
        with pytest.raises(ValueError):
            IPUDevice(num_ipus=0)

    def test_sram_report(self):
        dev = IPUDevice(tiles_per_ipu=4)
        dev.tile(2).alloc("x", np.zeros(10, dtype=np.float64))
        rep = dev.sram_report()
        assert rep["max_tile_bytes"] == 80
        assert rep["total_bytes"] == 80
        assert rep["capacity_per_tile"] == MK2.sram_per_tile

    def test_seconds_uses_clock(self):
        dev = IPUDevice(tiles_per_ipu=2)
        dev.profiler.record("compute", int(MK2.clock_hz))
        assert dev.seconds() == pytest.approx(1.0)
