"""Tests for the SpMV bench runner and SolveStats record-keeping."""

import pytest

from repro.bench import ipu_spmv_run
from repro.solvers.base import SolveStats
from repro.sparse import poisson3d


class TestIpuSpmvRun:
    def test_breakdown_consistent(self):
        crs, dims = poisson3d(8)
        run = ipu_spmv_run(crs, grid_dims=dims, num_ipus=1, tiles_per_ipu=8)
        assert run.num_tiles == 8
        assert run.total_cycles > 0
        assert run.compute_cycles + run.exchange_cycles <= run.total_cycles
        assert run.seconds == pytest.approx(run.total_cycles / 1.33e9)
        assert 0 < run.compute_seconds < run.seconds

    def test_repeats_amortize_fixed_costs(self):
        crs, dims = poisson3d(8)
        one = ipu_spmv_run(crs, grid_dims=dims, tiles_per_ipu=8, repeats=1)
        ten = ipu_spmv_run(crs, grid_dims=dims, tiles_per_ipu=8, repeats=10)
        # Per-SpMV cycles agree within the loop-control overhead.
        assert ten.total_cycles == pytest.approx(one.total_cycles, rel=0.05)

    def test_deterministic(self):
        crs, dims = poisson3d(6)
        a = ipu_spmv_run(crs, grid_dims=dims, tiles_per_ipu=4)
        b = ipu_spmv_run(crs, grid_dims=dims, tiles_per_ipu=4)
        assert a.total_cycles == b.total_cycles


class TestSolveStats:
    def test_record_and_properties(self):
        s = SolveStats()
        assert s.total_iterations == 0
        assert s.final_residual != s.final_residual  # NaN when empty
        s.record(1, 0.5)
        s.record(2, 0.25)
        assert s.iterations == [1, 2]
        assert s.final_residual == 0.25
        assert s.total_iterations == 2
        assert "0.25" in repr(s) or "2.5" in repr(s)
