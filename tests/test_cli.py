"""CLI smoke tests."""

import json

import numpy as np
import pytest

from repro.cli import main


class TestSolveCommand:
    def test_solve_poisson_inline_config(self, capsys):
        rc = main([
            "solve", "--matrix", "poisson2d:8",
            "--config", '{"solver": "jacobi", "sweeps": 30}',
            "--tiles", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "relative residual" in out
        assert "n=64" in out

    def test_solve_with_config_file_and_output(self, tmp_path, capsys):
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"solver": "bicgstab", "tol": 1e-5,
                                   "preconditioner": {"solver": "ilu0"}}))
        rhs = tmp_path / "b.npy"
        np.save(rhs, np.ones(64))
        out_file = tmp_path / "x.npy"
        rc = main([
            "solve", "--matrix", "poisson2d:8", "--config", str(cfg),
            "--rhs", str(rhs), "--output", str(out_file), "--tiles", "4",
            "--profile",
        ])
        assert rc == 0
        x = np.load(out_file)
        assert x.shape == (64,)
        assert "cycle breakdown" in capsys.readouterr().out

    def test_generator_specs(self, capsys):
        rc = main([
            "solve", "--matrix", "g3:16",
            "--config", '{"solver": "jacobi", "sweeps": 5}',
            "--tiles", "4",
        ])
        assert rc == 0

    def test_unknown_matrix_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--matrix", "nonsense:3", "--config", "{}"])


class TestCompileReportCommand:
    def test_compile_report(self, capsys):
        rc = main([
            "compile-report", "--matrix", "poisson2d:8",
            "--config", '{"solver": "cg", "tol": 1e-6}',
            "--tiles", "4", "--tree",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "source schedule:" in out
        assert "optimized schedule:" in out
        assert "compile proxy:" in out
        assert "coalesce-exchanges" in out
        assert "optimized program:" in out

    def test_compile_report_no_opt(self, capsys):
        rc = main([
            "compile-report", "--matrix", "poisson2d:8",
            "--config", '{"solver": "jacobi", "sweeps": 5}',
            "--tiles", "4", "--no-opt",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(no passes run)" in out or "compile report" in out


class TestInfoCommand:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "1472" in out and "612 kB" in out
