"""CLI smoke tests."""

import json

import numpy as np
import pytest

from repro.cli import main


class TestSolveCommand:
    def test_solve_poisson_inline_config(self, capsys):
        rc = main([
            "solve", "--matrix", "poisson2d:8",
            "--config", '{"solver": "jacobi", "sweeps": 30}',
            "--tiles", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "relative residual" in out
        assert "n=64" in out

    def test_solve_with_config_file_and_output(self, tmp_path, capsys):
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"solver": "bicgstab", "tol": 1e-5,
                                   "preconditioner": {"solver": "ilu0"}}))
        rhs = tmp_path / "b.npy"
        np.save(rhs, np.ones(64))
        out_file = tmp_path / "x.npy"
        rc = main([
            "solve", "--matrix", "poisson2d:8", "--config", str(cfg),
            "--rhs", str(rhs), "--output", str(out_file), "--tiles", "4",
            "--profile",
        ])
        assert rc == 0
        x = np.load(out_file)
        assert x.shape == (64,)
        assert "cycle breakdown" in capsys.readouterr().out

    def test_generator_specs(self, capsys):
        rc = main([
            "solve", "--matrix", "g3:16",
            "--config", '{"solver": "jacobi", "sweeps": 5}',
            "--tiles", "4",
        ])
        assert rc == 0

    def test_unknown_matrix_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--matrix", "nonsense:3", "--config", "{}"])


class TestCacheCommands:
    def test_solve_repeat_reports_cache_and_identity(self, capsys):
        rc = main([
            "solve", "--matrix", "poisson2d:8",
            "--config", '{"solver": "cg", "tol": 1e-6}',
            "--tiles", "4", "--repeat", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repeat:            3 solves" in out
        assert "hits=2 misses=1" in out
        assert "bit-identical runs: yes" in out

    def test_batch_random_rhs(self, capsys):
        # Default path: one batched multi-RHS program, amortized exchanges.
        rc = main([
            "batch", "--matrix", "poisson2d:8",
            "--config", '{"solver": "cg", "tol": 1e-6}',
            "--tiles", "4", "--count", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 right-hand sides" in out
        assert "rhs   2:" in out
        assert "3 RHS in one program" in out
        assert "amortized per RHS" in out

    def test_batch_no_batch_axis_session_loop(self, capsys):
        # The pre-batching behavior: one solve per rhs through the session.
        rc = main([
            "batch", "--matrix", "poisson2d:8",
            "--config", '{"solver": "cg", "tol": 1e-6}',
            "--tiles", "4", "--count", "3", "--no-batch-axis",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 right-hand sides" in out
        assert "hits=2 misses=1" in out
        assert "amortized" in out

    def test_batch_modes_agree_bit_identically(self, tmp_path):
        rhs = tmp_path / "bs.npy"
        np.save(rhs, np.random.default_rng(3).standard_normal((3, 64)))
        out_b = tmp_path / "batched.npy"
        out_l = tmp_path / "looped.npy"
        assert main(["batch", "--matrix", "poisson2d:8", "--config", "cg",
                     "--tiles", "4", "--rhs", str(rhs),
                     "--output", str(out_b)]) == 0
        assert main(["batch", "--matrix", "poisson2d:8", "--config", "cg",
                     "--tiles", "4", "--rhs", str(rhs), "--no-batch-axis",
                     "--output", str(out_l)]) == 0
        assert np.array_equal(np.load(out_b), np.load(out_l))

    def test_batch_rhs_file_and_output(self, tmp_path, capsys):
        rhs = tmp_path / "bs.npy"
        np.save(rhs, np.random.default_rng(0).standard_normal((2, 64)))
        out_file = tmp_path / "xs.npy"
        rc = main([
            "batch", "--matrix", "poisson2d:8", "--config", "cg",
            "--tiles", "4", "--rhs", str(rhs), "--output", str(out_file),
        ])
        assert rc == 0
        xs = np.load(out_file)
        assert xs.shape == (2, 64)
        # Each row solves its rhs: check against the host reference SpMV.
        from repro.sparse import poisson2d

        crs, _ = poisson2d(8)
        bs = np.load(rhs)
        for x, b in zip(xs, bs):
            assert np.linalg.norm(crs.spmv(x) - b) / np.linalg.norm(b) < 1e-4

    def test_batch_rejects_wrong_rhs_shape(self, tmp_path):
        rhs = tmp_path / "bad.npy"
        np.save(rhs, np.ones((2, 7)))
        with pytest.raises(SystemExit, match="must be an"):
            main(["batch", "--matrix", "poisson2d:8", "--config", "cg",
                  "--tiles", "4", "--rhs", str(rhs)])


class TestTraceCommands:
    def _trace(self, tmp_path, capsys):
        """The ISSUE acceptance command: solve with --trace, bare config name,
        ``poisson:N`` alias."""
        path = tmp_path / "t.json"
        rc = main([
            "solve", "--matrix", "poisson:8", "--config", "cg",
            "--tiles", "4", "--trace", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"trace written to {path}" in out
        return path

    def test_solve_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        from repro.telemetry import validate_chrome_trace

        path = self._trace(tmp_path, capsys)
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []
        spans = [e for e in obj["traceEvents"] if e.get("ph") == "X"]
        # Labeled scopes and counter tracks made it into the export.
        assert any(e["cat"] == "scope" and e["name"].startswith("solve:")
                   for e in spans)
        counters = {e["name"] for e in obj["traceEvents"] if e.get("ph") == "C"}
        assert {"residual", "imbalance"} <= counters

    def test_trace_report_renders_summary(self, tmp_path, capsys):
        path = self._trace(tmp_path, capsys)
        rc = main(["trace-report", str(path), "--check", "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "valid Chrome trace" in out
        assert "hottest compute sets (top 3)" in out
        assert "convergence" in out

    def test_trace_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Q"}]}')
        with pytest.raises(SystemExit, match="invalid Chrome trace"):
            main(["trace-report", str(bad), "--check"])
        with pytest.raises(SystemExit, match="no such trace file"):
            main(["trace-report", str(tmp_path / "missing.json")])

    def test_trace_requires_sim_backend(self, tmp_path):
        with pytest.raises(SystemExit, match="sim"):
            main([
                "solve", "--matrix", "poisson:8", "--config", "cg",
                "--tiles", "4", "--backend", "fast",
                "--trace", str(tmp_path / "t.json"),
            ])


class TestFaultCommands:
    SPEC = "seed=7;bitflip:p=0.05,where=exchange"

    def test_faults_subcommand_normalizes_spec(self, capsys):
        rc = main(["faults", self.SPEC])
        assert rc == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["seed"] == 7
        assert plan["faults"] == [
            {"kind": "bitflip", "p": 0.05, "where": "exchange"}]

    def test_faults_subcommand_writes_plan_file(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        rc = main(["faults", self.SPEC, "--out", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["seed"] == 7
        assert "written to" in capsys.readouterr().out

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_solve_with_faults_and_resilience(self, tmp_path, capsys):
        report_path = tmp_path / "resilience.json"
        rc = main([
            "solve", "--matrix", "poisson3d:8",
            "--config", '{"solver": "cg", "tol": 1e-6}',
            "--ipus", "2", "--tiles", "16",
            "--inject-faults", "seed=7;bitflip:p=0.02,where=exchange",
            "--resilience", "--resilience-report", str(report_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resilience:" in out and "outcome=" in out
        report = json.loads(report_path.read_text())
        assert report["faults_injected"] > 0
        assert report["outcome"] == "recovered"
        assert report["rollbacks"] > 0

    def test_resilience_accepts_overrides(self, capsys):
        rc = main([
            "solve", "--matrix", "poisson2d:8", "--config", "cg", "--tiles", "4",
            "--resilience", "checkpoint_every=5,max_rollbacks=1",
        ])
        assert rc == 0
        assert "outcome=clean" in capsys.readouterr().out

    def test_inject_faults_requires_sim_backend(self):
        with pytest.raises(SystemExit, match="sim"):
            main([
                "solve", "--matrix", "poisson2d:8", "--config", "cg",
                "--tiles", "4", "--backend", "fast",
                "--inject-faults", "bitflip:p=0.1",
            ])


class TestCompileReportCommand:
    def test_compile_report(self, capsys):
        rc = main([
            "compile-report", "--matrix", "poisson2d:8",
            "--config", '{"solver": "cg", "tol": 1e-6}',
            "--tiles", "4", "--tree",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "source schedule:" in out
        assert "optimized schedule:" in out
        assert "compile proxy:" in out
        assert "coalesce-exchanges" in out
        assert "optimized program:" in out

    def test_compile_report_no_opt(self, capsys):
        rc = main([
            "compile-report", "--matrix", "poisson2d:8",
            "--config", '{"solver": "jacobi", "sweeps": 5}',
            "--tiles", "4", "--no-opt",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(no passes run)" in out or "compile report" in out


class TestObservabilityCommands:
    CG = '{"solver": "cg", "tol": 1e-6, "max_iterations": 80}'

    def _observed_solve(self, tmp_path, capsys, metrics_name="m.prom"):
        wall = tmp_path / "wall.json"
        metrics = tmp_path / metrics_name
        rc = main([
            "solve", "--matrix", "poisson2d:12", "--config", self.CG,
            "--tiles", "4", "--backend", "fused",
            "--wall-trace", str(wall), "--metrics", str(metrics),
            "--progress", "5",
        ])
        assert rc == 0
        return wall, metrics, capsys.readouterr()

    def test_solve_wall_trace_and_metrics_artifacts(self, tmp_path, capsys):
        from repro.telemetry import validate_chrome_trace

        wall, metrics, captured = self._observed_solve(tmp_path, capsys)
        assert "host wall-clock" in captured.out
        assert "wall profile" in captured.out
        assert "wall trace written to" in captured.out
        assert "metrics written to" in captured.out
        assert "[progress] iteration" in captured.err
        doc = json.loads(wall.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["metadata"]["clock"] == "wall_ns"
        assert "repro_kernel_wall_ns_total" in metrics.read_text()

    def test_trace_report_renders_wall_domain(self, tmp_path, capsys):
        wall, _, _ = self._observed_solve(tmp_path, capsys)
        rc = main(["trace-report", str(wall), "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "valid Chrome trace" in out
        assert "clock domain: wall" in out
        assert "hottest kernels" in out

    def test_metrics_report_from_prometheus_text(self, tmp_path, capsys):
        _, metrics, _ = self._observed_solve(tmp_path, capsys)
        rc = main(["metrics-report", str(metrics), "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hottest kernels" in out
        assert "wall ms" in out
        assert "iterations:" in out
        assert "final relative residual:" in out

    def test_metrics_report_from_json_snapshot(self, tmp_path, capsys):
        _, metrics, _ = self._observed_solve(tmp_path, capsys,
                                             metrics_name="m.json")
        assert json.loads(metrics.read_text())
        rc = main(["metrics-report", str(metrics)])
        assert rc == 0
        assert "hottest kernels" in capsys.readouterr().out

    def test_metrics_report_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such metrics file"):
            main(["metrics-report", str(tmp_path / "missing.prom")])

    def test_wall_trace_works_on_every_backend(self, tmp_path, capsys):
        for backend in ("sim", "fast"):
            wall = tmp_path / f"wall-{backend}.json"
            rc = main([
                "solve", "--matrix", "poisson2d:8", "--config", self.CG,
                "--tiles", "4", "--backend", backend,
                "--wall-trace", str(wall),
            ])
            assert rc == 0
            doc = json.loads(wall.read_text())
            assert doc["metadata"]["clock"] == "wall_ns"
        capsys.readouterr()


class TestInfoCommand:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "1472" in out and "612 kB" in out
